//! Head-to-head comparison of all four allocators on one workload — a
//! single-k slice of the paper's Figures 2–8.
//!
//! Run with: `cargo run --release --example allocator_faceoff [k] [eta]`

use std::time::Instant;

use txallo::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let k: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(20);
    let eta: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2.0);

    let config = WorkloadConfig {
        accounts: 20_000,
        transactions: 150_000,
        block_size: 150,
        groups: 200,
        ..WorkloadConfig::default()
    };
    let ledger = EthereumLikeGenerator::new(config, 7).default_ledger();
    let dataset = Dataset::from_ledger(ledger);
    let params = TxAlloParams::for_graph(dataset.graph(), k).with_eta(eta);

    println!(
        "workload: {} tx / {} accounts — k = {k}, η = {eta}\n",
        dataset.ledger().transaction_count(),
        dataset.graph().node_count(),
    );
    println!(
        "{:<16} {:>8} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "allocator", "γ %", "ρ/λ", "Λ/λ", "ζ avg", "ζ worst", "time"
    );

    // Every registered method competes — add one to the registry and it
    // shows up here with no further wiring.
    let registry = AllocatorRegistry::builtin();
    let mut allocators: Vec<Box<dyn Allocator>> = registry
        .names()
        .iter()
        .map(|name| registry.batch(name, &params).expect("registered"))
        .collect();

    for alloc in allocators.iter_mut() {
        let start = Instant::now();
        let allocation = alloc.allocate(&dataset);
        let elapsed = start.elapsed();
        let r = MetricsReport::compute(dataset.graph(), &allocation, &params);
        println!(
            "{:<16} {:>8.1} {:>8.3} {:>10.2} {:>10.2} {:>10.0} {:>9.2?}",
            alloc.name(),
            100.0 * r.cross_shard_ratio,
            r.workload_std_normalized,
            r.throughput_normalized,
            r.avg_latency,
            r.worst_latency,
            elapsed
        );
    }
}
