//! An epoch loop driven purely through the `StreamingAllocator` service
//! API — no simulator, no direct algorithm construction.
//!
//! This is the §V-C serving story at its barest: resolve a stream from
//! the registry, `begin` it on the warm-up history, then per epoch feed
//! blocks through `on_block` and close with `end_epoch`, folding each
//! returned `AllocationUpdate` *diff* into a locally held mapping with
//! `Allocation::apply_update`. The diff is the point — migrations are
//! enumerated, not hidden inside a wholesale relabel, so the loop can
//! price them (here: printed; in `ChainService`: charged to Atomix).
//!
//! Run with: `cargo run --release --example streaming_service [method]`

use txallo::prelude::*;

fn main() {
    let method = std::env::args().nth(1).unwrap_or_else(|| "txallo".into());
    let registry = AllocatorRegistry::builtin();

    let config = WorkloadConfig {
        accounts: 6_000,
        transactions: 200_000,
        block_size: 100,
        groups: 80,
        new_account_prob: 0.004,
        drift_interval: 40,
        ..WorkloadConfig::default()
    };
    let mut generator = EthereumLikeGenerator::new(config, 2025);
    let (k, epoch_blocks, epochs) = (10usize, 50usize, 12u64);

    // Warm-up: accumulate history, open the service on it.
    let mut graph = TxGraph::new();
    for block in generator.blocks(500) {
        graph.ingest_block(&block);
    }
    let params = TxAlloParams::for_graph(&graph, k);
    let mut stream =
        match registry.streaming(&method, &params, HybridSchedule::Hybrid { global_gap: 5 }) {
            Ok(stream) => stream,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        };
    let mut allocation = stream.begin(&graph, &params);
    println!(
        "{} serving {} accounts across {k} shards ({method} via registry)\n",
        stream.name(),
        allocation.len()
    );
    println!(
        "{:>5} {:>9} {:>7} {:>9} {:>9} {:>9} {:>8}",
        "epoch", "kind", "moves", "migrated", "placed", "carry", "γ %"
    );

    for epoch in 0..epochs {
        // Serve one epoch: ingest each block, then let the stream see it.
        let blocks = generator.blocks(epoch_blocks as u64);
        for block in &blocks {
            graph.ingest_block(block);
            stream.on_block(&graph, block);
        }
        let update = stream.end_epoch(&graph, EpochKind::Scheduled);
        allocation.apply_update(&update);
        assert_eq!(
            allocation.labels(),
            stream.allocation().labels(),
            "the applied diffs reconstruct the stream's mapping exactly"
        );

        let metrics = txallo::sim::epoch_metrics(&blocks, &graph, &allocation, k, params.eta);
        println!(
            "{epoch:>5} {:>9} {:>7} {:>9} {:>9} {:>9} {:>8.1}",
            match update.kind {
                UpdateKind::Global => "global",
                UpdateKind::Adaptive => "adaptive",
            },
            update.moves.len(),
            update.migrations(),
            update.placements(),
            match update.carry {
                StateCarry::Stateless => "none",
                StateCarry::Rebuilt => "rebuilt",
                StateCarry::Warm => "warm",
                StateCarry::WarmRescaled => "rescaled",
            },
            100.0 * metrics.cross_shard_ratio,
        );
    }

    println!(
        "\nfinal mapping: {} accounts, {} shards — served epoch-by-epoch, \
         every move accounted for",
        allocation.len(),
        allocation.shard_count()
    );
}
