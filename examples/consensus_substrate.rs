//! Run a trace through the full consensus substrate: per-shard PBFT,
//! cross-shard Atomix, validator reshuffling — and measure η empirically.
//!
//! The paper treats the cross-shard workload factor η as a hyper-parameter
//! (swept 2–10). This example shows where it physically comes from: a
//! cross-shard transaction costs dedicated lock + commit consensus rounds
//! in every involved shard, while intra-shard transactions amortize one
//! round across a whole batch.
//!
//! Run with: `cargo run --release --example consensus_substrate`

use txallo::prelude::*;

fn main() {
    let config = WorkloadConfig {
        accounts: 5_000,
        transactions: 50_000,
        block_size: 100,
        groups: 60,
        ..WorkloadConfig::default()
    };
    let ledger = EthereumLikeGenerator::new(config, 99).default_ledger();
    let dataset = Dataset::from_ledger(ledger);
    let graph = dataset.graph();
    let k = 8;
    let params = TxAlloParams::for_graph(graph, k);
    let registry = AllocatorRegistry::builtin();

    println!(
        "{} transactions, {} accounts, k = {k}, {} validators ({} Byzantine)\n",
        graph.transaction_count(),
        graph.node_count(),
        k * 16,
        k * 16 / 10
    );
    println!(
        "{:<12} {:>8} {:>12} {:>12} {:>12} {:>10} {:>8}",
        "allocator", "γ %", "msgs/intra", "msgs/cross", "measured η", "reshuffles", "aborted"
    );

    for name in ["txallo", "hash"] {
        let allocation = registry
            .batch(name, &params)
            .expect("registered")
            .allocate(&dataset);
        let metrics = MetricsReport::compute(graph, &allocation, &params);
        let mut engine = ChainEngine::new(ChainEngineConfig::new(k));
        for block in dataset.ledger().blocks() {
            engine.process_block(block, graph, &allocation);
        }
        let r = engine.report();
        println!(
            "{name:<12} {:>8.1} {:>12.1} {:>12.1} {:>12.2} {:>10} {:>8}",
            100.0 * metrics.cross_shard_ratio,
            r.intra_cost_per_shard,
            r.cross_cost_per_shard,
            r.measured_eta(),
            r.reshuffles,
            r.aborted
        );
    }

    println!(
        "\nη is endogenous: with few cross-shard transactions (G-TxAllo), Atomix\n\
         batches stay small and each cross transaction pays nearly full consensus\n\
         rounds; under hash allocation almost everything is cross-shard, so the\n\
         batches amortize and the per-transaction ratio shrinks. The paper's\n\
         η ∈ [2, 10] sweep brackets exactly this range."
    );
}
