//! Hot-account splitting (BrokerChain-style) on top of TxAllo.
//!
//! TxAllo's capacity-capped objective deliberately concentrates a hub
//! account's one-shot counterparties into the hub's shard — great for the
//! cross-shard ratio, hard on that one shard. This example runs the
//! split-then-allocate broker pipeline and shows the trade-off resolve.
//!
//! Run with: `cargo run --release --example broker_splitting`

use txallo::core::{allocate_with_brokers, BrokerConfig};
use txallo::prelude::*;

fn main() {
    let config = WorkloadConfig {
        accounts: 10_000,
        transactions: 100_000,
        block_size: 150,
        groups: 150,
        ..WorkloadConfig::default()
    };
    let ledger = EthereumLikeGenerator::new(config, 7).default_ledger();
    let dataset = Dataset::from_ledger(ledger);
    let graph = dataset.graph().clone();
    let k = 20;
    let params = TxAlloParams::for_graph(&graph, k);

    let plain_alloc = AllocatorRegistry::builtin()
        .batch("txallo", &params)
        .expect("registered")
        .allocate(&dataset);
    let plain = MetricsReport::compute(&graph, &plain_alloc, &params);

    let broker_cfg = BrokerConfig::default();
    let (_, brokered) = allocate_with_brokers(&graph, &params, &broker_cfg);

    println!(
        "k = {k}, η = {}, split threshold = {:.1}λ\n",
        params.eta, broker_cfg.split_threshold
    );
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "variant", "γ %", "ρ/λ", "Λ/λ", "ζ avg", "ζ worst"
    );
    println!(
        "{:<18} {:>10.1} {:>10.2} {:>10.2} {:>10.2} {:>10.0}",
        "plain G-TxAllo",
        100.0 * plain.cross_shard_ratio,
        plain.workload_std_normalized,
        plain.throughput_normalized,
        plain.avg_latency,
        plain.worst_latency
    );
    println!(
        "{:<18} {:>10.1} {:>10.2} {:>10.2} {:>10.2} {:>10.0}",
        "broker pipeline",
        100.0 * brokered.cross_shard_ratio,
        brokered.workload_std_normalized,
        brokered.throughput_normalized,
        brokered.avg_latency,
        brokered.worst_latency
    );
    println!("\nsplit accounts ({}):", brokered.split_accounts.len());
    for &node in &brokered.split_accounts {
        println!(
            "  {} — incident weight {:.0} ({:.1}% of all transactions)",
            graph.account(node),
            graph.incident_weight(node),
            100.0 * graph.incident_weight(node) / graph.total_weight()
        );
    }
}
