//! Replay a real (or exported) transaction trace from CSV.
//!
//! The CSV format is one transaction per line:
//! `block_height,in1|in2|…,out1|out2|…` — what an Ethereum-ETL export
//! reduces to once values/gas are dropped. With no argument, the example
//! writes a synthetic trace to a temp file first, so it is runnable out of
//! the box:
//!
//! `cargo run --release --example ethereum_csv_replay [trace.csv [k]]`

use std::fs::File;
use std::io::{BufReader, BufWriter};

use txallo::prelude::*;
use txallo::workload::{read_ledger_csv, write_ledger_csv};

fn main() {
    let mut args = std::env::args().skip(1);
    let path = args.next();
    let k: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);

    let path = match path {
        Some(p) => p,
        None => {
            // No trace supplied: synthesize one so the example just works.
            let tmp = std::env::temp_dir().join("txallo_demo_trace.csv");
            let config = WorkloadConfig {
                accounts: 5_000,
                transactions: 50_000,
                block_size: 100,
                groups: 60,
                ..WorkloadConfig::default()
            };
            let ledger = EthereumLikeGenerator::new(config, 11).default_ledger();
            let file = File::create(&tmp).expect("create temp trace");
            write_ledger_csv(&ledger, BufWriter::new(file)).expect("write trace");
            println!(
                "(no trace given — wrote a synthetic one to {})\n",
                tmp.display()
            );
            tmp.to_string_lossy().into_owned()
        }
    };

    let file = File::open(&path).unwrap_or_else(|e| panic!("cannot open {path}: {e}"));
    let ledger = read_ledger_csv(BufReader::new(file)).expect("parse trace");
    let stats = ledger.stats();
    println!(
        "loaded {}: {} blocks, {} transactions, {} accounts ({} self-loops, {} multi-IO)",
        path,
        stats.block_count,
        stats.transaction_count,
        stats.account_count,
        stats.self_loop_count,
        stats.multi_io_count
    );

    let dataset = Dataset::from_ledger(ledger);
    let params = TxAlloParams::for_graph(dataset.graph(), k);
    let registry = AllocatorRegistry::builtin();

    for name in ["txallo", "hash"] {
        let allocation = registry
            .batch(name, &params)
            .expect("registered")
            .allocate(&dataset);
        let r = MetricsReport::compute(dataset.graph(), &allocation, &params);
        let tx_gamma = MetricsReport::transaction_level_cross_ratio(&dataset, &allocation);
        println!(
            "{name:>9}: γ(graph) = {:.1}%, γ(tx-level) = {:.1}%, Λ/λ = {:.2}×, ζ = {:.2} blocks",
            100.0 * r.cross_shard_ratio,
            100.0 * tx_gamma,
            r.throughput_normalized,
            r.avg_latency
        );
    }
}
