//! Dynamic reallocation over a drifting block stream — the §VI-C scenario.
//!
//! Warm up G-TxAllo on a historical prefix, then stream epochs of fresh
//! blocks through the simulator while A-TxAllo keeps the mapping current,
//! with a periodic global refresh (the hybrid schedule of Fig. 10).
//!
//! Run with: `cargo run --release --example dynamic_reallocation`

use txallo::prelude::*;

fn main() {
    let config = WorkloadConfig {
        accounts: 8_000,
        transactions: 400_000,
        block_size: 100,
        groups: 100,
        new_account_prob: 0.004, // brisk account birth to stress A-TxAllo
        drift_interval: 50,
        ..WorkloadConfig::default()
    };
    let mut generator = EthereumLikeGenerator::new(config, 2024);

    // 90/10 split, as in the paper's A-TxAllo evaluation.
    let warmup_blocks = generator.blocks(1_000);
    let mut sim = ShardedChainSim::new(SimConfig {
        shards: 12,
        eta: 2.0,
        epoch_blocks: 100,
        method: "txallo".into(),
        schedule: HybridSchedule::Hybrid { global_gap: 5 },
        decay_per_epoch: None,
        ..SimConfig::new(12)
    });
    let warm_time = sim.warmup(&warmup_blocks);
    println!(
        "warm-up: {} accounts allocated by G-TxAllo in {:?}\n",
        sim.graph().node_count(),
        warm_time
    );
    println!(
        "{:>5} {:>9} {:>10} {:>8} {:>10} {:>9} {:>12}",
        "epoch", "algo", "γ %", "Λ/λ", "new acct", "migrated", "update time"
    );

    let stream = generator.blocks(1_000);
    for report in sim.run_stream(&stream) {
        println!(
            "{:>5} {:>9} {:>10.1} {:>8.2} {:>10} {:>9} {:>11.2?}",
            report.epoch,
            match report.update {
                UpdateKind::Global => "G-TxAllo",
                UpdateKind::Adaptive => "A-TxAllo",
            },
            100.0 * report.metrics.cross_shard_ratio,
            report.metrics.throughput_normalized,
            report.new_accounts,
            report.metrics.migrated_accounts,
            report.update_time
        );
    }
    println!(
        "\nfinal graph: {} accounts, {} transactions",
        sim.graph().node_count(),
        sim.graph().transaction_count()
    );
}
