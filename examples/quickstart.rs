//! Quickstart: allocate a synthetic Ethereum-like workload with G-TxAllo
//! and print the §III-B metrics.
//!
//! Run with: `cargo run --release --example quickstart`

use txallo::prelude::*;

fn main() {
    // 1. Generate an Ethereum-like trace (long-tailed activity, latent
    //    communities, a dominant "exchange" account).
    let config = WorkloadConfig {
        accounts: 10_000,
        transactions: 100_000,
        block_size: 150,
        groups: 120,
        ..WorkloadConfig::default()
    };
    let mut generator = EthereumLikeGenerator::new(config.clone(), 42);
    let ledger = generator.default_ledger();
    let stats = ledger.stats();
    println!(
        "trace: {} blocks, {} transactions, {} accounts",
        stats.block_count, stats.transaction_count, stats.account_count
    );
    println!(
        "hottest account participates in {:.1}% of transactions",
        100.0 * stats.hottest_account_share()
    );

    // 2. Build the dataset: the ledger plus its transaction graph
    //    (Definition 2).
    let dataset = Dataset::from_ledger(ledger);
    let graph = dataset.graph();
    println!(
        "graph: {} nodes, {} edges, total weight {:.0}",
        graph.node_count(),
        graph.edge_count(),
        graph.total_weight()
    );

    // 3. Allocate to k shards with G-TxAllo (η = 2, λ = |T|/k). Every
    //    allocator is resolved by name through the shared registry.
    let k = 16;
    let params = TxAlloParams::for_graph(graph, k);
    let registry = AllocatorRegistry::builtin();
    println!("registered methods: {}", registry.names().join(", "));
    let mut txallo = registry.batch("txallo", &params).expect("builtin");
    let allocation = txallo.allocate(&dataset);

    // 4. Evaluate.
    let report = MetricsReport::compute(graph, &allocation, &params);
    println!("\n=== {k}-shard allocation ({}) ===", txallo.name());
    println!(
        "cross-shard ratio γ       : {:.1}%",
        100.0 * report.cross_shard_ratio
    );
    println!(
        "workload balance ρ/λ      : {:.3}",
        report.workload_std_normalized
    );
    println!(
        "throughput Λ/λ            : {:.2}× an unsharded chain",
        report.throughput_normalized
    );
    println!(
        "avg confirmation latency ζ: {:.2} blocks",
        report.avg_latency
    );
    println!(
        "worst-case latency        : {:.0} blocks",
        report.worst_latency
    );

    // 5. Compare against the traditional hash-based allocation.
    let hash_alloc = registry
        .batch("hash", &params)
        .expect("builtin")
        .allocate(&dataset);
    let hash_report = MetricsReport::compute(graph, &hash_alloc, &params);
    println!(
        "\nhash-based baseline: γ = {:.1}%, Λ/λ = {:.2}×",
        100.0 * hash_report.cross_shard_ratio,
        hash_report.throughput_normalized
    );
    println!(
        "TxAllo removes {:.0}% of the cross-shard transactions.",
        100.0 * (1.0 - report.cross_shard_ratio / hash_report.cross_shard_ratio.max(1e-9))
    );
}
