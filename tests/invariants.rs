//! Property-based tests of the core invariants, using proptest.

use proptest::prelude::*;

use txallo::core::latency_of_normalized_load;
use txallo::core::state::{capped_throughput, CommunityState, MoveScratch};
use txallo::core::{AtxAllo, GTxAllo, HashAllocator, MetisAllocator};
use txallo::model::Block;
use txallo::prelude::*;

/// Strategy: a random list of transfers over a bounded account universe.
fn transfers(max_accounts: u64, len: usize) -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((0..max_accounts, 0..max_accounts), 1..len)
}

fn graph_of(pairs: &[(u64, u64)]) -> TxGraph {
    let mut g = TxGraph::new();
    for &(a, b) in pairs {
        g.ingest_transaction(&Transaction::transfer(AccountId(a), AccountId(b)));
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Definition 1: every allocation is a partition (uniqueness +
    /// completeness), for every allocator.
    #[test]
    fn allocations_are_partitions(pairs in transfers(200, 120), k in 1usize..12) {
        let g = graph_of(&pairs);
        let params = TxAlloParams::for_graph(&g, k);
        let allocs = [
            GTxAllo::new(params.clone()).allocate_graph(&g),
            HashAllocator::new(k).allocate_graph(&g),
            MetisAllocator::new(k).allocate_graph(&g),
        ];
        for alloc in allocs {
            prop_assert_eq!(alloc.len(), g.node_count());
            prop_assert!(alloc.labels().iter().all(|&l| (l as usize) < k));
        }
    }

    /// Total transaction weight is conserved by the graph, and the sum of
    /// per-shard σ decomposes as intra + η·cut consistently: Σσ = m + (η·2 − 1)·cut.
    #[test]
    fn workload_decomposition(pairs in transfers(100, 100), k in 2usize..8, eta in 1.0f64..10.0) {
        let g = graph_of(&pairs);
        let params = TxAlloParams::for_graph(&g, k).with_eta(eta);
        let alloc = HashAllocator::new(k).allocate_graph(&g);
        let r = MetricsReport::compute(&g, &alloc, &params);
        let m = g.total_weight();
        let cut = r.cross_shard_ratio * m;
        let sigma_sum: f64 = r.shard_loads.iter().map(|&x| x * params.capacity).sum();
        // Each intra edge contributes 1; each cut edge contributes η in both
        // of its two shards: Σσ = (m − cut) + 2·η·cut.
        let expected = (m - cut) + 2.0 * eta * cut;
        prop_assert!((sigma_sum - expected).abs() < 1e-6 * expected.max(1.0),
            "Σσ = {sigma_sum}, expected {expected}");
    }

    /// The incremental gain formulas agree with from-scratch recomputation
    /// for arbitrary moves (the heart of §V-B).
    #[test]
    fn gain_formulas_match_recomputation(
        pairs in transfers(40, 60),
        k in 2usize..6,
        eta in 1.0f64..8.0,
        node_pick in 0usize..1000,
        dest_pick in 0usize..1000,
    ) {
        let g = graph_of(&pairs);
        prop_assume!(g.node_count() >= 2);
        let labels: Vec<u32> = (0..g.node_count()).map(|v| (v % k) as u32).collect();
        let capacity = g.total_weight() / k as f64;
        let state = CommunityState::from_labels(&g, &labels, k, eta, capacity);

        let v = (node_pick % g.node_count()) as NodeId;
        let p = labels[v as usize];
        let q = (dest_pick % k) as u32;
        prop_assume!(p != q);

        let mut scratch = MoveScratch::default();
        state.gather_links(&g, &labels, v, &mut scratch);
        let self_w = g.self_loop(v);
        let d_v = g.incident_weight(v);
        let w_vp = scratch.weight_to(p);
        let w_vq = scratch.weight_to(q);
        let predicted = state.move_gain(p, q, self_w, d_v, w_vp, w_vq);

        let mut labels2 = labels.clone();
        labels2[v as usize] = q;
        let state2 = CommunityState::from_labels(&g, &labels2, k, eta, capacity);
        let actual = state2.total_throughput() - state.total_throughput();
        prop_assert!((predicted - actual).abs() < 1e-9,
            "predicted {predicted} vs actual {actual}");
    }

    /// Capped throughput never exceeds the uncapped value and never exceeds
    /// capacity when σ is the binding constraint... (Λ ≤ Λ̂ and Λ ≤ λ·Λ̂/σ).
    #[test]
    fn capped_throughput_bounds(sigma in 0.0f64..100.0, hat in 0.0f64..100.0, cap in 0.1f64..100.0) {
        let t = capped_throughput(sigma, hat, cap);
        prop_assert!(t <= hat + 1e-12);
        prop_assert!(t >= 0.0);
        if sigma > cap {
            prop_assert!((t - cap / sigma * hat).abs() < 1e-12);
        }
    }

    /// Eq. 4 latency: ≥ 1, monotone, and equals (x+1)/2 at integers.
    #[test]
    fn latency_properties(x in 0.01f64..50.0) {
        let l = latency_of_normalized_load(x);
        prop_assert!(l >= 1.0 - 1e-12);
        prop_assert!(l <= latency_of_normalized_load(x + 0.5) + 1e-12);
        let xi = x.ceil();
        let li = latency_of_normalized_load(xi);
        if xi > 1.0 {
            let expected = (xi + 1.0) / 2.0;
            prop_assert!((li - expected).abs() < 1e-9, "ζ({xi}) = {li}, expected {expected}");
        }
    }

    /// A-TxAllo never unassigns anyone and extends coverage to new nodes.
    #[test]
    fn adaptive_update_covers_graph(
        pairs in transfers(60, 60),
        extra in transfers(80, 30),
        k in 2usize..6,
    ) {
        let mut g = graph_of(&pairs);
        let params = TxAlloParams::for_graph(&g, k);
        let prev = GTxAllo::new(params.clone()).allocate_graph(&g);
        let txs: Vec<Transaction> = extra
            .iter()
            .map(|&(a, b)| Transaction::transfer(AccountId(a), AccountId(b)))
            .collect();
        let block = Block::new(0, txs);
        let touched = g.ingest_block(&block);
        let out = AtxAllo::new(TxAlloParams::for_graph(&g, k)).update(&g, &prev, &touched);
        prop_assert_eq!(out.allocation.len(), g.node_count());
        prop_assert!(out.allocation.labels().iter().all(|&l| (l as usize) < k));
    }

    /// Graph ingestion: total weight always equals the transaction count.
    #[test]
    fn unit_weight_per_transaction(pairs in transfers(50, 80)) {
        let g = graph_of(&pairs);
        prop_assert!((g.total_weight() - pairs.len() as f64).abs() < 1e-6);
    }
}
