//! Optimality properties of G-TxAllo on small instances.
//!
//! Two checks that pin down what Algorithm 1 guarantees:
//! 1. **Local optimality over C_v** (exact): in the final allocation, no
//!    move of an account into a community it *touches* (Eq. 9's candidate
//!    set) increases throughput. Moves into untouched communities can
//!    still gain through the capacity term alone — that is precisely what
//!    the Eq. 9 restriction trades away (measured by the full-scan
//!    ablation), so they are excluded here too.
//! 2. **Near-global optimality** (empirical): on instances small enough to
//!    brute-force, the local optimum reaches a large fraction of the best
//!    achievable throughput, and the full-scan variant only improves it.

use txallo::core::state::{CommunityState, MoveScratch};
use txallo::core::GTxAllo;
use txallo::prelude::*;

fn tiny_graph(seed: u64) -> TxGraph {
    // Deterministic pseudo-random small graph: 8 accounts, 20 transfers.
    let mut g = TxGraph::new();
    let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    let mut next = || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for _ in 0..20 {
        let a = next() % 8;
        let b = next() % 8;
        g.ingest_transaction(&Transaction::transfer(AccountId(a), AccountId(b)));
    }
    g
}

/// Exhaustive best throughput over all `k^n` labelings.
fn brute_force_best(graph: &TxGraph, k: usize, params: &TxAlloParams) -> f64 {
    let n = graph.node_count();
    assert!(
        k.pow(n as u32) <= 1 << 20,
        "instance too large to brute-force"
    );
    let mut best = f64::MIN;
    let mut labels = vec![0u32; n];
    let total = k.pow(n as u32);
    for code in 0..total {
        let mut c = code;
        for l in labels.iter_mut() {
            *l = (c % k) as u32;
            c /= k;
        }
        let alloc = Allocation::new(labels.clone(), k);
        let r = MetricsReport::compute(graph, &alloc, params);
        if r.throughput > best {
            best = r.throughput;
        }
    }
    best
}

#[test]
fn gtxallo_result_is_locally_optimal() {
    for seed in [1u64, 2, 3, 4, 5] {
        let g = tiny_graph(seed);
        let k = 3;
        let params = TxAlloParams::for_graph(&g, k);
        let alloc = GTxAllo::new(params.clone()).allocate_graph(&g);
        let labels = alloc.labels().to_vec();
        let state = CommunityState::from_labels(&g, &labels, k, params.eta, params.capacity);
        let mut scratch = MoveScratch::default();
        for v in 0..g.node_count() as NodeId {
            let p = labels[v as usize];
            state.gather_links(&g, &labels, v, &mut scratch);
            let self_w = g.self_loop(v);
            let d_v = g.incident_weight(v);
            let w_vp = scratch.weight_to(p);
            for (q, w_vq) in scratch.candidates() {
                if q == p {
                    continue;
                }
                let gain = state.move_gain(p, q, self_w, d_v, w_vp, w_vq);
                assert!(
                    gain <= params.epsilon + 1e-9,
                    "seed {seed}: moving node {v} from {p} to {q} still gains {gain}"
                );
            }
        }
    }
}

#[test]
fn gtxallo_reaches_near_global_optimum_on_tiny_instances() {
    let mut total_ratio = 0.0;
    let cases = [1u64, 2, 3, 4, 5, 6];
    for &seed in &cases {
        let g = tiny_graph(seed);
        let k = 2;
        let params = TxAlloParams::for_graph(&g, k);
        let alloc = GTxAllo::new(params.clone()).allocate_graph(&g);
        let achieved = MetricsReport::compute(&g, &alloc, &params).throughput;
        let full = txallo::core::gtxallo_full_scan(&params, &g);
        let full_achieved = MetricsReport::compute(&g, &full, &params).throughput;
        let best = brute_force_best(&g, k, &params);
        let ratio = achieved / best;
        assert!(
            ratio >= 0.8,
            "seed {seed}: achieved {achieved} vs optimal {best} (ratio {ratio:.3})"
        );
        assert!(
            full_achieved >= achieved - 1e-9,
            "full scan must not be worse: {full_achieved} vs {achieved}"
        );
        total_ratio += ratio;
    }
    let avg = total_ratio / cases.len() as f64;
    assert!(avg >= 0.9, "average optimality ratio {avg:.3} too low");
}
