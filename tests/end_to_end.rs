//! Cross-crate integration tests: the full pipeline from workload
//! generation through allocation to metrics, exercising every allocator.

use txallo::core::{GTxAllo, SchedulerConfig, ShardScheduler};
use txallo::prelude::*;

fn small_dataset(seed: u64) -> Dataset {
    let config = WorkloadConfig {
        accounts: 3_000,
        transactions: 30_000,
        block_size: 100,
        groups: 50,
        ..WorkloadConfig::default()
    };
    Dataset::from_ledger(EthereumLikeGenerator::new(config, seed).default_ledger())
}

/// Runs one allocator and returns its report.
fn evaluate(alloc: &mut dyn Allocator, dataset: &Dataset, k: usize, eta: f64) -> MetricsReport {
    let params = TxAlloParams::for_graph(dataset.graph(), k).with_eta(eta);
    let allocation = alloc.allocate(dataset);
    assert_eq!(
        allocation.len(),
        dataset.graph().node_count(),
        "{} must label all",
        alloc.name()
    );
    assert!(
        allocation.labels().iter().all(|&l| (l as usize) < k),
        "{} produced out-of-range labels",
        alloc.name()
    );
    MetricsReport::compute(dataset.graph(), &allocation, &params)
}

#[test]
fn full_pipeline_all_allocators() {
    let dataset = small_dataset(1);
    let k = 8;
    let params = TxAlloParams::for_graph(dataset.graph(), k);
    let registry = AllocatorRegistry::builtin();

    let mut gtx = registry.batch("txallo", &params).unwrap();
    let mut hash = registry.batch("hash", &params).unwrap();
    let mut metis = registry.batch("metis", &params).unwrap();
    let mut sched = registry.batch("scheduler", &params).unwrap();

    let r_tx = evaluate(gtx.as_mut(), &dataset, k, 2.0);
    let r_hash = evaluate(hash.as_mut(), &dataset, k, 2.0);
    let r_metis = evaluate(metis.as_mut(), &dataset, k, 2.0);
    let r_sched = evaluate(sched.as_mut(), &dataset, k, 2.0);

    // The paper's headline ordering (§VI-B7).
    assert!(
        r_tx.cross_shard_ratio < r_metis.cross_shard_ratio,
        "TxAllo must beat METIS on γ"
    );
    assert!(
        r_metis.cross_shard_ratio < r_hash.cross_shard_ratio,
        "METIS must beat hash on γ"
    );
    assert!(
        r_tx.cross_shard_ratio < r_sched.cross_shard_ratio,
        "TxAllo must beat Scheduler on γ"
    );
    assert!(
        r_tx.throughput >= r_hash.throughput,
        "TxAllo throughput {} must be at least hash {}",
        r_tx.throughput,
        r_hash.throughput
    );
    assert!(
        r_tx.avg_latency <= r_hash.avg_latency,
        "TxAllo must confirm faster than hash"
    );
}

#[test]
fn gamma_improves_with_structure() {
    // More intra-group preference → lower achievable γ.
    let mk = |intra: f64| {
        let config = WorkloadConfig {
            accounts: 2_000,
            transactions: 20_000,
            block_size: 100,
            groups: 40,
            intra_group_prob: intra,
            ..WorkloadConfig::default()
        };
        let ds = Dataset::from_ledger(EthereumLikeGenerator::new(config, 3).default_ledger());
        let params = TxAlloParams::for_graph(ds.graph(), 8);
        let alloc = GTxAllo::new(params.clone()).allocate_graph(ds.graph());
        MetricsReport::compute(ds.graph(), &alloc, &params).cross_shard_ratio
    };
    let strong = mk(0.95);
    let weak = mk(0.4);
    assert!(
        strong < weak,
        "structured traffic must allocate better: γ(0.95) = {strong} vs γ(0.4) = {weak}"
    );
}

#[test]
fn deterministic_end_to_end() {
    // Same seed → byte-identical allocations across the whole pipeline.
    let d1 = small_dataset(9);
    let d2 = small_dataset(9);
    let k = 6;
    let p1 = TxAlloParams::for_graph(d1.graph(), k);
    let p2 = TxAlloParams::for_graph(d2.graph(), k);
    let a1 = GTxAllo::new(p1).allocate_graph(d1.graph());
    let a2 = GTxAllo::new(p2).allocate_graph(d2.graph());
    assert_eq!(a1.labels(), a2.labels());
}

#[test]
fn adaptive_tracks_global_quality() {
    // After several adaptive epochs, A-TxAllo's γ must stay within a
    // reasonable band of a fresh global run (Fig. 9's "acceptable loss").
    let config = WorkloadConfig {
        accounts: 2_000,
        transactions: 60_000,
        block_size: 100,
        groups: 40,
        ..WorkloadConfig::default()
    };
    let mut generator = EthereumLikeGenerator::new(config, 5);
    let warm = generator.blocks(300);
    let mut sim = ShardedChainSim::new(SimConfig {
        shards: 6,
        eta: 2.0,
        epoch_blocks: 50,
        method: "txallo".into(),
        schedule: HybridSchedule::AlwaysAdaptive,
        decay_per_epoch: None,
        ..SimConfig::new(6)
    });
    sim.warmup(&warm);
    let stream = generator.blocks(300);
    let reports = sim.run_stream(&stream);
    let adaptive_gamma = reports.last().unwrap().metrics.cross_shard_ratio;

    // Fresh global allocation on the same accumulated graph.
    let params = TxAlloParams::for_graph(sim.graph(), 6);
    let global = GTxAllo::new(params.clone()).allocate_graph(sim.graph());
    let last_epoch_blocks = &stream[250..];
    let global_metrics =
        txallo::sim::epoch_metrics(last_epoch_blocks, sim.graph(), &global, 6, 2.0);

    assert!(
        adaptive_gamma <= global_metrics.cross_shard_ratio + 0.15,
        "adaptive γ {adaptive_gamma} drifted too far from global γ {}",
        global_metrics.cross_shard_ratio
    );
}

#[test]
fn scheduler_balances_better_than_gtxallo_under_hot_account() {
    // The paper's Fig. 3/4: the transaction-level baseline wins on balance.
    let config = WorkloadConfig {
        accounts: 3_000,
        transactions: 30_000,
        block_size: 100,
        groups: 50,
        hot_account_share: 0.2, // exaggerate the hot spot
        ..WorkloadConfig::default()
    };
    let dataset = Dataset::from_ledger(EthereumLikeGenerator::new(config, 17).default_ledger());
    let k = 10;
    let total = dataset.graph().total_weight();
    let mut sched = ShardScheduler::new(SchedulerConfig::new(k, total));
    let mut gtx = GTxAllo::new(TxAlloParams::for_graph(dataset.graph(), k));
    let r_sched = evaluate(&mut sched, &dataset, k, 2.0);
    let r_tx = evaluate(&mut gtx, &dataset, k, 2.0);
    assert!(
        r_sched.workload_std_normalized < r_tx.workload_std_normalized,
        "scheduler ρ {} must beat G-TxAllo ρ {}",
        r_sched.workload_std_normalized,
        r_tx.workload_std_normalized
    );
}

#[test]
fn eta_self_adjustment() {
    // §VI-B2: larger η makes G-TxAllo prioritize γ. The γ achieved with
    // η = 10 must be no worse than with η = 2 (allowing small noise).
    let dataset = small_dataset(23);
    let k = 8;
    let gamma = |eta: f64| {
        let params = TxAlloParams::for_graph(dataset.graph(), k).with_eta(eta);
        let alloc = GTxAllo::new(params.clone()).allocate_graph(dataset.graph());
        MetricsReport::compute(dataset.graph(), &alloc, &params).cross_shard_ratio
    };
    let g2 = gamma(2.0);
    let g10 = gamma(10.0);
    assert!(
        g10 <= g2 + 0.02,
        "γ(η=10) = {g10} should not exceed γ(η=2) = {g2}"
    );
}
