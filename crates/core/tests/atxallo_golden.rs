//! Golden equivalence tests for the A-TxAllo delta-CSR epoch pipeline.
//!
//! Three pins, mirroring the G-TxAllo golden suite in `golden.rs`:
//!
//! 1. **Route equivalence** — the incremental delta-CSR snapshot
//!    ([`DeltaCsr::snapshot_touched`]) and the full-graph
//!    canonical-renumbering fallback ([`DeltaCsr::snapshot_full`]) must
//!    produce **byte-identical** allocations across a proptest-generated
//!    multi-epoch delta stream. The threshold that picks between them is a
//!    pure performance knob.
//! 2. **Reference equivalence** — a from-scratch re-implementation of the
//!    epoch sweep with ordered-map (`BTreeMap`) gathering, no candidate
//!    caching, no stamp-based skipping, and every gain evaluated through
//!    the *raw Eq. 3/6/8 formulas* (recomputing `σ`/`Λ̂`/`Λ` from
//!    `intra`/`cut` per evaluation instead of reading the cached-scalar
//!    fast path) must match the production kernel byte-for-byte: the
//!    caching — including the gain-path σ/Λ̂/saturation-regime caches — is
//!    an optimization, not a semantic change.
//! 3. **Threshold boundary** — dispatch at exactly `|V̂|/|V| = threshold`
//!    takes the incremental route, just above it the full route, and both
//!    sides of the boundary agree on the allocation.

use std::collections::BTreeMap;

use proptest::prelude::*;
use txallo_core::state::{capped_throughput, UNASSIGNED};
use txallo_core::{
    Allocation, AtxAllo, AtxAlloSession, CommunityState, GTxAllo, TxAlloParams, UpdatePath,
    GAIN_EPS,
};
use txallo_graph::{DeltaCsr, NodeId, TxGraph, WeightedGraph};
use txallo_model::{AccountId, Block, Transaction};

fn build_graph(pairs: &[(u64, u64)]) -> TxGraph {
    let mut g = TxGraph::new();
    for &(a, b) in pairs {
        g.ingest_transaction(&Transaction::transfer(AccountId(a), AccountId(b)));
    }
    g
}

/// Every third entry becomes a 3-account transaction so edge weights
/// include non-dyadic rationals (1/3): plain transfers only ever produce
/// weight sums that are exact in binary, which would let summation-order
/// bugs (e.g. a wrong incident-weight fold between the two snapshot
/// routes) slip through the byte-identity assertions undetected.
fn block_of(height: u64, pairs: &[(u64, u64)]) -> Block {
    Block::new(
        height,
        pairs
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| {
                if i % 3 == 2 {
                    Transaction::new(vec![AccountId(a)], vec![AccountId(b), AccountId(a + b + 1)])
                        .expect("non-empty account sets")
                } else {
                    Transaction::transfer(AccountId(a), AccountId(b))
                }
            })
            .collect(),
    )
}

/// Ordered-map gather over a snapshot row (ascending community order by
/// construction, per-community accumulation in row order — the same
/// summation order as the production `DenseAccumulator`).
fn gather_reference(snap: &DeltaCsr, local: usize, labels: &[u32], link: &mut BTreeMap<u32, f64>) {
    link.clear();
    let (targets, weights) = snap.row(local);
    for (&u, &w) in targets.iter().zip(weights) {
        let cu = labels[u as usize];
        if cu != UNASSIGNED {
            *link.entry(cu).or_insert(0.0) += w;
        }
    }
}

/// Raw-formula `σ_c`, `Λ̂_c`, `Λ_c` recomputed from `intra`/`cut` per call
/// — the pre-cache expressions the production fast path must match
/// bit-for-bit (see `golden.rs` for the G-TxAllo twin of these helpers).
fn raw_scalars(state: &CommunityState, c: u32) -> (f64, f64, f64) {
    let sigma = state.intra(c) + state.eta() * state.cut(c);
    let hat = state.intra(c) + state.cut(c) / 2.0;
    let thr = capped_throughput(sigma, hat, state.capacity());
    (sigma, hat, thr)
}

/// Eq. 6 through the raw formulas (no cached scalar reads).
fn raw_join_gain(state: &CommunityState, q: u32, self_w: f64, d_v: f64, w_vq: f64) -> f64 {
    let eta = state.eta();
    let (sigma, hat, thr) = raw_scalars(state, q);
    let sigma_new = sigma + self_w + eta * (d_v - self_w - w_vq) + (1.0 - eta) * w_vq;
    let hat_new = hat + self_w + (d_v - self_w) / 2.0;
    capped_throughput(sigma_new, hat_new, state.capacity()) - thr
}

/// The leaving half of Eq. 8 through the raw formulas.
fn raw_leave_gain(state: &CommunityState, p: u32, self_w: f64, d_v: f64, w_vp: f64) -> f64 {
    let eta = state.eta();
    let (sigma, hat, thr) = raw_scalars(state, p);
    let sigma_new = sigma - self_w - eta * (d_v - self_w - w_vp) + (eta - 1.0) * w_vp;
    let hat_new = hat - self_w - (d_v - self_w) / 2.0;
    capped_throughput(sigma_new, hat_new, state.capacity()) - thr
}

/// The phase-1 candidate rule: ties within `GAIN_EPS` of the running
/// maximum gain break toward the least-loaded community.
fn consider_join(
    state: &CommunityState,
    q: u32,
    self_w: f64,
    d_v: f64,
    w_vq: f64,
    best: &mut Option<(u32, f64, f64)>,
    max_gain: &mut f64,
) {
    let gain = raw_join_gain(state, q, self_w, d_v, w_vq);
    let sigma = raw_scalars(state, q).0;
    if gain > *max_gain {
        *max_gain = gain;
    }
    let better = match *best {
        None => true,
        Some((_, bg, bs)) => {
            bg < *max_gain - GAIN_EPS || (gain >= *max_gain - GAIN_EPS && sigma < bs)
        }
    };
    if better {
        *best = Some((q, gain, sigma));
    }
}

/// Reference re-implementation of the A-TxAllo epoch update: same snapshot
/// rows, same gain formulas and tie contract, but ordered-map gathering
/// and a full re-gather of every node in every sweep (no candidate cache,
/// no stamp skipping).
fn reference_update(
    params: &TxAlloParams,
    graph: &TxGraph,
    previous: &Allocation,
    touched: &[NodeId],
) -> Allocation {
    let n = graph.node_count();
    let k = params.shards;
    let mut labels: Vec<u32> = previous.labels().to_vec();
    labels.resize(n, UNASSIGNED);
    let mut state = CommunityState::from_labels(graph, &labels, k, params.eta, params.capacity);
    let snap = DeltaCsr::snapshot_touched(graph, touched);
    let mut link: BTreeMap<u32, f64> = BTreeMap::new();

    // Phase 1: place brand-new nodes.
    for i in 0..snap.len() {
        let g = snap.global_id(i) as usize;
        if labels[g] != UNASSIGNED {
            continue;
        }
        gather_reference(&snap, i, &labels, &mut link);
        let self_w = snap.self_loop(i);
        let d_v = snap.incident_weight(i);
        let mut best: Option<(u32, f64, f64)> = None;
        let mut max_gain = f64::NEG_INFINITY;
        if link.is_empty() {
            for q in 0..k as u32 {
                consider_join(&state, q, self_w, d_v, 0.0, &mut best, &mut max_gain);
            }
        } else {
            for (&q, &w_vq) in &link {
                consider_join(&state, q, self_w, d_v, w_vq, &mut best, &mut max_gain);
            }
        }
        let q = best.expect("k >= 1").0;
        let w_vq = link.get(&q).copied().unwrap_or(0.0);
        state.apply_join(q, self_w, d_v, w_vq);
        labels[g] = q;
    }

    // Phase 2: optimize over the touched set, re-gathering every visit.
    let mut sweeps = 0usize;
    loop {
        let mut delta = 0.0;
        for i in 0..snap.len() {
            let g = snap.global_id(i) as usize;
            let p = labels[g];
            gather_reference(&snap, i, &labels, &mut link);
            if link.is_empty() || (link.len() == 1 && link.contains_key(&p)) {
                continue;
            }
            let self_w = snap.self_loop(i);
            let d_v = snap.incident_weight(i);
            let w_vp = link.get(&p).copied().unwrap_or(0.0);
            let leave = raw_leave_gain(&state, p, self_w, d_v, w_vp);
            let mut best: Option<(u32, f64, f64)> = None;
            for (&q, &w_vq) in &link {
                if q == p {
                    continue;
                }
                let gain = leave + raw_join_gain(&state, q, self_w, d_v, w_vq);
                match best {
                    Some((_, bg, _)) if gain <= bg + GAIN_EPS => {}
                    _ => best = Some((q, gain, w_vq)),
                }
            }
            if let Some((q, gain, w_vq)) = best {
                if gain > 0.0 {
                    state.apply_leave(p, self_w, d_v, w_vp);
                    state.apply_join(q, self_w, d_v, w_vq);
                    labels[g] = q;
                    delta += gain;
                }
            }
        }
        sweeps += 1;
        if delta < params.epsilon || sweeps >= params.max_sweeps {
            break;
        }
    }

    Allocation::new(labels, k)
}

/// A generated case: base transfers, epoch blocks of transfers, shard `k`.
type DeltaStream = (Vec<(u64, u64)>, Vec<Vec<(u64, u64)>>, usize);

/// Strategy: a base transaction batch plus 1–3 epoch blocks whose account
/// range is wider than the base's, so every epoch mixes existing accounts
/// with brand-new ones (phase 1 + phase 2 both exercised).
fn stream_strategy() -> impl Strategy<Value = DeltaStream> {
    (
        prop::collection::vec((0u64..30, 0u64..30), 10..80),
        prop::collection::vec(prop::collection::vec((0u64..45, 0u64..45), 1..25), 1..4),
        1usize..5,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Incremental and full snapshot routes are byte-identical across a
    /// whole delta stream, with each epoch's allocation feeding the next.
    #[test]
    fn incremental_equals_full_across_stream(stream in stream_strategy()) {
        let (base, epochs, k) = stream;
        let mut g = build_graph(&base);
        let params = TxAlloParams::for_graph(&g, k);
        let mut prev = GTxAllo::new(params).allocate_graph(&g);
        for (h, pairs) in epochs.iter().enumerate() {
            let touched = g.ingest_block(&block_of(h as u64, pairs));
            let params = TxAlloParams::for_graph(&g, k);
            let atx = AtxAllo::new(params);
            let inc = atx.update_incremental(&g, &prev, &touched);
            let full = atx.update_full(&g, &prev, &touched);
            prop_assert_eq!(
                inc.allocation.labels(),
                full.allocation.labels(),
                "routes diverged at epoch {}",
                h
            );
            prop_assert_eq!(
                (inc.new_nodes, inc.sweeps, inc.moves),
                (full.new_nodes, full.sweeps, full.moves)
            );
            // The dispatching entry point picks one of the two.
            let dispatched = atx.update(&g, &prev, &touched);
            prop_assert_eq!(dispatched.allocation.labels(), inc.allocation.labels());
            prev = inc.allocation;
        }
    }

    /// Decay folding: a warm session whose aggregates are *rescaled* on a
    /// decay epoch ([`AtxAlloSession::apply_decay`]) produces the same
    /// allocations as a session rebuilt from scratch on the decayed graph
    /// (what the simulation driver used to do), across a whole multi-epoch
    /// stream with decay every epoch. The aggregates are linear in the
    /// edge weights, so folding is exact up to float rounding; the
    /// consistency bound pins that drift to the same class the delta
    /// folding already accepts.
    #[test]
    fn decay_fold_matches_session_rebuild(stream in stream_strategy()) {
        let (base, epochs, k) = stream;
        let mut g = build_graph(&base);
        let params = TxAlloParams::for_graph(&g, k);
        let prev = GTxAllo::new(params.clone()).allocate_graph(&g);
        let mut folded = AtxAlloSession::new(&g, &prev, &params);
        let mut rebuild_prev = prev;
        for (h, pairs) in epochs.iter().enumerate() {
            g.apply_decay(0.7);
            folded.apply_decay(0.7);
            let block = block_of(h as u64, pairs);
            let touched = g.ingest_block(&block);
            folded.apply_block(&g, &block);
            let params = TxAlloParams::for_graph(&g, k);
            let from_folded = folded.update(&g, &touched, &params);
            // The rebuild path: fresh aggregates from the decayed graph.
            let mut rebuilt = AtxAlloSession::new(&g, &rebuild_prev, &params);
            let from_rebuilt = rebuilt.update(&g, &touched, &params);
            prop_assert_eq!(
                from_folded.allocation.labels(),
                from_rebuilt.allocation.labels(),
                "folded decay diverged from rebuild at epoch {}",
                h
            );
            prop_assert!(
                folded.consistency_error(&g) < 1e-9,
                "aggregates drifted beyond the incremental contract at epoch {}",
                h
            );
            rebuild_prev = from_rebuilt.allocation;
        }
    }

    /// The production kernel (dense scratch + candidate cache + stamp
    /// skipping) matches the cache-free ordered-map reference
    /// byte-for-byte.
    #[test]
    fn kernel_matches_reference(stream in stream_strategy()) {
        let (base, epochs, k) = stream;
        let mut g = build_graph(&base);
        let params = TxAlloParams::for_graph(&g, k);
        let mut prev = GTxAllo::new(params).allocate_graph(&g);
        for (h, pairs) in epochs.iter().enumerate() {
            let touched = g.ingest_block(&block_of(h as u64, pairs));
            let params = TxAlloParams::for_graph(&g, k);
            let expected = reference_update(&params, &g, &prev, &touched);
            let got = AtxAllo::new(params).update_incremental(&g, &prev, &touched);
            prop_assert_eq!(
                got.allocation.labels(),
                expected.labels(),
                "kernel diverged from reference at epoch {}",
                h
            );
            prev = got.allocation;
        }
    }
}

/// Dispatch at the exact threshold boundary: `|V̂|/|V| == threshold` is
/// still incremental, one node more tips to the full route, and the two
/// sides agree bit-for-bit.
#[test]
fn threshold_boundary_is_inclusive_and_consistent() {
    // 8 base accounts in two 4-cliques.
    let mut pairs = Vec::new();
    for base in [0u64, 4] {
        for i in 0..4 {
            for j in (i + 1)..4 {
                pairs.push((base + i, base + j));
            }
        }
    }
    let mut g = build_graph(&pairs);
    let params = TxAlloParams::for_graph(&g, 2);
    let prev = GTxAllo::new(params.clone()).allocate_graph(&g);
    // One epoch touching 2 of the (then) 8 nodes... plus 0 new accounts.
    let touched = g.ingest_block(&block_of(0, &[(0, 1)]));
    assert_eq!(touched.len(), 2);
    let n = g.node_count();
    assert_eq!(n, 8);

    let exact = touched.len() as f64 / n as f64; // 0.25, exactly representable
    let at =
        AtxAllo::new(params.clone().with_incremental_threshold(exact)).update(&g, &prev, &touched);
    assert_eq!(at.path, UpdatePath::Incremental, "boundary is inclusive");

    let below = AtxAllo::new(params.clone().with_incremental_threshold(exact / 2.0))
        .update(&g, &prev, &touched);
    assert_eq!(below.path, UpdatePath::Full);

    assert_eq!(
        at.allocation, below.allocation,
        "boundary must not change results"
    );
}

/// The decay fold held to a *long* stream: ≥100 folds (with small blocks
/// sprinkled in so the labels keep evolving) against rebuild-from-scratch
/// every epoch. Repeated small factors shrink the aggregates by ~e⁻¹⁰⁰
/// here; the fold must neither drift below zero nor diverge from the
/// rebuild path's allocations.
#[test]
fn long_decay_stream_matches_rebuild() {
    let mut pairs = Vec::new();
    for base in [0u64, 8, 16] {
        for i in 0..6 {
            for j in (i + 1)..6 {
                pairs.push((base + i, base + j));
            }
        }
    }
    let mut g = build_graph(&pairs);
    let params = TxAlloParams::for_graph(&g, 3);
    let prev = GTxAllo::new(params.clone()).allocate_graph(&g);
    let mut folded = AtxAlloSession::new(&g, &prev, &params);
    let mut rebuild_prev = prev;
    for epoch in 0..120u64 {
        g.apply_decay(0.9);
        folded.apply_decay(0.9);
        // A drifting trickle of activity (some epochs add brand-new
        // accounts, all re-weight existing edges).
        let a = epoch % 24;
        let block = block_of(epoch, &[(a, (a + 7) % 24), (a, 300 + epoch / 10)]);
        let touched = g.ingest_block(&block);
        folded.apply_block(&g, &block);
        let params = TxAlloParams::for_graph(&g, 3);
        let from_folded = folded.update(&g, &touched, &params);
        let mut rebuilt = AtxAlloSession::new(&g, &rebuild_prev, &params);
        let from_rebuilt = rebuilt.update(&g, &touched, &params);
        assert_eq!(
            from_folded.allocation.labels(),
            from_rebuilt.allocation.labels(),
            "fold diverged from rebuild at epoch {epoch}"
        );
        // The rebuild recomputes non-negative aggregates from the graph;
        // the fold must stay consistent with it (and hence non-negative up
        // to the usual incremental drift) after a hundred-plus rescales.
        let err = folded.consistency_error(&g);
        assert!(err < 1e-9, "epoch {epoch}: aggregates drifted by {err}");
        rebuild_prev = from_rebuilt.allocation;
    }
}

/// Touched fraction exactly at `incremental_threshold` while `V̂` contains
/// an isolated (degree-0, self-loop-only) brand-new account: the boundary
/// stays inclusive, the isolated row places identically on both routes.
#[test]
fn threshold_boundary_with_isolated_new_account() {
    let mut pairs = Vec::new();
    for base in [0u64, 4, 8] {
        for i in 0..4 {
            for j in (i + 1)..4 {
                pairs.push((base + i, base + j));
            }
        }
    }
    let mut g = build_graph(&pairs); // 12 accounts
    let params = TxAlloParams::for_graph(&g, 3);
    let prev = GTxAllo::new(params.clone()).allocate_graph(&g);
    // Warm the allocation over a padding epoch first so the boundary
    // epoch's fraction is computed against a settled 16-account graph.
    let pad = Block::new(
        0,
        vec![
            Transaction::transfer(AccountId(100), AccountId(101)),
            Transaction::transfer(AccountId(102), AccountId(103)),
        ],
    );
    let prev = {
        let t = g.ingest_block(&pad);
        AtxAllo::new(params.clone())
            .update(&g, &prev, &t)
            .allocation
    };
    let epoch = Block::new(
        1,
        vec![
            Transaction::transfer(AccountId(0), AccountId(1)),
            Transaction::transfer(AccountId(4), AccountId(5)),
            Transaction::transfer(AccountId(777), AccountId(777)), // isolated
        ],
    );
    let touched = g.ingest_block(&epoch);
    assert_eq!(touched.len(), 5);
    use txallo_graph::WeightedGraph as _;
    let n777 = g.node_of(AccountId(777)).unwrap();
    assert_eq!(g.neighbor_count(n777), 0, "fixture: isolated newcomer");
    // The same expression the dispatcher evaluates, so `threshold == frac`
    // exercises the exact inclusive boundary whatever the rounding.
    let frac = touched.len() as f64 / g.node_count() as f64;
    assert_eq!(g.node_count(), 17);

    let at =
        AtxAllo::new(params.clone().with_incremental_threshold(frac)).update(&g, &prev, &touched);
    assert_eq!(at.path, UpdatePath::Incremental, "boundary is inclusive");
    let below = AtxAllo::new(params.clone().with_incremental_threshold(frac / 2.0))
        .update(&g, &prev, &touched);
    assert_eq!(below.path, UpdatePath::Full);
    assert_eq!(at.allocation, below.allocation, "routes agree at boundary");
    assert_eq!(at.new_nodes, 1, "the isolated account is placed");
    assert!(at.allocation.shard_of(n777).index() < 3);
}

/// An epoch whose block only touches brand-new accounts: phase 1 places
/// them identically on both routes, nothing else moves.
#[test]
fn all_new_accounts_epoch() {
    let mut g = build_graph(&[(0, 1), (1, 2), (0, 2)]);
    let params = TxAlloParams::for_graph(&g, 2);
    let prev = GTxAllo::new(params.clone()).allocate_graph(&g);
    let touched = g.ingest_block(&block_of(0, &[(100, 101), (101, 102)]));
    let atx = AtxAllo::new(params);
    let inc = atx.update_incremental(&g, &prev, &touched);
    let full = atx.update_full(&g, &prev, &touched);
    assert_eq!(inc.allocation, full.allocation);
    assert_eq!(inc.new_nodes, 3);
    for v in 0..prev.len() as NodeId {
        assert_eq!(inc.allocation.shard_of(v), prev.shard_of(v));
    }
}
