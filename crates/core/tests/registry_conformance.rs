//! Registry conformance suite: every registered allocator — whatever is
//! in the registry, including future additions — must satisfy the
//! contracts of both entry points of the two-level allocation API.
//!
//! For each name:
//! 1. batch and streaming entry points produce in-range labels covering
//!    every node;
//! 2. both are deterministic across two runs;
//! 3. the empty graph is handled (begin + an empty epoch);
//! 4. streaming diffs are lossless: the `begin` allocation plus every
//!    emitted [`AllocationUpdate`] applied incrementally reconstructs the
//!    stream's label vector exactly, epoch by epoch.

use txallo_core::{
    Allocation, AllocatorRegistry, Dataset, EpochKind, HybridSchedule, TxAlloParams,
};
use txallo_graph::{TxGraph, WeightedGraph};
use txallo_model::{AccountId, Block, Ledger, Transaction};

const K: usize = 4;

/// Deterministic pseudo-random transfer blocks: clustered traffic over a
/// bounded universe plus a trickle of brand-new accounts, so streams see
/// placements *and* migrations.
fn make_blocks(seed: u64, start_height: u64, count: u64, txs_per_block: u64) -> Vec<Block> {
    let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(11);
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    (0..count)
        .map(|i| {
            let txs: Vec<Transaction> = (0..txs_per_block)
                .map(|_| {
                    let r = next();
                    let cluster = (r % 6) * 10;
                    let a = cluster + (r >> 8) % 10;
                    let b = if r % 23 == 0 {
                        // New account territory, appearing over time.
                        1_000 + (r >> 16) % (10 + 4 * (start_height + i))
                    } else {
                        cluster + (r >> 16) % 10
                    };
                    Transaction::transfer(AccountId(a), AccountId(b))
                })
                .collect();
            Block::new(start_height + i, txs)
        })
        .collect()
}

fn warm_dataset() -> Dataset {
    Dataset::from_ledger(Ledger::from_blocks(make_blocks(7, 0, 10, 40)).expect("contiguous"))
}

fn assert_valid(allocation: &Allocation, graph: &TxGraph, context: &str) {
    assert_eq!(
        allocation.len(),
        graph.node_count(),
        "{context}: every node must be labelled"
    );
    assert!(
        allocation.labels().iter().all(|&l| (l as usize) < K),
        "{context}: labels must be in range"
    );
    assert_eq!(allocation.shard_count(), K, "{context}: k must round-trip");
}

/// One full streaming run: begin on the warm graph, then `epochs` epochs,
/// applying every diff to a mirror and checking it against the stream.
/// Returns the final label vector.
fn streaming_run(registry: &AllocatorRegistry, name: &str, epochs: u64) -> Vec<u32> {
    let mut graph = TxGraph::new();
    for b in make_blocks(7, 0, 10, 40) {
        graph.ingest_block(&b);
    }
    let params = TxAlloParams::for_graph(&graph, K);
    let mut stream = registry
        .streaming(name, &params, HybridSchedule::Hybrid { global_gap: 2 })
        .expect("registered");
    let mut mirror = stream.begin(&graph, &params);
    assert_valid(&mirror, &graph, &format!("{name}/begin"));

    for epoch in 0..epochs {
        for block in make_blocks(100 + epoch, 10 + epoch * 5, 5, 30) {
            graph.ingest_block(&block);
            stream.on_block(&graph, &block);
        }
        let update = stream.end_epoch(&graph, EpochKind::Scheduled);
        assert_eq!(update.shard_count, K, "{name}: update k");
        assert_eq!(
            update.len,
            graph.node_count(),
            "{name}: update must cover the grown graph"
        );
        mirror.apply_update(&update);
        let published = stream.allocation();
        assert_valid(&published, &graph, &format!("{name}/epoch {epoch}"));
        assert_eq!(
            mirror.labels(),
            published.labels(),
            "{name}: epoch {epoch}: applying the diffs must reconstruct the stream's labels"
        );
    }
    mirror.labels().to_vec()
}

#[test]
fn batch_entry_points_are_valid_and_deterministic() {
    let registry = AllocatorRegistry::builtin();
    let dataset = warm_dataset();
    let params = TxAlloParams::for_graph(dataset.graph(), K);
    for name in registry.names() {
        let first = registry
            .batch(&name, &params)
            .expect("registered")
            .allocate(&dataset);
        assert_valid(&first, dataset.graph(), &format!("{name}/batch"));
        let second = registry
            .batch(&name, &params)
            .expect("registered")
            .allocate(&dataset);
        assert_eq!(first, second, "{name}: batch must be deterministic");
    }
}

#[test]
fn streaming_entry_points_are_valid_deterministic_and_diff_lossless() {
    let registry = AllocatorRegistry::builtin();
    for name in registry.names() {
        let first = streaming_run(&registry, &name, 4);
        let second = streaming_run(&registry, &name, 4);
        assert_eq!(first, second, "{name}: streaming must be deterministic");
    }
}

#[test]
fn empty_graph_is_handled_by_both_entry_points() {
    let registry = AllocatorRegistry::builtin();
    let empty_dataset = Dataset::from_ledger(Ledger::from_blocks(Vec::new()).expect("empty ok"));
    let empty_graph = TxGraph::new();
    let params = TxAlloParams::for_total_weight(0.0, K);
    for name in registry.names() {
        let batch = registry
            .batch(&name, &params)
            .expect("registered")
            .allocate(&empty_dataset);
        assert!(batch.is_empty(), "{name}: empty dataset → empty allocation");

        let mut stream = registry
            .streaming(&name, &params, HybridSchedule::AlwaysAdaptive)
            .expect("registered");
        let mut mirror = stream.begin(&empty_graph, &params);
        assert!(mirror.is_empty(), "{name}: empty begin");
        let update = stream.end_epoch(&empty_graph, EpochKind::Scheduled);
        assert!(update.moves.is_empty(), "{name}: empty epoch has no moves");
        mirror.apply_update(&update);
        assert!(mirror.is_empty(), "{name}: still empty after empty epoch");
    }
}
