//! Thread-count invariance suite for the multi-core sweep engine.
//!
//! The determinism contract's "Parallel reduction" rule (ARCHITECTURE.md)
//! says a thread count is a *performance* knob: partition by canonical
//! row ranges, merge by position, never let a float fold cross a chunk
//! boundary — so the allocation trajectory is bit-identical at every
//! count. This suite pins that promise the same way
//! `chunked_fill_matches_serial_fill` pins the chunked CSR build:
//! proptest-generated multi-epoch delta streams are replayed at 1, 2, 3
//! and 8 threads, and *everything observable* must come out
//! byte-for-byte equal to the serial run — labels, per-epoch counters,
//! accumulated gains (compared as raw bits), and the full
//! [`AllocationUpdate`] diffs of the streaming surface.

use proptest::prelude::*;
use txallo_core::{
    AdaptiveStream, Allocation, AtxAllo, EpochKind, GTxAllo, StreamingAllocator, TxAlloParams,
};
use txallo_graph::TxGraph;
use txallo_model::{AccountId, Block, Transaction};

/// Thread counts under test: serial, even, odd, oversubscribed.
const THREADS: [usize; 4] = [1, 2, 3, 8];

fn build_graph(pairs: &[(u64, u64)]) -> TxGraph {
    let mut g = TxGraph::new();
    for &(a, b) in pairs {
        g.ingest_transaction(&Transaction::transfer(AccountId(a), AccountId(b)));
    }
    g
}

/// Every third entry becomes a 3-account transaction so edge weights
/// include non-dyadic rationals (1/3) — summation-order bugs between the
/// serial and chunked gathers cannot hide behind exactly-representable
/// sums.
fn block_of(height: u64, pairs: &[(u64, u64)]) -> Block {
    Block::new(
        height,
        pairs
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| {
                if i % 3 == 2 {
                    Transaction::new(vec![AccountId(a)], vec![AccountId(b), AccountId(a + b + 1)])
                        .expect("non-empty account sets")
                } else {
                    Transaction::transfer(AccountId(a), AccountId(b))
                }
            })
            .collect(),
    )
}

/// A generated case: base transfers, epoch blocks of transfers, shard `k`.
type DeltaStream = (Vec<(u64, u64)>, Vec<Vec<(u64, u64)>>, usize);

/// Strategy: a base batch plus 1–3 epoch blocks over a wider account
/// range, so every epoch mixes existing accounts with brand-new ones
/// (phase 1 and phase 2 of the epoch sweep both run).
fn stream_strategy() -> impl Strategy<Value = DeltaStream> {
    (
        prop::collection::vec((0u64..30, 0u64..30), 10..80),
        prop::collection::vec(prop::collection::vec((0u64..45, 0u64..45), 1..25), 1..4),
        1usize..5,
    )
}

/// Everything one epoch update exposes, with floats as raw bits.
#[derive(Debug, Clone, PartialEq, Eq)]
struct EpochTrace {
    labels: Vec<u32>,
    new_nodes: usize,
    sweeps: usize,
    moves: usize,
    total_gain_bits: u64,
}

/// Replays the whole delta stream at `threads` workers, recording every
/// epoch of both snapshot routes plus the dispatching entry point.
fn replay(stream: &DeltaStream, threads: usize) -> Vec<(EpochTrace, EpochTrace)> {
    let (base, epochs, k) = stream;
    let mut g = build_graph(base);
    let params = TxAlloParams::for_graph(&g, *k).with_threads(threads);
    let mut prev = GTxAllo::new(params).allocate_graph(&g);
    let mut out = Vec::new();
    for (h, pairs) in epochs.iter().enumerate() {
        let touched = g.ingest_block(&block_of(h as u64, pairs));
        let params = TxAlloParams::for_graph(&g, *k).with_threads(threads);
        let atx = AtxAllo::new(params);
        let inc = atx.update_incremental(&g, &prev, &touched);
        let full = atx.update_full(&g, &prev, &touched);
        let trace_of = |o: &txallo_core::AtxAlloOutcome| EpochTrace {
            labels: o.allocation.labels().to_vec(),
            new_nodes: o.new_nodes,
            sweeps: o.sweeps,
            moves: o.moves,
            total_gain_bits: o.total_gain.to_bits(),
        };
        out.push((trace_of(&inc), trace_of(&full)));
        prev = inc.allocation;
    }
    out
}

/// Replays the streaming surface ([`AdaptiveStream`]) at `threads`
/// workers: begin on the base graph, feed each epoch's block, close with
/// the scheduled kind — recording the rendered [`AllocationUpdate`] (its
/// `Debug` form covers kind, path, carry and every account move) and the
/// full mapping after each epoch.
fn replay_stream(stream: &DeltaStream, threads: usize) -> Vec<(String, Allocation)> {
    let (base, epochs, k) = stream;
    let mut g = build_graph(base);
    let params = TxAlloParams::for_graph(&g, *k).with_threads(threads);
    let mut alloc = AdaptiveStream::new(params.clone());
    let _ = alloc.begin(&g, &params);
    let mut out = Vec::new();
    for (h, pairs) in epochs.iter().enumerate() {
        let block = block_of(h as u64, pairs);
        g.ingest_block(&block);
        alloc.on_block(&g, &block);
        // Alternate adaptive and forced-global closes so both the epoch
        // sweep and the G-TxAllo re-solve (whose Louvain initialization
        // also runs at `threads`) are exercised.
        let kind = if h % 2 == 0 {
            EpochKind::Adaptive
        } else {
            EpochKind::Global
        };
        let update = alloc.end_epoch(&g, kind);
        out.push((format!("{update:?}"), alloc.allocation()));
    }
    out
}

/// [`replay_stream`] on the interned route: blocks enter through
/// [`TxGraph::ingest_block_nodes`] and the stream through
/// [`StreamingAllocator::on_block_nodes`], so a warm session folds each
/// block's clique-expansion deltas through the canonical reduction tree
/// at `threads` workers.
fn replay_stream_nodes(stream: &DeltaStream, threads: usize) -> Vec<(String, Allocation)> {
    let (base, epochs, k) = stream;
    let mut g = build_graph(base);
    let params = TxAlloParams::for_graph(&g, *k).with_threads(threads);
    let mut alloc = AdaptiveStream::new(params.clone());
    let _ = alloc.begin(&g, &params);
    let mut out = Vec::new();
    for (h, pairs) in epochs.iter().enumerate() {
        let block = block_of(h as u64, pairs);
        let nodes = g.ingest_block_nodes(&block);
        alloc.on_block_nodes(&g, &block, &nodes);
        let kind = if h % 2 == 0 {
            EpochKind::Adaptive
        } else {
            EpochKind::Global
        };
        let update = alloc.end_epoch(&g, kind);
        out.push((format!("{update:?}"), alloc.allocation()));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The A-TxAllo epoch sweep — both snapshot routes, chained across
    /// epochs — is bit-identical at every thread count.
    #[test]
    fn epoch_sweep_is_bit_identical_at_every_thread_count(stream in stream_strategy()) {
        let serial = replay(&stream, THREADS[0]);
        for &t in &THREADS[1..] {
            let traced = replay(&stream, t);
            prop_assert_eq!(&traced, &serial, "{} threads diverged", t);
        }
    }

    /// The streaming surface emits identical [`AllocationUpdate`] diffs
    /// and mappings at every thread count, across adaptive *and*
    /// forced-global epoch closes.
    #[test]
    fn allocation_updates_are_identical_at_every_thread_count(stream in stream_strategy()) {
        let serial = replay_stream(&stream, THREADS[0]);
        for &t in &THREADS[1..] {
            let traced = replay_stream(&stream, t);
            prop_assert_eq!(traced.len(), serial.len());
            for (epoch, (got, want)) in traced.iter().zip(&serial).enumerate() {
                prop_assert_eq!(&got.0, &want.0, "{} threads, epoch {}: diffs", t, epoch);
                prop_assert_eq!(
                    got.1.labels(),
                    want.1.labels(),
                    "{} threads, epoch {}: mapping",
                    t,
                    epoch
                );
            }
        }
    }
    /// The interned ingestion surface: block folding through the
    /// canonical reduction tree must match the serial fold at every
    /// thread count, *and* match the re-hashing `on_block` route (the
    /// two ingestion surfaces are contractually identical).
    #[test]
    fn block_node_folding_is_identical_at_every_thread_count(stream in stream_strategy()) {
        let serial = replay_stream_nodes(&stream, THREADS[0]);
        let rehash = replay_stream(&stream, THREADS[0]);
        prop_assert_eq!(serial.len(), rehash.len());
        for (epoch, (a, b)) in serial.iter().zip(&rehash).enumerate() {
            prop_assert_eq!(&a.0, &b.0, "interned vs re-hash, epoch {}: diffs", epoch);
            prop_assert_eq!(a.1.labels(), b.1.labels(), "interned vs re-hash, epoch {}", epoch);
        }
        for &t in &THREADS[1..] {
            let traced = replay_stream_nodes(&stream, t);
            prop_assert_eq!(traced.len(), serial.len());
            for (epoch, (got, want)) in traced.iter().zip(&serial).enumerate() {
                prop_assert_eq!(&got.0, &want.0, "{} threads, epoch {}: diffs", t, epoch);
                prop_assert_eq!(
                    got.1.labels(),
                    want.1.labels(),
                    "{} threads, epoch {}: mapping",
                    t,
                    epoch
                );
            }
        }
    }
}

/// A block big enough to cross the ingestion chunk quantum (2048 work
/// units), fed through the public interned surface: the warm session's
/// clique-expansion fold genuinely splits into canonical chunks and
/// merges through the reduction tree, and must land on the serial bits.
#[test]
fn oversized_block_folds_identically_at_every_thread_count() {
    let base: Vec<(u64, u64)> = (0..60).map(|i| (i % 19, (i * 11) % 29)).collect();
    // ~2700 transfers + 1300 three-account txs: > 6600 work units,
    // several canonical chunks.
    let big: Vec<(u64, u64)> = (0..4000)
        .map(|i| ((i * 7) % 211, (i * 13 + 5) % 197))
        .collect();
    let run = |threads: usize| {
        let stream: DeltaStream = (base.clone(), vec![big.clone()], 4);
        replay_stream_nodes(&stream, threads)
    };
    let serial = run(1);
    for t in [2usize, 3, 8] {
        let traced = run(t);
        assert_eq!(traced.len(), serial.len());
        for (epoch, (got, want)) in traced.iter().zip(&serial).enumerate() {
            assert_eq!(got.0, want.0, "{t} threads, epoch {epoch}: diffs");
            assert_eq!(
                got.1.labels(),
                want.1.labels(),
                "{t} threads, epoch {epoch}"
            );
        }
    }
}

/// Zero resolves to "one per core" and must of course also be invariant —
/// one deterministic spot-check outside proptest.
#[test]
fn thread_count_zero_matches_serial() {
    let stream: DeltaStream = (
        (0..40).map(|i| (i % 17, (i * 7) % 23)).collect(),
        vec![(0..20).map(|i| (i % 31, (i * 5) % 37)).collect()],
        4,
    );
    assert_eq!(replay(&stream, 0), replay(&stream, 1));
}
