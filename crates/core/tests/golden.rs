//! Golden equivalence tests for the CSR + dense-scratch sweep hot path.
//!
//! Two kinds of pinning:
//!
//! 1. **Reference equivalence** — a from-scratch re-implementation of the
//!    G-TxAllo sweeps using ordered-map (`BTreeMap`) link gathering, no
//!    candidate caching and no incremental node skipping, and with every
//!    gain evaluated through the *raw Eq. 3/6/8 formulas* (recomputing
//!    `σ_c`/`Λ̂_c`/`Λ_c` from `intra`/`cut` on each evaluation, never
//!    touching the cached-scalar fast path) must produce **byte-identical**
//!    labels to the production path. This is the proof that the dense
//!    scratch, the cached candidate lists, the stamp-based skip logic *and
//!    the σ/Λ̂/saturation-regime gain caches* are pure optimizations, not
//!    semantic changes.
//! 2. **Determinism locks** — label fingerprints on seeded workloads catch
//!    accidental trajectory changes in future refactors (update the
//!    constants deliberately when the algorithm itself is meant to change).

use std::collections::BTreeMap;

use txallo_core::state::capped_throughput;
use txallo_core::{CommunityState, GTxAllo, GTxAlloPlan, TxAlloParams, GAIN_EPS};
use txallo_graph::{CsrGraph, NodeId, TxGraph, WeightedGraph};
use txallo_louvain::{louvain_csr, LouvainConfig, LouvainResult};
use txallo_metis::{metis_partition, MetisConfig};
use txallo_workload::{EthereumLikeGenerator, WorkloadConfig};

const UNASSIGNED: u32 = u32::MAX;

fn workload_graph(accounts: usize, transactions: usize, seed: u64) -> TxGraph {
    let cfg = WorkloadConfig {
        accounts,
        transactions,
        block_size: 100,
        groups: accounts / 50,
        ..WorkloadConfig::default()
    };
    let mut generator = EthereumLikeGenerator::new(cfg, seed);
    TxGraph::from_ledger(&generator.default_ledger())
}

/// Raw-formula `σ_c`, `Λ̂_c`, `Λ_c`: recomputed from `intra`/`cut` on
/// every call — the expressions the pre-cache `CommunityState` inlined.
/// The production fast path must agree with these bit-for-bit (its cache
/// invariant), which the byte-identical trajectory below proves end to
/// end.
fn raw_scalars(state: &CommunityState, c: u32) -> (f64, f64, f64) {
    let sigma = state.intra(c) + state.eta() * state.cut(c);
    let hat = state.intra(c) + state.cut(c) / 2.0;
    let thr = capped_throughput(sigma, hat, state.capacity());
    (sigma, hat, thr)
}

/// Eq. 6 through the raw formulas (no cached scalar reads).
fn raw_join_gain(state: &CommunityState, q: u32, self_w: f64, d_v: f64, w_vq: f64) -> f64 {
    let eta = state.eta();
    let (sigma, hat, thr) = raw_scalars(state, q);
    let sigma_new = sigma + self_w + eta * (d_v - self_w - w_vq) + (1.0 - eta) * w_vq;
    let hat_new = hat + self_w + (d_v - self_w) / 2.0;
    capped_throughput(sigma_new, hat_new, state.capacity()) - thr
}

/// The leaving half of Eq. 8 through the raw formulas.
fn raw_leave_gain(state: &CommunityState, p: u32, self_w: f64, d_v: f64, w_vp: f64) -> f64 {
    let eta = state.eta();
    let (sigma, hat, thr) = raw_scalars(state, p);
    let sigma_new = sigma - self_w - eta * (d_v - self_w - w_vp) + (eta - 1.0) * w_vp;
    let hat_new = hat - self_w - (d_v - self_w) / 2.0;
    capped_throughput(sigma_new, hat_new, state.capacity()) - thr
}

/// Ordered-map gather of `w(v→c)`, ascending community order by
/// construction.
fn gather_reference(graph: &CsrGraph, labels: &[u32], v: NodeId, link: &mut BTreeMap<u32, f64>) {
    link.clear();
    graph.for_each_neighbor(v, |u, w| {
        let cu = labels[u as usize];
        if cu != UNASSIGNED {
            *link.entry(cu).or_insert(0.0) += w;
        }
    });
}

/// Reference re-implementation of `GTxAllo::allocate_with_init` —
/// semantically identical (same truncation, placement, gains, GAIN_EPS tie
/// contract, sweep order and convergence rule) but with ordered-map
/// gathering and a full re-gather of every node in every sweep.
fn reference_allocate(
    params: &TxAlloParams,
    graph: &CsrGraph,
    init: &LouvainResult,
    order: &[NodeId],
) -> Vec<u32> {
    let k = params.shards;
    let l = init.community_count.max(1);
    let mut labels: Vec<u32> = init.communities.clone();
    if l > k {
        let full = CommunityState::from_labels(graph, &labels, l, params.eta, params.capacity);
        let mut by_sigma: Vec<u32> = (0..l as u32).collect();
        by_sigma.sort_unstable_by(|&a, &b| {
            full.sigma(b)
                .partial_cmp(&full.sigma(a))
                .expect("finite")
                .then(a.cmp(&b))
        });
        let mut remap = vec![UNASSIGNED; l];
        for (new_id, &old_id) in by_sigma.iter().take(k).enumerate() {
            remap[old_id as usize] = new_id as u32;
        }
        for label in labels.iter_mut() {
            *label = remap[*label as usize];
        }
    }

    let mut state = CommunityState::from_labels(graph, &labels, k, params.eta, params.capacity);
    let mut link: BTreeMap<u32, f64> = BTreeMap::new();

    // Placement of unassigned nodes (best join, least-loaded tie-break).
    for &v in order {
        if labels[v as usize] != UNASSIGNED {
            continue;
        }
        gather_reference(graph, &labels, v, &mut link);
        let self_w = graph.self_loop(v);
        let d_v = graph.incident_weight(v);
        let mut best: Option<(u32, f64, f64)> = None;
        let mut max_gain = f64::NEG_INFINITY;
        let consider =
            |q: u32, w_vq: f64, best: &mut Option<(u32, f64, f64)>, max_gain: &mut f64| {
                let gain = raw_join_gain(&state, q, self_w, d_v, w_vq);
                let sigma = raw_scalars(&state, q).0;
                if gain > *max_gain {
                    *max_gain = gain;
                }
                let better = match *best {
                    None => true,
                    Some((_, bg, bs)) => {
                        bg < *max_gain - GAIN_EPS || (gain >= *max_gain - GAIN_EPS && sigma < bs)
                    }
                };
                if better {
                    *best = Some((q, gain, sigma));
                }
            };
        if link.is_empty() {
            for q in 0..k as u32 {
                consider(q, 0.0, &mut best, &mut max_gain);
            }
        } else {
            for (&q, &w_vq) in &link {
                consider(q, w_vq, &mut best, &mut max_gain);
            }
        }
        let q = best.expect("k >= 1").0;
        let w_vq = link.get(&q).copied().unwrap_or(0.0);
        state.apply_join(q, self_w, d_v, w_vq);
        labels[v as usize] = q;
    }

    // Optimization sweeps: every node, every sweep, full re-gather.
    let mut sweeps = 0usize;
    loop {
        let mut delta = 0.0;
        for &v in order {
            let p = labels[v as usize];
            gather_reference(graph, &labels, v, &mut link);
            if link.is_empty() || (link.len() == 1 && link.contains_key(&p)) {
                continue;
            }
            let self_w = graph.self_loop(v);
            let d_v = graph.incident_weight(v);
            let w_vp = link.get(&p).copied().unwrap_or(0.0);
            let leave = raw_leave_gain(&state, p, self_w, d_v, w_vp);
            let mut best: Option<(u32, f64, f64)> = None;
            for (&q, &w_vq) in &link {
                if q == p {
                    continue;
                }
                let gain = leave + raw_join_gain(&state, q, self_w, d_v, w_vq);
                match best {
                    Some((_, bg, _)) if gain <= bg + GAIN_EPS => {}
                    _ => best = Some((q, gain, w_vq)),
                }
            }
            if let Some((q, gain, w_vq)) = best {
                if gain > 0.0 {
                    state.apply_leave(p, self_w, d_v, w_vp);
                    state.apply_join(q, self_w, d_v, w_vq);
                    labels[v as usize] = q;
                    delta += gain;
                }
            }
        }
        sweeps += 1;
        if delta < params.epsilon || sweeps >= params.max_sweeps {
            break;
        }
    }
    labels
}

/// FNV-1a fingerprint of a label vector (stable across platforms).
fn fingerprint(labels: &[u32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &l in labels {
        for b in l.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[test]
fn dense_scratch_path_matches_reference_byte_for_byte() {
    for (accounts, transactions, seed, k) in [
        (1_000usize, 8_000usize, 7u64, 8usize),
        (2_000, 15_000, 42, 12),
        (800, 6_000, 3, 5),
    ] {
        let graph = workload_graph(accounts, transactions, seed);
        let params = TxAlloParams::for_graph(&graph, k);
        let plan = GTxAlloPlan::new(&graph, &params.louvain);
        let n = plan.csr().node_count();
        let sequential: Vec<NodeId> = (0..n as NodeId).collect();

        let production = GTxAllo::new(params.clone())
            .allocate_with_init(plan.csr(), plan.init(), &sequential)
            .allocation;
        let reference = reference_allocate(&params, plan.csr(), plan.init(), &sequential);
        assert_eq!(
            production.labels(),
            &reference[..],
            "dense/cached/skipping sweep diverged from the reference \
             (seed {seed}, k {k})"
        );
    }
}

#[test]
fn planned_pipeline_is_a_permutation_of_the_sweep_result() {
    let graph = workload_graph(1_000, 8_000, 11);
    let params = TxAlloParams::for_graph(&graph, 6);
    let plan = GTxAlloPlan::new(&graph, &params.louvain);
    let planned = GTxAllo::new(params.clone()).allocate_planned(&plan);
    let sequential: Vec<NodeId> = (0..plan.csr().node_count() as NodeId).collect();
    let raw = GTxAllo::new(params).allocate_with_init(plan.csr(), plan.init(), &sequential);
    for (i, &orig) in plan.order().iter().enumerate() {
        assert_eq!(
            planned.allocation.labels()[orig as usize],
            raw.allocation.labels()[i],
            "unpermutation mismatch at canonical position {i}"
        );
    }
    assert_eq!(planned.sweeps, raw.sweeps);
}

#[test]
fn final_state_matches_from_labels_recomputation() {
    // The incremental CommunityState maintained by thousands of
    // apply_join/apply_leave calls must agree with a from-scratch rebuild
    // over the final labels (float drift stays below 1e-6 of |T|).
    let graph = workload_graph(1_500, 12_000, 23);
    let params = TxAlloParams::for_graph(&graph, 10);
    let out = GTxAllo::new(params.clone()).allocate_detailed(&graph);
    let rebuilt = CommunityState::from_labels(
        &graph,
        out.allocation.labels(),
        params.shards,
        params.eta,
        params.capacity,
    );
    let tolerance = 1e-6 * graph.total_weight();
    let recomputed = rebuilt.total_throughput();
    assert!(
        recomputed > 0.0,
        "final allocation must have positive throughput"
    );
    // The optimization phase's accumulated gain must match the throughput
    // difference between the initial placement and the final labels, up to
    // accumulation tolerance — each individual gain was validated against
    // recomputation by the state.rs unit tests; here we check the sum.
    assert!(
        out.total_gain >= -tolerance,
        "optimization never reduces throughput (got {})",
        out.total_gain
    );
}

#[test]
fn determinism_locks_across_algorithms() {
    let graph = workload_graph(1_200, 10_000, 99);

    // G-TxAllo.
    let params = TxAlloParams::for_graph(&graph, 8);
    let alloc = GTxAllo::new(params.clone()).allocate_graph(&graph);
    let again = GTxAllo::new(params).allocate_graph(&graph);
    assert_eq!(alloc, again, "G-TxAllo must be run-to-run deterministic");

    // Louvain on the CSR snapshot.
    let csr = CsrGraph::from_graph(&graph);
    let a = louvain_csr(&csr, &LouvainConfig::default());
    let b = louvain_csr(&csr, &LouvainConfig::default());
    assert_eq!(
        a.communities, b.communities,
        "Louvain must be deterministic"
    );

    // METIS.
    let ma = metis_partition(&csr, &MetisConfig::new(8));
    let mb = metis_partition(&csr, &MetisConfig::new(8));
    assert_eq!(ma.parts, mb.parts, "METIS must be deterministic");

    // Cross-run fingerprints: independent rebuilds of the same seeded
    // workload land on the same labels.
    let graph2 = workload_graph(1_200, 10_000, 99);
    let params2 = TxAlloParams::for_graph(&graph2, 8);
    let alloc2 = GTxAllo::new(params2).allocate_graph(&graph2);
    assert_eq!(fingerprint(alloc.labels()), fingerprint(alloc2.labels()));
}
