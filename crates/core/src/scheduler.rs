//! Shard Scheduler — the transaction-level allocation baseline (Król et
//! al., AFT'21; \[28\] in the paper).
//!
//! Unlike the graph-based methods, Shard Scheduler decides placement *per
//! incoming transaction*: affected accounts are placed (or migrated) into
//! the least-loaded eligible shard when their history justifies it. The
//! paper reports it achieves the best workload balance (Fig. 3/4) and
//! worst-case latency (Fig. 7) but a mediocre cross-shard ratio and by far
//! the longest running time (Fig. 8 — it touches every transaction).
//!
//! The original system tracks per-object placement with broker-mediated
//! migration; this reproduction keeps the two published decision rules that
//! drive its measured behaviour (see DESIGN.md):
//!
//! 1. **New accounts** go to the least-loaded shard at arrival time.
//! 2. **Migration**: when a transaction is cross-shard, each affected
//!    account may migrate to the least-loaded shard among the transaction's
//!    shards, provided its historical affinity to the destination is at
//!    least its affinity to its current shard and the destination stays
//!    within the capacity buffer (`capacity × buffer_ratio`, buffer 1 per
//!    the paper's setting §VI-B1).

use txallo_graph::{NodeId, TxGraph, WeightedGraph};
use txallo_model::{FxHashMap, Transaction};

use crate::allocation::Allocation;
use crate::dataset::Dataset;
use crate::Allocator;

/// Configuration of the Shard Scheduler baseline.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Number of shards `k`.
    pub shards: usize,
    /// Workload of a cross-shard transaction (`η`).
    pub eta: f64,
    /// Per-shard capacity `λ` (same convention as [`crate::TxAlloParams`]).
    pub capacity: f64,
    /// Buffer ratio: migrations may not push a shard's accumulated load
    /// past `capacity × buffer_ratio`. The paper's comparison uses 1.0.
    pub buffer_ratio: f64,
}

impl SchedulerConfig {
    /// Paper-default configuration for `total_weight` transactions over
    /// `shards` shards (`λ = |T|/k`, buffer 1, η = 2).
    pub fn new(shards: usize, total_weight: f64) -> Self {
        assert!(shards > 0);
        Self {
            shards,
            eta: 2.0,
            capacity: total_weight / shards as f64,
            buffer_ratio: 1.0,
        }
    }

    /// Returns a copy with a different η.
    pub fn with_eta(mut self, eta: f64) -> Self {
        self.eta = eta;
        self
    }
}

/// The transaction-level allocator.
#[derive(Debug, Clone)]
pub struct ShardScheduler {
    config: SchedulerConfig,
}

impl ShardScheduler {
    /// Creates the scheduler.
    pub fn new(config: SchedulerConfig) -> Self {
        Self { config }
    }

    /// Replays the dataset's ledger transaction by transaction and returns
    /// the final account-shard mapping.
    pub fn allocate_dataset(&self, dataset: &Dataset) -> Allocation {
        let graph = dataset.graph();
        let mut state = SchedulerState::new(self.config.clone());
        state.ensure_nodes(graph.node_count());
        for tx in dataset.ledger().transactions() {
            state.process_transaction(graph, tx);
        }
        // Accounts never seen in the ledger cannot exist (graph is built
        // from the same ledger), so every label is set.
        debug_assert!(state.labels().iter().all(|&s| s != u32::MAX));
        Allocation::new(state.into_labels(), self.config.shards)
    }
}

/// The scheduler's per-account decision state, factored out of the batch
/// replay so that it can also run *incrementally* — the scheduler is
/// transaction-level by design, which makes it the one baseline whose
/// streaming adapter ([`crate::SchedulerStream`]) is its native mode
/// rather than a per-epoch re-solve.
///
/// [`SchedulerState::process_transaction`] applies the two published
/// decision rules (placement + migration, see the [module docs](self)) to
/// one transaction; the batch [`ShardScheduler::allocate_dataset`] is a
/// fresh state replayed over the whole ledger.
#[derive(Debug, Clone)]
pub struct SchedulerState {
    config: SchedulerConfig,
    /// Migration headroom: `capacity × buffer_ratio`.
    cap: f64,
    shard_of: Vec<u32>,
    load: Vec<f64>,
    /// Historical affinity: per account, accumulated interaction weight
    /// with each shard (by partner placement at interaction time).
    affinity: Vec<FxHashMap<u32, f64>>,
}

impl SchedulerState {
    /// Fresh state with no accounts placed.
    pub fn new(config: SchedulerConfig) -> Self {
        let cap = config.capacity * config.buffer_ratio;
        let load = vec![0.0f64; config.shards];
        Self {
            config,
            cap,
            shard_of: Vec::new(),
            load,
            affinity: Vec::new(),
        }
    }

    /// Grows the per-account tables to cover `n` nodes (new slots are
    /// unplaced). Node ids only ever grow, matching the graph interner.
    pub fn ensure_nodes(&mut self, n: usize) {
        if self.shard_of.len() < n {
            self.shard_of.resize(n, u32::MAX);
            self.affinity.resize(n, FxHashMap::default());
        }
    }

    /// Updates the per-shard capacity `λ` (streaming callers refresh it
    /// per epoch as `|T|` grows; the batch replay keeps it fixed).
    pub fn set_capacity(&mut self, capacity: f64) {
        self.config.capacity = capacity;
        self.cap = capacity * self.config.buffer_ratio;
    }

    /// Scales the accumulated history — per-shard loads and per-account
    /// affinities — by `factor`, mirroring a uniform decay of the
    /// transaction history they were accrued from. Without this, a
    /// decaying capacity (`λ = |T|/k` shrinks with the decayed total)
    /// would be compared against undecayed loads and permanently disable
    /// the migration rule.
    pub fn scale_history(&mut self, factor: f64) {
        assert!(factor > 0.0, "scale factor must be positive");
        for load in &mut self.load {
            *load *= factor;
        }
        for per_account in &mut self.affinity {
            for weight in per_account.values_mut() {
                *weight *= factor;
            }
        }
    }

    /// The current labels (`u32::MAX` = not yet placed).
    pub fn labels(&self) -> &[u32] {
        &self.shard_of
    }

    /// Consumes the state, yielding the label vector.
    pub fn into_labels(self) -> Vec<u32> {
        self.shard_of
    }

    fn least_loaded(&self) -> u32 {
        let mut best = 0usize;
        for s in 1..self.load.len() {
            if self.load[s] < self.load[best] {
                best = s;
            }
        }
        best as u32
    }

    /// Warm-starts from an accumulated graph when no transaction history
    /// is available (the streaming `begin`): accounts are placed greedily
    /// into the least-loaded shard in node-id order — first-appearance
    /// order, i.e. the order rule 1 would have seen them arrive — with
    /// their incident weight as the load proxy, and affinities are seeded
    /// from the placed adjacency. A deterministic approximation of the
    /// replay, documented as such; live traffic thereafter uses the exact
    /// per-transaction rules.
    pub fn seed_from_graph(&mut self, graph: &TxGraph) {
        let n = graph.node_count();
        self.ensure_nodes(n);
        for v in 0..n as NodeId {
            if self.shard_of[v as usize] != u32::MAX {
                continue;
            }
            let s = self.least_loaded();
            self.shard_of[v as usize] = s;
            self.load[s as usize] += graph.incident_weight(v);
        }
        for v in 0..n as NodeId {
            graph.for_each_neighbor(v, |u, w| {
                let su = self.shard_of[u as usize];
                *self.affinity[v as usize].entry(su).or_insert(0.0) += w;
            });
        }
    }

    /// Runs the placement + migration rules on one transaction. Its
    /// accounts must already be interned in `graph`.
    pub fn process_transaction(&mut self, graph: &TxGraph, tx: &Transaction) {
        self.ensure_nodes(graph.node_count());
        let k = self.config.shards;
        let accounts = tx.account_set();
        let nodes: Vec<NodeId> = accounts
            .iter()
            .map(|&a| graph.node_of(a).expect("account in graph")) // txallo-lint: allow(lib-unwrap) — callers schedule only accounts already ingested into the graph this epoch
            .collect();

        // Place new accounts into the least-loaded shard (rule 1).
        for &v in &nodes {
            if self.shard_of[v as usize] == u32::MAX {
                self.shard_of[v as usize] = self.least_loaded();
            }
        }

        // Distinct shards the transaction currently touches.
        let mut shards: Vec<u32> = nodes.iter().map(|&v| self.shard_of[v as usize]).collect();
        shards.sort_unstable();
        shards.dedup();

        if shards.len() > 1 {
            // Cross-shard: each affected account is scored against
            // *every* shard (as the original scheduler does — this scan
            // is what makes the method O(|T|·k) and the slowest in
            // Fig. 8): highest historical affinity wins, ties broken
            // toward the lighter shard, respecting the capacity buffer.
            for &v in &nodes {
                let current = self.shard_of[v as usize];
                let mut best = current;
                let mut best_aff = self.affinity[v as usize]
                    .get(&current)
                    .copied()
                    .unwrap_or(0.0);
                let mut best_load = self.load[current as usize];
                for s in 0..k as u32 {
                    if s == current || self.load[s as usize] >= self.cap {
                        continue;
                    }
                    let a = self.affinity[v as usize].get(&s).copied().unwrap_or(0.0);
                    if a > best_aff || (a == best_aff && self.load[s as usize] < best_load) {
                        best = s;
                        best_aff = a;
                        best_load = self.load[s as usize];
                    }
                }
                self.shard_of[v as usize] = best;
            }
            // Re-evaluate µ after migrations.
            shards = nodes.iter().map(|&v| self.shard_of[v as usize]).collect();
            shards.sort_unstable();
            shards.dedup();
        }

        // Charge the workload to every involved shard.
        let unit = if shards.len() > 1 {
            self.config.eta
        } else {
            1.0
        };
        for &s in &shards {
            self.load[s as usize] += unit;
        }

        // Update pairwise affinities (each account ↔ partners' shards).
        for &v in &nodes {
            for &u in &nodes {
                if u == v {
                    continue;
                }
                let su = self.shard_of[u as usize];
                *self.affinity[v as usize].entry(su).or_insert(0.0) += 1.0;
            }
        }
    }
}

impl Allocator for ShardScheduler {
    fn name(&self) -> &str {
        "Shard Scheduler"
    }

    fn allocate(&mut self, dataset: &Dataset) -> Allocation {
        self.allocate_dataset(dataset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsReport;
    use crate::params::TxAlloParams;
    use txallo_model::{AccountId, Block, Ledger, Transaction};

    fn dataset_from_txs(txs: Vec<Transaction>) -> Dataset {
        let ledger = Ledger::from_blocks(vec![Block::new(0, txs)]).unwrap();
        Dataset::from_ledger(ledger)
    }

    #[test]
    fn every_account_is_placed() {
        let txs: Vec<Transaction> = (0..50u64)
            .map(|i| Transaction::transfer(AccountId(i), AccountId(i + 50)))
            .collect();
        let ds = dataset_from_txs(txs);
        let cfg = SchedulerConfig::new(4, ds.graph().total_weight());
        let alloc = ShardScheduler::new(cfg).allocate_dataset(&ds);
        assert_eq!(alloc.len(), ds.graph().node_count());
        assert!(alloc.labels().iter().all(|&l| l < 4));
    }

    #[test]
    fn balances_a_hot_account_workload() {
        // One account in 60% of transactions: graph methods would overload
        // its shard; the scheduler keeps shard loads close.
        let mut txs = Vec::new();
        for i in 0..300u64 {
            txs.push(Transaction::transfer(AccountId(0), AccountId(1000 + i)));
        }
        for i in 0..200u64 {
            txs.push(Transaction::transfer(
                AccountId(2000 + i),
                AccountId(3000 + i),
            ));
        }
        let ds = dataset_from_txs(txs);
        let k = 5;
        let cfg = SchedulerConfig::new(k, ds.graph().total_weight());
        let alloc = ShardScheduler::new(cfg).allocate_dataset(&ds);
        let params = TxAlloParams::for_graph(ds.graph(), k);
        let r = MetricsReport::compute(ds.graph(), &alloc, &params);
        // Balance must be much better than "everything on one shard".
        assert!(
            r.workload_std_normalized < 2.0,
            "scheduler balance too poor: ρ/λ = {}",
            r.workload_std_normalized
        );
    }

    #[test]
    fn co_active_pair_converges_to_one_shard() {
        // Two accounts transacting repeatedly end up co-located.
        let mut txs = Vec::new();
        for _ in 0..20 {
            txs.push(Transaction::transfer(AccountId(1), AccountId(2)));
        }
        // Background traffic so shards have load.
        for i in 0..20u64 {
            txs.push(Transaction::transfer(
                AccountId(100 + i),
                AccountId(200 + i),
            ));
        }
        let ds = dataset_from_txs(txs);
        let cfg = SchedulerConfig::new(3, ds.graph().total_weight());
        let alloc = ShardScheduler::new(cfg).allocate_dataset(&ds);
        let g = ds.graph();
        assert_eq!(
            alloc.shard_of(g.node_of(AccountId(1)).unwrap()),
            alloc.shard_of(g.node_of(AccountId(2)).unwrap()),
            "frequent partners should share a shard"
        );
    }

    #[test]
    fn is_deterministic() {
        let txs: Vec<Transaction> = (0..60u64)
            .map(|i| Transaction::transfer(AccountId(i % 7), AccountId((i * 3) % 11 + 20)))
            .collect();
        let ds = dataset_from_txs(txs);
        let cfg = SchedulerConfig::new(4, ds.graph().total_weight());
        let a = ShardScheduler::new(cfg.clone()).allocate_dataset(&ds);
        let b = ShardScheduler::new(cfg).allocate_dataset(&ds);
        assert_eq!(a, b);
    }
}
