//! Blockchain-level performance metrics (§III-B) evaluated on an
//! account-shard mapping.

use txallo_graph::WeightedGraph;

use crate::allocation::Allocation;
use crate::dataset::Dataset;
use crate::params::TxAlloParams;
use crate::state::{capped_throughput, CommunityState};

/// Average confirmation latency of a shard with normalized workload
/// `x = σ/λ` (Eq. 4), in block time units.
///
/// Derivation: transactions are processed chronologically; in each of the
/// `T = ⌈x⌉` time units a `1/x` fraction finishes, so the mean latency is
/// `(∫₀ˣ ⌈t⌉ dt) / x = [T(T−1)/2 + (x − T + 1)·T] / x`. For `x ≤ 1` every
/// transaction confirms within one unit.
pub fn latency_of_normalized_load(x: f64) -> f64 {
    if x <= 1.0 {
        return 1.0;
    }
    let t = x.ceil();
    ((t - 1.0) * t / 2.0 + (x - (t - 1.0)) * t) / x
}

/// Worst-case confirmation latency of a shard with normalized load `x`:
/// the number of time units until the backlog drains, `⌈x⌉`.
pub fn worst_latency_of_normalized_load(x: f64) -> f64 {
    x.ceil().max(1.0)
}

/// A full evaluation of one allocation: every metric the paper's Figures
/// 2–7 plot.
#[derive(Debug, Clone)]
pub struct MetricsReport {
    /// Number of shards `k`.
    pub shards: usize,
    /// Cross-shard workload parameter `η`.
    pub eta: f64,
    /// Shard capacity `λ`.
    pub capacity: f64,
    /// Total transaction weight `|T|`.
    pub total_weight: f64,
    /// Cross-shard transaction ratio `γ` (graph form: inter-community
    /// weight over total weight).
    pub cross_shard_ratio: f64,
    /// Per-shard normalized workloads `σᵢ/λ` (Fig. 4's y-axis).
    pub shard_loads: Vec<f64>,
    /// Workload standard deviation `ρ` (Eq. 1), in absolute units.
    pub workload_std: f64,
    /// `ρ/λ` — the normalized balance metric the paper's Fig. 3 plots.
    pub workload_std_normalized: f64,
    /// System throughput `Λ` (Eq. 2–3), absolute.
    pub throughput: f64,
    /// `Λ/λ` — "how many times an unsharded chain" (Fig. 5's y-axis).
    pub throughput_normalized: f64,
    /// Average confirmation latency `ζ` in blocks (Fig. 6).
    pub avg_latency: f64,
    /// Worst-case latency of the most overloaded shard in blocks (Fig. 7).
    pub worst_latency: f64,
}

impl MetricsReport {
    /// Evaluates `allocation` on `graph` under `params`.
    ///
    /// Every node must carry a real shard label (no
    /// [`crate::state::UNASSIGNED`]).
    pub fn compute(
        graph: &impl WeightedGraph,
        allocation: &Allocation,
        params: &TxAlloParams,
    ) -> Self {
        let k = allocation.shard_count();
        let state =
            CommunityState::from_labels(graph, allocation.labels(), k, params.eta, params.capacity);
        let m = graph.total_weight();

        // Each inter-community edge contributes to exactly two cuts.
        let cut_total: f64 = (0..k as u32).map(|c| state.cut(c)).sum::<f64>() / 2.0;
        let gamma = if m > 0.0 { cut_total / m } else { 0.0 };

        let sigmas: Vec<f64> = (0..k as u32).map(|c| state.sigma(c)).collect();
        let mean = sigmas.iter().sum::<f64>() / k as f64;
        let variance = sigmas.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / k as f64;
        let rho = variance.sqrt();

        let throughput: f64 = (0..k as u32)
            .map(|c| capped_throughput(state.sigma(c), state.lambda_hat(c), params.capacity))
            .sum();

        let loads: Vec<f64> = sigmas.iter().map(|s| s / params.capacity).collect();
        let avg_latency = loads
            .iter()
            .map(|&x| latency_of_normalized_load(x))
            .sum::<f64>()
            / k as f64;
        let worst_load = loads.iter().copied().fold(0.0f64, f64::max);

        Self {
            shards: k,
            eta: params.eta,
            capacity: params.capacity,
            total_weight: m,
            cross_shard_ratio: gamma,
            shard_loads: loads,
            workload_std: rho,
            workload_std_normalized: rho / params.capacity,
            throughput,
            throughput_normalized: throughput / params.capacity,
            avg_latency,
            worst_latency: worst_latency_of_normalized_load(worst_load),
        }
    }

    /// Transaction-level cross-shard ratio: the fraction of ledger
    /// transactions with `µ(Tx) > 1`. For 1-input/1-output traffic this
    /// coincides with the graph-level `γ`; multi-IO transactions can make
    /// it slightly higher (one clique edge crossing shards suffices).
    pub fn transaction_level_cross_ratio(dataset: &Dataset, allocation: &Allocation) -> f64 {
        let total = dataset.ledger().transaction_count();
        if total == 0 {
            return 0.0;
        }
        let graph = dataset.graph();
        let cross = dataset
            .ledger()
            .transactions()
            .filter(|tx| allocation.shards_touched(graph, &tx.account_set()) > 1)
            .count();
        cross as f64 / total as f64
    }
}

/// Computes `µ(Tx)`-weighted throughput shares for a single transaction:
/// each involved shard counts `1/µ(Tx)` (§III-B). Exposed for tests and
/// the simulator.
pub fn throughput_share(mu: usize) -> f64 {
    if mu == 0 {
        0.0
    } else {
        1.0 / mu as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txallo_graph::{AdjacencyGraph, TxGraph};
    use txallo_model::{AccountId, Block, Ledger, Transaction};

    #[test]
    fn latency_formula_matches_integral() {
        assert!((latency_of_normalized_load(0.5) - 1.0).abs() < 1e-12);
        assert!((latency_of_normalized_load(1.0) - 1.0).abs() < 1e-12);
        assert!((latency_of_normalized_load(2.0) - 1.5).abs() < 1e-12);
        // x = 2.5, T = 3: (3 + 0.5·3)/2.5 = 1.8 (paper's closed form).
        assert!((latency_of_normalized_load(2.5) - 1.8).abs() < 1e-12);
        // Monotonically nondecreasing.
        let mut prev = 0.0;
        for i in 0..100 {
            let x = i as f64 * 0.1;
            let l = latency_of_normalized_load(x.max(0.01));
            assert!(l >= prev - 1e-12, "latency must not decrease at x={x}");
            prev = l;
        }
    }

    #[test]
    fn worst_latency_is_ceiling() {
        assert_eq!(worst_latency_of_normalized_load(0.3), 1.0);
        assert_eq!(worst_latency_of_normalized_load(2.1), 3.0);
        assert_eq!(worst_latency_of_normalized_load(5.0), 5.0);
    }

    /// Two shards, one cross edge: γ = 1/3, throughput accounting by hand.
    #[test]
    fn report_on_tiny_graph() {
        let g = AdjacencyGraph::from_edges(4, vec![(0u32, 1, 1.0), (2, 3, 1.0), (1, 2, 1.0)]);
        let alloc = Allocation::new(vec![0, 0, 1, 1], 2);
        let params = TxAlloParams::for_graph(&g, 2); // λ = 1.5, η = 2
        let r = MetricsReport::compute(&g, &alloc, &params);
        assert!((r.cross_shard_ratio - 1.0 / 3.0).abs() < 1e-12);
        // σ per shard = 1 + 2·1 = 3 > λ = 1.5 → capped: Λ_i = 1.5/3 · 1.5 = 0.75
        assert!((r.throughput - 1.5).abs() < 1e-12);
        assert!((r.throughput_normalized - 1.0).abs() < 1e-12);
        assert!((r.workload_std - 0.0).abs() < 1e-12, "perfectly balanced");
        // loads = 2 each → avg latency 1.5, worst 2.
        assert!((r.avg_latency - 1.5).abs() < 1e-12);
        assert!((r.worst_latency - 2.0).abs() < 1e-12);
    }

    #[test]
    fn all_intra_allocation_is_ideal() {
        let g = AdjacencyGraph::from_edges(4, vec![(0u32, 1, 2.0), (2, 3, 2.0)]);
        let alloc = Allocation::new(vec![0, 0, 1, 1], 2);
        let params = TxAlloParams::for_graph(&g, 2); // λ = 2
        let r = MetricsReport::compute(&g, &alloc, &params);
        assert_eq!(r.cross_shard_ratio, 0.0);
        assert!((r.throughput - 4.0).abs() < 1e-12, "ideal throughput = |T|");
        assert!(
            (r.throughput_normalized - 2.0).abs() < 1e-12,
            "k× an unsharded chain"
        );
        assert!((r.avg_latency - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_shard_throughput_is_capacity_bound() {
        // Everything in one shard of a k=2 system: σ₀ = 2m > λ.
        let g = AdjacencyGraph::from_edges(3, vec![(0u32, 1, 1.0), (1, 2, 1.0)]);
        let alloc = Allocation::new(vec![0, 0, 0], 2);
        let params = TxAlloParams::for_graph(&g, 2); // λ = 1
        let r = MetricsReport::compute(&g, &alloc, &params);
        assert_eq!(r.cross_shard_ratio, 0.0);
        // σ₀ = 2, Λ̂₀ = 2 → Λ = 1·2/2 = 1 = λ; shard 1 idle.
        assert!((r.throughput - 1.0).abs() < 1e-12);
        assert!(r.workload_std > 0.0, "maximally imbalanced");
    }

    #[test]
    fn transaction_level_gamma_counts_mu() {
        let ledger = Ledger::from_blocks(vec![Block::new(
            0,
            vec![
                Transaction::transfer(AccountId(1), AccountId(2)), // intra
                Transaction::transfer(AccountId(1), AccountId(3)), // cross
                Transaction::new(vec![AccountId(1)], vec![AccountId(2), AccountId(3)]).unwrap(), // cross (µ=2)
            ],
        )])
        .unwrap();
        let ds = Dataset::from_ledger(ledger);
        let g: &TxGraph = ds.graph();
        let n1 = g.node_of(AccountId(1)).unwrap() as usize;
        let n2 = g.node_of(AccountId(2)).unwrap() as usize;
        let n3 = g.node_of(AccountId(3)).unwrap() as usize;
        let mut labels = vec![0u32; 3];
        labels[n1] = 0;
        labels[n2] = 0;
        labels[n3] = 1;
        let alloc = Allocation::new(labels, 2);
        let gamma = MetricsReport::transaction_level_cross_ratio(&ds, &alloc);
        assert!((gamma - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn throughput_share_is_reciprocal() {
        assert_eq!(throughput_share(1), 1.0);
        assert_eq!(throughput_share(2), 0.5);
        assert_eq!(throughput_share(0), 0.0);
    }
}
