//! Versioned, checksummed epoch checkpoints.
//!
//! The paper's serving claim (§V-C) is that A-TxAllo's per-epoch cost is
//! independent of chain length *because* the aggregates survive between
//! epochs. This module extends that survival across process restarts: at
//! an epoch boundary the whole resumable state — the transaction graph,
//! the stream's labels and community aggregates, and an opaque consumer
//! blob (the chain engine's counters) — is serialized into one
//! self-validating binary image, and a resumed run continues
//! **bit-identically** to one that never stopped.
//!
//! Bit-identity dictates the format: every `f64` is stored as its raw IEEE
//! bits, because the float fields are *chronological accumulations* whose
//! values depend on the order history happened in — recomputing them from
//! the restored graph would be a different (if numerically close) number
//! and break the determinism contract of §IV-A.
//!
//! ## Layout
//!
//! ```text
//! magic u64 | version u32 | graph section | stream section
//!           | consumer len u64 + bytes | fnv1a-64 checksum u64
//! ```
//!
//! All integers little-endian. The checksum covers every preceding byte
//! (magic and version included), so truncation, bit rot, and
//! wrong-file-entirely all surface as a typed [`CheckpointError`] instead
//! of a silently wrong resume.

use txallo_graph::{fit_u32, NodeId, TxGraph, WeightedGraph};
use txallo_model::AccountId;

/// File magic: `b"TXALLOCP"` as a little-endian u64.
const MAGIC: u64 = u64::from_le_bytes(*b"TXALLOCP");

/// Current format version. Bumped on any layout change; old images are
/// rejected with [`CheckpointError::UnsupportedVersion`] rather than
/// misread.
pub const FORMAT_VERSION: u32 = 1;

/// Why a checkpoint image failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointError {
    /// The image ended before the declared content did.
    Truncated,
    /// The leading magic is not a TxAllo checkpoint's.
    BadMagic,
    /// The image was written by an unknown format version.
    UnsupportedVersion(u32),
    /// The trailing checksum does not match the content.
    ChecksumMismatch,
    /// Structurally invalid content (the named field is inconsistent).
    Malformed(&'static str),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "checkpoint image is truncated"),
            CheckpointError::BadMagic => write!(f, "not a TxAllo checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported checkpoint format version {v} (this build reads {FORMAT_VERSION})"
                )
            }
            CheckpointError::ChecksumMismatch => {
                write!(f, "checkpoint checksum mismatch (corrupt image)")
            }
            CheckpointError::Malformed(what) => {
                write!(f, "malformed checkpoint: inconsistent {what}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// FNV-1a 64 over a byte slice — tiny, dependency-free, and plenty for
/// integrity (this guards against corruption, not adversaries).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Little-endian primitive writer for checkpoint sections.
///
/// Consumers that store opaque blobs inside a checkpoint (the chain
/// engine) use the same primitives, so every number in the image has one
/// encoding.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its raw IEEE-754 bits (bit-exact round trip —
    /// never a decimal rendering).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends raw bytes (length is *not* prefixed; callers write it).
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Returns the encoded buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Little-endian primitive reader mirroring [`Encoder`]. Every read is
/// bounds-checked ([`CheckpointError::Truncated`]); [`Decoder::finish`]
/// additionally rejects trailing garbage.
#[derive(Debug)]
pub struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Starts decoding `bytes` from the beginning.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or(CheckpointError::Truncated)?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap())) // txallo-lint: allow(lib-unwrap) — take(4) returned exactly 4 bytes, so the array conversion is infallible
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap())) // txallo-lint: allow(lib-unwrap) — take(8) returned exactly 8 bytes, so the array conversion is infallible
    }

    /// Reads an `f64` from its raw IEEE-754 bits.
    pub fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        self.take(n)
    }

    /// A `u64` that must fit the platform's `usize` and stay below a
    /// sanity bound derived from the image size (an honest length field
    /// can never exceed the bytes that are actually present).
    fn len(&mut self) -> Result<usize, CheckpointError> {
        let v = self.u64()?;
        let remaining = (self.bytes.len() - self.pos) as u64;
        if v > remaining {
            return Err(CheckpointError::Truncated);
        }
        Ok(v as usize)
    }

    /// Ends decoding, rejecting unread trailing bytes.
    pub fn finish(self) -> Result<(), CheckpointError> {
        if self.pos != self.bytes.len() {
            return Err(CheckpointError::Malformed("trailing bytes"));
        }
        Ok(())
    }
}

/// The per-community aggregates a warm A-TxAllo session carries across
/// epochs — raw accumulations, restored bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct CommunityAggregates {
    /// Internal weight `W_in(c)` per community, chronological accumulation.
    pub intra: Vec<f64>,
    /// Cut weight `W_cut(c)` per community, chronological accumulation.
    pub cut: Vec<f64>,
    /// The η the aggregates were maintained under.
    pub eta: f64,
    /// The capacity `λ` the aggregates were maintained under.
    pub capacity: f64,
}

/// A streaming allocator's resumable serving state at an epoch boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamState {
    /// Epochs closed since `begin` (drives [`HybridSchedule`] phase).
    ///
    /// [`HybridSchedule`]: crate::HybridSchedule
    pub epoch: u64,
    /// Shard count `k`.
    pub shards: usize,
    /// Current label per node, node-id order.
    pub labels: Vec<u32>,
    /// Warm session aggregates; `None` when the stream was serving from
    /// labels only (invalidated session, or a labels-only stream) — resume
    /// then rebuilds the aggregates and reports a degraded carry.
    pub community: Option<CommunityAggregates>,
}

/// A fully decoded checkpoint image.
#[derive(Debug)]
pub struct Checkpoint {
    /// The transaction graph, restored bit-for-bit.
    pub graph: TxGraph,
    /// The stream's serving state.
    pub stream: StreamState,
    /// The consumer's opaque section (e.g. the chain engine's counters).
    pub consumer: Vec<u8>,
}

fn encode_graph(e: &mut Encoder, graph: &TxGraph) {
    let n = graph.node_count();
    e.u64(n as u64);
    for &acct in graph.interner().accounts() {
        e.u64(acct.0);
    }
    for v in 0..n as NodeId {
        e.f64(graph.self_loop(v));
    }
    for v in 0..n as NodeId {
        e.f64(graph.incident_weight(v));
    }
    e.f64(graph.total_weight());
    e.u64(graph.edge_count() as u64);
    e.u64(graph.transaction_count() as u64);
    let (mut ids, mut ws) = (Vec::new(), Vec::new());
    for v in 0..n as NodeId {
        ids.clear();
        ws.clear();
        graph.copy_row_into(v, &mut ids, &mut ws);
        e.u32(fit_u32(ids.len()));
        for &u in &ids {
            e.u32(u);
        }
        for &w in &ws {
            e.f64(w);
        }
    }
}

fn decode_graph(d: &mut Decoder<'_>) -> Result<TxGraph, CheckpointError> {
    let n = d.len()?;
    let mut accounts = Vec::with_capacity(n);
    for _ in 0..n {
        accounts.push(AccountId(d.u64()?));
    }
    let mut self_loops = Vec::with_capacity(n);
    for _ in 0..n {
        self_loops.push(d.f64()?);
    }
    let mut incident = Vec::with_capacity(n);
    for _ in 0..n {
        incident.push(d.f64()?);
    }
    let total_weight = d.f64()?;
    let edge_count = d.len()?;
    let transaction_count = d.u64()? as usize;
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0usize);
    let (mut adj_ids, mut adj_ws) = (Vec::new(), Vec::new());
    for _ in 0..n {
        let len = d.u32()? as usize;
        for _ in 0..len {
            let id = d.u32()?;
            if id as usize >= n {
                return Err(CheckpointError::Malformed("adjacency node id"));
            }
            adj_ids.push(id);
        }
        for _ in 0..len {
            adj_ws.push(d.f64()?);
        }
        let row = &adj_ids[*offsets.last().expect("non-empty")..]; // txallo-lint: allow(lib-unwrap) — offsets starts with a pushed 0 sentinel a few lines up, so last() always exists
        if !row.windows(2).all(|p| p[0] < p[1]) {
            return Err(CheckpointError::Malformed("adjacency row order"));
        }
        offsets.push(adj_ids.len());
    }
    let mut unique = accounts.clone();
    unique.sort_unstable();
    unique.dedup();
    if unique.len() != n {
        return Err(CheckpointError::Malformed("duplicate accounts"));
    }
    Ok(TxGraph::from_checkpoint_parts(
        &accounts,
        &offsets,
        &adj_ids,
        &adj_ws,
        self_loops,
        incident,
        total_weight,
        edge_count,
        transaction_count,
    ))
}

fn encode_stream(e: &mut Encoder, stream: &StreamState) {
    e.u64(stream.epoch);
    e.u64(stream.shards as u64);
    e.u64(stream.labels.len() as u64);
    for &l in &stream.labels {
        e.u32(l);
    }
    match &stream.community {
        None => e.u8(0),
        Some(agg) => {
            e.u8(1);
            e.u64(agg.intra.len() as u64);
            for &w in &agg.intra {
                e.f64(w);
            }
            for &w in &agg.cut {
                e.f64(w);
            }
            e.f64(agg.eta);
            e.f64(agg.capacity);
        }
    }
}

fn decode_stream(d: &mut Decoder<'_>, node_count: usize) -> Result<StreamState, CheckpointError> {
    let epoch = d.u64()?;
    let shards = d.len()?;
    let label_count = d.len()?;
    if label_count != node_count {
        return Err(CheckpointError::Malformed("label count"));
    }
    let mut labels = Vec::with_capacity(label_count);
    for _ in 0..label_count {
        let l = d.u32()?;
        if l as usize >= shards {
            return Err(CheckpointError::Malformed("label out of range"));
        }
        labels.push(l);
    }
    let community = match d.u8()? {
        0 => None,
        1 => {
            let c = d.len()?;
            if c != shards {
                return Err(CheckpointError::Malformed("aggregate community count"));
            }
            let mut intra = Vec::with_capacity(c);
            for _ in 0..c {
                intra.push(d.f64()?);
            }
            let mut cut = Vec::with_capacity(c);
            for _ in 0..c {
                cut.push(d.f64()?);
            }
            Some(CommunityAggregates {
                intra,
                cut,
                eta: d.f64()?,
                capacity: d.f64()?,
            })
        }
        _ => return Err(CheckpointError::Malformed("community marker")),
    };
    Ok(StreamState {
        epoch,
        shards,
        labels,
        community,
    })
}

/// Serializes one epoch-boundary checkpoint image (see the
/// [module docs](self) for the layout).
pub fn encode_checkpoint(graph: &TxGraph, stream: &StreamState, consumer: &[u8]) -> Vec<u8> {
    let mut e = Encoder::new();
    e.u64(MAGIC);
    e.u32(FORMAT_VERSION);
    encode_graph(&mut e, graph);
    encode_stream(&mut e, stream);
    e.u64(consumer.len() as u64);
    e.bytes(consumer);
    let mut buf = e.finish();
    let sum = fnv1a(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    buf
}

/// Decodes and validates a checkpoint image produced by
/// [`encode_checkpoint`]. Every failure mode is a typed
/// [`CheckpointError`]; on success the graph, stream state, and consumer
/// blob round-trip bit-identically.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
    const FOOTER: usize = 8;
    const HEADER: usize = 8 + 4;
    if bytes.len() < HEADER + FOOTER {
        return Err(CheckpointError::Truncated);
    }
    let (content, footer) = bytes.split_at(bytes.len() - FOOTER);
    let stored = u64::from_le_bytes(footer.try_into().unwrap()); // txallo-lint: allow(lib-unwrap) — split_at(len - FOOTER) makes footer exactly FOOTER == 8 bytes
    if fnv1a(content) != stored {
        return Err(CheckpointError::ChecksumMismatch);
    }
    let mut d = Decoder::new(content);
    if d.u64()? != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = d.u32()?;
    if version != FORMAT_VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let graph = decode_graph(&mut d)?;
    let stream = decode_stream(&mut d, graph.node_count())?;
    let consumer_len = d.len()?;
    let consumer = d.bytes(consumer_len)?.to_vec();
    d.finish()?;
    Ok(Checkpoint {
        graph,
        stream,
        consumer,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use txallo_model::Transaction;

    fn sample_graph() -> TxGraph {
        let mut g = TxGraph::new();
        for i in 0..40u64 {
            g.ingest_transaction(&Transaction::transfer(
                AccountId(i % 9),
                AccountId((i * 3) % 13),
            ));
        }
        g.apply_decay(0.8);
        g.ingest_transaction(&Transaction::transfer(AccountId(100), AccountId(0)));
        g
    }

    fn sample_stream(g: &TxGraph) -> StreamState {
        let n = g.node_count();
        let shards = 3usize;
        let labels: Vec<u32> = (0..n as u32).map(|v| v % shards as u32).collect();
        StreamState {
            epoch: 17,
            shards,
            labels,
            community: Some(CommunityAggregates {
                intra: vec![1.25, 0.5, 7.0 / 3.0],
                cut: vec![0.1, 2.5, 0.0],
                eta: 5.0,
                capacity: 12.5,
            }),
        }
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let g = sample_graph();
        let stream = sample_stream(&g);
        let consumer = vec![1u8, 2, 3, 250, 0, 9];
        let image = encode_checkpoint(&g, &stream, &consumer);
        let cp = decode_checkpoint(&image).unwrap();
        assert_eq!(cp.stream, stream);
        assert_eq!(cp.consumer, consumer);
        assert_eq!(cp.graph.node_count(), g.node_count());
        assert_eq!(
            cp.graph.total_weight().to_bits(),
            g.total_weight().to_bits()
        );
        for v in 0..g.node_count() as NodeId {
            assert_eq!(cp.graph.account(v), g.account(v));
            assert_eq!(cp.graph.self_loop(v).to_bits(), g.self_loop(v).to_bits());
            let mut a = Vec::new();
            let mut b = Vec::new();
            g.for_each_neighbor(v, |u, w| a.push((u, w.to_bits())));
            cp.graph
                .for_each_neighbor(v, |u, w| b.push((u, w.to_bits())));
            assert_eq!(a, b, "row {v}");
        }
        // Re-encoding the restored state reproduces the image byte-for-byte
        // (stability: checkpoints of resumed runs match the original's).
        assert_eq!(
            encode_checkpoint(&cp.graph, &cp.stream, &cp.consumer),
            image
        );
    }

    #[test]
    fn every_corruption_is_a_typed_error() {
        let g = sample_graph();
        let stream = sample_stream(&g);
        let image = encode_checkpoint(&g, &stream, &[7u8; 16]);

        assert_eq!(
            decode_checkpoint(&[]).err(),
            Some(CheckpointError::Truncated)
        );
        assert_eq!(
            decode_checkpoint(&image[..image.len() - 3]).err(),
            Some(CheckpointError::ChecksumMismatch),
            "truncation breaks the checksum first"
        );
        let mut flipped = image.clone();
        flipped[40] ^= 0x20;
        assert_eq!(
            decode_checkpoint(&flipped).err(),
            Some(CheckpointError::ChecksumMismatch)
        );

        // Magic / version errors keep a *valid* checksum so they are
        // reached: rewrite the header and re-seal.
        let reseal = |mut bytes: Vec<u8>| {
            let len = bytes.len();
            let sum = fnv1a(&bytes[..len - 8]);
            bytes[len - 8..].copy_from_slice(&sum.to_le_bytes());
            bytes
        };
        let mut wrong_magic = image.clone();
        wrong_magic[0] = b'Z';
        assert_eq!(
            decode_checkpoint(&reseal(wrong_magic)).err(),
            Some(CheckpointError::BadMagic)
        );
        let mut wrong_version = image.clone();
        wrong_version[8] = 99;
        assert_eq!(
            decode_checkpoint(&reseal(wrong_version)).err(),
            Some(CheckpointError::UnsupportedVersion(99))
        );
        let mut trailing = image.clone();
        let keep = trailing.len() - 8;
        trailing.truncate(keep);
        trailing.push(0xAB);
        trailing.extend_from_slice(&[0u8; 8]);
        assert_eq!(
            decode_checkpoint(&reseal(trailing)).err(),
            Some(CheckpointError::Malformed("trailing bytes"))
        );
    }

    #[test]
    fn labels_must_cover_the_graph_and_respect_k() {
        let g = sample_graph();
        let mut stream = sample_stream(&g);
        stream.labels.pop();
        let image = encode_checkpoint(&g, &stream, &[]);
        assert_eq!(
            decode_checkpoint(&image).err(),
            Some(CheckpointError::Malformed("label count"))
        );

        let mut stream = sample_stream(&g);
        stream.labels[0] = 3; // == shards
        let image = encode_checkpoint(&g, &stream, &[]);
        assert_eq!(
            decode_checkpoint(&image).err(),
            Some(CheckpointError::Malformed("label out of range"))
        );
    }

    #[test]
    fn labels_only_state_round_trips() {
        let g = sample_graph();
        let mut stream = sample_stream(&g);
        stream.community = None;
        let image = encode_checkpoint(&g, &stream, &[]);
        let cp = decode_checkpoint(&image).unwrap();
        assert_eq!(cp.stream, stream);
        assert!(cp.consumer.is_empty());
    }

    #[test]
    fn encoder_decoder_primitives_round_trip() {
        let mut e = Encoder::new();
        e.u8(7);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 1);
        e.f64(-0.0);
        e.f64(f64::MIN_POSITIVE);
        e.bytes(b"xyz");
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(d.f64().unwrap(), f64::MIN_POSITIVE);
        assert_eq!(d.bytes(3).unwrap(), b"xyz");
        d.finish().unwrap();

        let mut d = Decoder::new(&buf);
        let _ = d.u8().unwrap();
        assert!(d.finish().is_err(), "unread bytes must be rejected");
        let mut d = Decoder::new(&buf[..2]);
        assert_eq!(d.u32(), Err(CheckpointError::Truncated));
    }

    #[test]
    fn error_display_names_the_failure() {
        assert!(CheckpointError::Truncated.to_string().contains("truncated"));
        assert!(CheckpointError::ChecksumMismatch
            .to_string()
            .contains("checksum"));
        assert!(CheckpointError::UnsupportedVersion(4)
            .to_string()
            .contains("version 4"));
        assert!(CheckpointError::Malformed("label count")
            .to_string()
            .contains("label count"));
        let err: Box<dyn std::error::Error> = Box::new(CheckpointError::BadMagic);
        assert!(err.to_string().contains("magic"));
    }
}
