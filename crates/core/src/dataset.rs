//! A ledger together with its transaction graph.

use txallo_graph::TxGraph;
use txallo_model::Ledger;

/// The input of every [`crate::Allocator`]: the historical ledger and the
/// transaction graph built from it.
///
/// Graph-based allocators (TxAllo, METIS, hash) read the graph; the
/// transaction-level [`crate::ShardScheduler`] replays the ledger. Keeping
/// both in one struct guarantees they describe the same history.
#[derive(Debug, Clone)]
pub struct Dataset {
    ledger: Ledger,
    graph: TxGraph,
}

impl Dataset {
    /// Builds the dataset (and its graph) from a ledger.
    pub fn from_ledger(ledger: Ledger) -> Self {
        let graph = TxGraph::from_ledger(&ledger);
        Self { ledger, graph }
    }

    /// Builds from pre-computed parts.
    ///
    /// The caller must guarantee `graph` was built from `ledger`; the
    /// constructor checks the cheap invariant (transaction counts match).
    pub fn from_parts(ledger: Ledger, graph: TxGraph) -> Self {
        assert_eq!(
            ledger.transaction_count(),
            graph.transaction_count(),
            "graph does not match ledger"
        );
        Self { ledger, graph }
    }

    /// The historical ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// The transaction graph.
    pub fn graph(&self) -> &TxGraph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txallo_graph::WeightedGraph;
    use txallo_model::{AccountId, Block, Transaction};

    #[test]
    fn from_ledger_builds_matching_graph() {
        let ledger = Ledger::from_blocks(vec![Block::new(
            0,
            vec![
                Transaction::transfer(AccountId(1), AccountId(2)),
                Transaction::transfer(AccountId(2), AccountId(3)),
            ],
        )])
        .unwrap();
        let ds = Dataset::from_ledger(ledger);
        assert_eq!(ds.graph().transaction_count(), 2);
        assert_eq!(ds.graph().node_count(), 3);
        assert_eq!(ds.ledger().transaction_count(), 2);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_parts_panic() {
        let ledger = Ledger::from_blocks(vec![Block::new(
            0,
            vec![Transaction::transfer(AccountId(1), AccountId(2))],
        )])
        .unwrap();
        let _ = Dataset::from_parts(ledger, TxGraph::new());
    }
}
