//! The streaming allocation service API (§V-C).
//!
//! The paper's operational claim is that allocation is a *service* a
//! sharded chain consults every epoch, not a one-shot batch call. This
//! module is that service's contract: a [`StreamingAllocator`] is opened
//! once on the warm-up history ([`StreamingAllocator::begin`]), observes
//! every freshly committed block ([`StreamingAllocator::on_block`]), and
//! at each epoch boundary emits an [`AllocationUpdate`] — the *diff* of
//! moved accounts ([`StreamingAllocator::end_epoch`]) — so consumers can
//! account migration cost instead of relabelling wholesale.
//!
//! Four implementations cover the paper's §VI comparison end to end:
//!
//! * [`AdaptiveStream`] — A-TxAllo serving: a long-lived
//!   [`AtxAlloSession`] carries the community aggregates across epochs
//!   (the delta-CSR fast path stays the engine; this type only owns the
//!   session lifecycle and the diffing).
//! * [`GlobalStream`] — a batch solver re-run at every epoch boundary
//!   (G-TxAllo, hash, METIS — anything expressible as graph → labels).
//! * [`HybridStream`] — the paper's hybrid schedule as a combinator:
//!   G-TxAllo every `τ₂` epochs, A-TxAllo otherwise.
//! * [`SchedulerStream`] — the transaction-level Shard Scheduler baseline,
//!   which is *naturally* streaming (it decides per incoming transaction).
//!
//! Consumers resolve implementations by name through the
//! [`AllocatorRegistry`](crate::AllocatorRegistry) instead of constructing
//! algorithms directly.
//!
//! ## Epoch-loop contract
//!
//! For each epoch: ingest a block into the [`TxGraph`], *then* hand it to
//! `on_block` (accounts must be interned); at the boundary call
//! `end_epoch` and fold the returned diff into your [`Allocation`] with
//! [`Allocation::apply_update`]. Out-of-band uniform reweighting (decay)
//! must be announced through [`StreamingAllocator::on_reweight`] *before*
//! the epoch's blocks are ingested.
//!
//! ```
//! use txallo_core::{AllocatorRegistry, EpochKind, HybridSchedule, TxAlloParams};
//! use txallo_graph::TxGraph;
//! use txallo_model::{AccountId, Block, Transaction};
//!
//! // Warm-up history: two 3-account cliques.
//! let mut graph = TxGraph::new();
//! for base in [0u64, 10] {
//!     for (i, j) in [(0, 1), (1, 2), (0, 2)] {
//!         graph.ingest_transaction(&Transaction::transfer(
//!             AccountId(base + i),
//!             AccountId(base + j),
//!         ));
//!     }
//! }
//!
//! let registry = AllocatorRegistry::builtin();
//! let params = TxAlloParams::for_graph(&graph, 2);
//! let mut stream = registry
//!     .streaming("txallo", &params, HybridSchedule::AlwaysAdaptive)
//!     .unwrap();
//! let mut allocation = stream.begin(&graph, &params);
//!
//! // One served epoch: ingest, observe, close, apply the diff.
//! let block = Block::new(0, vec![Transaction::transfer(AccountId(100), AccountId(0))]);
//! graph.ingest_block(&block);
//! stream.on_block(&graph, &block);
//! let update = stream.end_epoch(&graph, EpochKind::Scheduled);
//! allocation.apply_update(&update);
//!
//! assert_eq!(allocation.len(), 7, "the new account is labelled");
//! assert_eq!(update.placements(), 1);
//! assert_eq!(allocation.labels(), stream.allocation().labels());
//! ```

use txallo_graph::{BlockNodes, NodeId, TxGraph, WeightedGraph};
use txallo_model::{Block, ShardId};

use crate::allocation::Allocation;
use crate::atxallo::UpdatePath;
use crate::checkpoint::{CommunityAggregates, StreamState};
use crate::gtxallo::GTxAllo;
use crate::params::TxAlloParams;
use crate::scheduler::{SchedulerConfig, SchedulerState};
use crate::session::AtxAlloSession;
use crate::state::{CommunityState, UNASSIGNED};

/// Which algorithm class produced an epoch's [`AllocationUpdate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateKind {
    /// A full re-solve over the whole accumulated graph.
    Global,
    /// An incremental update from the previous mapping.
    Adaptive,
}

/// The driver's request for how to close an epoch
/// ([`StreamingAllocator::end_epoch`]).
///
/// Streams that lack the requested path fall back to their native one; the
/// returned [`AllocationUpdate::kind`] always reports what actually ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochKind {
    /// Follow the stream's own policy (e.g. [`HybridStream`]'s schedule).
    Scheduled,
    /// Force the incremental path where one exists.
    Adaptive,
    /// Force a full re-solve where one exists.
    Global,
}

/// How a stream's incremental serving state crossed an epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateCarry {
    /// The stream keeps no serving state (batch re-solve per epoch).
    Stateless,
    /// Fresh state was built this epoch (cold start, or a global re-solve
    /// replaced the labels wholesale).
    Rebuilt,
    /// Aggregates carried over from the previous epoch unchanged.
    Warm,
    /// Aggregates carried across an out-of-band uniform reweighting
    /// (decay) by exact linear rescaling — see
    /// [`AtxAlloSession::apply_decay`].
    WarmRescaled,
}

/// How far down the recovery ladder a serving pipeline has stepped.
///
/// Ordered from healthy to worst: each rung trades allocation quality for
/// the guarantee that epochs keep closing. Consumers (the chain service,
/// the simulator's epoch reports) surface the rung so degradation is
/// *visible*, never silent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Degradation {
    /// Serving normally from warm state.
    None,
    /// The health check found diverged aggregates; the warm session was
    /// dropped and rebuilt from its labels at the boundary
    /// ([`StateCarry::Rebuilt`]).
    Invalidated,
    /// Resume (or repeated divergence) could not produce a warm session;
    /// the stream is serving from labels only until the next boundary
    /// rebuild.
    Rebuilt,
    /// Final rung: the stream was replaced by deterministic hash
    /// allocation — allocation quality is sacrificed, epochs still close.
    HashFallback,
}

impl std::fmt::Display for Degradation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Degradation::None => "none",
            Degradation::Invalidated => "invalidated",
            Degradation::Rebuilt => "rebuilt",
            Degradation::HashFallback => "hash-fallback",
        })
    }
}

/// One account changing shard (or being placed for the first time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccountMove {
    /// The moved graph node.
    pub node: NodeId,
    /// Previous shard; `None` for a brand-new account's first placement.
    pub from: Option<ShardId>,
    /// New shard.
    pub to: ShardId,
}

/// The diff an epoch's allocation update produced: which accounts moved
/// where, plus enough metadata to validate and apply it
/// ([`Allocation::apply_update`]).
///
/// Carrying the diff — rather than a full relabel — is what lets
/// consumers charge *migration cost*: the simulator surfaces the move
/// count in its epoch metrics, and the chain engine routes each migration
/// through the cross-shard Atomix protocol.
#[derive(Debug, Clone)]
pub struct AllocationUpdate {
    /// Number of shards `k` (must match the allocation the diff applies to).
    pub shard_count: usize,
    /// Node count the post-update allocation covers (the diff may extend
    /// the allocation with freshly placed accounts).
    pub len: usize,
    /// Which algorithm class ran.
    pub kind: UpdateKind,
    /// For adaptive updates, the snapshot route A-TxAllo took.
    pub path: Option<UpdatePath>,
    /// How the stream's serving state crossed this boundary.
    pub carry: StateCarry,
    /// The account moves, in ascending node order.
    pub moves: Vec<AccountMove>,
}

impl AllocationUpdate {
    /// Accounts that migrated between shards (previous shard known and
    /// different) — the moves that cost a cross-shard state transfer.
    pub fn migrations(&self) -> usize {
        self.moves
            .iter()
            .filter(|m| m.from.is_some_and(|f| f != m.to))
            .count()
    }

    /// Brand-new accounts placed for the first time (no previous shard).
    pub fn placements(&self) -> usize {
        self.moves.iter().filter(|m| m.from.is_none()).count()
    }
}

/// When a hybrid allocation service runs the global algorithm instead of
/// the adaptive one.
///
/// The paper's Fig. 9 compares `τ₂/τ₁ ∈ {20, 40, 100, 200}` against
/// running G-TxAllo every epoch. [`HybridStream`] consumes this policy
/// directly; the simulator's configuration re-exports it unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HybridSchedule {
    /// Run G-TxAllo every epoch ("Global Method" curve).
    AlwaysGlobal,
    /// Run A-TxAllo every epoch and G-TxAllo every `global_gap` epochs
    /// (epoch 0 is adaptive — warm-up already provided a global mapping).
    Hybrid {
        /// Global refresh period in epochs (`τ₂/τ₁`).
        global_gap: u64,
    },
    /// Never re-run the global algorithm after warm-up ("pure A-TxAllo").
    AlwaysAdaptive,
}

impl HybridSchedule {
    /// Whether epoch `epoch` (0-based, counted from the end of warm-up)
    /// should run the global algorithm.
    pub fn is_global_epoch(&self, epoch: u64) -> bool {
        match *self {
            HybridSchedule::AlwaysGlobal => true,
            HybridSchedule::Hybrid { global_gap } => {
                let gap = global_gap.max(1);
                epoch > 0 && epoch.is_multiple_of(gap)
            }
            HybridSchedule::AlwaysAdaptive => false,
        }
    }
}

/// An epoch-driven allocation service (see the [module docs](self) for the
/// call protocol).
pub trait StreamingAllocator: std::fmt::Debug {
    /// Human-readable name (matches the paper's figure legends).
    fn name(&self) -> &str;

    /// Opens the service on the warm-up graph, returning the initial
    /// account-shard mapping (the paper's one-off global run).
    fn begin(&mut self, graph: &TxGraph, params: &TxAlloParams) -> Allocation;

    /// Observes one freshly committed block. Call *after*
    /// [`TxGraph::ingest_block`] for the same block, so its accounts are
    /// interned.
    fn on_block(&mut self, graph: &TxGraph, block: &Block);

    /// [`on_block`](StreamingAllocator::on_block) with the interned view
    /// [`TxGraph::ingest_block_nodes`] produced for the same block, so the
    /// stream can reuse the dense node ids ingestion already resolved
    /// instead of re-hashing every `AccountId`. The default delegates to
    /// `on_block`; stateful streams override it with the zero-rehash path
    /// (behaviour must be identical either way).
    fn on_block_nodes(&mut self, graph: &TxGraph, block: &Block, nodes: &BlockNodes) {
        let _ = nodes;
        self.on_block(graph, block);
    }

    /// Announces an out-of-band uniform rescale of every edge weight by
    /// `factor` (exponential decay). Stateful implementations must either
    /// rescale their aggregates to match or rebuild them; the default
    /// no-op is correct only for streams that re-derive everything from
    /// the graph each epoch.
    fn on_reweight(&mut self, factor: f64) {
        let _ = factor;
    }

    /// Closes the epoch: updates the mapping and returns the diff of
    /// moved accounts.
    fn end_epoch(&mut self, graph: &TxGraph, kind: EpochKind) -> AllocationUpdate;

    /// The current full account-shard mapping (equal to folding every
    /// emitted [`AllocationUpdate`] into the [`begin`] allocation — the
    /// conformance suite asserts exactly that).
    ///
    /// [`begin`]: StreamingAllocator::begin
    fn allocation(&self) -> Allocation;

    /// Serializes the stream's resumable serving state. Call only at an
    /// epoch boundary (after [`end_epoch`], before the next epoch's
    /// blocks). `None` — the default — means the stream does not support
    /// checkpointing; consumers then persist a labels-only
    /// [`StreamState`] themselves or cold-start on resume.
    ///
    /// [`end_epoch`]: StreamingAllocator::end_epoch
    fn export_state(&self) -> Option<StreamState> {
        None
    }

    /// Restores serving state captured by
    /// [`export_state`](StreamingAllocator::export_state) (or a
    /// labels-only fallback), with `graph` the checkpointed graph and
    /// `params` re-derived for it. Returns the carry the resumed stream
    /// starts from — [`StateCarry::Warm`] when the aggregates survived
    /// bit-for-bit, [`StateCarry::Rebuilt`] when only the labels did —
    /// or `None` (the default) when the stream cannot adopt this state
    /// and the consumer must cold-[`begin`](StreamingAllocator::begin).
    fn import_state(
        &mut self,
        state: &StreamState,
        graph: &TxGraph,
        params: &TxAlloParams,
    ) -> Option<StateCarry> {
        let _ = (state, graph, params);
        None
    }

    /// Audits the stream's maintained aggregates against a from-scratch
    /// recomputation over `graph`, returning the maximum absolute
    /// divergence — the health signal the degradation ladder keys on.
    /// `None` (the default) for streams with no maintained aggregates to
    /// diverge.
    fn consistency_error(&self, graph: &TxGraph) -> Option<f64> {
        let _ = graph;
        None
    }

    /// Drops warm serving state while keeping the labels, forcing a
    /// rebuild at the next epoch boundary. Returns whether any warm state
    /// was actually dropped (the default no-op returns `false`).
    fn invalidate_state(&mut self) -> bool {
        false
    }

    /// Approximate resident bytes of the allocator's own state (session
    /// aggregates, snapshot buffers, scratch) — the allocator-side half of
    /// the out-of-core memory story, alongside
    /// [`TxGraph::memory_footprint`](txallo_graph::TxGraph). Diagnostics
    /// only; the default reports `0` for stateless allocators.
    fn state_bytes(&self) -> usize {
        0
    }
}

/// The epoch's touched-node accumulator: a dense stamp array over node
/// ids plus the list of nodes marked this epoch.
///
/// Node ids are dense by construction (the interner), so membership is an
/// array compare — no hashing at all, which matters because the serving
/// path used to re-hash every touched id into an `FxHashSet` per block on
/// top of the interner lookups ingestion already paid. Draining sorts the
/// list, reproducing exactly the sorted deduplicated set the old hash-set
/// collection produced.
#[derive(Debug, Clone, Default)]
struct EpochTouched {
    /// `stamp[v] == epoch` ⇔ `v` is marked this epoch.
    stamp: Vec<u32>,
    /// Current epoch stamp (0 means "no epoch yet": slots start at 0, so
    /// the first epoch uses stamp 1).
    epoch: u32,
    /// Nodes marked this epoch, insertion order.
    list: Vec<NodeId>,
}

impl EpochTouched {
    /// Marks `v` as touched this epoch (idempotent).
    fn mark(&mut self, v: NodeId) {
        let i = v as usize;
        if i >= self.stamp.len() {
            self.stamp.resize(i + 1, 0);
        }
        let epoch = self.epoch.max(1);
        self.epoch = epoch;
        if self.stamp[i] != epoch {
            self.stamp[i] = epoch;
            self.list.push(v);
        }
    }

    /// Ends the epoch: returns the marked nodes sorted ascending and
    /// resets for the next epoch (an `O(1)` stamp bump; the stamp array
    /// is re-zeroed only on the rare u32 wrap).
    fn drain_sorted(&mut self) -> Vec<NodeId> {
        let mut out = std::mem::take(&mut self.list);
        out.sort_unstable();
        match self.epoch.checked_add(1) {
            Some(next) => self.epoch = next,
            None => {
                self.stamp.fill(0);
                self.epoch = 1;
            }
        }
        out
    }

    /// Forgets all marks without producing the list.
    fn clear(&mut self) {
        self.list.clear();
        match self.epoch.checked_add(1) {
            Some(next) => self.epoch = next,
            None => {
                self.stamp.fill(0);
                self.epoch = 1;
            }
        }
    }

    /// Approximate resident bytes (capacity-based): the stamp array is
    /// `O(nodes)`, the list `O(touched)`.
    fn approx_bytes(&self) -> usize {
        self.stamp.capacity() * std::mem::size_of::<u32>()
            + self.list.capacity() * std::mem::size_of::<NodeId>()
    }
}

/// Diffs two label vectors (`old` may be shorter — missing entries are
/// fresh placements), in ascending node order.
fn diff_full(old: &[u32], new: &[u32]) -> Vec<AccountMove> {
    let mut moves = Vec::new();
    for (i, &to) in new.iter().enumerate() {
        let from = old.get(i).copied().unwrap_or(UNASSIGNED);
        if from != to {
            moves.push(AccountMove {
                node: i as NodeId,
                from: (from != UNASSIGNED).then_some(ShardId(from)),
                to: ShardId(to),
            });
        }
    }
    moves
}

/// Collects the touched node ids of a block's transactions (the same set
/// [`TxGraph::ingest_block`] reports), through the interner — the
/// fallback for callers without a [`BlockNodes`] view.
fn collect_touched(graph: &TxGraph, block: &Block, touched: &mut EpochTouched) {
    for tx in block.transactions() {
        for account in tx.account_set() {
            let node = graph
                .node_of(account)
                .expect("on_block requires the block to be ingested first"); // txallo-lint: allow(lib-unwrap) — documented on_block precondition: the driver ingests the block before notifying
            touched.mark(node);
        }
    }
}

// ---------------------------------------------------------------------------
// AdaptiveStream
// ---------------------------------------------------------------------------

/// A-TxAllo as a service: a long-lived [`AtxAlloSession`] carries the
/// community aggregates across epochs, and each boundary emits the diff of
/// the touched nodes only (`O(|V̂|)` — never a full-graph walk).
///
/// Lifecycle rules (previously open-coded in the simulation driver):
///
/// * [`begin`](StreamingAllocator::begin) pays one global G-TxAllo run and
///   opens the session on its labels;
/// * decay is *folded* into the session by exact linear rescaling
///   ([`AtxAlloSession::apply_decay`]) — the session survives, reported as
///   [`StateCarry::WarmRescaled`];
/// * a forced [`EpochKind::Global`] re-solve (or [`HybridStream`]'s
///   schedule firing) replaces the labels wholesale, so the session is
///   rebuilt from the new mapping — reported as [`StateCarry::Rebuilt`].
#[derive(Debug, Clone)]
pub struct AdaptiveStream {
    params: TxAlloParams,
    session: Option<AtxAlloSession>,
    /// Labels to rebuild the session from when it was invalidated
    /// out-of-band (always `Some` exactly when `session` is `None` after
    /// `begin`).
    fallback: Option<Allocation>,
    touched: EpochTouched,
    rescaled_this_epoch: bool,
    began: bool,
}

impl AdaptiveStream {
    /// Creates the stream; [`begin`](StreamingAllocator::begin) must run
    /// before epochs are served.
    pub fn new(params: TxAlloParams) -> Self {
        Self {
            params,
            session: None,
            fallback: None,
            touched: EpochTouched::default(),
            rescaled_this_epoch: false,
            began: false,
        }
    }

    /// Drops the serving session (e.g. after a *non-uniform* out-of-band
    /// graph edit such as [`TxGraph::prune_dust`], which
    /// [`on_reweight`](StreamingAllocator::on_reweight) cannot fold). The
    /// labels survive; the aggregates are rebuilt at the next epoch
    /// boundary ([`StateCarry::Rebuilt`]).
    pub fn invalidate(&mut self) {
        if let Some(session) = self.session.take() {
            self.fallback = Some(session.allocation());
        }
    }

    fn sorted_touched(&mut self) -> Vec<NodeId> {
        self.touched.drain_sorted()
    }

    /// The adaptive epoch path: ensure a session, sweep `V̂`, diff the
    /// touched rows.
    fn adaptive_epoch(&mut self, graph: &TxGraph, params: &TxAlloParams) -> AllocationUpdate {
        let mut carry = if self.rescaled_this_epoch {
            StateCarry::WarmRescaled
        } else {
            StateCarry::Warm
        };
        if self.session.is_none() {
            let prev = self.fallback.take().expect("invalidate stored the labels"); // txallo-lint: allow(lib-unwrap) — invalidate() is the only path that clears the session, and it stores fallback first
            self.session = Some(AtxAlloSession::new(graph, &prev, params));
            carry = StateCarry::Rebuilt;
        }
        let touched = self.sorted_touched();
        // txallo-lint: allow(lib-unwrap) — the branch directly above rebuilds the session when it is None
        let session = self.session.as_mut().expect("ensured above");
        // Only snapshot rows (touched ∪ new) can move, so diffing the
        // touched set is complete — and keeps the boundary `O(|V̂|)`.
        let before: Vec<u32> = touched
            .iter()
            .map(|&v| {
                session
                    .labels()
                    .get(v as usize)
                    .copied()
                    .unwrap_or(UNASSIGNED)
            })
            .collect();
        let outcome = session.update(graph, &touched, params);
        let after = session.labels();
        let mut moves = Vec::new();
        for (&v, &old) in touched.iter().zip(&before) {
            let new = after[v as usize];
            if new != old {
                moves.push(AccountMove {
                    node: v,
                    from: (old != UNASSIGNED).then_some(ShardId(old)),
                    to: ShardId(new),
                });
            }
        }
        AllocationUpdate {
            shard_count: params.shards,
            len: graph.node_count(),
            kind: UpdateKind::Adaptive,
            path: Some(outcome.path),
            carry,
            moves,
        }
    }

    /// The forced-global path: re-solve with G-TxAllo, rebuild the
    /// session, diff everything.
    fn global_epoch(&mut self, graph: &TxGraph, params: &TxAlloParams) -> AllocationUpdate {
        let old = self.allocation();
        let fresh = GTxAllo::new(params.clone()).allocate_graph(graph);
        let moves = diff_full(old.labels(), fresh.labels());
        self.session = Some(AtxAlloSession::new(graph, &fresh, params));
        self.fallback = None;
        self.touched.clear();
        AllocationUpdate {
            shard_count: params.shards,
            len: graph.node_count(),
            kind: UpdateKind::Global,
            path: None,
            carry: StateCarry::Rebuilt,
            moves,
        }
    }
}

impl StreamingAllocator for AdaptiveStream {
    fn name(&self) -> &str {
        "A-TxAllo"
    }

    fn begin(&mut self, graph: &TxGraph, params: &TxAlloParams) -> Allocation {
        self.params = params.clone();
        let initial = GTxAllo::new(params.clone()).allocate_graph(graph);
        self.session = Some(AtxAlloSession::new(graph, &initial, params));
        self.fallback = None;
        self.touched.clear();
        self.rescaled_this_epoch = false;
        self.began = true;
        initial
    }

    fn on_block(&mut self, graph: &TxGraph, block: &Block) {
        assert!(self.began, "call begin() before serving blocks");
        collect_touched(graph, block, &mut self.touched);
        // A warm session folds the block's clique-expansion deltas into
        // its aggregates; an invalidated one rebuilds from the
        // post-ingestion graph at the boundary, where the deltas are
        // already counted.
        if let Some(session) = self.session.as_mut() {
            session.apply_block(graph, block);
        }
    }

    fn on_block_nodes(&mut self, _graph: &TxGraph, _block: &Block, nodes: &BlockNodes) {
        assert!(self.began, "call begin() before serving blocks");
        // The interned fast path: the touched ids and every transaction's
        // dense node set come straight from ingestion — no account
        // re-hashing on the serving surface at all.
        for &v in nodes.touched() {
            self.touched.mark(v);
        }
        let threads = self.params.threads;
        if let Some(session) = self.session.as_mut() {
            session.apply_block_nodes_threaded(nodes, threads);
        }
    }

    fn on_reweight(&mut self, factor: f64) {
        if let Some(session) = self.session.as_mut() {
            session.apply_decay(factor);
            self.rescaled_this_epoch = true;
        }
    }

    fn end_epoch(&mut self, graph: &TxGraph, kind: EpochKind) -> AllocationUpdate {
        assert!(self.began, "call begin() before closing epochs");
        self.params = self.params.rescaled_for_graph(graph);
        let params = self.params.clone();
        let update = match kind {
            EpochKind::Global => self.global_epoch(graph, &params),
            EpochKind::Scheduled | EpochKind::Adaptive => self.adaptive_epoch(graph, &params),
        };
        self.rescaled_this_epoch = false;
        update
    }

    fn allocation(&self) -> Allocation {
        match (&self.session, &self.fallback) {
            (Some(session), _) => session.allocation(),
            (None, Some(fallback)) => fallback.clone(),
            (None, None) => panic!("call begin() before reading the allocation"),
        }
    }

    fn export_state(&self) -> Option<StreamState> {
        if !self.began {
            return None;
        }
        let shards = self.params.shards;
        let community = self.session.as_ref().map(|session| {
            let state = session.state();
            CommunityAggregates {
                intra: (0..shards as u32).map(|c| state.intra(c)).collect(),
                cut: (0..shards as u32).map(|c| state.cut(c)).collect(),
                eta: state.eta(),
                capacity: state.capacity(),
            }
        });
        Some(StreamState {
            epoch: 0,
            shards,
            labels: self.allocation().labels().to_vec(),
            community,
        })
    }

    fn import_state(
        &mut self,
        state: &StreamState,
        graph: &TxGraph,
        params: &TxAlloParams,
    ) -> Option<StateCarry> {
        if state.shards != params.shards || state.labels.len() != graph.node_count() {
            return None;
        }
        self.params = params.clone();
        self.touched = EpochTouched::default();
        self.rescaled_this_epoch = false;
        self.began = true;
        match &state.community {
            Some(agg) => {
                // The warm path: adopt the checkpointed accumulations
                // bit-for-bit; the session resumes exactly where the
                // uninterrupted one would be.
                let aggregates = CommunityState::from_raw(
                    agg.intra.clone(),
                    agg.cut.clone(),
                    agg.eta,
                    agg.capacity,
                );
                self.session = Some(AtxAlloSession::from_parts(
                    state.shards,
                    state.labels.clone(),
                    aggregates,
                ));
                self.fallback = None;
                Some(StateCarry::Warm)
            }
            None => {
                // Labels-only state: serve from the labels and rebuild
                // the aggregates at the next boundary — a degraded but
                // sound resume.
                self.session = None;
                self.fallback = Some(Allocation::new(state.labels.clone(), state.shards));
                Some(StateCarry::Rebuilt)
            }
        }
    }

    fn consistency_error(&self, graph: &TxGraph) -> Option<f64> {
        self.session
            .as_ref()
            .map(|session| session.consistency_error(graph))
    }

    fn invalidate_state(&mut self) -> bool {
        let had_session = self.session.is_some();
        self.invalidate();
        had_session
    }

    fn state_bytes(&self) -> usize {
        let session = self.session.as_ref().map_or(0, |s| s.approx_bytes());
        let fallback = self
            .fallback
            .as_ref()
            .map_or(0, |a| std::mem::size_of_val(a.labels()));
        session + fallback + self.touched.approx_bytes()
    }
}

// ---------------------------------------------------------------------------
// GlobalStream
// ---------------------------------------------------------------------------

/// The batch-solver signature [`GlobalStream`] re-runs each epoch.
pub type BatchSolver = Box<dyn Fn(&TxGraph, &TxAlloParams) -> Allocation + Send + Sync>;

/// A batch allocator served epoch-wise: re-solve on the whole accumulated
/// graph at every boundary and emit the diff against the previous labels.
///
/// This is how the stateless baselines (hash, METIS) and the pure
/// "Global Method" curve of Fig. 9 join the epoch-driven comparison.
pub struct GlobalStream {
    name: String,
    solver: BatchSolver,
    params: TxAlloParams,
    labels: Vec<u32>,
    began: bool,
}

impl std::fmt::Debug for GlobalStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GlobalStream")
            .field("name", &self.name)
            .field("nodes", &self.labels.len())
            .finish_non_exhaustive()
    }
}

impl GlobalStream {
    /// Creates the stream around `solver` (re-run with per-epoch rescaled
    /// parameters).
    pub fn new(name: impl Into<String>, params: TxAlloParams, solver: BatchSolver) -> Self {
        Self {
            name: name.into(),
            solver,
            params,
            labels: Vec::new(),
            began: false,
        }
    }

    fn solve(&mut self, graph: &TxGraph) -> Allocation {
        let allocation = (self.solver)(graph, &self.params);
        assert_eq!(
            allocation.len(),
            graph.node_count(),
            "batch solver must label every node"
        );
        self.labels.clear();
        self.labels.extend_from_slice(allocation.labels());
        allocation
    }
}

impl StreamingAllocator for GlobalStream {
    fn name(&self) -> &str {
        &self.name
    }

    fn begin(&mut self, graph: &TxGraph, params: &TxAlloParams) -> Allocation {
        self.params = params.clone();
        self.began = true;
        self.solve(graph)
    }

    fn on_block(&mut self, _graph: &TxGraph, _block: &Block) {
        // Stateless: everything is re-derived from the graph at the
        // boundary.
    }

    fn end_epoch(&mut self, graph: &TxGraph, _kind: EpochKind) -> AllocationUpdate {
        assert!(self.began, "call begin() before closing epochs");
        self.params = self.params.rescaled_for_graph(graph);
        let old = std::mem::take(&mut self.labels);
        let fresh = self.solve(graph);
        AllocationUpdate {
            shard_count: self.params.shards,
            len: fresh.len(),
            kind: UpdateKind::Global,
            path: None,
            carry: StateCarry::Stateless,
            moves: diff_full(&old, fresh.labels()),
        }
    }

    fn allocation(&self) -> Allocation {
        assert!(self.began, "call begin() before reading the allocation");
        Allocation::new(self.labels.clone(), self.params.shards)
    }

    fn export_state(&self) -> Option<StreamState> {
        if !self.began {
            return None;
        }
        // A batch stream's only serving state is its published labels —
        // everything else is re-derived from the graph at each boundary.
        Some(StreamState {
            epoch: 0,
            shards: self.params.shards,
            labels: self.labels.clone(),
            community: None,
        })
    }

    fn import_state(
        &mut self,
        state: &StreamState,
        graph: &TxGraph,
        params: &TxAlloParams,
    ) -> Option<StateCarry> {
        if state.shards != params.shards || state.labels.len() != graph.node_count() {
            return None;
        }
        self.params = params.clone();
        self.labels = state.labels.clone();
        self.began = true;
        Some(StateCarry::Stateless)
    }

    fn state_bytes(&self) -> usize {
        self.labels.capacity() * std::mem::size_of::<u32>()
    }
}

// ---------------------------------------------------------------------------
// HybridStream
// ---------------------------------------------------------------------------

/// The paper's hybrid serving policy as a combinator: G-TxAllo every `τ₂`
/// epochs (per the [`HybridSchedule`]), A-TxAllo otherwise — subsuming the
/// schedule logic the simulation driver used to interpret by hand.
#[derive(Debug, Clone)]
pub struct HybridStream {
    inner: AdaptiveStream,
    schedule: HybridSchedule,
    epoch: u64,
    /// Whether this epoch's blocks were withheld from the inner adaptive
    /// stream (scheduled-global epochs skip the fold as an optimization).
    /// While true, only a global close is sound — a forced
    /// [`EpochKind::Adaptive`] escalates to global, per the trait's
    /// fall-back-to-native contract.
    blocks_withheld: bool,
}

impl HybridStream {
    /// Creates the stream with the given refresh policy.
    pub fn new(params: TxAlloParams, schedule: HybridSchedule) -> Self {
        Self {
            inner: AdaptiveStream::new(params),
            schedule,
            epoch: 0,
            blocks_withheld: false,
        }
    }

    /// The refresh policy in use.
    pub fn schedule(&self) -> HybridSchedule {
        self.schedule
    }

    /// Epochs closed since [`begin`](StreamingAllocator::begin).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl StreamingAllocator for HybridStream {
    fn name(&self) -> &str {
        match self.schedule {
            HybridSchedule::AlwaysGlobal => "G-TxAllo",
            HybridSchedule::AlwaysAdaptive => "A-TxAllo",
            HybridSchedule::Hybrid { .. } => "TxAllo",
        }
    }

    fn begin(&mut self, graph: &TxGraph, params: &TxAlloParams) -> Allocation {
        self.epoch = 0;
        self.blocks_withheld = false;
        self.inner.begin(graph, params)
    }

    fn on_block(&mut self, graph: &TxGraph, block: &Block) {
        // A global boundary replaces labels and session wholesale, so
        // folding this epoch's deltas into the session would be wasted
        // work — skip it (the touched set is not needed either) and
        // remember that only a global close is now sound.
        if self.schedule.is_global_epoch(self.epoch) {
            self.blocks_withheld = true;
            return;
        }
        self.inner.on_block(graph, block);
    }

    fn on_block_nodes(&mut self, graph: &TxGraph, block: &Block, nodes: &BlockNodes) {
        if self.schedule.is_global_epoch(self.epoch) {
            self.blocks_withheld = true;
            return;
        }
        self.inner.on_block_nodes(graph, block, nodes);
    }

    fn on_reweight(&mut self, factor: f64) {
        if self.schedule.is_global_epoch(self.epoch) {
            self.blocks_withheld = true;
            return;
        }
        self.inner.on_reweight(factor);
    }

    fn end_epoch(&mut self, graph: &TxGraph, kind: EpochKind) -> AllocationUpdate {
        let effective = match kind {
            EpochKind::Scheduled => {
                if self.schedule.is_global_epoch(self.epoch) {
                    EpochKind::Global
                } else {
                    EpochKind::Adaptive
                }
            }
            // The inner stream never saw this epoch's blocks (they were
            // withheld anticipating a scheduled global close), so an
            // adaptive sweep would run on a stale session with an empty
            // touched set. Fall back to the native path for this state —
            // a global re-solve — and report it in `update.kind`.
            EpochKind::Adaptive if self.blocks_withheld => EpochKind::Global,
            forced => forced,
        };
        let update = self.inner.end_epoch(graph, effective);
        self.epoch += 1;
        self.blocks_withheld = false;
        update
    }

    fn allocation(&self) -> Allocation {
        self.inner.allocation()
    }

    fn export_state(&self) -> Option<StreamState> {
        // Checkpoints happen at epoch boundaries, never inside a
        // withheld-blocks window.
        debug_assert!(!self.blocks_withheld, "export only at epoch boundaries");
        let mut state = self.inner.export_state()?;
        state.epoch = self.epoch;
        Some(state)
    }

    fn import_state(
        &mut self,
        state: &StreamState,
        graph: &TxGraph,
        params: &TxAlloParams,
    ) -> Option<StateCarry> {
        let carry = self.inner.import_state(state, graph, params)?;
        // The epoch counter is what phases the schedule's global
        // refreshes; restoring it keeps `is_global_epoch` firing on the
        // same absolute epochs as the uninterrupted run.
        self.epoch = state.epoch;
        self.blocks_withheld = false;
        Some(carry)
    }

    fn consistency_error(&self, graph: &TxGraph) -> Option<f64> {
        self.inner.consistency_error(graph)
    }

    fn invalidate_state(&mut self) -> bool {
        self.inner.invalidate_state()
    }

    fn state_bytes(&self) -> usize {
        self.inner.state_bytes()
    }
}

// ---------------------------------------------------------------------------
// SchedulerStream
// ---------------------------------------------------------------------------

/// The Shard Scheduler baseline served epoch-wise. The scheduler is
/// transaction-level by design, so streaming is its native mode:
/// [`on_block`](StreamingAllocator::on_block) runs the published decision
/// rules on every transaction as it arrives.
///
/// [`begin`](StreamingAllocator::begin) has no transaction history (only
/// the warm-up *graph*), so it warm-starts with a deterministic
/// approximation: accounts are placed greedily into the least-loaded
/// shard in node-id order — which is first-appearance order, i.e. the
/// order rule 1 would have seen them — weighted by their incident graph
/// weight, and historical affinities are seeded from the placed adjacency.
#[derive(Debug)]
pub struct SchedulerStream {
    state: Option<SchedulerState>,
    published: Vec<u32>,
    shards: usize,
}

impl SchedulerStream {
    /// Creates the stream; [`begin`](StreamingAllocator::begin) must run
    /// before epochs are served.
    pub fn new() -> Self {
        Self {
            state: None,
            published: Vec::new(),
            shards: 0,
        }
    }
}

impl Default for SchedulerStream {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingAllocator for SchedulerStream {
    fn name(&self) -> &str {
        "Shard Scheduler"
    }

    fn begin(&mut self, graph: &TxGraph, params: &TxAlloParams) -> Allocation {
        let config = SchedulerConfig {
            shards: params.shards,
            eta: params.eta,
            capacity: params.capacity,
            buffer_ratio: 1.0,
        };
        let mut state = SchedulerState::new(config);
        state.seed_from_graph(graph);
        self.shards = params.shards;
        self.published = state.labels().to_vec();
        let allocation = Allocation::new(self.published.clone(), self.shards);
        self.state = Some(state);
        allocation
    }

    fn on_block(&mut self, graph: &TxGraph, block: &Block) {
        let state = self.state.as_mut().expect("call begin() first"); // txallo-lint: allow(lib-unwrap) — documented trait contract: begin() runs before on_block/end_epoch
        for tx in block.transactions() {
            state.process_transaction(graph, tx);
        }
    }

    fn on_reweight(&mut self, factor: f64) {
        // The scheduler's loads and affinities are accrued from the same
        // history the decay rescales; scale them to match, or the
        // per-epoch capacity refresh (from the decayed `|T|`) would be
        // compared against undecayed loads.
        if let Some(state) = self.state.as_mut() {
            state.scale_history(factor);
        }
    }

    fn end_epoch(&mut self, graph: &TxGraph, _kind: EpochKind) -> AllocationUpdate {
        // txallo-lint: allow(lib-unwrap) — documented trait contract: begin() runs before on_block/end_epoch
        let state = self.state.as_mut().expect("call begin() first");
        // λ = |T|/k grows with the accumulated history; refresh the
        // migration capacity buffer once per epoch, like the other
        // streams refresh their parameters.
        state.set_capacity(graph.total_weight() / self.shards as f64);
        state.ensure_nodes(graph.node_count());
        let moves = diff_full(&self.published, state.labels());
        self.published.clear();
        self.published.extend_from_slice(state.labels());
        AllocationUpdate {
            shard_count: self.shards,
            len: self.published.len(),
            kind: UpdateKind::Adaptive,
            path: None,
            carry: StateCarry::Warm,
            moves,
        }
    }

    fn allocation(&self) -> Allocation {
        assert!(self.state.is_some(), "call begin() first");
        Allocation::new(self.published.clone(), self.shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txallo_model::{AccountId, Transaction};

    fn clique_graph() -> TxGraph {
        let mut g = TxGraph::new();
        for base in [0u64, 10] {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    g.ingest_transaction(&Transaction::transfer(
                        AccountId(base + i),
                        AccountId(base + j),
                    ));
                }
            }
        }
        g
    }

    fn epoch_block(h: u64, pairs: &[(u64, u64)]) -> Block {
        Block::new(
            h,
            pairs
                .iter()
                .map(|&(a, b)| Transaction::transfer(AccountId(a), AccountId(b)))
                .collect(),
        )
    }

    #[test]
    fn hybrid_schedule_fires_like_the_paper() {
        let s = HybridSchedule::Hybrid { global_gap: 20 };
        assert!(!s.is_global_epoch(0), "warm-up provided the mapping");
        assert!(!s.is_global_epoch(19));
        assert!(s.is_global_epoch(20));
        assert!(!s.is_global_epoch(21));
        assert!(s.is_global_epoch(40));
        assert!((0..5).all(|e| HybridSchedule::AlwaysGlobal.is_global_epoch(e)));
        assert!((0..100).all(|e| !HybridSchedule::AlwaysAdaptive.is_global_epoch(e)));
        let clamped = HybridSchedule::Hybrid { global_gap: 0 };
        assert!(clamped.is_global_epoch(1), "zero gap is clamped to 1");
    }

    #[test]
    fn adaptive_stream_matches_bare_session() {
        // The stream must reproduce the session's trajectory exactly — it
        // only owns lifecycle + diffing, never the math.
        let mut g1 = clique_graph();
        let mut g2 = clique_graph();
        let params = TxAlloParams::for_graph(&g1, 2);

        let mut stream = AdaptiveStream::new(params.clone());
        let initial = stream.begin(&g1, &params);
        let mut session = AtxAlloSession::new(&g2, &initial, &params);
        let mut mirror = initial;

        let epochs: Vec<Vec<(u64, u64)>> = vec![
            vec![(100, 0), (100, 1), (3, 12)],
            vec![(100, 2), (101, 100), (13, 14)],
            vec![(0, 10), (101, 11), (200, 200)],
        ];
        for (h, pairs) in epochs.iter().enumerate() {
            let block = epoch_block(h as u64, pairs);
            g1.ingest_block(&block);
            stream.on_block(&g1, &block);
            let update = stream.end_epoch(&g1, EpochKind::Scheduled);
            mirror.apply_update(&update);

            let touched = g2.ingest_block(&block);
            session.apply_block(&g2, &block);
            let params = TxAlloParams::for_graph(&g2, 2);
            let expect = session.update(&g2, &touched, &params);

            assert_eq!(mirror, expect.allocation, "epoch {h} diverged");
            assert_eq!(mirror, stream.allocation(), "diffs out of sync");
            assert_eq!(update.carry, StateCarry::Warm);
        }
    }

    #[test]
    fn interned_block_path_matches_rehashing_path_exactly() {
        // `on_block_nodes` (dense ids from ingestion, stamp-set touched
        // collection, zero re-hashing) must reproduce `on_block`'s
        // trajectory exactly — same diffs, same labels, same carry — for
        // both the adaptive and the hybrid stream.
        for schedule in [
            HybridSchedule::AlwaysAdaptive,
            HybridSchedule::Hybrid { global_gap: 2 },
        ] {
            let mut g1 = clique_graph();
            let mut g2 = clique_graph();
            let params = TxAlloParams::for_graph(&g1, 2);
            let mut by_nodes = HybridStream::new(params.clone(), schedule);
            let mut by_accounts = HybridStream::new(params.clone(), schedule);
            let mut m1 = by_nodes.begin(&g1, &params);
            let mut m2 = by_accounts.begin(&g2, &params);

            let epochs: Vec<Vec<(u64, u64)>> = vec![
                vec![(100, 0), (100, 1), (3, 12), (40, 40)],
                vec![(100, 2), (101, 100), (13, 14)],
                vec![(0, 10), (101, 11), (200, 200)],
                vec![(200, 0), (200, 14)],
            ];
            for (h, pairs) in epochs.iter().enumerate() {
                let block = epoch_block(h as u64, pairs);
                let nodes = g1.ingest_block_nodes(&block);
                by_nodes.on_block_nodes(&g1, &block, &nodes);
                g2.ingest_block(&block);
                by_accounts.on_block(&g2, &block);

                let u1 = by_nodes.end_epoch(&g1, EpochKind::Scheduled);
                let u2 = by_accounts.end_epoch(&g2, EpochKind::Scheduled);
                assert_eq!(u1.moves, u2.moves, "epoch {h} ({schedule:?}) diffs");
                assert_eq!(u1.kind, u2.kind);
                assert_eq!(u1.carry, u2.carry);
                m1.apply_update(&u1);
                m2.apply_update(&u2);
                assert_eq!(m1, m2, "epoch {h} ({schedule:?}) labels diverged");
            }
        }
    }

    #[test]
    fn hybrid_runs_global_on_schedule_and_diffs_stay_consistent() {
        let mut g = clique_graph();
        let params = TxAlloParams::for_graph(&g, 2);
        let mut stream =
            HybridStream::new(params.clone(), HybridSchedule::Hybrid { global_gap: 2 });
        let mut mirror = stream.begin(&g, &params);

        for h in 0..5u64 {
            let block = epoch_block(h, &[(300 + h, h), (h, h + 10)]);
            g.ingest_block(&block);
            stream.on_block(&g, &block);
            let update = stream.end_epoch(&g, EpochKind::Scheduled);
            let expected_kind = if h > 0 && h % 2 == 0 {
                UpdateKind::Global
            } else {
                UpdateKind::Adaptive
            };
            assert_eq!(update.kind, expected_kind, "epoch {h}");
            if update.kind == UpdateKind::Global {
                assert_eq!(update.carry, StateCarry::Rebuilt);
                assert!(update.path.is_none());
            } else {
                assert!(update.path.is_some());
            }
            mirror.apply_update(&update);
            assert_eq!(mirror, stream.allocation(), "epoch {h} diff broken");
        }
    }

    #[test]
    fn forced_adaptive_on_a_withheld_global_epoch_escalates() {
        // On a scheduled-global epoch the hybrid stream withholds blocks
        // from its inner session; a forced Adaptive close would then run
        // on a stale session with an empty touched set, so the stream
        // must fall back to its sound native path and say so.
        let mut g = clique_graph();
        let params = TxAlloParams::for_graph(&g, 2);
        let mut stream = HybridStream::new(params.clone(), HybridSchedule::AlwaysGlobal);
        let mut mirror = stream.begin(&g, &params);
        let block = epoch_block(0, &[(900, 0), (901, 902)]);
        g.ingest_block(&block);
        stream.on_block(&g, &block); // withheld (global epoch)
        let update = stream.end_epoch(&g, EpochKind::Adaptive);
        assert_eq!(update.kind, UpdateKind::Global, "must escalate");
        mirror.apply_update(&update);
        assert_eq!(mirror, stream.allocation(), "new accounts all labelled");
    }

    #[test]
    fn scheduler_stream_decays_its_history_with_the_graph() {
        let mut g = clique_graph();
        let params = TxAlloParams::for_graph(&g, 3);
        let mut stream = SchedulerStream::new();
        let mut mirror = stream.begin(&g, &params);
        // Several strongly-decayed epochs: capacity shrinks with |T|; the
        // scheduler's loads must shrink with it or migration (and the
        // co-location it produces) would be disabled forever.
        for h in 0..4u64 {
            g.apply_decay(0.3);
            stream.on_reweight(0.3);
            let block = epoch_block(h, &[(700, 701); 6]);
            g.ingest_block(&block);
            stream.on_block(&g, &block);
            let update = stream.end_epoch(&g, EpochKind::Scheduled);
            mirror.apply_update(&update);
        }
        let n700 = g.node_of(AccountId(700)).unwrap();
        let n701 = g.node_of(AccountId(701)).unwrap();
        assert_eq!(
            mirror.shard_of(n700),
            mirror.shard_of(n701),
            "decayed capacity must still leave migration headroom"
        );
    }

    #[test]
    fn decay_is_folded_not_rebuilt() {
        let mut g = clique_graph();
        let params = TxAlloParams::for_graph(&g, 2);
        let mut stream = AdaptiveStream::new(params.clone());
        stream.begin(&g, &params);

        g.apply_decay(0.5);
        stream.on_reweight(0.5);
        let block = epoch_block(0, &[(100, 0), (100, 1)]);
        g.ingest_block(&block);
        stream.on_block(&g, &block);
        let update = stream.end_epoch(&g, EpochKind::Scheduled);
        assert_eq!(
            update.carry,
            StateCarry::WarmRescaled,
            "decay must fold into the warm session, not drop it"
        );
        // And the folded aggregates must still track a recomputation.
        let next = epoch_block(1, &[(5, 6)]);
        g.ingest_block(&next);
        stream.on_block(&g, &next);
        let update = stream.end_epoch(&g, EpochKind::Scheduled);
        assert_eq!(update.carry, StateCarry::Warm);
    }

    #[test]
    fn invalidate_forces_rebuild() {
        let mut g = clique_graph();
        let params = TxAlloParams::for_graph(&g, 2);
        let mut stream = AdaptiveStream::new(params.clone());
        let before = stream.begin(&g, &params);
        stream.invalidate();
        assert_eq!(stream.allocation(), before, "labels survive invalidation");
        let block = epoch_block(0, &[(100, 0)]);
        g.ingest_block(&block);
        stream.on_block(&g, &block);
        let update = stream.end_epoch(&g, EpochKind::Scheduled);
        assert_eq!(update.carry, StateCarry::Rebuilt);
    }

    #[test]
    fn global_stream_reports_full_diffs() {
        let mut g = clique_graph();
        let params = TxAlloParams::for_graph(&g, 4);
        let mut stream = GlobalStream::new(
            "Random",
            params.clone(),
            Box::new(|g, p| crate::HashAllocator::new(p.shards).allocate_graph(g)),
        );
        let mut mirror = stream.begin(&g, &params);
        let block = epoch_block(0, &[(500, 0), (501, 502)]);
        g.ingest_block(&block);
        stream.on_block(&g, &block);
        let update = stream.end_epoch(&g, EpochKind::Scheduled);
        assert_eq!(update.kind, UpdateKind::Global);
        assert_eq!(update.carry, StateCarry::Stateless);
        // Hash labels are a pure function of the account id: existing
        // accounts never move, so the diff is placements only.
        assert_eq!(update.migrations(), 0);
        assert_eq!(update.placements(), 3);
        mirror.apply_update(&update);
        assert_eq!(mirror, stream.allocation());
    }

    #[test]
    fn scheduler_stream_places_and_migrates() {
        let mut g = clique_graph();
        let params = TxAlloParams::for_graph(&g, 3);
        let mut stream = SchedulerStream::new();
        let mut mirror = stream.begin(&g, &params);
        assert_eq!(mirror.len(), g.node_count());

        // A new pair transacting heavily lands together eventually.
        for h in 0..3u64 {
            let block = epoch_block(h, &[(700, 701), (700, 701), (700, 701)]);
            g.ingest_block(&block);
            stream.on_block(&g, &block);
            let update = stream.end_epoch(&g, EpochKind::Scheduled);
            mirror.apply_update(&update);
            assert_eq!(mirror, stream.allocation(), "epoch {h}");
        }
        let n700 = g.node_of(AccountId(700)).unwrap();
        let n701 = g.node_of(AccountId(701)).unwrap();
        assert_eq!(
            mirror.shard_of(n700),
            mirror.shard_of(n701),
            "frequent partners co-locate"
        );
    }

    #[test]
    fn exported_state_resumes_bit_identically() {
        // Run a hybrid stream for two epochs, checkpoint at the boundary,
        // restore into a fresh stream, then drive both side by side: every
        // later epoch must produce identical diffs and identical labels —
        // the warm-resume contract the chain service builds on.
        let mut g = clique_graph();
        let params = TxAlloParams::for_graph(&g, 2);
        let schedule = HybridSchedule::Hybrid { global_gap: 3 };
        let mut live = HybridStream::new(params.clone(), schedule);
        live.begin(&g, &params);
        for h in 0..2u64 {
            let block = epoch_block(h, &[(100 + h, h), (h, h + 10)]);
            g.ingest_block(&block);
            live.on_block(&g, &block);
            live.end_epoch(&g, EpochKind::Scheduled);
        }

        let state = live.export_state().expect("adaptive streams checkpoint");
        assert_eq!(state.epoch, 2);
        assert!(state.community.is_some(), "warm session exports aggregates");

        let mut resumed = HybridStream::new(params.clone(), schedule);
        let carry = resumed
            .import_state(&state, &g, &params.rescaled_for_graph(&g))
            .expect("state fits the graph");
        assert_eq!(carry, StateCarry::Warm);
        let err = resumed.consistency_error(&g).expect("session restored");
        assert!(err < 1e-9, "restored aggregates diverge by {err}");

        // Epoch 3 is the scheduled global refresh: phase must be preserved.
        for h in 2..6u64 {
            let block = epoch_block(h, &[(200 + h, h), (h, 2 * h + 1)]);
            g.ingest_block(&block);
            live.on_block(&g, &block);
            resumed.on_block(&g, &block);
            let a = live.end_epoch(&g, EpochKind::Scheduled);
            let b = resumed.end_epoch(&g, EpochKind::Scheduled);
            assert_eq!(a.moves, b.moves, "epoch {h} diffs diverged");
            assert_eq!(a.kind, b.kind, "epoch {h} schedule phase diverged");
            assert_eq!(
                live.allocation().labels(),
                resumed.allocation().labels(),
                "epoch {h} labels diverged"
            );
        }
    }

    #[test]
    fn labels_only_state_resumes_as_rebuilt() {
        let mut g = clique_graph();
        let params = TxAlloParams::for_graph(&g, 2);
        let mut stream = AdaptiveStream::new(params.clone());
        stream.begin(&g, &params);
        assert!(stream.invalidate_state(), "warm session was dropped");
        assert!(!stream.invalidate_state(), "second drop is a no-op");
        let state = stream.export_state().unwrap();
        assert!(state.community.is_none(), "invalidated ⇒ labels only");
        assert!(stream.consistency_error(&g).is_none());

        let mut resumed = AdaptiveStream::new(params.clone());
        let carry = resumed
            .import_state(&state, &g, &params.rescaled_for_graph(&g))
            .unwrap();
        assert_eq!(carry, StateCarry::Rebuilt);
        assert_eq!(resumed.allocation().labels(), state.labels.as_slice());
        // The next boundary rebuilds the aggregates and reports it.
        let block = epoch_block(0, &[(100, 0)]);
        g.ingest_block(&block);
        resumed.on_block(&g, &block);
        let update = resumed.end_epoch(&g, EpochKind::Scheduled);
        assert_eq!(update.carry, StateCarry::Rebuilt);
    }

    #[test]
    fn mismatched_state_is_rejected_not_adopted() {
        let g = clique_graph();
        let params = TxAlloParams::for_graph(&g, 2);
        let mut stream = AdaptiveStream::new(params.clone());
        stream.begin(&g, &params);
        let state = stream.export_state().unwrap();

        // Wrong shard count.
        let other = TxAlloParams::for_graph(&g, 3);
        let mut fresh = AdaptiveStream::new(other.clone());
        assert!(fresh.import_state(&state, &g, &other).is_none());
        // Wrong node count (stale labels for a grown graph).
        let mut grown = clique_graph();
        grown.ingest_transaction(&Transaction::transfer(AccountId(500), AccountId(0)));
        let mut fresh = AdaptiveStream::new(params.clone());
        assert!(fresh
            .import_state(&state, &grown, &params.rescaled_for_graph(&grown))
            .is_none());
        // Streams without checkpoint support say so instead of lying.
        assert!(SchedulerStream::new().export_state().is_none());
        let mut sched = SchedulerStream::new();
        assert!(sched.import_state(&state, &g, &params).is_none());
        assert!(!sched.invalidate_state());
    }

    #[test]
    fn degradation_ladder_is_ordered_and_printable() {
        assert!(Degradation::None < Degradation::Invalidated);
        assert!(Degradation::Invalidated < Degradation::Rebuilt);
        assert!(Degradation::Rebuilt < Degradation::HashFallback);
        assert_eq!(Degradation::HashFallback.to_string(), "hash-fallback");
        assert_eq!(Degradation::None.to_string(), "none");
    }

    #[test]
    fn global_stream_state_round_trips_labels() {
        let mut g = clique_graph();
        let params = TxAlloParams::for_graph(&g, 4);
        let solver = |g: &TxGraph, p: &TxAlloParams| -> Allocation {
            crate::HashAllocator::new(p.shards).allocate_graph(g)
        };
        let mut stream = GlobalStream::new("Random", params.clone(), Box::new(solver));
        stream.begin(&g, &params);
        let block = epoch_block(0, &[(600, 0)]);
        g.ingest_block(&block);
        stream.on_block(&g, &block);
        stream.end_epoch(&g, EpochKind::Scheduled);

        let state = stream.export_state().unwrap();
        let mut resumed = GlobalStream::new("Random", params.clone(), Box::new(solver));
        let carry = resumed
            .import_state(&state, &g, &params.rescaled_for_graph(&g))
            .unwrap();
        assert_eq!(carry, StateCarry::Stateless);
        assert_eq!(resumed.allocation(), stream.allocation());
    }

    #[test]
    fn empty_graph_begin_is_fine() {
        let g = TxGraph::new();
        let params = TxAlloParams::for_total_weight(0.0, 2);
        let mut stream = HybridStream::new(params.clone(), HybridSchedule::AlwaysAdaptive);
        let allocation = stream.begin(&g, &params);
        assert!(allocation.is_empty());
        let update = stream.end_epoch(&g, EpochKind::Scheduled);
        assert!(update.moves.is_empty());
        assert_eq!(update.len, 0);
    }
}
