//! A-TxAllo — the adaptive allocation algorithm (Algorithm 2).

use txallo_graph::{NodeId, TxGraph, WeightedGraph};
use txallo_louvain::GAIN_EPS;

use crate::allocation::Allocation;
use crate::params::TxAlloParams;
use crate::state::{CommunityState, MoveScratch, UNASSIGNED};

/// The adaptive TxAllo algorithm: starting from the previous allocation, it
/// (1) places the brand-new accounts of the freshly committed blocks and
/// (2) re-optimizes only the touched node set `V̂`, giving `O(|V̂|·k)`
/// running time — constant in chain length (§V-C).
#[derive(Debug, Clone)]
pub struct AtxAllo {
    params: TxAlloParams,
}

/// Outcome of an adaptive update.
#[derive(Debug, Clone)]
pub struct AtxAlloOutcome {
    /// The updated account-shard mapping (covers every node of the graph).
    pub allocation: Allocation,
    /// How many brand-new accounts were placed (phase 1).
    pub new_nodes: usize,
    /// Optimization sweeps over `V̂` (phase 2).
    pub sweeps: usize,
    /// Total throughput gain accumulated in phase 2.
    pub total_gain: f64,
    /// Node moves committed across both phases.
    pub moves: usize,
}

impl AtxAllo {
    /// Creates the adaptive allocator.
    pub fn new(params: TxAlloParams) -> Self {
        Self { params }
    }

    /// The hyper-parameters in use.
    pub fn params(&self) -> &TxAlloParams {
        &self.params
    }

    /// Updates `previous` after the graph has ingested new blocks.
    ///
    /// * `graph` — the transaction graph *after* ingestion;
    /// * `previous` — the allocation produced for the graph before
    ///   ingestion (its labels cover a prefix of the node ids, because the
    ///   interner only appends);
    /// * `touched` — the node set `V̂` returned by
    ///   [`TxGraph::ingest_block`] for the new blocks.
    pub fn update(
        &self,
        graph: &TxGraph,
        previous: &Allocation,
        touched: &[NodeId],
    ) -> AtxAlloOutcome {
        let n = graph.node_count();
        let k = self.params.shards;
        assert_eq!(
            previous.shard_count(),
            k,
            "shard count cannot change between updates"
        );
        assert!(
            previous.len() <= n,
            "previous allocation labels unknown nodes"
        );

        // Extend the label vector: new nodes start unassigned.
        let mut labels: Vec<u32> = Vec::with_capacity(n);
        labels.extend_from_slice(previous.labels());
        labels.resize(n, UNASSIGNED);

        let mut state =
            CommunityState::from_labels(graph, &labels, k, self.params.eta, self.params.capacity);
        let mut scratch = MoveScratch::default();

        // Deterministic sweep order over V̂: canonical account-hash order.
        let mut order: Vec<NodeId> = touched.to_vec();
        order.sort_unstable_by_key(|&v| {
            let a = graph.account(v);
            (a.address_hash(), a.0)
        });

        // ---- Phase 1 (lines 1–8): place brand-new nodes.
        let mut new_nodes = 0usize;
        let mut moves = 0usize;
        for &v in &order {
            if labels[v as usize] != UNASSIGNED {
                continue;
            }
            new_nodes += 1;
            state.gather_links(graph, &labels, v, &mut scratch);
            let self_w = graph.self_loop(v);
            let d_v = graph.incident_weight(v);
            // Ties (within GAIN_EPS of the running maximum gain) broken
            // toward the least-loaded community (see `GTxAllo::best_join`
            // for why this matters and for the anchoring rule).
            let mut best: Option<(u32, f64, f64)> = None; // (q, gain, sigma)
            let mut max_gain = f64::NEG_INFINITY;
            let consider =
                |q: u32, w_vq: f64, best: &mut Option<(u32, f64, f64)>, max_gain: &mut f64| {
                    let gain = state.join_gain(q, self_w, d_v, w_vq);
                    let sigma = state.sigma(q);
                    if gain > *max_gain {
                        *max_gain = gain;
                    }
                    let better = match *best {
                        None => true,
                        Some((_, bg, bs)) => {
                            bg < *max_gain - GAIN_EPS
                                || (gain >= *max_gain - GAIN_EPS && sigma < bs)
                        }
                    };
                    if better {
                        *best = Some((q, gain, sigma));
                    }
                };
            if scratch.is_empty() {
                // C_v = ∅: consider every community (lines 3–5).
                for q in 0..k as u32 {
                    consider(q, 0.0, &mut best, &mut max_gain);
                }
            } else {
                for (q, w_vq) in scratch.candidates() {
                    consider(q, w_vq, &mut best, &mut max_gain);
                }
            }
            let q = best.expect("k ≥ 1").0;
            let w_vq = scratch.weight_to(q);
            state.apply_join(q, self_w, d_v, w_vq);
            labels[v as usize] = q;
            moves += 1;
        }

        // ---- Phase 2 (lines 9–17): optimize over V̂ only.
        let mut sweeps = 0usize;
        let mut total_gain = 0.0;
        loop {
            let mut delta = 0.0;
            for &v in &order {
                let p = labels[v as usize];
                state.gather_links(graph, &labels, v, &mut scratch);
                if scratch.is_empty() || scratch.only_touches(p) {
                    continue;
                }
                let self_w = graph.self_loop(v);
                let d_v = graph.incident_weight(v);
                let w_vp = scratch.weight_to(p);
                let leave = state.leave_gain(p, self_w, d_v, w_vp);
                let mut best: Option<(u32, f64, f64)> = None;
                for (q, w_vq) in scratch.candidates() {
                    if q == p {
                        continue;
                    }
                    let gain = leave + state.join_gain(q, self_w, d_v, w_vq);
                    match best {
                        Some((_, bg, _)) if gain <= bg + GAIN_EPS => {}
                        _ => best = Some((q, gain, w_vq)),
                    }
                }
                if let Some((q, gain, w_vq)) = best {
                    if gain > 0.0 {
                        state.apply_leave(p, self_w, d_v, w_vp);
                        state.apply_join(q, self_w, d_v, w_vq);
                        labels[v as usize] = q;
                        delta += gain;
                        total_gain += gain;
                        moves += 1;
                    }
                }
            }
            sweeps += 1;
            if delta < self.params.epsilon || sweeps >= self.params.max_sweeps {
                break;
            }
        }

        AtxAlloOutcome {
            allocation: Allocation::new(labels, k),
            new_nodes,
            sweeps,
            total_gain,
            moves,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gtxallo::GTxAllo;
    use txallo_model::{AccountId, Block, Transaction};

    fn base_graph() -> TxGraph {
        let mut g = TxGraph::new();
        // Two clusters: {0..5} and {10..15}.
        for base in [0u64, 10] {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    g.ingest_transaction(&Transaction::transfer(
                        AccountId(base + i),
                        AccountId(base + j),
                    ));
                }
            }
        }
        g
    }

    #[test]
    fn new_account_joins_its_cluster() {
        let mut g = base_graph();
        let params = TxAlloParams::for_graph(&g, 2);
        let prev = GTxAllo::new(params.clone()).allocate_graph(&g);

        // New account 100 transacts heavily with cluster 0.
        let block = Block::new(
            0,
            vec![
                Transaction::transfer(AccountId(100), AccountId(0)),
                Transaction::transfer(AccountId(100), AccountId(1)),
                Transaction::transfer(AccountId(100), AccountId(2)),
            ],
        );
        let touched = g.ingest_block(&block);
        let out = AtxAllo::new(params).update(&g, &prev, &touched);
        assert_eq!(out.new_nodes, 1);
        let n100 = g.node_of(AccountId(100)).unwrap();
        let n0 = g.node_of(AccountId(0)).unwrap();
        assert_eq!(
            out.allocation.shard_of(n100),
            out.allocation.shard_of(n0),
            "account 100 must join cluster 0's shard"
        );
    }

    #[test]
    fn preserves_untouched_assignments() {
        let mut g = base_graph();
        let params = TxAlloParams::for_graph(&g, 2);
        let prev = GTxAllo::new(params.clone()).allocate_graph(&g);
        let block = Block::new(
            0,
            vec![Transaction::transfer(AccountId(200), AccountId(201))],
        );
        let touched = g.ingest_block(&block);
        let out = AtxAllo::new(params).update(&g, &prev, &touched);
        // Every pre-existing node keeps its shard (none were touched).
        for v in 0..prev.len() as NodeId {
            assert_eq!(
                out.allocation.shard_of(v),
                prev.shard_of(v),
                "node {v} moved"
            );
        }
    }

    #[test]
    fn migrating_account_follows_its_new_partners() {
        let mut g = base_graph();
        let params = TxAlloParams::for_graph(&g, 2);
        let prev = GTxAllo::new(params.clone()).allocate_graph(&g);
        let n0 = g.node_of(AccountId(0)).unwrap();
        let n10 = g.node_of(AccountId(10)).unwrap();
        assert_ne!(
            prev.shard_of(n0),
            prev.shard_of(n10),
            "clusters start apart"
        );

        // Account 0 now interacts overwhelmingly with cluster 1.
        let txs: Vec<Transaction> = (0..40)
            .map(|i| Transaction::transfer(AccountId(0), AccountId(10 + (i % 5))))
            .collect();
        let block = Block::new(0, txs);
        let touched = g.ingest_block(&block);
        let out = AtxAllo::new(params).update(&g, &prev, &touched);
        let n0_shard = out.allocation.shard_of(n0);
        assert_eq!(
            n0_shard,
            out.allocation.shard_of(n10),
            "account 0 must migrate"
        );
        assert!(out.total_gain > 0.0);
    }

    #[test]
    fn disconnected_new_account_is_still_placed() {
        let mut g = base_graph();
        let params = TxAlloParams::for_graph(&g, 2);
        let prev = GTxAllo::new(params.clone()).allocate_graph(&g);
        let block = Block::new(
            0,
            vec![Transaction::transfer(AccountId(500), AccountId(500))],
        );
        let touched = g.ingest_block(&block);
        let out = AtxAllo::new(params).update(&g, &prev, &touched);
        let n = g.node_of(AccountId(500)).unwrap();
        assert!(out.allocation.shard_of(n).index() < 2);
        assert_eq!(out.allocation.len(), g.node_count());
    }

    #[test]
    fn is_deterministic() {
        let mut g = base_graph();
        let params = TxAlloParams::for_graph(&g, 2);
        let prev = GTxAllo::new(params.clone()).allocate_graph(&g);
        let block = Block::new(
            0,
            vec![
                Transaction::transfer(AccountId(100), AccountId(0)),
                Transaction::transfer(AccountId(101), AccountId(10)),
                Transaction::transfer(AccountId(100), AccountId(101)),
            ],
        );
        let touched = g.ingest_block(&block);
        let a = AtxAllo::new(params.clone()).update(&g, &prev, &touched);
        let b = AtxAllo::new(params).update(&g, &prev, &touched);
        assert_eq!(a.allocation, b.allocation);
    }

    #[test]
    fn empty_touched_set_is_a_noop() {
        let g = base_graph();
        let params = TxAlloParams::for_graph(&g, 2);
        let prev = GTxAllo::new(params.clone()).allocate_graph(&g);
        let out = AtxAllo::new(params).update(&g, &prev, &[]);
        assert_eq!(out.allocation, prev);
        assert_eq!(out.new_nodes, 0);
        assert_eq!(out.moves, 0);
    }
}
