//! A-TxAllo — the adaptive allocation algorithm (Algorithm 2).

use txallo_graph::{NodeId, TxGraph};

use crate::allocation::Allocation;
use crate::params::TxAlloParams;
use crate::session::AtxAlloSession;

/// The adaptive TxAllo algorithm: starting from the previous allocation, it
/// (1) places the brand-new accounts of the freshly committed blocks and
/// (2) re-optimizes only the touched node set `V̂`, giving `O(|V̂|·k)`
/// running time — constant in chain length (§V-C).
///
/// The epoch sweep never runs on the mutable hash-map adjacency: the
/// touched-set neighborhood is frozen into a
/// [`DeltaCsr`](txallo_graph::DeltaCsr) snapshot first
/// and all sweeps iterate flat rows with stamp-based skipping (see
/// `crate::incremental`). Two snapshot routes exist — the incremental
/// delta build and the full-graph CSR fallback — chosen by
/// [`TxAlloParams::incremental_threshold`] on the touched fraction.
/// Both routes produce byte-identical allocations (golden-tested).
///
/// This type is the *stateless* entry point: each call rebuilds the
/// community aggregates from the whole graph (`O(n + m)`). A serving
/// system processing an epoch stream should hold an
/// [`AtxAlloSession`] instead, which carries the
/// aggregates across epochs; every method here simply opens a throwaway
/// session and runs one update through it.
#[derive(Debug, Clone)]
pub struct AtxAllo {
    params: TxAlloParams,
}

/// Which snapshot route an adaptive update took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdatePath {
    /// Delta-CSR snapshot of the touched neighborhood only
    /// ([`DeltaCsr::snapshot_touched`](txallo_graph::DeltaCsr::snapshot_touched)).
    Incremental,
    /// Whole graph frozen into a CSR, touched rows extracted
    /// ([`DeltaCsr::snapshot_full`](txallo_graph::DeltaCsr::snapshot_full)).
    Full,
}

/// Outcome of an adaptive update.
#[derive(Debug, Clone)]
pub struct AtxAlloOutcome {
    /// The updated account-shard mapping (covers every node of the graph).
    pub allocation: Allocation,
    /// How many brand-new accounts were placed (phase 1).
    pub new_nodes: usize,
    /// Optimization sweeps over `V̂` (phase 2).
    pub sweeps: usize,
    /// Total throughput gain accumulated in phase 2.
    pub total_gain: f64,
    /// Node moves committed across both phases.
    pub moves: usize,
    /// Which snapshot route produced this outcome.
    pub path: UpdatePath,
}

impl AtxAllo {
    /// Creates the adaptive allocator.
    pub fn new(params: TxAlloParams) -> Self {
        Self { params }
    }

    /// The hyper-parameters in use.
    pub fn params(&self) -> &TxAlloParams {
        &self.params
    }

    /// Updates `previous` after the graph has ingested new blocks.
    ///
    /// * `graph` — the transaction graph *after* ingestion;
    /// * `previous` — the allocation produced for the graph before
    ///   ingestion (its labels cover a prefix of the node ids, because the
    ///   interner only appends);
    /// * `touched` — the node set `V̂` returned by
    ///   [`TxGraph::ingest_block`] for the new blocks.
    ///
    /// Dispatches between [`AtxAllo::update_incremental`] and
    /// [`AtxAllo::update_full`] on the touched fraction
    /// `|V̂| / |V| ≤` [`TxAlloParams::incremental_threshold`]; the choice
    /// affects running time only, never the result.
    pub fn update(
        &self,
        graph: &TxGraph,
        previous: &Allocation,
        touched: &[NodeId],
    ) -> AtxAlloOutcome {
        AtxAlloSession::new(graph, previous, &self.params).update(graph, touched, &self.params)
    }

    /// [`AtxAllo::update`] forced onto the incremental delta-CSR route:
    /// only `V̂` and its incident edges are snapshotted.
    pub fn update_incremental(
        &self,
        graph: &TxGraph,
        previous: &Allocation,
        touched: &[NodeId],
    ) -> AtxAlloOutcome {
        AtxAlloSession::new(graph, previous, &self.params).update_with_route(
            graph,
            touched,
            &self.params,
            UpdatePath::Incremental,
        )
    }

    /// [`AtxAllo::update`] forced onto the full-recompute route: the whole
    /// graph is frozen into a CSR in global id space (the same
    /// `CsrGraph::from_graph` machinery G-TxAllo snapshots with — no
    /// renumbering, because labels are indexed by global ids), and the
    /// touched rows are extracted and swept in canonical order.
    pub fn update_full(
        &self,
        graph: &TxGraph,
        previous: &Allocation,
        touched: &[NodeId],
    ) -> AtxAlloOutcome {
        AtxAlloSession::new(graph, previous, &self.params).update_with_route(
            graph,
            touched,
            &self.params,
            UpdatePath::Full,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gtxallo::GTxAllo;
    use txallo_graph::WeightedGraph;
    use txallo_model::{AccountId, Block, Transaction};

    fn base_graph() -> TxGraph {
        let mut g = TxGraph::new();
        // Two clusters: {0..5} and {10..15}.
        for base in [0u64, 10] {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    g.ingest_transaction(&Transaction::transfer(
                        AccountId(base + i),
                        AccountId(base + j),
                    ));
                }
            }
        }
        g
    }

    #[test]
    fn new_account_joins_its_cluster() {
        let mut g = base_graph();
        let params = TxAlloParams::for_graph(&g, 2);
        let prev = GTxAllo::new(params.clone()).allocate_graph(&g);

        // New account 100 transacts heavily with cluster 0.
        let block = Block::new(
            0,
            vec![
                Transaction::transfer(AccountId(100), AccountId(0)),
                Transaction::transfer(AccountId(100), AccountId(1)),
                Transaction::transfer(AccountId(100), AccountId(2)),
            ],
        );
        let touched = g.ingest_block(&block);
        let out = AtxAllo::new(params).update(&g, &prev, &touched);
        assert_eq!(out.new_nodes, 1);
        let n100 = g.node_of(AccountId(100)).unwrap();
        let n0 = g.node_of(AccountId(0)).unwrap();
        assert_eq!(
            out.allocation.shard_of(n100),
            out.allocation.shard_of(n0),
            "account 100 must join cluster 0's shard"
        );
    }

    #[test]
    fn preserves_untouched_assignments() {
        let mut g = base_graph();
        let params = TxAlloParams::for_graph(&g, 2);
        let prev = GTxAllo::new(params.clone()).allocate_graph(&g);
        let block = Block::new(
            0,
            vec![Transaction::transfer(AccountId(200), AccountId(201))],
        );
        let touched = g.ingest_block(&block);
        let out = AtxAllo::new(params).update(&g, &prev, &touched);
        // Every pre-existing node keeps its shard (none were touched).
        for v in 0..prev.len() as NodeId {
            assert_eq!(
                out.allocation.shard_of(v),
                prev.shard_of(v),
                "node {v} moved"
            );
        }
    }

    #[test]
    fn migrating_account_follows_its_new_partners() {
        let mut g = base_graph();
        let params = TxAlloParams::for_graph(&g, 2);
        let prev = GTxAllo::new(params.clone()).allocate_graph(&g);
        let n0 = g.node_of(AccountId(0)).unwrap();
        let n10 = g.node_of(AccountId(10)).unwrap();
        assert_ne!(
            prev.shard_of(n0),
            prev.shard_of(n10),
            "clusters start apart"
        );

        // Account 0 now interacts overwhelmingly with cluster 1.
        let txs: Vec<Transaction> = (0..40)
            .map(|i| Transaction::transfer(AccountId(0), AccountId(10 + (i % 5))))
            .collect();
        let block = Block::new(0, txs);
        let touched = g.ingest_block(&block);
        let out = AtxAllo::new(params).update(&g, &prev, &touched);
        let n0_shard = out.allocation.shard_of(n0);
        assert_eq!(
            n0_shard,
            out.allocation.shard_of(n10),
            "account 0 must migrate"
        );
        assert!(out.total_gain > 0.0);
    }

    #[test]
    fn disconnected_new_account_is_still_placed() {
        let mut g = base_graph();
        let params = TxAlloParams::for_graph(&g, 2);
        let prev = GTxAllo::new(params.clone()).allocate_graph(&g);
        let block = Block::new(
            0,
            vec![Transaction::transfer(AccountId(500), AccountId(500))],
        );
        let touched = g.ingest_block(&block);
        let out = AtxAllo::new(params).update(&g, &prev, &touched);
        let n = g.node_of(AccountId(500)).unwrap();
        assert!(out.allocation.shard_of(n).index() < 2);
        assert_eq!(out.allocation.len(), g.node_count());
    }

    #[test]
    fn is_deterministic() {
        let mut g = base_graph();
        let params = TxAlloParams::for_graph(&g, 2);
        let prev = GTxAllo::new(params.clone()).allocate_graph(&g);
        let block = Block::new(
            0,
            vec![
                Transaction::transfer(AccountId(100), AccountId(0)),
                Transaction::transfer(AccountId(101), AccountId(10)),
                Transaction::transfer(AccountId(100), AccountId(101)),
            ],
        );
        let touched = g.ingest_block(&block);
        let a = AtxAllo::new(params.clone()).update(&g, &prev, &touched);
        let b = AtxAllo::new(params).update(&g, &prev, &touched);
        assert_eq!(a.allocation, b.allocation);
    }

    #[test]
    fn dispatch_follows_the_touched_fraction() {
        let mut g = base_graph();
        let params = TxAlloParams::for_graph(&g, 2);
        let prev = GTxAllo::new(params.clone()).allocate_graph(&g);
        let block = Block::new(0, vec![Transaction::transfer(AccountId(100), AccountId(0))]);
        let touched = g.ingest_block(&block); // 2 of 11 nodes
        let inc = AtxAllo::new(params.clone().with_incremental_threshold(1.0))
            .update(&g, &prev, &touched);
        assert_eq!(inc.path, UpdatePath::Incremental);
        let full = AtxAllo::new(params.with_incremental_threshold(0.0)).update(&g, &prev, &touched);
        assert_eq!(full.path, UpdatePath::Full);
        assert_eq!(
            inc.allocation, full.allocation,
            "route choice must not change the result"
        );
        assert_eq!(
            (inc.new_nodes, inc.sweeps, inc.moves),
            (full.new_nodes, full.sweeps, full.moves)
        );
    }

    #[test]
    fn empty_touched_set_is_a_noop() {
        let g = base_graph();
        let params = TxAlloParams::for_graph(&g, 2);
        let prev = GTxAllo::new(params.clone()).allocate_graph(&g);
        let out = AtxAllo::new(params).update(&g, &prev, &[]);
        assert_eq!(out.allocation, prev);
        assert_eq!(out.new_nodes, 0);
        assert_eq!(out.moves, 0);
    }
}
