//! BrokerChain-style hot-account splitting (extension).
//!
//! The paper compares against BrokerChain \[19\], whose key extra mechanism
//! is *brokers*: hyper-active accounts are split so their traffic is
//! served in the counterparty's shard, with brokers settling the split
//! state. Our Fig. 4 reproduction (and the queue-latency extension) shows
//! exactly why that matters: TxAllo's capacity-capped objective happily
//! concentrates a hub account's traffic in one shard.
//!
//! This module layers the mechanism on top of *any* allocation:
//! accounts whose incident weight exceeds `split_threshold × λ` are
//! declared split; each of their edges is then served **locally in the
//! counterparty's shard** (intra workload 1) plus a settlement surcharge
//! `settlement_cost` per unit weight, modeling the broker's periodic
//! cross-shard state reconciliation. The account's self-loops remain in
//! its home shard.

use txallo_graph::{NodeId, WeightedGraph};
use txallo_model::FxHashSet;

use crate::allocation::Allocation;
use crate::metrics::{latency_of_normalized_load, worst_latency_of_normalized_load};
use crate::params::TxAlloParams;
use crate::state::capped_throughput;

/// Configuration of the broker mechanism.
#[derive(Debug, Clone)]
pub struct BrokerConfig {
    /// An account is split when its incident weight exceeds this multiple
    /// of the shard capacity λ.
    pub split_threshold: f64,
    /// Settlement overhead charged (per unit of brokered edge weight) to
    /// the serving shard.
    pub settlement_cost: f64,
    /// Upper bound on how many accounts may be split (brokers are a scarce,
    /// trusted-ish resource in BrokerChain).
    pub max_split_accounts: usize,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        Self {
            split_threshold: 0.5,
            settlement_cost: 0.1,
            max_split_accounts: 16,
        }
    }
}

/// Metrics of an allocation evaluated *with* broker splitting applied.
#[derive(Debug, Clone)]
pub struct BrokeredReport {
    /// Accounts that were split (node ids, heaviest first).
    pub split_accounts: Vec<NodeId>,
    /// Cross-shard ratio after splitting (brokered edges count intra).
    pub cross_shard_ratio: f64,
    /// Normalized per-shard workloads after splitting.
    pub shard_loads: Vec<f64>,
    /// Workload standard deviation over λ.
    pub workload_std_normalized: f64,
    /// Capacity-capped system throughput (absolute).
    pub throughput: f64,
    /// Throughput over λ.
    pub throughput_normalized: f64,
    /// Average confirmation latency (Eq. 4 on the new loads).
    pub avg_latency: f64,
    /// Worst-case latency.
    pub worst_latency: f64,
}

/// Selects the accounts to split under `config`.
pub fn select_split_accounts(
    graph: &impl WeightedGraph,
    params: &TxAlloParams,
    config: &BrokerConfig,
) -> Vec<NodeId> {
    let threshold = config.split_threshold * params.capacity;
    let mut hot: Vec<NodeId> = (0..graph.node_count() as NodeId)
        .filter(|&v| graph.incident_weight(v) > threshold)
        .collect();
    hot.sort_unstable_by(|&a, &b| {
        graph
            .incident_weight(b)
            .partial_cmp(&graph.incident_weight(a))
            .expect("finite weights") // txallo-lint: allow(lib-unwrap) — incident weights are finite sums of finite transaction weights, so partial_cmp is total
            .then(a.cmp(&b))
    });
    hot.truncate(config.max_split_accounts);
    hot
}

/// A read-only view of a graph with some nodes' edges masked out.
///
/// Used to partition *as if* the split accounts did not exist: their edges
/// will be served by broker replicas anyway, so they should not drag their
/// counterparties into one shard. Self-loops of masked nodes remain (they
/// stay in the home shard).
pub struct MaskedGraph<'a, G: WeightedGraph> {
    inner: &'a G,
    masked: FxHashSet<NodeId>,
    incident: Vec<f64>,
    total: f64,
}

impl<'a, G: WeightedGraph> MaskedGraph<'a, G> {
    /// Builds the view in `O(V + E)`.
    pub fn new(inner: &'a G, masked: impl IntoIterator<Item = NodeId>) -> Self {
        let masked: FxHashSet<NodeId> = masked.into_iter().collect();
        let n = inner.node_count();
        let mut incident = vec![0.0f64; n];
        let mut total = 0.0f64;
        for v in 0..n as NodeId {
            let v_masked = masked.contains(&v);
            let loop_w = inner.self_loop(v);
            incident[v as usize] += loop_w;
            total += loop_w;
            inner.for_each_neighbor(v, |u, w| {
                if v_masked || masked.contains(&u) {
                    return;
                }
                incident[v as usize] += w;
                if u > v {
                    total += w;
                }
            });
        }
        Self {
            inner,
            masked,
            incident,
            total,
        }
    }
}

impl<G: WeightedGraph> WeightedGraph for MaskedGraph<'_, G> {
    fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    fn total_weight(&self) -> f64 {
        self.total
    }

    fn self_loop(&self, v: NodeId) -> f64 {
        self.inner.self_loop(v)
    }

    fn incident_weight(&self, v: NodeId) -> f64 {
        self.incident[v as usize]
    }

    fn for_each_neighbor(&self, v: NodeId, mut f: impl FnMut(NodeId, f64)) {
        if self.masked.contains(&v) {
            return;
        }
        self.inner.for_each_neighbor(v, |u, w| {
            if !self.masked.contains(&u) {
                f(u, w);
            }
        });
    }

    fn neighbor_count(&self, v: NodeId) -> usize {
        if self.masked.contains(&v) {
            return 0;
        }
        let mut n = 0;
        self.inner.for_each_neighbor(v, |u, _| {
            if !self.masked.contains(&u) {
                n += 1;
            }
        });
        n
    }
}

/// Evaluates `allocation` with the broker mechanism applied.
pub fn evaluate_with_brokers(
    graph: &impl WeightedGraph,
    allocation: &Allocation,
    params: &TxAlloParams,
    config: &BrokerConfig,
) -> BrokeredReport {
    let k = allocation.shard_count();
    let split = select_split_accounts(graph, params, config);
    let split_set: FxHashSet<NodeId> = split.iter().copied().collect();

    // "Floating" counterparties have no edges besides those to split
    // accounts; the broker system routes their traffic dynamically, so
    // their weight is water-filled across shards instead of following
    // their (arbitrary) static placement.
    let mut anchored_weight = vec![0.0f64; graph.node_count()];
    for v in 0..graph.node_count() as NodeId {
        graph.for_each_neighbor(v, |u, w| {
            if !split_set.contains(&u) {
                anchored_weight[v as usize] += w;
            }
        });
    }
    let is_floating =
        |v: NodeId| -> bool { !split_set.contains(&v) && anchored_weight[v as usize] <= 0.0 };

    // Per-shard accounting with brokered edges redirected.
    let mut intra = vec![0.0f64; k];
    let mut cut = vec![0.0f64; k];
    let mut brokered = vec![0.0f64; k]; // settlement-charged weight per shard
    let mut floating_pool = 0.0f64;
    let mut cross_weight = 0.0f64;
    let total = graph.total_weight();

    for v in 0..graph.node_count() as NodeId {
        let sv = allocation.shard_of(v).index();
        intra[sv] += graph.self_loop(v);
        let v_split = split_set.contains(&v);
        graph.for_each_neighbor(v, |u, w| {
            if u < v {
                return; // each edge once
            }
            let su = allocation.shard_of(u).index();
            let u_split = split_set.contains(&u);
            match (v_split, u_split) {
                // Both split: serve anywhere; charge the lighter-loaded of
                // the two home shards as intra (deterministic: smaller id).
                (true, true) => {
                    let s = sv.min(su);
                    intra[s] += w;
                    brokered[s] += w;
                }
                // One split: serve in the counterparty's shard — unless the
                // counterparty is floating, in which case the broker routes
                // it to wherever capacity is available.
                (true, false) => {
                    if is_floating(u) {
                        floating_pool += w;
                    } else {
                        intra[su] += w;
                        brokered[su] += w;
                    }
                }
                (false, true) => {
                    if is_floating(v) {
                        floating_pool += w;
                    } else {
                        intra[sv] += w;
                        brokered[sv] += w;
                    }
                }
                (false, false) => {
                    if sv == su {
                        intra[sv] += w;
                    } else {
                        cut[sv] += w;
                        cut[su] += w;
                        cross_weight += w;
                    }
                }
            }
        });
    }

    let mut sigmas: Vec<f64> = (0..k)
        .map(|s| intra[s] + params.eta * cut[s] + config.settlement_cost * brokered[s])
        .collect();

    // Water-fill the floating pool: each unit costs (1 + settlement) σ and
    // yields 1 unit of intra throughput, placed on the lightest shards.
    if floating_pool > 0.0 {
        let unit_cost = 1.0 + config.settlement_cost;
        let mut remaining = floating_pool * unit_cost;
        // Greedy exact water-fill over sorted levels.
        let mut order: Vec<usize> = (0..k).collect();
        // Tie-break on shard id: with equal σ levels the unstable sort
        // would otherwise scramble which shard falls inside the
        // `take(filled + 1)` window, and the fill would not replay.
        order.sort_unstable_by(|&a, &b| {
            sigmas[a]
                .partial_cmp(&sigmas[b])
                .expect("finite") // txallo-lint: allow(lib-unwrap) — σ is a finite sum of finite workloads, so partial_cmp is total here
                .then(a.cmp(&b))
        });
        let mut filled = 0usize;
        while remaining > 0.0 && filled < k {
            let level = sigmas[order[filled]];
            let next_level = if filled + 1 < k {
                sigmas[order[filled + 1]]
            } else {
                f64::INFINITY
            };
            let span = (filled + 1) as f64;
            let capacity_to_next = (next_level - level) * span;
            let add = remaining.min(capacity_to_next);
            for &s in order.iter().take(filled + 1) {
                sigmas[s] += add / span;
                intra[s] += (add / span) / unit_cost;
                brokered[s] += (add / span) / unit_cost;
            }
            remaining -= add;
            filled += 1;
        }
        if remaining > 0.0 {
            // Pool exceeds all level gaps: spread the rest evenly.
            for s in 0..k {
                sigmas[s] += remaining / k as f64;
                intra[s] += (remaining / k as f64) / unit_cost;
                brokered[s] += (remaining / k as f64) / unit_cost;
            }
        }
    }
    let hats: Vec<f64> = (0..k).map(|s| intra[s] + cut[s] / 2.0).collect();
    let mean = sigmas.iter().sum::<f64>() / k as f64;
    let variance = sigmas.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / k as f64;
    let throughput: f64 = (0..k)
        .map(|s| capped_throughput(sigmas[s], hats[s], params.capacity))
        .sum();
    let loads: Vec<f64> = sigmas.iter().map(|s| s / params.capacity).collect();
    let avg_latency = loads
        .iter()
        .map(|&x| latency_of_normalized_load(x))
        .sum::<f64>()
        / k as f64;
    let worst = loads.iter().copied().fold(0.0f64, f64::max);

    BrokeredReport {
        split_accounts: split,
        cross_shard_ratio: if total > 0.0 {
            cross_weight / total
        } else {
            0.0
        },
        shard_loads: loads,
        workload_std_normalized: variance.sqrt() / params.capacity,
        throughput,
        throughput_normalized: throughput / params.capacity,
        avg_latency,
        worst_latency: worst_latency_of_normalized_load(worst),
    }
}

/// The full broker-aware pipeline: select split accounts, partition the
/// graph *without* their edges (G-TxAllo on the masked view), then score
/// with brokered serving. Returns the allocation and its brokered report.
pub fn allocate_with_brokers(
    graph: &txallo_graph::TxGraph,
    params: &TxAlloParams,
    config: &BrokerConfig,
) -> (Allocation, BrokeredReport) {
    let split = select_split_accounts(graph, params, config);
    let masked = MaskedGraph::new(graph, split.iter().copied());
    // Recompute λ/ε for the reduced weight so the optimizer is not skewed,
    // but keep the caller's η and shard count.
    let masked_params = TxAlloParams::for_graph(&masked, params.shards).with_eta(params.eta);
    let init = txallo_louvain::louvain(&masked, &masked_params.louvain);
    let order = graph.nodes_in_canonical_order();
    let outcome =
        crate::gtxallo::GTxAllo::new(masked_params).allocate_with_init(&masked, &init, &order);
    let report = evaluate_with_brokers(graph, &outcome.allocation, params, config);
    (outcome.allocation, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gtxallo::GTxAllo;
    use crate::metrics::MetricsReport;
    use txallo_graph::TxGraph;
    use txallo_model::{AccountId, Transaction};

    /// Hub account 0 touches everyone; two background clusters.
    fn hub_graph() -> TxGraph {
        let mut g = TxGraph::new();
        for i in 1..=40u64 {
            for _ in 0..3 {
                g.ingest_transaction(&Transaction::transfer(AccountId(0), AccountId(i)));
            }
        }
        for base in [100u64, 200] {
            for i in 0..6 {
                for j in (i + 1)..6 {
                    g.ingest_transaction(&Transaction::transfer(
                        AccountId(base + i),
                        AccountId(base + j),
                    ));
                }
            }
        }
        g
    }

    #[test]
    fn hub_account_is_selected() {
        let g = hub_graph();
        let params = TxAlloParams::for_graph(&g, 4);
        let split = select_split_accounts(&g, &params, &BrokerConfig::default());
        assert!(!split.is_empty());
        assert_eq!(g.account(split[0]), AccountId(0), "the hub must rank first");
    }

    #[test]
    fn broker_pipeline_improves_balance_and_worst_latency() {
        // The proper pipeline: split *before* partitioning, so the hub's
        // one-shot counterparties fall back to their own communities
        // instead of piling into the hub's shard.
        let g = hub_graph();
        let k = 4;
        let params = TxAlloParams::for_graph(&g, k);
        let plain_alloc = GTxAllo::new(params.clone()).allocate_graph(&g);
        let before = MetricsReport::compute(&g, &plain_alloc, &params);
        let (_, after) = allocate_with_brokers(&g, &params, &BrokerConfig::default());
        assert!(
            after.workload_std_normalized < before.workload_std_normalized,
            "broker split must flatten the load: {} -> {}",
            before.workload_std_normalized,
            after.workload_std_normalized
        );
        assert!(after.worst_latency <= before.worst_latency);
        assert!(after.cross_shard_ratio <= before.cross_shard_ratio + 1e-9);
    }

    #[test]
    fn masked_graph_hides_edges_but_keeps_loops() {
        let mut g = TxGraph::new();
        g.ingest_transaction(&Transaction::transfer(AccountId(1), AccountId(2)));
        g.ingest_transaction(&Transaction::transfer(AccountId(2), AccountId(3)));
        g.ingest_transaction(&Transaction::transfer(AccountId(1), AccountId(1)));
        use txallo_graph::WeightedGraph;
        let n1 = g.node_of(AccountId(1)).unwrap();
        let masked = MaskedGraph::new(&g, [n1]);
        assert_eq!(masked.node_count(), g.node_count());
        assert_eq!(masked.neighbor_count(n1), 0);
        assert!((masked.self_loop(n1) - 1.0).abs() < 1e-12);
        assert!(
            (masked.incident_weight(n1) - 1.0).abs() < 1e-12,
            "only the loop remains"
        );
        // Edge 2-3 survives; total = loop(1) + edge(2,3) = 2.
        assert!((masked.total_weight() - 2.0).abs() < 1e-12);
        let n2 = g.node_of(AccountId(2)).unwrap();
        assert_eq!(masked.neighbor_count(n2), 1, "edge to node 1 hidden");
    }

    #[test]
    fn no_split_below_threshold_is_identity_shaped() {
        // Uniform traffic, nobody hot: the brokered report must match the
        // plain metrics.
        let mut g = TxGraph::new();
        for i in 0..20u64 {
            g.ingest_transaction(&Transaction::transfer(
                AccountId(2 * i),
                AccountId(2 * i + 1),
            ));
        }
        let params = TxAlloParams::for_graph(&g, 4);
        let alloc = GTxAllo::new(params.clone()).allocate_graph(&g);
        let cfg = BrokerConfig {
            split_threshold: 10.0,
            ..BrokerConfig::default()
        };
        let brokered = evaluate_with_brokers(&g, &alloc, &params, &cfg);
        assert!(brokered.split_accounts.is_empty());
        let plain = MetricsReport::compute(&g, &alloc, &params);
        assert!((brokered.cross_shard_ratio - plain.cross_shard_ratio).abs() < 1e-9);
        assert!((brokered.workload_std_normalized - plain.workload_std_normalized).abs() < 1e-9);
        assert!((brokered.throughput - plain.throughput).abs() < 1e-9);
    }

    #[test]
    fn settlement_cost_is_charged() {
        let g = hub_graph();
        let params = TxAlloParams::for_graph(&g, 4);
        let alloc = GTxAllo::new(params.clone()).allocate_graph(&g);
        let cheap = evaluate_with_brokers(
            &g,
            &alloc,
            &params,
            &BrokerConfig {
                settlement_cost: 0.0,
                ..BrokerConfig::default()
            },
        );
        let costly = evaluate_with_brokers(
            &g,
            &alloc,
            &params,
            &BrokerConfig {
                settlement_cost: 1.0,
                ..BrokerConfig::default()
            },
        );
        let cheap_total: f64 = cheap.shard_loads.iter().sum();
        let costly_total: f64 = costly.shard_loads.iter().sum();
        assert!(costly_total > cheap_total, "settlement must cost something");
    }

    #[test]
    fn split_cap_is_respected() {
        let g = hub_graph();
        let params = TxAlloParams::for_graph(&g, 4);
        let cfg = BrokerConfig {
            split_threshold: 0.0,
            max_split_accounts: 3,
            ..BrokerConfig::default()
        };
        let split = select_split_accounts(&g, &params, &cfg);
        assert_eq!(split.len(), 3);
        // Heaviest-first ordering.
        use txallo_graph::WeightedGraph;
        assert!(g.incident_weight(split[0]) >= g.incident_weight(split[1]));
        assert!(g.incident_weight(split[1]) >= g.incident_weight(split[2]));
    }
}
