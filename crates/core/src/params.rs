//! Hyper-parameters of the allocation problem (§V-A).

use txallo_graph::WeightedGraph;
use txallo_louvain::LouvainConfig;

/// The hyper-parameters shared by the metrics and the TxAllo algorithms.
#[derive(Debug, Clone)]
pub struct TxAlloParams {
    /// Number of shards `k`.
    pub shards: usize,
    /// Workload of processing a cross-shard transaction, `η > 1`
    /// (an intra-shard transaction costs 1).
    pub eta: f64,
    /// Processing capacity `λ` of each shard. The paper's experiments use
    /// `λ = |T| / k` so that the ideal all-intra, perfectly-balanced system
    /// has throughput exactly `|T|` (§VI-B1).
    pub capacity: f64,
    /// Convergence threshold `ε` for the optimization loops. The paper uses
    /// `ε = 10⁻⁵ · |T|`.
    pub epsilon: f64,
    /// Configuration of the Louvain initialization.
    pub louvain: LouvainConfig,
    /// Safety cap on optimization sweeps (the paper loops until `ΔΛ < ε`;
    /// this bound guards against pathological non-convergence).
    pub max_sweeps: usize,
    /// A-TxAllo snapshot-route switch: when the touched fraction
    /// `|V̂| / |V|` is at most this value, the epoch update builds the
    /// incremental delta-CSR snapshot (`O(|V̂|)`-ish); above it, it falls
    /// back to the full-graph canonical-renumbering snapshot, whose one
    /// global sort amortizes better than per-edge hash-key sorting once
    /// most of the graph is touched. Route choice never changes the
    /// result — both produce byte-identical allocations.
    pub incremental_threshold: f64,
    /// Worker threads of the sweep kernels (the A-TxAllo epoch sweep;
    /// the Louvain gather pass has its own copy in [`Self::louvain`],
    /// kept in lockstep by [`Self::with_threads`]). `1` is the exact
    /// serial code path, `0` means one per core. The count never changes
    /// an allocation — the partition layer (`txallo_graph::par`) is
    /// bit-identical at any thread count — only how fast it is computed,
    /// which is also why the knob is deliberately *not* part of
    /// checkpoint images: a checkpoint written under `N` threads resumes
    /// identically under `M`. Defaults to the `TXALLO_THREADS`
    /// environment variable (unset = `1`).
    pub threads: usize,
}

impl TxAlloParams {
    /// Paper-default parameters for `graph` with `k` shards and `η = 2`:
    /// `λ = |T|/k`, `ε = 10⁻⁵·|T|`.
    pub fn for_graph(graph: &impl WeightedGraph, shards: usize) -> Self {
        let total = graph.total_weight();
        Self::for_total_weight(total, shards)
    }

    /// Same as [`TxAlloParams::for_graph`] but from a precomputed `|T|`.
    pub fn for_total_weight(total_weight: f64, shards: usize) -> Self {
        assert!(shards > 0, "at least one shard required");
        Self {
            shards,
            eta: 2.0,
            capacity: total_weight / shards as f64,
            epsilon: 1e-5 * total_weight,
            louvain: LouvainConfig::default(),
            max_sweeps: 64,
            incremental_threshold: 0.5,
            threads: txallo_graph::par::threads_from_env(),
        }
    }

    /// Re-derives the weight-dependent parameters (`λ = |T|/k`,
    /// `ε = 10⁻⁵·|T|`) from the graph's *current* total weight, keeping
    /// every other knob (`k`, `η`, Louvain config, sweep cap, snapshot
    /// threshold).
    ///
    /// This is the per-epoch parameter refresh of the streaming service:
    /// the accumulated history grows (or decays) every epoch, and the
    /// paper's scaling ties capacity and convergence threshold to it.
    pub fn rescaled_for_graph(&self, graph: &impl WeightedGraph) -> Self {
        let total = graph.total_weight();
        Self {
            capacity: total / self.shards as f64,
            epsilon: 1e-5 * total,
            ..self.clone()
        }
    }

    /// Returns a copy with a different `η`.
    pub fn with_eta(mut self, eta: f64) -> Self {
        assert!(
            eta >= 1.0,
            "η must be at least 1 (cross-shard is never cheaper)"
        );
        self.eta = eta;
        self
    }

    /// Returns a copy with a different capacity.
    pub fn with_capacity(mut self, capacity: f64) -> Self {
        assert!(capacity > 0.0, "capacity must be positive");
        self.capacity = capacity;
        self
    }

    /// Returns a copy with a different sweep thread count (`1` = serial,
    /// `0` = one per core), applied to both the epoch-sweep kernel and
    /// the Louvain initialization. Never changes the allocation, only
    /// wall-clock time.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self.louvain.threads = threads;
        self
    }

    /// Returns a copy with a different A-TxAllo incremental/full snapshot
    /// threshold (`0.0` forces the full route, `1.0` the incremental one).
    pub fn with_incremental_threshold(mut self, threshold: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold is a fraction of the node set"
        );
        self.incremental_threshold = threshold;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txallo_graph::AdjacencyGraph;

    #[test]
    fn defaults_follow_the_paper() {
        let g = AdjacencyGraph::from_edges(4, vec![(0u32, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        let p = TxAlloParams::for_graph(&g, 3);
        assert_eq!(p.shards, 3);
        assert!((p.capacity - 1.0).abs() < 1e-12, "λ = |T|/k = 3/3");
        assert!((p.epsilon - 3e-5).abs() < 1e-12);
        assert!((p.eta - 2.0).abs() < 1e-12);
    }

    #[test]
    fn builders() {
        let p = TxAlloParams::for_total_weight(100.0, 4)
            .with_eta(6.0)
            .with_capacity(30.0);
        assert!((p.eta - 6.0).abs() < 1e-12);
        assert!((p.capacity - 30.0).abs() < 1e-12);
    }

    #[test]
    fn threads_knob_reaches_the_louvain_init_and_survives_rescaling() {
        let g = AdjacencyGraph::from_edges(4, vec![(0u32, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        let p = TxAlloParams::for_graph(&g, 2).with_threads(3);
        assert_eq!(p.threads, 3);
        assert_eq!(
            p.louvain.threads, 3,
            "G-TxAllo's init must inherit the knob"
        );
        let rescaled = p.rescaled_for_graph(&g);
        assert_eq!(rescaled.threads, 3);
        assert_eq!(rescaled.louvain.threads, 3);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = TxAlloParams::for_total_weight(10.0, 0);
    }

    #[test]
    #[should_panic(expected = "η must be at least 1")]
    fn eta_below_one_panics() {
        let _ = TxAlloParams::for_total_weight(10.0, 2).with_eta(0.5);
    }
}
