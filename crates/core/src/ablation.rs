//! Ablations of G-TxAllo's design choices.
//!
//! The paper motivates two specific choices that deserve measurement:
//!
//! 1. **Louvain initialization** (§V-B): the optimization phase starts from
//!    a community structure instead of from scratch. Ablations replace it
//!    with hash-based or singleton-free random starts.
//! 2. **Candidate communities `C_v`** (Eq. 9): only communities a node
//!    already touches are evaluated, instead of all `k`. The ablation
//!    measures what the restriction costs in quality (nothing, per the
//!    paper's argument) and buys in time.
//!
//! Run via `experiments ablation` or the `components` Criterion bench.

use txallo_graph::{NodeId, TxGraph, WeightedGraph};
use txallo_louvain::{louvain, LouvainResult};

use crate::allocation::Allocation;
use crate::gtxallo::{GTxAllo, GTxAlloOutcome};
use crate::params::TxAlloParams;

/// How the optimization phase is seeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitStrategy {
    /// The paper's choice: Louvain communities, truncated to `k`.
    Louvain,
    /// Hash-based start: every account seeded at `H(address) mod k`
    /// (what a system gets "for free" from its existing allocation).
    Hash,
    /// Round-robin over the canonical node order — a structure-free but
    /// balanced start.
    RoundRobin,
    /// Louvain followed by a connectivity split (Leiden-style): internally
    /// disconnected communities — the hub-glomming artifact classic
    /// Louvain can produce on transaction graphs — are fragmented before
    /// truncation.
    LouvainSplit,
}

impl InitStrategy {
    /// All strategies, for sweeps.
    pub const ALL: [InitStrategy; 4] = [
        InitStrategy::Louvain,
        InitStrategy::Hash,
        InitStrategy::RoundRobin,
        InitStrategy::LouvainSplit,
    ];

    /// Human-readable label.
    pub fn name(self) -> &'static str {
        match self {
            InitStrategy::Louvain => "louvain",
            InitStrategy::Hash => "hash-init",
            InitStrategy::RoundRobin => "round-robin",
            InitStrategy::LouvainSplit => "louvain+split",
        }
    }
}

/// Builds a pseudo-`LouvainResult` for the non-Louvain strategies so the
/// regular G-TxAllo pipeline can consume it unchanged.
fn synthetic_init(graph: &TxGraph, k: usize, strategy: InitStrategy) -> LouvainResult {
    let n = graph.node_count();
    let communities: Vec<u32> = match strategy {
        InitStrategy::Louvain | InitStrategy::LouvainSplit => {
            unreachable!("handled by the real Louvain")
        }
        InitStrategy::Hash => (0..n as NodeId)
            .map(|v| graph.account(v).hash_shard(k).0)
            .collect(),
        InitStrategy::RoundRobin => {
            let order = graph.nodes_in_canonical_order();
            let mut labels = vec![0u32; n];
            for (i, &v) in order.iter().enumerate() {
                labels[v as usize] = (i % k) as u32;
            }
            labels
        }
    };
    LouvainResult {
        communities,
        community_count: k.min(n.max(1)),
        levels: 0,
        modularity: f64::NAN, // not meaningful for synthetic starts
    }
}

/// Runs G-TxAllo with the given initialization strategy.
pub fn gtxallo_with_init_strategy(
    params: &TxAlloParams,
    graph: &TxGraph,
    strategy: InitStrategy,
) -> GTxAlloOutcome {
    let gtx = GTxAllo::new(params.clone());
    let order = graph.nodes_in_canonical_order();
    match strategy {
        InitStrategy::Louvain => {
            let init = louvain(graph, &params.louvain);
            gtx.allocate_with_init(graph, &init, &order)
        }
        InitStrategy::LouvainSplit => {
            let mut init = louvain(graph, &params.louvain);
            let split = txallo_louvain::split_disconnected(graph, &init.communities);
            init.communities = split.labels;
            init.community_count = split.count;
            gtx.allocate_with_init(graph, &init, &order)
        }
        other => {
            let init = synthetic_init(graph, params.shards, other);
            gtx.allocate_with_init(graph, &init, &order)
        }
    }
}

/// The candidate-set ablation: runs the optimization sweep with `C_v` =
/// *all* communities instead of Eq. 9's connected-only restriction.
///
/// Implemented as a standalone sweep (the restricted variant lives inside
/// [`GTxAllo`]); quality should match the restricted run — a node gains
/// nothing from joining a community it has no edge into, except through
/// the capacity term, which the paper argues (and this ablation measures)
/// is negligible.
pub fn gtxallo_full_scan(params: &TxAlloParams, graph: &TxGraph) -> Allocation {
    use crate::state::{CommunityState, MoveScratch};

    let init = louvain(graph, &params.louvain);
    let gtx = GTxAllo::new(params.clone());
    let order = graph.nodes_in_canonical_order();
    // Start from the regular pipeline's initialization result…
    let base = gtx.allocate_with_init(graph, &init, &order);
    let mut labels = base.allocation.labels().to_vec();
    let k = params.shards;

    // …then run extra full-scan sweeps on top.
    let mut state = CommunityState::from_labels(graph, &labels, k, params.eta, params.capacity);
    let mut scratch = MoveScratch::default();
    for _ in 0..params.max_sweeps {
        let mut delta = 0.0;
        for &v in &order {
            let p = labels[v as usize];
            state.gather_links(graph, &labels, v, &mut scratch);
            let self_w = graph.self_loop(v);
            let d_v = graph.incident_weight(v);
            let w_vp = scratch.weight_to(p);
            let leave = state.leave_gain(p, self_w, d_v, w_vp);
            let mut best: Option<(u32, f64, f64)> = None;
            for q in 0..k as u32 {
                if q == p {
                    continue;
                }
                let w_vq = scratch.weight_to(q);
                let gain = leave + state.join_gain(q, self_w, d_v, w_vq);
                match best {
                    Some((_, bg, _)) if gain <= bg + txallo_louvain::GAIN_EPS => {}
                    _ => best = Some((q, gain, w_vq)),
                }
            }
            if let Some((q, gain, w_vq)) = best {
                if gain > 0.0 {
                    state.apply_leave(p, self_w, d_v, w_vp);
                    state.apply_join(q, self_w, d_v, w_vq);
                    labels[v as usize] = q;
                    delta += gain;
                }
            }
        }
        if delta < params.epsilon {
            break;
        }
    }
    Allocation::new(labels, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsReport;
    use txallo_model::{AccountId, Transaction};

    fn clustered_graph() -> TxGraph {
        let mut g = TxGraph::new();
        for base in [0u64, 10, 20, 30] {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    g.ingest_transaction(&Transaction::transfer(
                        AccountId(base + i),
                        AccountId(base + j),
                    ));
                }
            }
        }
        for x in 0..4u64 {
            g.ingest_transaction(&Transaction::transfer(
                AccountId(x * 10),
                AccountId(x * 10 + 11),
            ));
        }
        g
    }

    #[test]
    fn all_strategies_produce_valid_allocations() {
        let g = clustered_graph();
        let params = TxAlloParams::for_graph(&g, 4);
        for strategy in InitStrategy::ALL {
            let out = gtxallo_with_init_strategy(&params, &g, strategy);
            assert_eq!(out.allocation.len(), g.node_count(), "{}", strategy.name());
            assert!(out.allocation.labels().iter().all(|&l| l < 4));
        }
    }

    #[test]
    fn louvain_init_is_at_least_as_good_as_alternatives() {
        let g = clustered_graph();
        let params = TxAlloParams::for_graph(&g, 4);
        let gamma = |s: InitStrategy| {
            let out = gtxallo_with_init_strategy(&params, &g, s);
            MetricsReport::compute(&g, &out.allocation, &params).cross_shard_ratio
        };
        let louvain_gamma = gamma(InitStrategy::Louvain);
        // On a clean clustered graph Louvain must find the clusters; other
        // starts may or may not recover them, but never beat it.
        assert!(louvain_gamma <= gamma(InitStrategy::Hash) + 1e-9);
        assert!(louvain_gamma <= gamma(InitStrategy::RoundRobin) + 1e-9);
    }

    #[test]
    fn full_scan_does_not_beat_candidate_restriction_materially() {
        let g = clustered_graph();
        let params = TxAlloParams::for_graph(&g, 4);
        let restricted = GTxAllo::new(params.clone()).allocate_graph(&g);
        let full = gtxallo_full_scan(&params, &g);
        let r1 = MetricsReport::compute(&g, &restricted, &params);
        let r2 = MetricsReport::compute(&g, &full, &params);
        // Eq. 9's claim: the restriction loses (almost) nothing.
        assert!(
            r2.throughput <= r1.throughput * 1.05 + 1e-9,
            "full scan {} should not materially beat restricted {}",
            r2.throughput,
            r1.throughput
        );
    }

    #[test]
    fn strategies_are_deterministic() {
        let g = clustered_graph();
        let params = TxAlloParams::for_graph(&g, 3);
        for s in InitStrategy::ALL {
            let a = gtxallo_with_init_strategy(&params, &g, s);
            let b = gtxallo_with_init_strategy(&params, &g, s);
            assert_eq!(a.allocation, b.allocation, "{}", s.name());
        }
    }
}
