//! Name-based construction of allocators — the single wiring point for
//! every consumer (CLI, bench harness, simulator, chain engine, examples).
//!
//! Each registered name resolves to *both* entry points of the two-level
//! allocation API: a batch [`Allocator`] (the one-shot §V-B call) and a
//! [`StreamingAllocator`] (the epoch-driven §V-C service). Consumers stop
//! hand-maintaining `match method { "txallo" | "hash" | ... }` lists: they
//! look names up here, and unknown-name errors enumerate what is actually
//! registered.

use std::collections::BTreeMap;
use std::fmt;

use crate::params::TxAlloParams;
use crate::scheduler::{SchedulerConfig, ShardScheduler};
use crate::streaming::{
    AdaptiveStream, GlobalStream, HybridSchedule, HybridStream, SchedulerStream, StreamingAllocator,
};
use crate::{Allocator, GTxAllo, HashAllocator, MetisAllocator};

/// Builds the batch entry point for one registered allocator.
pub type BatchBuilder = Box<dyn Fn(&TxAlloParams) -> Box<dyn Allocator> + Send + Sync>;

/// Builds the streaming entry point for one registered allocator. The
/// [`HybridSchedule`] parameterizes TxAllo's global-refresh policy;
/// schedule-free allocators ignore it.
pub type StreamBuilder =
    Box<dyn Fn(&TxAlloParams, HybridSchedule) -> Box<dyn StreamingAllocator> + Send + Sync>;

/// Lookup failure: the requested name is not registered. The display
/// message enumerates the registered names, so CLI errors stay accurate
/// as registrations change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownAllocator {
    /// The name that failed to resolve.
    pub requested: String,
    /// Every registered name, sorted.
    pub registered: Vec<String>,
}

impl fmt::Display for UnknownAllocator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown method {:?} (registered: {})",
            self.requested,
            self.registered.join("|")
        )
    }
}

impl std::error::Error for UnknownAllocator {}

struct Entry {
    batch: BatchBuilder,
    streaming: StreamBuilder,
}

/// The name → builder table (see the [module docs](self)).
///
/// [`AllocatorRegistry::builtin`] registers the paper's four methods;
/// [`AllocatorRegistry::register`] adds custom ones (e.g. experimental
/// allocators in downstream crates) without touching any consumer.
pub struct AllocatorRegistry {
    entries: BTreeMap<String, Entry>,
}

impl fmt::Debug for AllocatorRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AllocatorRegistry")
            .field("names", &self.names())
            .finish()
    }
}

impl AllocatorRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            entries: BTreeMap::new(),
        }
    }

    /// The methods of the paper's comparison (legend of Figs. 2–8), plus
    /// the recursive-bisection METIS variant of the §VI-B6 running-time
    /// table:
    ///
    /// | name              | batch              | streaming                       |
    /// |-------------------|--------------------|---------------------------------|
    /// | `txallo`          | [`GTxAllo`]        | [`HybridStream`] (per schedule) |
    /// | `hash`            | [`HashAllocator`]  | [`GlobalStream`] re-hash        |
    /// | `metis`           | [`MetisAllocator`] | [`GlobalStream`] re-partition   |
    /// | `metis-recursive` | [`MetisAllocator::recursive`] | [`GlobalStream`]     |
    /// | `scheduler`       | [`ShardScheduler`] | [`SchedulerStream`] (tx-level)  |
    pub fn builtin() -> Self {
        let mut registry = Self::new();
        registry.register(
            "txallo",
            Box::new(|params| Box::new(GTxAllo::new(params.clone()))),
            Box::new(|params, schedule| match schedule {
                HybridSchedule::AlwaysAdaptive => Box::new(AdaptiveStream::new(params.clone())),
                _ => Box::new(HybridStream::new(params.clone(), schedule)),
            }),
        );
        registry.register(
            "hash",
            Box::new(|params| Box::new(HashAllocator::new(params.shards))),
            Box::new(|params, _| {
                Box::new(GlobalStream::new(
                    "Random",
                    params.clone(),
                    Box::new(|graph, p| HashAllocator::new(p.shards).allocate_graph(graph)),
                ))
            }),
        );
        registry.register(
            "metis",
            Box::new(|params| Box::new(MetisAllocator::new(params.shards))),
            Box::new(|params, _| {
                Box::new(GlobalStream::new(
                    "Metis",
                    params.clone(),
                    Box::new(|graph, p| MetisAllocator::new(p.shards).allocate_graph(graph)),
                ))
            }),
        );
        registry.register(
            "metis-recursive",
            Box::new(|params| Box::new(MetisAllocator::recursive(params.shards))),
            Box::new(|params, _| {
                Box::new(GlobalStream::new(
                    "Metis (recursive bisection)",
                    params.clone(),
                    Box::new(|graph, p| MetisAllocator::recursive(p.shards).allocate_graph(graph)),
                ))
            }),
        );
        registry.register(
            "scheduler",
            Box::new(|params| {
                // `λ = |T|/k` is exactly `params.capacity`, so the
                // scheduler's paper configuration derives from the shared
                // hyper-parameters without a separate total-weight plumb.
                Box::new(ShardScheduler::new(SchedulerConfig {
                    shards: params.shards,
                    eta: params.eta,
                    capacity: params.capacity,
                    buffer_ratio: 1.0,
                }))
            }),
            Box::new(|_, _| Box::new(SchedulerStream::new())),
        );
        registry
    }

    /// Registers (or replaces) `name` with its two builders.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        batch: BatchBuilder,
        streaming: StreamBuilder,
    ) {
        self.entries.insert(name.into(), Entry { batch, streaming });
    }

    /// Every registered name, sorted.
    pub fn names(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    fn entry(&self, name: &str) -> Result<&Entry, UnknownAllocator> {
        self.entries.get(name).ok_or_else(|| UnknownAllocator {
            requested: name.to_string(),
            registered: self.names(),
        })
    }

    /// Builds the batch entry point for `name`.
    pub fn batch(
        &self,
        name: &str,
        params: &TxAlloParams,
    ) -> Result<Box<dyn Allocator>, UnknownAllocator> {
        Ok((self.entry(name)?.batch)(params))
    }

    /// Builds the streaming entry point for `name` with the given
    /// global-refresh policy (ignored by schedule-free allocators).
    pub fn streaming(
        &self,
        name: &str,
        params: &TxAlloParams,
        schedule: HybridSchedule,
    ) -> Result<Box<dyn StreamingAllocator>, UnknownAllocator> {
        Ok((self.entry(name)?.streaming)(params, schedule))
    }
}

impl Default for AllocatorRegistry {
    fn default() -> Self {
        Self::builtin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dataset;
    use txallo_model::{AccountId, Block, Ledger, Transaction};

    fn tiny_dataset() -> Dataset {
        let txs: Vec<Transaction> = (0..20u64)
            .map(|i| Transaction::transfer(AccountId(i % 5), AccountId(5 + i % 7)))
            .collect();
        Dataset::from_ledger(Ledger::from_blocks(vec![Block::new(0, txs)]).unwrap())
    }

    #[test]
    fn builtin_has_the_papers_methods() {
        let registry = AllocatorRegistry::builtin();
        assert_eq!(
            registry.names(),
            vec!["hash", "metis", "metis-recursive", "scheduler", "txallo"]
        );
        assert!(registry.contains("txallo"));
        assert!(!registry.contains("nope"));
    }

    #[test]
    fn unknown_name_error_lists_registrations() {
        let registry = AllocatorRegistry::builtin();
        let params = TxAlloParams::for_total_weight(10.0, 2);
        let err = match registry.batch("nope", &params) {
            Err(err) => err,
            Ok(_) => panic!("lookup must fail"),
        };
        let message = err.to_string();
        assert!(message.contains("unknown method"), "{message}");
        assert!(
            message.contains("hash|metis|metis-recursive|scheduler|txallo"),
            "error must enumerate dynamically: {message}"
        );
    }

    #[test]
    fn custom_registration_resolves() {
        let mut registry = AllocatorRegistry::builtin();
        registry.register(
            "always-zero",
            Box::new(|params| Box::new(HashAllocator::new(params.shards.min(1)))),
            Box::new(|params, _| {
                Box::new(GlobalStream::new(
                    "always-zero",
                    params.clone(),
                    Box::new(|graph, _| {
                        Allocation::new(vec![0; txallo_graph::WeightedGraph::node_count(graph)], 1)
                    }),
                ))
            }),
        );
        assert!(registry.contains("always-zero"));
        assert_eq!(registry.names().len(), 6);
        let dataset = tiny_dataset();
        let params = TxAlloParams::for_graph(dataset.graph(), 1);
        let mut batch = registry.batch("always-zero", &params).unwrap();
        let allocation = batch.allocate(&dataset);
        assert!(allocation.labels().iter().all(|&l| l == 0));
    }

    use crate::allocation::Allocation;

    #[test]
    fn batch_builders_match_direct_construction() {
        let dataset = tiny_dataset();
        let k = 3;
        let params = TxAlloParams::for_graph(dataset.graph(), k);
        let registry = AllocatorRegistry::builtin();
        for (name, expected) in [
            (
                "txallo",
                GTxAllo::new(params.clone()).allocate_graph(dataset.graph()),
            ),
            (
                "hash",
                HashAllocator::new(k).allocate_graph(dataset.graph()),
            ),
            (
                "metis",
                MetisAllocator::new(k).allocate_graph(dataset.graph()),
            ),
        ] {
            let mut allocator = registry.batch(name, &params).unwrap();
            assert_eq!(
                allocator.allocate(&dataset),
                expected,
                "{name} diverged from direct construction"
            );
        }
        // Scheduler: registry config must equal the paper's `new(k, |T|)`.
        let mut from_registry = registry.batch("scheduler", &params).unwrap();
        let direct = ShardScheduler::new(SchedulerConfig::new(
            k,
            txallo_graph::WeightedGraph::total_weight(dataset.graph()),
        ))
        .allocate_dataset(&dataset);
        assert_eq!(from_registry.allocate(&dataset), direct);
    }
}
