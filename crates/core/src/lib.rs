//! The TxAllo allocation framework (§III–§V of the paper).
//!
//! This crate holds the paper's primary contribution:
//!
//! * the blockchain-level performance model — cross-shard ratio `γ`,
//!   per-shard workload `σᵢ`, balance `ρ`, capacity-capped throughput `Λ`
//!   and confirmation latency `ζ` ([`metrics`]);
//! * the per-community accounting and the throughput-gain delta formulas
//!   of §V-B ([`state`]);
//! * the two TxAllo algorithms — global [`GTxAllo`] (Algorithm 1) and
//!   adaptive [`AtxAllo`] (Algorithm 2);
//! * the evaluation baselines: hash-based random allocation
//!   ([`HashAllocator`]), the METIS-backed graph partitioner
//!   ([`MetisAllocator`]) and the transaction-level
//!   [`ShardScheduler`].
//!
//! The allocation API is two-level:
//!
//! * **batch** (§V-B): every algorithm implements [`Allocator`] over a
//!   [`Dataset`] (ledger + transaction graph), for one-shot allocation;
//! * **streaming** (§V-C): [`StreamingAllocator`] serves an epoch-driven
//!   chain — `begin` on the warm-up history, `on_block` per committed
//!   block, `end_epoch` returning the [`AllocationUpdate`] *diff* of moved
//!   accounts (see [`streaming`]).
//!
//! Consumers resolve either entry point by name through the
//! [`AllocatorRegistry`] instead of constructing algorithms directly.

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]

pub mod ablation;
pub mod allocation;
pub mod atxallo;
pub mod broker;
pub mod checkpoint;
pub mod dataset;
pub mod gtxallo;
pub mod hash_alloc;
mod incremental;
pub mod metis_alloc;
pub mod metrics;
pub mod params;
pub mod registry;
pub mod scheduler;
pub mod session;
pub mod state;
pub mod streaming;

pub use ablation::{gtxallo_full_scan, gtxallo_with_init_strategy, InitStrategy};
pub use allocation::Allocation;
pub use atxallo::{AtxAllo, AtxAlloOutcome, UpdatePath};
pub use broker::{
    allocate_with_brokers, evaluate_with_brokers, select_split_accounts, BrokerConfig,
    BrokeredReport, MaskedGraph,
};
pub use checkpoint::{
    decode_checkpoint, encode_checkpoint, Checkpoint, CheckpointError, CommunityAggregates,
    StreamState,
};
pub use dataset::Dataset;
pub use gtxallo::{GTxAllo, GTxAlloOutcome, GTxAlloPlan};
pub use hash_alloc::HashAllocator;
pub use metis_alloc::MetisAllocator;
pub use metrics::{latency_of_normalized_load, MetricsReport};
pub use params::TxAlloParams;
pub use registry::{AllocatorRegistry, UnknownAllocator};
pub use scheduler::{SchedulerConfig, SchedulerState, ShardScheduler};
pub use session::AtxAlloSession;
pub use state::{CommunityState, MoveScratch};
pub use streaming::{
    AccountMove, AdaptiveStream, AllocationUpdate, Degradation, EpochKind, GlobalStream,
    HybridSchedule, HybridStream, SchedulerStream, StateCarry, StreamingAllocator, UpdateKind,
};
// The shared gain tie-break tolerance: one constant across Louvain and the
// TxAllo sweeps (see its docs in `txallo_louvain` for the determinism
// contract).
pub use txallo_louvain::GAIN_EPS;

/// A transaction-allocation algorithm: maps a dataset to an account-shard
/// assignment (Definition 1 of the paper).
pub trait Allocator {
    /// Human-readable name used in experiment output (matches the legend
    /// labels of the paper's figures).
    fn name(&self) -> &str;

    /// Computes the account-shard mapping for `dataset`.
    fn allocate(&mut self, dataset: &Dataset) -> Allocation;
}
