//! The METIS-based graph allocation baseline (\[17\]–\[19\]).
//!
//! Thin adapter that feeds the transaction graph to the
//! [`txallo_metis`] multilevel partitioner, the backbone of Fynn et al.
//! and BrokerChain. It minimizes edge cut under *vertex-weight* balance —
//! precisely the objective mismatch (§II-C) TxAllo improves upon.

use txallo_metis::{metis_partition, recursive_bisection_partition, MetisConfig};

use crate::allocation::Allocation;
use crate::dataset::Dataset;
use crate::Allocator;
use txallo_graph::TxGraph;

/// METIS-style allocator.
#[derive(Debug, Clone)]
pub struct MetisAllocator {
    config: MetisConfig,
    recursive: bool,
}

impl MetisAllocator {
    /// Creates the allocator for `shards` shards with METIS defaults
    /// (direct k-way partitioning).
    pub fn new(shards: usize) -> Self {
        Self {
            config: MetisConfig::new(shards),
            recursive: false,
        }
    }

    /// Creates the allocator in recursive-bisection mode — the strategy
    /// real `pmetis` uses, with `⌈log₂ k⌉` multilevel passes (slower,
    /// often slightly better cuts).
    pub fn recursive(shards: usize) -> Self {
        Self {
            config: MetisConfig::new(shards),
            recursive: true,
        }
    }

    /// Creates the allocator with a custom partitioner configuration.
    pub fn with_config(config: MetisConfig) -> Self {
        Self {
            config,
            recursive: false,
        }
    }

    /// Partitions the accounts of `graph`.
    pub fn allocate_graph(&self, graph: &TxGraph) -> Allocation {
        let result = if self.recursive {
            recursive_bisection_partition(graph, &self.config)
        } else {
            metis_partition(graph, &self.config)
        };
        Allocation::new(result.parts, self.config.parts)
    }
}

impl Allocator for MetisAllocator {
    fn name(&self) -> &str {
        "Metis"
    }

    fn allocate(&mut self, dataset: &Dataset) -> Allocation {
        self.allocate_graph(dataset.graph())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsReport;
    use crate::params::TxAlloParams;
    use txallo_model::{AccountId, Transaction};

    #[test]
    fn partitions_clusters_cleanly() {
        let mut g = TxGraph::new();
        for base in [0u64, 100, 200] {
            for i in 0..6 {
                for j in (i + 1)..6 {
                    g.ingest_transaction(&Transaction::transfer(
                        AccountId(base + i),
                        AccountId(base + j),
                    ));
                }
            }
        }
        g.ingest_transaction(&Transaction::transfer(AccountId(0), AccountId(100)));
        g.ingest_transaction(&Transaction::transfer(AccountId(100), AccountId(200)));
        let alloc = MetisAllocator::new(3).allocate_graph(&g);
        let params = TxAlloParams::for_graph(&g, 3);
        let r = MetricsReport::compute(&g, &alloc, &params);
        assert!(r.cross_shard_ratio < 0.25, "γ = {}", r.cross_shard_ratio);
    }

    #[test]
    fn is_deterministic() {
        let mut g = TxGraph::new();
        for i in 0..40u64 {
            g.ingest_transaction(&Transaction::transfer(
                AccountId(i),
                AccountId((i * 3) % 40),
            ));
        }
        let a = MetisAllocator::new(4).allocate_graph(&g);
        let b = MetisAllocator::new(4).allocate_graph(&g);
        assert_eq!(a, b);
    }
}
