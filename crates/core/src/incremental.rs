//! The shared epoch-update sweep kernel behind A-TxAllo (Algorithm 2).
//!
//! Both A-TxAllo paths — the incremental delta-CSR snapshot and the
//! full-graph fallback — produce the same [`DeltaCsr`] row layout, so one
//! kernel serves both. It runs the two phases of Algorithm 2 over the
//! snapshot rows:
//!
//! 1. **Placement** (lines 1–8): brand-new accounts join the community
//!    with the best join gain (Eq. 6), ties toward the least-loaded
//!    community.
//! 2. **Optimization** (lines 9–17): sweep `V̂` until the total gain of a
//!    sweep drops below `ε`, moving each node to its best-gain community
//!    (Eq. 8).
//!
//! Phase 2 reuses the exact stamp-based skipping scheme proven out on the
//! G-TxAllo optimization sweep (see `gtxallo.rs`): a node's decision
//! depends on (a) its per-community link weights — which change only when
//! a *snapshot neighbor* moves, external neighbors being frozen for the
//! epoch — and (b) the accounting state of the communities it touches
//! (Lemma 1). Candidate lists are cached until a snapshot neighbor moves
//! (`DeltaCsr::local_of` identifies the propagation edges), and a node
//! whose candidates *and* touched communities are unchanged since its last
//! evaluation is skipped outright. All reuse is bit-exact: the trajectory
//! is identical to re-gathering every node every sweep, which the golden
//! tests assert against a cache-free reference.

use txallo_graph::{par, DeltaCsr, DenseAccumulator};
use txallo_louvain::GAIN_EPS;

use crate::state::{gather_labels_blocked, CommunityState, UNASSIGNED};

/// Counters reported by one epoch sweep.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct EpochSweepOutcome {
    /// Brand-new accounts placed in phase 1.
    pub new_nodes: usize,
    /// Optimization sweeps executed in phase 2.
    pub sweeps: usize,
    /// Total throughput gain accumulated in phase 2.
    pub total_gain: f64,
    /// Node moves committed across both phases.
    pub moves: usize,
}

/// Reusable buffers of the epoch sweep — the per-row stamp arrays, the
/// candidate caches and the dense gather accumulator. A serving session
/// carries one of these across epochs so the per-epoch cost contains no
/// buffer allocation at all once capacities have warmed up (the satellite
/// of the delta-CSR buffer reuse, same contract: a warm scratch is
/// observationally identical to fresh ones — every array is re-initialized
/// to the values a fresh allocation would hold, only capacity survives).
#[derive(Debug, Clone, Default)]
pub(crate) struct SweepScratch {
    acc: DenseAccumulator,
    last_eval: Vec<u64>,
    gathered_at: Vec<u64>,
    links_dirty: Vec<u64>,
    comm_stamp: Vec<u64>,
    /// Cached candidate lists; inner vectors keep their capacity across
    /// epochs.
    cand_cache: Vec<Vec<(u32, f64)>>,
    /// One accumulator per worker chunk of the multi-core pre-gather
    /// (empty until a sweep actually runs with `threads > 1`).
    pool: Vec<DenseAccumulator>,
}

impl SweepScratch {
    /// Re-initializes every buffer for a sweep over `t` snapshot rows and
    /// `k` communities.
    fn reset(&mut self, t: usize, k: usize) {
        reset_fill(&mut self.last_eval, t, 0);
        reset_fill(&mut self.gathered_at, t, 0);
        reset_fill(&mut self.links_dirty, t, 1);
        reset_fill(&mut self.comm_stamp, k, 1);
        for cache in self.cand_cache.iter_mut().take(t) {
            cache.clear();
        }
        if self.cand_cache.len() < t {
            self.cand_cache.resize_with(t, Vec::new);
        }
    }

    /// Approximate resident bytes across every retained buffer
    /// (capacity-based), including the per-worker accumulator pool and the
    /// candidate-cache inner vectors.
    pub(crate) fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let stamps = (self.last_eval.capacity()
            + self.gathered_at.capacity()
            + self.links_dirty.capacity()
            + self.comm_stamp.capacity())
            * size_of::<u64>();
        let caches = self.cand_cache.capacity() * size_of::<Vec<(u32, f64)>>()
            + self
                .cand_cache
                .iter()
                .map(|c| c.capacity() * size_of::<(u32, f64)>())
                .sum::<usize>();
        let pool = self.pool.iter().map(|a| a.approx_bytes()).sum::<usize>();
        self.acc.approx_bytes() + stamps + caches + pool
    }
}

/// `vec![value; len]` semantics over a retained buffer.
fn reset_fill(buf: &mut Vec<u64>, len: usize, value: u64) {
    buf.clear();
    buf.resize(len, value);
}

/// Gathers row `local`'s per-community link weights into `acc` (sorted
/// ascending on return), mirroring `CommunityState::gather_links` but over
/// snapshot rows: canonical neighbor order, weights toward [`UNASSIGNED`]
/// neighbors kept out of the candidate set. Runs the shared blocked
/// gather strip ([`gather_labels_blocked`]) — bit-identical to the scalar
/// loop, addressing the PR 4 "gather dominates gain evaluation" lead.
#[inline]
fn gather_row(snap: &DeltaCsr, local: usize, labels: &[u32], k: usize, acc: &mut DenseAccumulator) {
    acc.begin(k);
    let (targets, weights) = snap.row(local);
    gather_labels_blocked(targets, weights, labels, |cu, w| {
        if cu != UNASSIGNED {
            acc.add(cu, w);
        }
    });
    acc.sort_touched();
}

/// Runs both phases of Algorithm 2 over `snap`, committing moves into
/// `labels` (global node-id space) and `state`.
///
/// `epsilon`/`max_sweeps` bound the phase-2 loop exactly as in the classic
/// implementation. `threads` only chooses *how* the candidate gathers are
/// computed: `<= 1` takes the exact serial code path, larger counts run
/// the multi-core variant — bit-identical labels, gains and sweep counts
/// at any count (pinned by the `parallel_invariance` suite).
pub(crate) fn epoch_sweep(
    snap: &DeltaCsr,
    labels: &mut [u32],
    state: &mut CommunityState,
    epsilon: f64,
    max_sweeps: usize,
    scratch: &mut SweepScratch,
    threads: usize,
) -> EpochSweepOutcome {
    let threads = par::resolve_threads(threads);
    if threads <= 1 {
        epoch_sweep_serial(snap, labels, state, epsilon, max_sweeps, scratch)
    } else {
        epoch_sweep_parallel(snap, labels, state, epsilon, max_sweeps, scratch, threads)
    }
}

/// The serial epoch sweep — the `threads == 1` code path, byte for byte
/// the kernel that predates the multi-core sweep engine.
fn epoch_sweep_serial(
    snap: &DeltaCsr,
    labels: &mut [u32],
    state: &mut CommunityState,
    epsilon: f64,
    max_sweeps: usize,
    scratch: &mut SweepScratch,
) -> EpochSweepOutcome {
    let t = snap.len();
    let k = state.community_count();
    scratch.reset(t, k);
    let SweepScratch {
        acc,
        last_eval,
        gathered_at,
        links_dirty,
        comm_stamp,
        cand_cache,
        ..
    } = scratch;
    let mut out = EpochSweepOutcome::default();

    // ---- Phase 1 (lines 1–8): place brand-new nodes.
    for i in 0..t {
        let g = snap.global_id(i) as usize;
        if labels[g] != UNASSIGNED {
            continue;
        }
        out.new_nodes += 1;
        gather_row(snap, i, labels, k, acc);
        let self_w = snap.self_loop(i);
        let d_v = snap.incident_weight(i);
        // Ties (within GAIN_EPS of the running maximum gain) broken toward
        // the least-loaded community — see `GTxAllo::best_join` for the
        // anchoring rule and why the id tie-break would wreck balance.
        let mut best: Option<(u32, f64, f64)> = None; // (q, gain, sigma)
        let mut max_gain = f64::NEG_INFINITY;
        let mut consider = |q: u32, w_vq: f64, best: &mut Option<(u32, f64, f64)>| {
            let gain = state.join_gain(q, self_w, d_v, w_vq);
            let sigma = state.sigma(q);
            if gain > max_gain {
                max_gain = gain;
            }
            let better = match *best {
                None => true,
                Some((_, bg, bs)) => {
                    bg < max_gain - GAIN_EPS || (gain >= max_gain - GAIN_EPS && sigma < bs)
                }
            };
            if better {
                *best = Some((q, gain, sigma));
            }
        };
        if acc.is_empty() {
            // C_v = ∅: consider every community (lines 3–5).
            for q in 0..k as u32 {
                consider(q, 0.0, &mut best);
            }
        } else {
            for (q, w_vq) in acc.entries() {
                consider(q, w_vq, &mut best);
            }
        }
        let q = best.expect("k ≥ 1").0; // txallo-lint: allow(lib-unwrap) — the candidate scan visits every shard 0..k and k >= 1, so best is always set
        let w_vq = acc.get(q);
        state.apply_join(q, self_w, d_v, w_vq);
        labels[g] = q;
        out.moves += 1;
    }

    // ---- Phase 2 (lines 9–17): optimize over V̂ with stamp skipping.
    // (The stamp arrays and the candidate caches — ascending community
    // order, straight from the gather, reused until a snapshot neighbor
    // moves — live in the caller-provided scratch.)
    let mut move_stamp: u64 = 1; // bumped on every committed move
    loop {
        let mut delta = 0.0;
        for i in 0..t {
            let g = snap.global_id(i) as usize;
            let p = labels[g];
            let links_fresh = links_dirty[i] <= gathered_at[i];
            if links_fresh {
                let seen = last_eval[i];
                if comm_stamp[p as usize] <= seen
                    && cand_cache[i]
                        .iter()
                        .all(|&(c, _)| comm_stamp[c as usize] <= seen)
                {
                    continue; // Inputs unchanged: evaluation would no-op.
                }
            } else {
                gather_row(snap, i, labels, k, acc);
                gathered_at[i] = move_stamp;
                cand_cache[i].clear();
                cand_cache[i].extend(acc.entries());
            }
            last_eval[i] = move_stamp;
            let cand = &cand_cache[i];
            if cand.is_empty() || (cand.len() == 1 && cand[0].0 == p) {
                continue; // C_v = ∅ or v only touches its own community.
            }
            let self_w = snap.self_loop(i);
            let d_v = snap.incident_weight(i);
            let w_vp = cand.iter().find(|&&(c, _)| c == p).map_or(0.0, |&(_, w)| w);
            let leave = state.leave_gain(p, self_w, d_v, w_vp);

            // Candidates are sorted ascending; a later candidate must beat
            // the best by > GAIN_EPS.
            let mut best: Option<(u32, f64, f64)> = None; // (q, gain, w_vq)
            for &(q, w_vq) in cand {
                if q == p {
                    continue;
                }
                let gain = leave + state.join_gain(q, self_w, d_v, w_vq);
                match best {
                    Some((_, bg, _)) if gain <= bg + GAIN_EPS => {}
                    _ => best = Some((q, gain, w_vq)),
                }
            }
            if let Some((q, gain, w_vq)) = best {
                if gain > 0.0 {
                    state.apply_leave(p, self_w, d_v, w_vp);
                    state.apply_join(q, self_w, d_v, w_vq);
                    labels[g] = q;
                    delta += gain;
                    out.total_gain += gain;
                    out.moves += 1;
                    move_stamp += 1;
                    comm_stamp[p as usize] = move_stamp;
                    comm_stamp[q as usize] = move_stamp;
                    // Only snapshot members can move, so only they cache
                    // link weights that just went stale. The `local_of`
                    // lookup is paid per committed move, not per edge of
                    // the snapshot build.
                    let (targets, _) = snap.row(i);
                    for &u in targets {
                        if let Some(lt) = snap.local_of(u) {
                            links_dirty[lt as usize] = move_stamp;
                        }
                    }
                }
            }
        }
        out.sweeps += 1;
        if delta < epsilon || out.sweeps >= max_sweeps {
            break;
        }
    }

    out
}

/// The multi-core epoch sweep.
///
/// **Why this is bit-identical to [`epoch_sweep_serial`].** A row's
/// candidate gather is a pure function of (row, neighbor labels), and the
/// kernel already tracks exactly when that input changes: every committed
/// move dirties the snapshot rows adjacent to the mover (`links_dirty`),
/// and only snapshot rows ever change labels during an epoch. The
/// parallel variant therefore refreshes all *stale* gathers concurrently
/// whenever the labels are frozen — once before the placement loop, once
/// at each phase-2 sweep boundary — partitioned by canonical row ranges
/// ([`par::entry_balanced_split`] over [`DeltaCsr::offsets`]), each chunk
/// writing only its own `cand_cache` window with its own accumulator. The
/// decision loops that follow are the serial ones: same visit order, same
/// cached bits (a cache invalidated by an earlier in-loop commit is
/// re-gathered serially at its turn, exactly as before), hence the same
/// move sequence, float by float. No gain or accounting update ever
/// crosses a chunk boundary.
#[allow(clippy::too_many_arguments)]
fn epoch_sweep_parallel(
    snap: &DeltaCsr,
    labels: &mut [u32],
    state: &mut CommunityState,
    epsilon: f64,
    max_sweeps: usize,
    scratch: &mut SweepScratch,
    threads: usize,
) -> EpochSweepOutcome {
    let t = snap.len();
    let k = state.community_count();
    scratch.reset(t, k);
    let bounds = par::entry_balanced_split(snap.offsets(), threads.min(t.max(1)));
    let chunks = bounds.len() - 1;
    if scratch.pool.len() < chunks {
        scratch.pool.resize_with(chunks, DenseAccumulator::default);
    }
    let SweepScratch {
        acc,
        last_eval,
        gathered_at,
        links_dirty,
        comm_stamp,
        cand_cache,
        pool,
    } = scratch;
    let mut out = EpochSweepOutcome::default();

    // ---- Phase 1 (lines 1–8): place brand-new nodes.
    // Pre-gather every unassigned row against the pre-placement labels,
    // in parallel; rows whose gather is invalidated by an earlier
    // placement re-gather serially at their turn below.
    {
        let labels_ro: &[u32] = labels;
        par::for_each_chunk_mut(&bounds, &mut cand_cache[..t], pool, |lo, caches, acc| {
            for (idx, cache) in caches.iter_mut().enumerate() {
                let i = lo + idx;
                if labels_ro[snap.global_id(i) as usize] != UNASSIGNED {
                    continue;
                }
                gather_row(snap, i, labels_ro, k, acc);
                cache.clear();
                cache.extend(acc.entries());
            }
        });
    }
    let mut stamp: u64 = 1; // phase-1 local; reset before phase 2
    for i in 0..t {
        if labels[snap.global_id(i) as usize] == UNASSIGNED {
            gathered_at[i] = stamp;
        }
    }
    for i in 0..t {
        let g = snap.global_id(i) as usize;
        if labels[g] != UNASSIGNED {
            continue;
        }
        out.new_nodes += 1;
        if links_dirty[i] > gathered_at[i] {
            gather_row(snap, i, labels, k, acc);
            gathered_at[i] = stamp;
            cand_cache[i].clear();
            cand_cache[i].extend(acc.entries());
        }
        let cand = &cand_cache[i];
        let self_w = snap.self_loop(i);
        let d_v = snap.incident_weight(i);
        let mut best: Option<(u32, f64, f64)> = None; // (q, gain, sigma)
        let mut max_gain = f64::NEG_INFINITY;
        let mut consider = |q: u32, w_vq: f64, best: &mut Option<(u32, f64, f64)>| {
            let gain = state.join_gain(q, self_w, d_v, w_vq);
            let sigma = state.sigma(q);
            if gain > max_gain {
                max_gain = gain;
            }
            let better = match *best {
                None => true,
                Some((_, bg, bs)) => {
                    bg < max_gain - GAIN_EPS || (gain >= max_gain - GAIN_EPS && sigma < bs)
                }
            };
            if better {
                *best = Some((q, gain, sigma));
            }
        };
        if cand.is_empty() {
            // C_v = ∅: consider every community (lines 3–5).
            for q in 0..k as u32 {
                consider(q, 0.0, &mut best);
            }
        } else {
            for &(q, w_vq) in cand {
                consider(q, w_vq, &mut best);
            }
        }
        // txallo-lint: allow(lib-unwrap) — the candidate scan visits every shard 0..k and k >= 1, so best is always set
        let q = best.expect("k ≥ 1").0;
        // Equals the serial `acc.get(q)`: the cache holds exactly the
        // touched buckets and `get` reads 0.0 for untouched ones.
        let w_vq = cand.iter().find(|&&(c, _)| c == q).map_or(0.0, |&(_, w)| w);
        state.apply_join(q, self_w, d_v, w_vq);
        labels[g] = q;
        out.moves += 1;
        stamp += 1;
        let (targets, _) = snap.row(i);
        for &u in targets {
            if let Some(lt) = snap.local_of(u) {
                links_dirty[lt as usize] = stamp;
            }
        }
    }
    // Restore the stamp state phase 2 starts from in the serial kernel:
    // every row stale (so the first sweep-boundary pre-gather refreshes
    // all caches against the post-placement labels), no evaluations seen.
    links_dirty.iter_mut().for_each(|x| *x = 1);
    gathered_at.iter_mut().for_each(|x| *x = 0);

    // ---- Phase 2 (lines 9–17): optimize over V̂ with stamp skipping.
    let mut move_stamp: u64 = 1; // bumped on every committed move
    loop {
        // Refresh every stale gather against the sweep-boundary labels.
        {
            let labels_ro: &[u32] = labels;
            let ld: &[u64] = links_dirty;
            let ga: &[u64] = gathered_at;
            par::for_each_chunk_mut(&bounds, &mut cand_cache[..t], pool, |lo, caches, acc| {
                for (idx, cache) in caches.iter_mut().enumerate() {
                    let i = lo + idx;
                    if ld[i] <= ga[i] {
                        continue;
                    }
                    gather_row(snap, i, labels_ro, k, acc);
                    cache.clear();
                    cache.extend(acc.entries());
                }
            });
        }
        for i in 0..t {
            if links_dirty[i] > gathered_at[i] {
                gathered_at[i] = move_stamp;
            }
        }

        let mut delta = 0.0;
        for i in 0..t {
            let g = snap.global_id(i) as usize;
            let p = labels[g];
            let links_fresh = links_dirty[i] <= gathered_at[i];
            if links_fresh {
                let seen = last_eval[i];
                if comm_stamp[p as usize] <= seen
                    && cand_cache[i]
                        .iter()
                        .all(|&(c, _)| comm_stamp[c as usize] <= seen)
                {
                    continue; // Inputs unchanged: evaluation would no-op.
                }
            } else {
                gather_row(snap, i, labels, k, acc);
                gathered_at[i] = move_stamp;
                cand_cache[i].clear();
                cand_cache[i].extend(acc.entries());
            }
            last_eval[i] = move_stamp;
            let cand = &cand_cache[i];
            if cand.is_empty() || (cand.len() == 1 && cand[0].0 == p) {
                continue; // C_v = ∅ or v only touches its own community.
            }
            let self_w = snap.self_loop(i);
            let d_v = snap.incident_weight(i);
            let w_vp = cand.iter().find(|&&(c, _)| c == p).map_or(0.0, |&(_, w)| w);
            let leave = state.leave_gain(p, self_w, d_v, w_vp);

            // Candidates are sorted ascending; a later candidate must beat
            // the best by > GAIN_EPS.
            let mut best: Option<(u32, f64, f64)> = None; // (q, gain, w_vq)
            for &(q, w_vq) in cand {
                if q == p {
                    continue;
                }
                let gain = leave + state.join_gain(q, self_w, d_v, w_vq);
                match best {
                    Some((_, bg, _)) if gain <= bg + GAIN_EPS => {}
                    _ => best = Some((q, gain, w_vq)),
                }
            }
            if let Some((q, gain, w_vq)) = best {
                if gain > 0.0 {
                    state.apply_leave(p, self_w, d_v, w_vp);
                    state.apply_join(q, self_w, d_v, w_vq);
                    labels[g] = q;
                    delta += gain;
                    out.total_gain += gain;
                    out.moves += 1;
                    move_stamp += 1;
                    comm_stamp[p as usize] = move_stamp;
                    comm_stamp[q as usize] = move_stamp;
                    let (targets, _) = snap.row(i);
                    for &u in targets {
                        if let Some(lt) = snap.local_of(u) {
                            links_dirty[lt as usize] = move_stamp;
                        }
                    }
                }
            }
        }
        out.sweeps += 1;
        if delta < epsilon || out.sweeps >= max_sweeps {
            break;
        }
    }

    out
}
