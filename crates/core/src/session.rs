//! A long-lived A-TxAllo serving session: community accounting carried
//! across epochs instead of re-derived per update.
//!
//! The stateless [`AtxAllo::update`](crate::AtxAllo::update) rebuilds the
//! per-community `intra`/`cut` aggregates from the whole graph on every
//! call — an `O(n + m)` hash-adjacency walk that dwarfs the actual sweep
//! once the chain is long and epochs touch only a small `V̂`. A serving
//! allocator processes an unbounded stream of epochs over one growing
//! graph, so the aggregates should be *maintained*, not recomputed:
//!
//! 1. [`AtxAlloSession::new`] pays the full walk once (warm-up);
//! 2. each epoch, [`AtxAlloSession::apply_block`] folds the freshly
//!    ingested transaction deltas into the aggregates in `O(block edges)`
//!    — the same clique-expansion weights [`TxGraph::ingest_block`] just
//!    added to the graph, classified by the *current* labels;
//! 3. [`AtxAlloSession::update`] then runs the same delta-CSR epoch sweep
//!    as the stateless path (the private `incremental` kernel), which
//!    keeps the aggregates in lock-step via `apply_join`/`apply_leave` as
//!    it moves nodes.
//!
//! The per-epoch cost becomes `O(|V̂| log |V̂| + Σ_{v∈V̂} deg v)` — fully
//! independent of chain length, which is the §V-C promise A-TxAllo makes
//! on paper.
//!
//! ## Consistency contract
//!
//! After every `apply_block`/`update` cycle the aggregates equal (up to
//! float rounding of the different summation order) what
//! `CommunityState::from_labels` would recompute from scratch;
//! [`AtxAlloSession::consistency_error`] measures the drift and the sim
//! tests bound it. Out-of-band graph edits split in two:
//!
//! * **uniform rescaling** (exponential decay) *folds* into the session —
//!   [`AtxAlloSession::apply_decay`] scales the aggregates by the same
//!   factor, exactly, because they are linear in the edge weights
//!   (golden-tested against the rebuild path);
//! * **non-uniform edits** (sliding-window eviction, edge dropping)
//!   cannot be folded: drop the session and build a fresh one (the
//!   streaming layer's `AdaptiveStream::invalidate`, and every global
//!   G-TxAllo refresh, do exactly that).

use txallo_graph::{BlockNodes, DeltaCsr, NodeId, TxGraph, WeightedGraph};
use txallo_model::Block;

use crate::allocation::Allocation;
use crate::atxallo::{AtxAlloOutcome, UpdatePath};
use crate::incremental::{epoch_sweep, SweepScratch};
use crate::params::TxAlloParams;
use crate::state::{CommunityState, UNASSIGNED};

/// Epoch-serving A-TxAllo state: the label vector and the per-community
/// accounting, both surviving across epochs (see the module docs).
#[derive(Debug, Clone)]
pub struct AtxAlloSession {
    shards: usize,
    labels: Vec<u32>,
    state: CommunityState,
    /// Snapshot buffer, refilled per epoch ([`DeltaCsr::refill_touched`])
    /// so row storage is allocated once per session, not once per epoch.
    snap: DeltaCsr,
    /// Sweep-kernel buffers (stamp arrays, candidate caches), same deal.
    scratch: SweepScratch,
}

impl AtxAlloSession {
    /// Opens a session from the current graph and its allocation, paying
    /// the one-off `O(n + m)` aggregate construction.
    pub fn new(graph: &TxGraph, allocation: &Allocation, params: &TxAlloParams) -> Self {
        let k = params.shards;
        assert_eq!(
            allocation.shard_count(),
            k,
            "allocation/params disagree on k"
        );
        assert!(
            allocation.len() <= graph.node_count(),
            "allocation labels unknown nodes"
        );
        let mut labels: Vec<u32> = Vec::with_capacity(graph.node_count());
        labels.extend_from_slice(allocation.labels());
        labels.resize(graph.node_count(), UNASSIGNED);
        let state = CommunityState::from_labels(graph, &labels, k, params.eta, params.capacity);
        Self {
            shards: k,
            labels,
            state,
            snap: DeltaCsr::default(),
            scratch: SweepScratch::default(),
        }
    }

    /// Reopens a session from checkpointed parts: the label vector and
    /// the maintained aggregates, both adopted bit-for-bit (never
    /// recomputed — they are chronological float accumulations). The
    /// snapshot and sweep buffers are per-epoch scratch, refilled before
    /// first use, so a resumed session is indistinguishable from one that
    /// never stopped. The caller vouches for the labels/aggregates pair
    /// being consistent ([`AtxAlloSession::consistency_error`] audits it).
    pub fn from_parts(shards: usize, labels: Vec<u32>, state: CommunityState) -> Self {
        assert_eq!(
            state.community_count(),
            shards,
            "aggregates must cover every shard"
        );
        Self {
            shards,
            labels,
            state,
            snap: DeltaCsr::default(),
            scratch: SweepScratch::default(),
        }
    }

    /// The maintained per-community aggregates (checkpoint export).
    pub fn state(&self) -> &CommunityState {
        &self.state
    }

    /// The current account-shard mapping.
    pub fn allocation(&self) -> Allocation {
        Allocation::new(self.labels.clone(), self.shards)
    }

    /// The raw label vector (index = node id; nodes ingested since the
    /// last sweep report [`UNASSIGNED`]). Borrowed view of
    /// [`AtxAlloSession::allocation`] for diffing without a clone.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Approximate resident bytes of the whole session: labels, community
    /// aggregates, the warm snapshot buffer, and the sweep scratch. All
    /// capacity-based, so it reports the high-water mark a long-lived
    /// session actually holds.
    pub fn approx_bytes(&self) -> usize {
        self.labels.capacity() * std::mem::size_of::<u32>()
            + self.state.approx_bytes()
            + self.snap.approx_bytes()
            + self.scratch.approx_bytes()
    }

    /// Folds a uniform out-of-band rescale of every edge weight (decay
    /// factor `f ∈ (0, 1]`) into the maintained aggregates.
    ///
    /// The `intra`/`cut` sums are linear in the edge weights, so a uniform
    /// graph rescale maps to exactly `aggregate × f` — the session
    /// survives decay epochs instead of paying the `O(n + m)` rebuild it
    /// used to. The only divergence from a from-scratch recomputation is
    /// floating-point rounding (`Σ(wᵢ·f)` vs `(Σwᵢ)·f`), which is the same
    /// class of drift the incremental delta folding already accepts and
    /// [`AtxAlloSession::consistency_error`] bounds; the decay golden
    /// tests assert the resulting *allocations* match the rebuild path
    /// exactly.
    ///
    /// Non-uniform edits (e.g. [`TxGraph::prune_dust`] dropping edges)
    /// cannot be folded — drop the session and rebuild instead.
    pub fn apply_decay(&mut self, factor: f64) {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "decay factor must be in (0, 1], got {factor}"
        );
        self.state.scale_aggregates(factor);
    }

    /// Label of `node` (new nodes the sweep has not placed yet report
    /// [`UNASSIGNED`]).
    #[inline]
    fn label_of(&self, node: NodeId) -> u32 {
        self.labels
            .get(node as usize)
            .copied()
            .unwrap_or(UNASSIGNED)
    }

    /// Folds one freshly-ingested block into the aggregates.
    ///
    /// Call *after* [`TxGraph::ingest_block`] for the same block (the
    /// accounts must be interned) and *before* [`AtxAlloSession::update`]
    /// for the epoch. Replays the exact clique-expansion weights ingestion
    /// used, classified by the current labels, in `O(block edges)`.
    ///
    /// Only the `intra`/`cut` aggregates are folded here; the cached
    /// capped throughputs go stale and are refreshed once per epoch by
    /// [`AtxAlloSession::update`] (via the `set_limits` parameter
    /// refresh), not once per block.
    pub fn apply_block(&mut self, graph: &TxGraph, block: &Block) {
        for tx in block.transactions() {
            // Plain transfers — the overwhelming share of a block — fold
            // without the `account_set` allocation/sort: a 1↔1 transaction
            // is one unit edge (or one unit self-loop), exactly what the
            // general clique-expansion path below computes for it.
            if let ([a], [b]) = (tx.inputs(), tx.outputs()) {
                let na = graph.node_of(*a).expect("block accounts are interned"); // txallo-lint: allow(lib-unwrap) — on_block's contract: ingest_block interned every account of this block first
                if a == b {
                    self.state.apply_self_loop_delta(self.label_of(na), 1.0);
                } else {
                    let nb = graph.node_of(*b).expect("block accounts are interned"); // txallo-lint: allow(lib-unwrap) — on_block's contract: ingest_block interned every account of this block first
                    self.state
                        .apply_edge_delta(self.label_of(na), self.label_of(nb), 1.0);
                }
                continue;
            }
            let set = tx.account_set();
            if set.len() == 1 {
                let n = graph.node_of(set[0]).expect("block accounts are interned"); // txallo-lint: allow(lib-unwrap) — on_block's contract: ingest_block interned every account of this block first
                self.state.apply_self_loop_delta(self.label_of(n), 1.0);
                continue;
            }
            let w = 1.0 / (set.len() * (set.len() - 1) / 2) as f64;
            for (i, &acct_a) in set.iter().enumerate() {
                let a = graph.node_of(acct_a).expect("block accounts are interned"); // txallo-lint: allow(lib-unwrap) — on_block's contract: ingest_block interned every account of this block first
                let la = self.label_of(a);
                for &acct_b in &set[(i + 1)..] {
                    let b = graph.node_of(acct_b).expect("block accounts are interned"); // txallo-lint: allow(lib-unwrap) — on_block's contract: ingest_block interned every account of this block first
                    self.state.apply_edge_delta(la, self.label_of(b), w);
                }
            }
        }
    }

    /// [`AtxAlloSession::apply_block`] over the interned view
    /// [`TxGraph::ingest_block_nodes`] returned for the same block: the
    /// per-transaction dense node ids are already resolved, so the fold
    /// pays zero interner (account-hash) lookups. Bit-identical to
    /// [`AtxAlloSession::apply_block`]: the per-transaction weights and
    /// the delta application order are exactly the clique expansion over
    /// `account_set`, which is what `tx_nodes` mirrors (a plain 1↔1
    /// transfer is a 2-element set with pair weight exactly `1.0`, the
    /// same delta the transfer fast path applied).
    pub fn apply_block_nodes(&mut self, nodes: &BlockNodes) {
        for i in 0..nodes.tx_count() {
            let set = nodes.tx_nodes(i);
            if set.len() == 1 {
                self.state.apply_self_loop_delta(self.label_of(set[0]), 1.0);
                continue;
            }
            let w = 1.0 / (set.len() * (set.len() - 1) / 2) as f64;
            for (a_idx, &a) in set.iter().enumerate() {
                let la = self.label_of(a);
                for &b in &set[(a_idx + 1)..] {
                    self.state.apply_edge_delta(la, self.label_of(b), w);
                }
            }
        }
    }

    /// [`AtxAlloSession::apply_block_nodes`] with a thread-count knob
    /// (determinism rule D5): `threads <= 1` is the exact serial code
    /// path; more threads expand the clique deltas over **canonical
    /// transaction chunks** (boundaries balanced by per-transaction pair
    /// counts — a pure function of the block, never the thread count),
    /// concatenate the per-chunk tagged emissions through
    /// `par::reduce_tree` (order-preserving, so every aggregate slot's
    /// contributions arrive in serial transaction order), and fold the
    /// merged list serially. Bit-identical to the serial fold at every
    /// thread count, pinned by the tests below and the
    /// `parallel_invariance` suite.
    pub fn apply_block_nodes_threaded(&mut self, nodes: &BlockNodes, threads: usize) {
        self.apply_block_nodes_chunked(nodes, threads, None);
    }

    /// The chunked fold behind [`AtxAlloSession::apply_block_nodes_threaded`],
    /// with a test hook forcing the chunk count — the emission is
    /// shape-independent (any partition reproduces the serial bits), so
    /// tests exercise many shapes on blocks far below the production
    /// chunk quantum.
    fn apply_block_nodes_chunked(
        &mut self,
        nodes: &BlockNodes,
        threads: usize,
        forced_chunks: Option<usize>,
    ) {
        use txallo_graph::par::{
            canonical_chunk_count, entry_balanced_split, fold_chunks, reduce_tree, resolve_threads,
        };
        /// Pair-count work quantum per canonical ingestion chunk.
        const CHUNK_QUANTUM: usize = 2048;
        /// Hard ceiling on the canonical chunk count.
        const MAX_CHUNKS: usize = 64;

        let workers = resolve_threads(threads);
        let tx_count = nodes.tx_count();
        if workers <= 1 || tx_count == 0 {
            return self.apply_block_nodes(nodes);
        }
        // Canonical chunk shape: transaction ranges balanced by clique
        // pair counts, both derived from the block alone.
        let mut work_prefix = vec![0u32; tx_count + 1];
        for i in 0..tx_count {
            let len = nodes.tx_nodes(i).len();
            let pairs = if len <= 1 { 1 } else { len * (len - 1) / 2 };
            work_prefix[i + 1] = work_prefix[i] + txallo_graph::fit_u32(pairs);
        }
        let chunk_target = forced_chunks.unwrap_or_else(|| {
            canonical_chunk_count(work_prefix[tx_count] as usize, CHUNK_QUANTUM, MAX_CHUNKS)
        });
        let bounds = entry_balanced_split(&work_prefix, chunk_target);
        if bounds.len() - 1 <= 1 {
            return self.apply_block_nodes(nodes);
        }

        // Parallel emission: each canonical chunk expands its
        // transactions' cliques into `(slot tag, w)` deltas in serial
        // order, dropping unassigned endpoints exactly where the serial
        // fold would (tag = community << 1, low bit = cut slot).
        let labels: &[u32] = &self.labels;
        let label_of = |node: NodeId| labels.get(node as usize).copied().unwrap_or(UNASSIGNED);
        let partials: Vec<Vec<(u32, f64)>> = fold_chunks(workers, &bounds, |_, lo, hi| {
            let mut out = Vec::new();
            for i in lo..hi {
                let set = nodes.tx_nodes(i);
                if set.len() == 1 {
                    let la = label_of(set[0]);
                    if la != UNASSIGNED {
                        out.push((la << 1, 1.0));
                    }
                    continue;
                }
                let w = 1.0 / (set.len() * (set.len() - 1) / 2) as f64;
                for (a_idx, &a) in set.iter().enumerate() {
                    let la = label_of(a);
                    for &b in &set[(a_idx + 1)..] {
                        let lb = label_of(b);
                        if la == lb {
                            if la != UNASSIGNED {
                                out.push((la << 1, w));
                            }
                        } else {
                            if la != UNASSIGNED {
                                out.push(((la << 1) | 1, w));
                            }
                            if lb != UNASSIGNED {
                                out.push(((lb << 1) | 1, w));
                            }
                        }
                    }
                }
            }
            out
        });

        // Fixed-tree concatenation (order-preserving, exact under the
        // tree's association) then one serial per-slot fold: every slot
        // sees its contributions in global transaction order — the
        // serial fold's order — so the aggregates come out bit-identical.
        let merged = reduce_tree(partials, |mut a, mut b| {
            a.append(&mut b);
            a
        })
        .unwrap_or_default();
        self.state.fold_tagged_deltas(&merged);
    }

    /// Runs the epoch update over `touched`, mutating the session's labels
    /// and aggregates in place and reporting the same outcome as the
    /// stateless [`AtxAllo::update`](crate::AtxAllo::update).
    ///
    /// `params` is taken fresh each epoch because `λ = |T|/k` and `ε`
    /// scale with the accumulated weight; the snapshot route follows
    /// [`TxAlloParams::incremental_threshold`] exactly like the stateless
    /// path.
    pub fn update(
        &mut self,
        graph: &TxGraph,
        touched: &[NodeId],
        params: &TxAlloParams,
    ) -> AtxAlloOutcome {
        let n = graph.node_count();
        let frac = if n == 0 {
            0.0
        } else {
            touched.len() as f64 / n as f64
        };
        let path = if frac <= params.incremental_threshold {
            UpdatePath::Incremental
        } else {
            UpdatePath::Full
        };
        self.update_with_route(graph, touched, params, path)
    }

    /// [`AtxAlloSession::update`] with the snapshot route forced — the
    /// single epoch-update driver behind both the session and the
    /// stateless [`AtxAllo`](crate::AtxAllo) entry points (and the golden
    /// tests' route-equivalence comparisons).
    pub(crate) fn update_with_route(
        &mut self,
        graph: &TxGraph,
        touched: &[NodeId],
        params: &TxAlloParams,
        path: UpdatePath,
    ) -> AtxAlloOutcome {
        assert_eq!(
            params.shards, self.shards,
            "shard count is fixed per session"
        );
        self.labels.resize(graph.node_count(), UNASSIGNED);
        self.state.set_limits(params.eta, params.capacity);

        match path {
            UpdatePath::Incremental => self.snap.refill_touched(graph, touched),
            UpdatePath::Full => self.snap.refill_full(graph, touched),
        }
        let out = epoch_sweep(
            &self.snap,
            &mut self.labels,
            &mut self.state,
            params.epsilon,
            params.max_sweeps,
            &mut self.scratch,
            params.threads,
        );

        AtxAlloOutcome {
            allocation: Allocation::new(self.labels.clone(), self.shards),
            new_nodes: out.new_nodes,
            sweeps: out.sweeps,
            total_gain: out.total_gain,
            moves: out.moves,
            path,
        }
    }

    /// Maximum absolute difference between the maintained aggregates and a
    /// from-scratch recomputation over `graph` — the float drift of the
    /// incremental accounting. `O(n + m)`; a diagnostics/testing aid, not
    /// part of the serving path.
    pub fn consistency_error(&self, graph: &TxGraph) -> f64 {
        // Nodes ingested since the last sweep are unassigned either way.
        let mut labels = self.labels.clone();
        labels.resize(graph.node_count(), UNASSIGNED);
        let fresh = CommunityState::from_labels(
            graph,
            &labels,
            self.shards,
            self.state.eta(),
            self.state.capacity(),
        );
        let mut err = 0.0f64;
        for c in 0..self.shards as u32 {
            err = err.max((fresh.intra(c) - self.state.intra(c)).abs());
            err = err.max((fresh.cut(c) - self.state.cut(c)).abs());
        }
        err
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atxallo::AtxAllo;
    use crate::gtxallo::GTxAllo;
    use txallo_model::{AccountId, Transaction};

    fn base_graph() -> TxGraph {
        let mut g = TxGraph::new();
        for base in [0u64, 10] {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    g.ingest_transaction(&Transaction::transfer(
                        AccountId(base + i),
                        AccountId(base + j),
                    ));
                }
            }
        }
        g
    }

    fn epoch_block(h: u64, pairs: &[(u64, u64)]) -> Block {
        Block::new(
            h,
            pairs
                .iter()
                .map(|&(a, b)| Transaction::transfer(AccountId(a), AccountId(b)))
                .collect(),
        )
    }

    #[test]
    fn session_matches_stateless_across_epochs() {
        let mut g = base_graph();
        let params = TxAlloParams::for_graph(&g, 2);
        let prev = GTxAllo::new(params.clone()).allocate_graph(&g);
        let mut session = AtxAlloSession::new(&g, &prev, &params);

        let mut stateless_prev = prev;
        let epochs: Vec<Vec<(u64, u64)>> = vec![
            vec![(100, 0), (100, 1), (3, 12)],
            vec![(100, 2), (101, 100), (13, 14)],
            vec![(0, 10), (101, 11), (200, 200)],
        ];
        for (h, pairs) in epochs.iter().enumerate() {
            let block = epoch_block(h as u64, pairs);
            let touched = g.ingest_block(&block);
            let params = TxAlloParams::for_graph(&g, 2);

            session.apply_block(&g, &block);
            let from_session = session.update(&g, &touched, &params);
            let from_stateless = AtxAllo::new(params).update(&g, &stateless_prev, &touched);

            assert_eq!(
                from_session.allocation, from_stateless.allocation,
                "epoch {h}: session diverged from stateless"
            );
            assert!(
                session.consistency_error(&g) < 1e-9,
                "epoch {h}: aggregates drifted"
            );
            stateless_prev = from_stateless.allocation;
        }
    }

    #[test]
    fn apply_block_tracks_recomputation() {
        let mut g = base_graph();
        let params = TxAlloParams::for_graph(&g, 2);
        let prev = GTxAllo::new(params.clone()).allocate_graph(&g);
        let mut session = AtxAlloSession::new(&g, &prev, &params);
        // Mix of intra, cross, new-account and self-loop transactions, plus
        // a multi-account transfer.
        let mut txs: Vec<Transaction> = vec![
            Transaction::transfer(AccountId(0), AccountId(1)),
            Transaction::transfer(AccountId(0), AccountId(10)),
            Transaction::transfer(AccountId(300), AccountId(301)),
            Transaction::transfer(AccountId(4), AccountId(4)),
        ];
        txs.push(Transaction::new(vec![AccountId(0)], vec![AccountId(11), AccountId(12)]).unwrap());
        let block = Block::new(0, txs);
        g.ingest_block(&block);
        session.apply_block(&g, &block);
        assert!(
            session.consistency_error(&g) < 1e-12,
            "delta accounting must match recomputation"
        );
    }

    #[test]
    fn apply_block_nodes_matches_apply_block_bitwise() {
        // The interned fold must be bit-identical to the account-hashing
        // fold: same aggregates after the same block, transfer fast path
        // and clique expansion included.
        let mut g1 = base_graph();
        let mut g2 = base_graph();
        let params = TxAlloParams::for_graph(&g1, 2);
        let prev = GTxAllo::new(params.clone()).allocate_graph(&g1);
        let mut s1 = AtxAlloSession::new(&g1, &prev, &params);
        let mut s2 = AtxAlloSession::new(&g2, &prev, &params);
        let mut txs: Vec<Transaction> = vec![
            Transaction::transfer(AccountId(0), AccountId(1)),
            Transaction::transfer(AccountId(0), AccountId(10)),
            Transaction::transfer(AccountId(300), AccountId(301)),
            Transaction::transfer(AccountId(4), AccountId(4)),
        ];
        txs.push(Transaction::new(vec![AccountId(0)], vec![AccountId(11), AccountId(12)]).unwrap());
        let block = Block::new(0, txs);
        let nodes = g1.ingest_block_nodes(&block);
        g2.ingest_block(&block);
        s1.apply_block_nodes(&nodes);
        s2.apply_block(&g2, &block);
        for c in 0..2u32 {
            assert_eq!(s1.state.intra(c).to_bits(), s2.state.intra(c).to_bits());
            assert_eq!(s1.state.cut(c).to_bits(), s2.state.cut(c).to_bits());
        }
    }

    /// The canonical-chunk parallel fold is bit-identical to the serial
    /// fold at every thread count and chunk shape — per-slot emissions
    /// concatenate in chunk (= transaction) order through the fixed
    /// reduction tree, so no float ever reassociates.
    #[test]
    fn threaded_block_fold_is_bit_identical_to_serial() {
        let mut g = base_graph();
        let params = TxAlloParams::for_graph(&g, 3);
        let prev = GTxAllo::new(params.clone()).allocate_graph(&g);
        let serial_base = AtxAlloSession::new(&g, &prev, &params);
        // A messy block: transfers, self-transfers, multi-account cliques
        // (non-dyadic 1/3 weights), and brand-new (unassigned) accounts.
        let mut txs: Vec<Transaction> = Vec::new();
        for i in 0..40u64 {
            txs.push(Transaction::transfer(
                AccountId(i % 13),
                AccountId((i * 7 + 1) % 17),
            ));
            if i % 3 == 0 {
                txs.push(
                    Transaction::new(
                        vec![AccountId(i % 11)],
                        vec![AccountId((i + 5) % 19), AccountId(900 + i)],
                    )
                    .unwrap(),
                );
            }
            if i % 7 == 0 {
                txs.push(Transaction::transfer(AccountId(i), AccountId(i)));
            }
        }
        let block = Block::new(0, txs);
        let nodes = g.ingest_block_nodes(&block);

        let mut serial = serial_base.clone();
        serial.apply_block_nodes(&nodes);
        for threads in [2usize, 3, 8] {
            for chunks in [2usize, 3, 7, 16] {
                let mut par = serial_base.clone();
                par.apply_block_nodes_chunked(&nodes, threads, Some(chunks));
                for c in 0..3u32 {
                    assert_eq!(
                        par.state.intra(c).to_bits(),
                        serial.state.intra(c).to_bits(),
                        "intra {c} t={threads} chunks={chunks}"
                    );
                    assert_eq!(
                        par.state.cut(c).to_bits(),
                        serial.state.cut(c).to_bits(),
                        "cut {c} t={threads} chunks={chunks}"
                    );
                }
            }
        }
        // The public wrapper on a block below the quantum degenerates to
        // the serial path — still identical, by construction.
        let mut wrapper = serial_base.clone();
        wrapper.apply_block_nodes_threaded(&nodes, 8);
        for c in 0..3u32 {
            assert_eq!(
                wrapper.state.intra(c).to_bits(),
                serial.state.intra(c).to_bits()
            );
        }
    }

    #[test]
    fn empty_epoch_is_noop() {
        let g = base_graph();
        let params = TxAlloParams::for_graph(&g, 2);
        let prev = GTxAllo::new(params.clone()).allocate_graph(&g);
        let mut session = AtxAlloSession::new(&g, &prev, &params);
        let out = session.update(&g, &[], &params);
        assert_eq!(out.allocation, prev);
        assert_eq!(out.moves, 0);
    }
}
