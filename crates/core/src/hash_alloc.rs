//! The hash-based random allocation baseline (§II-C).
//!
//! Chainspace, Monoxide, OmniLedger and RapidChain all allocate accounts by
//! hashing their address: `shard = H(address) mod k`. It ignores history
//! entirely, which is why ~`1 − 1/k` of transactions end up cross-shard.

use crate::allocation::Allocation;
use crate::dataset::Dataset;
use crate::Allocator;
use txallo_graph::{NodeId, TxGraph, WeightedGraph};

/// Hash-based account allocator.
#[derive(Debug, Clone)]
pub struct HashAllocator {
    shards: usize,
}

impl HashAllocator {
    /// Creates the allocator for `shards` shards.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "at least one shard required");
        Self { shards }
    }

    /// Allocates every account of `graph` by address hash.
    pub fn allocate_graph(&self, graph: &TxGraph) -> Allocation {
        let labels: Vec<u32> = (0..graph.node_count() as NodeId)
            .map(|v| graph.account(v).hash_shard(self.shards).0)
            .collect();
        Allocation::new(labels, self.shards)
    }
}

impl Allocator for HashAllocator {
    fn name(&self) -> &str {
        "Random"
    }

    fn allocate(&mut self, dataset: &Dataset) -> Allocation {
        self.allocate_graph(dataset.graph())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsReport;
    use crate::params::TxAlloParams;
    use txallo_model::{AccountId, Transaction};

    fn random_traffic(pairs: u64) -> TxGraph {
        let mut g = TxGraph::new();
        for i in 0..pairs {
            // Spread transfers over many distinct account pairs.
            g.ingest_transaction(&Transaction::transfer(
                AccountId(i * 2 + 1),
                AccountId(i * 2 + 2),
            ));
        }
        g
    }

    #[test]
    fn produces_valid_labels() {
        let g = random_traffic(100);
        let alloc = HashAllocator::new(7).allocate_graph(&g);
        assert_eq!(alloc.len(), g.node_count());
        assert!(alloc.labels().iter().all(|&l| l < 7));
    }

    #[test]
    fn cross_shard_ratio_approaches_one_minus_inverse_k() {
        // For independent uniform hashing, P(both endpoints same shard) = 1/k.
        let g = random_traffic(4000);
        for k in [2usize, 10, 20] {
            let alloc = HashAllocator::new(k).allocate_graph(&g);
            let params = TxAlloParams::for_graph(&g, k);
            let r = MetricsReport::compute(&g, &alloc, &params);
            let expected = 1.0 - 1.0 / k as f64;
            assert!(
                (r.cross_shard_ratio - expected).abs() < 0.06,
                "k={k}: γ = {} vs expected ≈ {expected}",
                r.cross_shard_ratio
            );
        }
    }

    #[test]
    fn is_deterministic() {
        let g = random_traffic(50);
        let a = HashAllocator::new(5).allocate_graph(&g);
        let b = HashAllocator::new(5).allocate_graph(&g);
        assert_eq!(a, b);
    }
}
