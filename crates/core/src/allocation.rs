//! The account-shard mapping (Definition 1).

use txallo_graph::{NodeId, TxGraph};
use txallo_model::{AccountId, ShardId};

use crate::streaming::AllocationUpdate;

/// An account-shard mapping `{A₁, …, A_k}`: every graph node carries
/// exactly one shard label (uniqueness + completeness of Definition 1 hold
/// by construction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    labels: Vec<u32>,
    shard_count: usize,
}

impl Allocation {
    /// Wraps a label vector. Every label must be `< shard_count`.
    pub fn new(labels: Vec<u32>, shard_count: usize) -> Self {
        debug_assert!(
            labels.iter().all(|&l| (l as usize) < shard_count),
            "labels must be within 0..shard_count"
        );
        Self {
            labels,
            shard_count,
        }
    }

    /// All-zero allocation of `n` nodes into one shard (the unsharded
    /// baseline `k = 1`).
    pub fn single_shard(n: usize) -> Self {
        Self {
            labels: vec![0; n],
            shard_count: 1,
        }
    }

    /// Shard of a graph node.
    #[inline]
    pub fn shard_of(&self, node: NodeId) -> ShardId {
        ShardId(self.labels[node as usize])
    }

    /// Shard of an account, resolved through the graph's interner.
    /// Returns `None` for accounts absent from the history.
    pub fn shard_of_account(&self, graph: &TxGraph, account: AccountId) -> Option<ShardId> {
        graph.node_of(account).map(|n| self.shard_of(n))
    }

    /// The raw label vector (index = node id).
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Moves one node to `shard`, upholding the Definition 1 invariants.
    ///
    /// # Panics
    /// Panics if `node` is out of range or `shard` is not `< shard_count`
    /// — unlike the raw label vector, a validated mutation can never leave
    /// the allocation inconsistent.
    pub fn set_shard(&mut self, node: NodeId, shard: ShardId) {
        assert!(
            (node as usize) < self.labels.len(),
            "node {node} outside the allocation (len {})",
            self.labels.len()
        );
        assert!(
            (shard.0 as usize) < self.shard_count,
            "shard {shard} out of range (k = {})",
            self.shard_count
        );
        self.labels[node as usize] = shard.0;
    }

    /// Appends the label of the next freshly interned node (node ids are
    /// assigned contiguously, so an append is the only way coverage
    /// grows outside [`Allocation::apply_update`]).
    ///
    /// # Panics
    /// Panics if `shard` is not `< shard_count`.
    pub fn push_shard(&mut self, shard: ShardId) {
        assert!(
            (shard.0 as usize) < self.shard_count,
            "shard {shard} out of range (k = {})",
            self.shard_count
        );
        self.labels.push(shard.0);
    }

    /// Folds an epoch's [`AllocationUpdate`] diff into the mapping:
    /// migrations relabel existing nodes, placements extend the vector for
    /// brand-new accounts.
    ///
    /// # Panics
    /// Panics when the diff does not apply cleanly: mismatched shard
    /// count, a shrinking node count, a migration whose `from` shard
    /// disagrees with the current label (the diff was computed against a
    /// different base), an out-of-range target shard, or a fresh node the
    /// update failed to place.
    pub fn apply_update(&mut self, update: &AllocationUpdate) {
        assert_eq!(
            update.shard_count, self.shard_count,
            "update is for a different shard count"
        );
        let old_len = self.labels.len();
        assert!(
            update.len >= old_len,
            "allocations never shrink ({} -> {})",
            old_len,
            update.len
        );
        // Fresh slots carry a sentinel until a placement move fills them.
        const PENDING: u32 = u32::MAX;
        self.labels.resize(update.len, PENDING);
        for m in &update.moves {
            let i = m.node as usize;
            assert!(i < update.len, "move targets node {i} outside the update");
            assert!(
                (m.to.0 as usize) < self.shard_count,
                "move targets out-of-range shard {}",
                m.to
            );
            match m.from {
                Some(from) => assert_eq!(
                    self.labels[i], from.0,
                    "diff base mismatch at node {i}: expected shard {from}"
                ),
                None => assert!(
                    i >= old_len,
                    "placement for node {i}, which is already labelled"
                ),
            }
            self.labels[i] = m.to.0;
        }
        assert!(
            self.labels[old_len..].iter().all(|&l| l != PENDING),
            "update left fresh nodes unlabelled"
        );
    }

    /// Number of shards `k`.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Number of allocated nodes.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the allocation is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Nodes grouped per shard (index = shard id).
    pub fn groups(&self) -> Vec<Vec<NodeId>> {
        let mut groups = vec![Vec::new(); self.shard_count];
        for (v, &s) in self.labels.iter().enumerate() {
            groups[s as usize].push(v as NodeId);
        }
        groups
    }

    /// Number of accounts per shard.
    pub fn shard_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.shard_count];
        for &s in &self.labels {
            sizes[s as usize] += 1;
        }
        sizes
    }

    /// Number of shards a transaction over `accounts` touches (`µ(Tx)`),
    /// given the graph used to intern them. Accounts missing from the graph
    /// are ignored (they have no assigned shard yet).
    pub fn shards_touched(&self, graph: &TxGraph, accounts: &[AccountId]) -> usize {
        let mut shards: Vec<u32> = accounts
            .iter()
            .filter_map(|&a| graph.node_of(a))
            .map(|n| self.labels[n as usize])
            .collect();
        shards.sort_unstable();
        shards.dedup();
        shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txallo_model::Transaction;

    #[test]
    fn groups_and_sizes_are_consistent() {
        let a = Allocation::new(vec![0, 1, 0, 2, 1, 0], 3);
        assert_eq!(a.shard_sizes(), vec![3, 2, 1]);
        let groups = a.groups();
        assert_eq!(groups[0], vec![0, 2, 5]);
        assert_eq!(groups[1], vec![1, 4]);
        assert_eq!(groups[2], vec![3]);
        assert_eq!(a.len(), 6);
        assert_eq!(a.shard_count(), 3);
    }

    #[test]
    fn account_resolution() {
        let mut g = TxGraph::new();
        g.ingest_transaction(&Transaction::transfer(AccountId(10), AccountId(20)));
        let alloc = Allocation::new(vec![1, 0], 2);
        assert_eq!(alloc.shard_of_account(&g, AccountId(10)), Some(ShardId(1)));
        assert_eq!(alloc.shard_of_account(&g, AccountId(20)), Some(ShardId(0)));
        assert_eq!(alloc.shard_of_account(&g, AccountId(99)), None);
    }

    #[test]
    fn shards_touched_counts_distinct() {
        let mut g = TxGraph::new();
        g.ingest_transaction(&Transaction::transfer(AccountId(1), AccountId(2)));
        g.ingest_transaction(&Transaction::transfer(AccountId(3), AccountId(4)));
        let alloc = Allocation::new(vec![0, 0, 1, 1], 2);
        assert_eq!(alloc.shards_touched(&g, &[AccountId(1), AccountId(2)]), 1);
        assert_eq!(alloc.shards_touched(&g, &[AccountId(1), AccountId(3)]), 2);
        assert_eq!(alloc.shards_touched(&g, &[AccountId(1), AccountId(99)]), 1);
    }

    #[test]
    fn single_shard_helper() {
        let a = Allocation::single_shard(4);
        assert_eq!(a.shard_count(), 1);
        assert!(a.labels().iter().all(|&l| l == 0));
    }

    #[test]
    fn set_shard_validates() {
        let mut a = Allocation::new(vec![0, 1, 0], 2);
        a.set_shard(2, ShardId(1));
        assert_eq!(a.labels(), &[0, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_shard_rejects_bad_shard() {
        let mut a = Allocation::new(vec![0, 1], 2);
        a.set_shard(0, ShardId(5));
    }

    #[test]
    #[should_panic(expected = "outside the allocation")]
    fn set_shard_rejects_bad_node() {
        let mut a = Allocation::new(vec![0, 1], 2);
        a.set_shard(9, ShardId(0));
    }

    mod apply_update {
        use super::*;
        use crate::streaming::{AccountMove, AllocationUpdate, StateCarry, UpdateKind};

        fn update(len: usize, moves: Vec<AccountMove>) -> AllocationUpdate {
            AllocationUpdate {
                shard_count: 2,
                len,
                kind: UpdateKind::Adaptive,
                path: None,
                carry: StateCarry::Warm,
                moves,
            }
        }

        #[test]
        fn migrations_and_placements_apply() {
            let mut a = Allocation::new(vec![0, 1, 0], 2);
            let u = update(
                5,
                vec![
                    AccountMove {
                        node: 1,
                        from: Some(ShardId(1)),
                        to: ShardId(0),
                    },
                    AccountMove {
                        node: 3,
                        from: None,
                        to: ShardId(1),
                    },
                    AccountMove {
                        node: 4,
                        from: None,
                        to: ShardId(0),
                    },
                ],
            );
            assert_eq!(u.migrations(), 1);
            assert_eq!(u.placements(), 2);
            a.apply_update(&u);
            assert_eq!(a.labels(), &[0, 0, 0, 1, 0]);
        }

        #[test]
        #[should_panic(expected = "diff base mismatch")]
        fn stale_base_is_rejected() {
            let mut a = Allocation::new(vec![0, 0], 2);
            a.apply_update(&update(
                2,
                vec![AccountMove {
                    node: 0,
                    from: Some(ShardId(1)),
                    to: ShardId(0),
                }],
            ));
        }

        #[test]
        #[should_panic(expected = "unlabelled")]
        fn missing_placement_is_rejected() {
            let mut a = Allocation::new(vec![0], 2);
            a.apply_update(&update(3, vec![]));
        }
    }
}
