//! The account-shard mapping (Definition 1).

use txallo_graph::{NodeId, TxGraph};
use txallo_model::{AccountId, ShardId};

/// An account-shard mapping `{A₁, …, A_k}`: every graph node carries
/// exactly one shard label (uniqueness + completeness of Definition 1 hold
/// by construction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    labels: Vec<u32>,
    shard_count: usize,
}

impl Allocation {
    /// Wraps a label vector. Every label must be `< shard_count`.
    pub fn new(labels: Vec<u32>, shard_count: usize) -> Self {
        debug_assert!(
            labels.iter().all(|&l| (l as usize) < shard_count),
            "labels must be within 0..shard_count"
        );
        Self {
            labels,
            shard_count,
        }
    }

    /// All-zero allocation of `n` nodes into one shard (the unsharded
    /// baseline `k = 1`).
    pub fn single_shard(n: usize) -> Self {
        Self {
            labels: vec![0; n],
            shard_count: 1,
        }
    }

    /// Shard of a graph node.
    #[inline]
    pub fn shard_of(&self, node: NodeId) -> ShardId {
        ShardId(self.labels[node as usize])
    }

    /// Shard of an account, resolved through the graph's interner.
    /// Returns `None` for accounts absent from the history.
    pub fn shard_of_account(&self, graph: &TxGraph, account: AccountId) -> Option<ShardId> {
        graph.node_of(account).map(|n| self.shard_of(n))
    }

    /// The raw label vector (index = node id).
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Mutable access for in-place updates (A-TxAllo).
    pub fn labels_mut(&mut self) -> &mut Vec<u32> {
        &mut self.labels
    }

    /// Number of shards `k`.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Number of allocated nodes.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the allocation is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Nodes grouped per shard (index = shard id).
    pub fn groups(&self) -> Vec<Vec<NodeId>> {
        let mut groups = vec![Vec::new(); self.shard_count];
        for (v, &s) in self.labels.iter().enumerate() {
            groups[s as usize].push(v as NodeId);
        }
        groups
    }

    /// Number of accounts per shard.
    pub fn shard_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.shard_count];
        for &s in &self.labels {
            sizes[s as usize] += 1;
        }
        sizes
    }

    /// Number of shards a transaction over `accounts` touches (`µ(Tx)`),
    /// given the graph used to intern them. Accounts missing from the graph
    /// are ignored (they have no assigned shard yet).
    pub fn shards_touched(&self, graph: &TxGraph, accounts: &[AccountId]) -> usize {
        let mut shards: Vec<u32> = accounts
            .iter()
            .filter_map(|&a| graph.node_of(a))
            .map(|n| self.labels[n as usize])
            .collect();
        shards.sort_unstable();
        shards.dedup();
        shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txallo_model::Transaction;

    #[test]
    fn groups_and_sizes_are_consistent() {
        let a = Allocation::new(vec![0, 1, 0, 2, 1, 0], 3);
        assert_eq!(a.shard_sizes(), vec![3, 2, 1]);
        let groups = a.groups();
        assert_eq!(groups[0], vec![0, 2, 5]);
        assert_eq!(groups[1], vec![1, 4]);
        assert_eq!(groups[2], vec![3]);
        assert_eq!(a.len(), 6);
        assert_eq!(a.shard_count(), 3);
    }

    #[test]
    fn account_resolution() {
        let mut g = TxGraph::new();
        g.ingest_transaction(&Transaction::transfer(AccountId(10), AccountId(20)));
        let alloc = Allocation::new(vec![1, 0], 2);
        assert_eq!(alloc.shard_of_account(&g, AccountId(10)), Some(ShardId(1)));
        assert_eq!(alloc.shard_of_account(&g, AccountId(20)), Some(ShardId(0)));
        assert_eq!(alloc.shard_of_account(&g, AccountId(99)), None);
    }

    #[test]
    fn shards_touched_counts_distinct() {
        let mut g = TxGraph::new();
        g.ingest_transaction(&Transaction::transfer(AccountId(1), AccountId(2)));
        g.ingest_transaction(&Transaction::transfer(AccountId(3), AccountId(4)));
        let alloc = Allocation::new(vec![0, 0, 1, 1], 2);
        assert_eq!(alloc.shards_touched(&g, &[AccountId(1), AccountId(2)]), 1);
        assert_eq!(alloc.shards_touched(&g, &[AccountId(1), AccountId(3)]), 2);
        assert_eq!(alloc.shards_touched(&g, &[AccountId(1), AccountId(99)]), 1);
    }

    #[test]
    fn single_shard_helper() {
        let a = Allocation::single_shard(4);
        assert_eq!(a.shard_count(), 1);
        assert!(a.labels().iter().all(|&l| l == 0));
    }
}
