//! Per-community workload/throughput accounting and the §V-B gain formulas.

use txallo_graph::{DenseAccumulator, NodeId, WeightedGraph};

/// Label value for nodes not yet assigned to any community.
///
/// A-TxAllo sees brand-new accounts; during G-TxAllo's initialization the
/// members of truncated small communities pass through this state. Edges
/// toward unassigned nodes are counted as *cut* from the assigned side —
/// the conservative reading (such a transaction is cross-shard unless the
/// counterparty lands in the same shard, at which point the join delta
/// flips the edge to intra).
pub const UNASSIGNED: u32 = u32::MAX;

/// Mutable per-community accounting: intra-community weight and cut weight
/// for each community, from which the paper's quantities derive:
///
/// * workload  `σᵢ = intra᙮ + η · cutᵢ` (Eq. 5)
/// * uncapped throughput `Λ̂ᵢ = intraᵢ + cutᵢ / 2`
/// * capped throughput (Eq. 3) and the move deltas (Eq. 6–8).
#[derive(Debug, Clone)]
pub struct CommunityState {
    intra: Vec<f64>,
    cut: Vec<f64>,
    eta: f64,
    capacity: f64,
    /// Cached capped throughput per community, kept in lock-step with
    /// `intra`/`cut` (recomputed for the touched community on every
    /// mutation — bit-identical to computing it on demand, but read
    /// thousands of times per sweep in the gain formulas).
    throughput: Vec<f64>,
}

/// Scratch buffers for evaluating one node's candidate moves, reused across
/// the sweep.
///
/// Link weights live in a dense [`DenseAccumulator`] indexed by community
/// id — O(1) add/get with no hashing or per-node allocation. After
/// [`CommunityState::gather_links`] the touched-list is sorted, so
/// [`MoveScratch::candidates`] enumerates the connected communities `C_v`
/// (Eq. 9) in ascending id order, which is the deterministic candidate
/// order the sweep algorithms' tie-breaking contract requires (see
/// `txallo_louvain::GAIN_EPS`).
#[derive(Debug, Default)]
pub struct MoveScratch {
    /// Weight from the node to each connected community.
    link: DenseAccumulator,
    /// Weight from the node to unassigned nodes.
    pub to_unassigned: f64,
}

impl MoveScratch {
    /// Weight from the node to community `c` (0 if unconnected).
    #[inline]
    pub fn weight_to(&self, c: u32) -> f64 {
        self.link.get(c)
    }

    /// Whether the node has any edge into community `c`.
    #[inline]
    pub fn touches(&self, c: u32) -> bool {
        self.link.contains(c)
    }

    /// Number of distinct communities the node is connected to (`|C_v|`).
    #[inline]
    pub fn len(&self) -> usize {
        self.link.len()
    }

    /// Whether the node touches no assigned community (`C_v = ∅`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.link.is_empty()
    }

    /// Whether `c` is the *only* community the node touches (no move can
    /// change anything; the sweep skips such nodes).
    #[inline]
    pub fn only_touches(&self, c: u32) -> bool {
        self.link.len() == 1 && self.link.contains(c)
    }

    /// `(community, weight)` candidates in ascending community order.
    pub fn candidates(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.link.entries()
    }
}

impl CommunityState {
    /// Builds the state for `labels` over `graph`.
    ///
    /// `labels[v]` may be [`UNASSIGNED`]; such nodes contribute only to the
    /// `cut` of their assigned neighbors.
    pub fn from_labels(
        graph: &impl WeightedGraph,
        labels: &[u32],
        community_count: usize,
        eta: f64,
        capacity: f64,
    ) -> Self {
        assert_eq!(labels.len(), graph.node_count());
        let mut intra = vec![0.0f64; community_count];
        let mut cut = vec![0.0f64; community_count];
        for v in 0..graph.node_count() as NodeId {
            let cv = labels[v as usize];
            if cv == UNASSIGNED {
                continue;
            }
            let c = cv as usize;
            intra[c] += graph.self_loop(v);
            graph.for_each_neighbor(v, |u, w| {
                let cu = labels[u as usize];
                if cu == cv {
                    if u > v {
                        intra[c] += w;
                    }
                } else {
                    // Includes cu == UNASSIGNED: cut from v's side.
                    cut[c] += w;
                }
            });
        }
        let mut state = Self {
            intra,
            cut,
            eta,
            capacity,
            throughput: Vec::new(),
        };
        state.throughput = (0..community_count as u32)
            .map(|c| state.compute_throughput(c))
            .collect();
        state
    }

    /// Capped throughput of `c` from `intra`/`cut` (cache refill).
    #[inline]
    fn compute_throughput(&self, c: u32) -> f64 {
        capped_throughput(self.sigma(c), self.lambda_hat(c), self.capacity)
    }

    /// Number of communities tracked.
    pub fn community_count(&self) -> usize {
        self.intra.len()
    }

    /// η used by this state.
    pub fn eta(&self) -> f64 {
        self.eta
    }

    /// λ used by this state.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Intra-community weight of `c`.
    pub fn intra(&self, c: u32) -> f64 {
        self.intra[c as usize]
    }

    /// Cut weight of `c`.
    pub fn cut(&self, c: u32) -> f64 {
        self.cut[c as usize]
    }

    /// Workload `σ_c = intra + η·cut` (Eq. 5).
    #[inline]
    pub fn sigma(&self, c: u32) -> f64 {
        self.intra[c as usize] + self.eta * self.cut[c as usize]
    }

    /// Uncapped throughput `Λ̂_c = intra + cut/2`.
    #[inline]
    pub fn lambda_hat(&self, c: u32) -> f64 {
        self.intra[c as usize] + self.cut[c as usize] / 2.0
    }

    /// Capacity-capped throughput of `c` (Eq. 3).
    #[inline]
    pub fn throughput(&self, c: u32) -> f64 {
        self.throughput[c as usize]
    }

    /// Total system throughput `Λ = Σ Λᵢ` (Eq. 2).
    pub fn total_throughput(&self) -> f64 {
        (0..self.intra.len() as u32)
            .map(|c| self.throughput(c))
            .sum()
    }

    /// Gathers the per-community link weights of `v` into `scratch`
    /// (weights toward [`UNASSIGNED`] neighbors are summed separately).
    ///
    /// On return the scratch's candidate list is sorted ascending, ready
    /// for a deterministic sweep over `C_v`.
    pub fn gather_links(
        &self,
        graph: &impl WeightedGraph,
        labels: &[u32],
        v: NodeId,
        scratch: &mut MoveScratch,
    ) {
        scratch.link.begin(self.intra.len());
        scratch.to_unassigned = 0.0;
        graph.for_each_neighbor(v, |u, w| {
            let cu = labels[u as usize];
            if cu == UNASSIGNED {
                scratch.to_unassigned += w;
            } else {
                scratch.link.add(cu, w);
            }
        });
        scratch.link.sort_touched();
    }

    /// Throughput gain `Δ_{join} Λ_q` of `v` joining `q` (Eq. 6), where `v`
    /// is currently outside every community (left already / brand new).
    ///
    /// * `self_w` — self-loop weight `w{v,v}`;
    /// * `d_v` — total incident weight of `v` (self-loop once);
    /// * `w_vq` — weight between `v` and community `q`.
    #[inline]
    pub fn join_gain(&self, q: u32, self_w: f64, d_v: f64, w_vq: f64) -> f64 {
        let (sigma_new, hat_new) = self.joined_state(q, self_w, d_v, w_vq);
        capped_throughput(sigma_new, hat_new, self.capacity) - self.throughput(q)
    }

    fn joined_state(&self, q: u32, self_w: f64, d_v: f64, w_vq: f64) -> (f64, f64) {
        // σ'_q = σ_q + w_vv + η(d_v − w_vv − w_vq) + (1−η) w_vq
        let sigma_new =
            self.sigma(q) + self_w + self.eta * (d_v - self_w - w_vq) + (1.0 - self.eta) * w_vq;
        // Λ̂'_q = Λ̂_q + w_vv + (d_v − w_vv)/2
        let hat_new = self.lambda_hat(q) + self_w + (d_v - self_w) / 2.0;
        (sigma_new, hat_new)
    }

    /// Throughput gain `Δ_{leave} Λ_p` of `v` leaving its community `p`
    /// (the leaving half of Eq. 8). `w_vp` is the weight between `v` and
    /// the *other* members of `p` (`w{v, V_p \ v}`).
    #[inline]
    pub fn leave_gain(&self, p: u32, self_w: f64, d_v: f64, w_vp: f64) -> f64 {
        let (sigma_new, hat_new) = self.left_state(p, self_w, d_v, w_vp);
        capped_throughput(sigma_new, hat_new, self.capacity) - self.throughput(p)
    }

    fn left_state(&self, p: u32, self_w: f64, d_v: f64, w_vp: f64) -> (f64, f64) {
        // σ'_p = σ_p − w_vv − η(d_v − w_vv − w_vp) + (η−1) w_vp
        let sigma_new =
            self.sigma(p) - self_w - self.eta * (d_v - self_w - w_vp) + (self.eta - 1.0) * w_vp;
        // Λ̂'_p = Λ̂_p − w_vv − (d_v − w_vv)/2
        let hat_new = self.lambda_hat(p) - self_w - (d_v - self_w) / 2.0;
        (sigma_new, hat_new)
    }

    /// Full move gain `Δ_{(i,p,q)}Λ = Δ_{leave}Λ_p + Δ_{join}Λ_q` (Eq. 8).
    pub fn move_gain(&self, p: u32, q: u32, self_w: f64, d_v: f64, w_vp: f64, w_vq: f64) -> f64 {
        debug_assert_ne!(p, q);
        self.leave_gain(p, self_w, d_v, w_vp) + self.join_gain(q, self_w, d_v, w_vq)
    }

    /// Commits `v` joining community `q` (updates `intra`/`cut`). The caller
    /// updates the label vector.
    pub fn apply_join(&mut self, q: u32, self_w: f64, d_v: f64, w_vq: f64) {
        self.intra[q as usize] += self_w + w_vq;
        self.cut[q as usize] += (d_v - self_w - w_vq) - w_vq;
        self.throughput[q as usize] = self.compute_throughput(q);
    }

    /// Commits `v` leaving community `p`.
    pub fn apply_leave(&mut self, p: u32, self_w: f64, d_v: f64, w_vp: f64) {
        self.intra[p as usize] -= self_w + w_vp;
        self.cut[p as usize] -= (d_v - self_w - w_vp) - w_vp;
        self.throughput[p as usize] = self.compute_throughput(p);
    }

    /// Updates the `η`/`λ` limits (per-epoch parameter refresh — `λ = |T|/k`
    /// grows with the graph) and recomputes the cached throughputs. The
    /// `intra`/`cut` aggregates are limit-independent and keep their values.
    pub fn set_limits(&mut self, eta: f64, capacity: f64) {
        self.eta = eta;
        self.capacity = capacity;
        self.refresh_throughput();
    }

    /// Folds a freshly-ingested edge-weight delta into the accounting:
    /// weight `w` was added between two *distinct* nodes currently labelled
    /// `la` and `lb` (either may be [`UNASSIGNED`]; edges toward unassigned
    /// nodes count as cut from the assigned side, matching
    /// [`CommunityState::from_labels`]).
    ///
    /// Leaves the cached throughputs stale — call
    /// [`CommunityState::refresh_throughput`] once per batch.
    pub fn apply_edge_delta(&mut self, la: u32, lb: u32, w: f64) {
        if la == lb {
            if la != UNASSIGNED {
                self.intra[la as usize] += w;
            }
            return;
        }
        if la != UNASSIGNED {
            self.cut[la as usize] += w;
        }
        if lb != UNASSIGNED {
            self.cut[lb as usize] += w;
        }
    }

    /// Folds a freshly-ingested self-loop delta on a node labelled `la`
    /// into the accounting (companion of [`CommunityState::apply_edge_delta`];
    /// same staleness contract).
    pub fn apply_self_loop_delta(&mut self, la: u32, w: f64) {
        if la != UNASSIGNED {
            self.intra[la as usize] += w;
        }
    }

    /// Recomputes every cached throughput from the current `intra`/`cut`
    /// (`O(k)`), closing a batch of `apply_*_delta` calls.
    pub fn refresh_throughput(&mut self) {
        for c in 0..self.intra.len() as u32 {
            self.throughput[c as usize] = self.compute_throughput(c);
        }
    }

    /// Scales every `intra`/`cut` aggregate by `factor` and refreshes the
    /// throughput cache — the accounting image of a uniform edge-weight
    /// rescale of the underlying graph (exponential decay). The limits
    /// `η`/`λ` are left untouched; callers refresh them separately (the
    /// per-epoch [`CommunityState::set_limits`] pass re-derives `λ = |T|/k`
    /// from the decayed total).
    pub fn scale_aggregates(&mut self, factor: f64) {
        assert!(factor > 0.0, "scale factor must be positive");
        for v in &mut self.intra {
            *v *= factor;
        }
        for v in &mut self.cut {
            *v *= factor;
        }
        self.refresh_throughput();
    }

    /// Verifies Lemma 1 numerically: only `p` and `q` change. Debug aid for
    /// tests; O(k).
    #[cfg(test)]
    fn snapshot(&self) -> (Vec<f64>, Vec<f64>) {
        (self.intra.clone(), self.cut.clone())
    }
}

/// The capacity-capped shard throughput of Eq. 3:
/// `Λ = Λ̂` when `σ ≤ λ`, else `Λ = (λ/σ)·Λ̂`.
#[inline]
pub fn capped_throughput(sigma: f64, lambda_hat: f64, capacity: f64) -> f64 {
    if sigma <= capacity {
        lambda_hat
    } else {
        capacity / sigma * lambda_hat
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txallo_graph::AdjacencyGraph;

    /// Line graph 0-1-2-3 plus a self-loop on 0; labels {0,1} per pair.
    fn fixture() -> (AdjacencyGraph, Vec<u32>) {
        let g = AdjacencyGraph::from_edges(
            4,
            vec![(0u32, 1, 1.0), (1, 2, 2.0), (2, 3, 1.0), (0, 0, 0.5)],
        );
        (g, vec![0, 0, 1, 1])
    }

    #[test]
    fn from_labels_accounts_intra_and_cut() {
        let (g, labels) = fixture();
        let s = CommunityState::from_labels(&g, &labels, 2, 2.0, 100.0);
        // Community 0: intra = edge(0,1) + loop(0) = 1.5, cut = edge(1,2) = 2.
        assert!((s.intra(0) - 1.5).abs() < 1e-12);
        assert!((s.cut(0) - 2.0).abs() < 1e-12);
        assert!((s.intra(1) - 1.0).abs() < 1e-12);
        assert!((s.cut(1) - 2.0).abs() < 1e-12);
        assert!((s.sigma(0) - 5.5).abs() < 1e-12, "σ₀ = 1.5 + 2η");
        assert!((s.lambda_hat(0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn unassigned_neighbors_count_as_cut() {
        let (g, mut labels) = fixture();
        labels[2] = UNASSIGNED;
        let s = CommunityState::from_labels(&g, &labels, 2, 2.0, 100.0);
        // Community 1 = {3}: its only neighbor 2 is unassigned => cut 1.
        assert!((s.intra(1) - 0.0).abs() < 1e-12);
        assert!((s.cut(1) - 1.0).abs() < 1e-12);
        // Community 0 unchanged: node 1's edge to 2 is still cut.
        assert!((s.cut(0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn capped_throughput_cases() {
        assert_eq!(
            capped_throughput(5.0, 4.0, 10.0),
            4.0,
            "sufficient capacity"
        );
        assert!(
            (capped_throughput(20.0, 4.0, 10.0) - 2.0).abs() < 1e-12,
            "halved"
        );
        assert_eq!(capped_throughput(0.0, 0.0, 10.0), 0.0);
    }

    #[test]
    fn join_then_leave_is_identity() {
        let (g, labels) = fixture();
        let mut s = CommunityState::from_labels(&g, &labels, 2, 3.0, 100.0);
        let before = s.snapshot();
        // Move node 1 (community 0): self_w=0, d_v=3, w_to_0 = 1 (node 0), w_to_1 = 2 (node 2).
        s.apply_leave(0, 0.0, 3.0, 1.0);
        s.apply_join(0, 0.0, 3.0, 1.0);
        let after = s.snapshot();
        for (a, b) in before.0.iter().zip(after.0.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
        for (a, b) in before.1.iter().zip(after.1.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn gain_matches_recomputation() {
        // Move node 2 from community 1 to community 0 and compare the
        // incremental gain against a from-scratch recomputation.
        let (g, labels) = fixture();
        let eta = 2.0;
        let cap = 2.0; // tight capacity so the capped branch is exercised
        let s = CommunityState::from_labels(&g, &labels, 2, eta, cap);
        let v: NodeId = 2;
        let self_w = g.self_loop(v);
        let d_v = g.incident_weight(v);
        let mut scratch = MoveScratch::default();
        s.gather_links(&g, &labels, v, &mut scratch);
        let w_vp = scratch.weight_to(1);
        let w_vq = scratch.weight_to(0);
        let predicted = s.move_gain(1, 0, self_w, d_v, w_vp, w_vq);

        let mut new_labels = labels.clone();
        new_labels[v as usize] = 0;
        let s2 = CommunityState::from_labels(&g, &new_labels, 2, eta, cap);
        let actual = s2.total_throughput() - s.total_throughput();
        assert!(
            (predicted - actual).abs() < 1e-9,
            "delta formula ({predicted}) must equal recomputation ({actual})"
        );
    }

    #[test]
    fn lemma1_only_two_communities_change() {
        // Three communities; moving a node between 0 and 1 must not touch 2.
        let g = AdjacencyGraph::from_edges(
            6,
            vec![
                (0u32, 1, 1.0),
                (2, 3, 1.0),
                (4, 5, 1.0),
                (1, 2, 0.5),
                (3, 4, 0.5),
            ],
        );
        let labels = vec![0, 0, 1, 1, 2, 2];
        let mut s = CommunityState::from_labels(&g, &labels, 3, 2.0, 10.0);
        let before_2 = (s.intra(2), s.cut(2));
        // Move node 2 from community 1 to community 0.
        let (self_w, d_v) = (g.self_loop(2), g.incident_weight(2));
        s.apply_leave(1, self_w, d_v, 1.0);
        s.apply_join(0, self_w, d_v, 0.5);
        assert_eq!(
            (s.intra(2), s.cut(2)),
            before_2,
            "community 2 untouched (Lemma 1)"
        );
    }

    #[test]
    fn apply_join_matches_from_labels() {
        // Incremental updates must agree with a from-scratch rebuild.
        let (g, labels) = fixture();
        let mut labels2 = labels.clone();
        let mut s = CommunityState::from_labels(&g, &labels, 2, 2.0, 100.0);
        let v: NodeId = 1;
        let (self_w, d_v) = (g.self_loop(v), g.incident_weight(v));
        let mut scratch = MoveScratch::default();
        s.gather_links(&g, &labels, v, &mut scratch);
        let w_vp = scratch.weight_to(0);
        let w_vq = scratch.weight_to(1);
        s.apply_leave(0, self_w, d_v, w_vp);
        s.apply_join(1, self_w, d_v, w_vq);
        labels2[v as usize] = 1;
        let rebuilt = CommunityState::from_labels(&g, &labels2, 2, 2.0, 100.0);
        for c in 0..2u32 {
            assert!((s.intra(c) - rebuilt.intra(c)).abs() < 1e-12, "intra({c})");
            assert!((s.cut(c) - rebuilt.cut(c)).abs() < 1e-12, "cut({c})");
        }
    }

    #[test]
    fn gather_links_separates_unassigned() {
        let (g, mut labels) = fixture();
        labels[3] = UNASSIGNED;
        let s = CommunityState::from_labels(&g, &labels, 2, 2.0, 100.0);
        let mut scratch = MoveScratch::default();
        s.gather_links(&g, &labels, 2, &mut scratch);
        assert!((scratch.weight_to(0) - 2.0).abs() < 1e-12);
        assert!((scratch.to_unassigned - 1.0).abs() < 1e-12);
    }
}
