//! Per-community workload/throughput accounting and the §V-B gain formulas.

use txallo_graph::{fit_u32, DenseAccumulator, NodeId, WeightedGraph};

/// Label value for nodes not yet assigned to any community.
///
/// A-TxAllo sees brand-new accounts; during G-TxAllo's initialization the
/// members of truncated small communities pass through this state. Edges
/// toward unassigned nodes are counted as *cut* from the assigned side —
/// the conservative reading (such a transaction is cross-shard unless the
/// counterparty lands in the same shard, at which point the join delta
/// flips the edge to intra).
pub const UNASSIGNED: u32 = u32::MAX;

/// Mutable per-community accounting: intra-community weight and cut weight
/// for each community, from which the paper's quantities derive:
///
/// * workload  `σᵢ = intra᙮ + η · cutᵢ` (Eq. 5)
/// * uncapped throughput `Λ̂ᵢ = intraᵢ + cutᵢ / 2`
/// * capped throughput (Eq. 3) and the move deltas (Eq. 6–8).
#[derive(Debug, Clone)]
pub struct CommunityState {
    intra: Vec<f64>,
    cut: Vec<f64>,
    eta: f64,
    capacity: f64,
    /// Cached workload `σ_c = intra + η·cut` per community, kept in
    /// lock-step with `intra`/`cut` (see the cache invariant below).
    sigma: Vec<f64>,
    /// Cached uncapped throughput `Λ̂_c = intra + cut/2`, lock-step.
    lambda_hat: Vec<f64>,
    /// Cached capped throughput per community, kept in lock-step with
    /// `intra`/`cut` (recomputed for the touched community on every
    /// mutation — bit-identical to computing it on demand, but read
    /// thousands of times per sweep in the gain formulas).
    throughput: Vec<f64>,
    /// Cached saturation regime: `saturated[c]` is true exactly when
    /// [`capped_throughput`] did *not* take the identity branch for `c`
    /// (i.e. `σ_c > λ`, or the capacity itself is degenerate). In the
    /// common uncapped regime `throughput[c]` is bit-for-bit equal to
    /// `lambda_hat[c]`, which is what lets the gain fast path subtract a
    /// value already in a register instead of re-deriving Eq. 3.
    saturated: Vec<bool>,
}
// Cache invariant (determinism contract, see ARCHITECTURE.md): after every
// mutation that closes a batch (`apply_join`/`apply_leave` per move,
// `refresh_throughput` after `apply_*_delta` folds, `set_limits`,
// `scale_aggregates`), each cached `sigma[c]`, `lambda_hat[c]`,
// `throughput[c]` and `saturated[c]` equals — bit-for-bit — what
// recomputing it from `intra[c]`/`cut[c]` with the exact expressions of
// `recompute_community` would produce. The gain formulas below only ever
// *read* the caches with the same expressions the pre-cache code inlined,
// so the fast path is byte-identical to the formula path (golden-tested
// in `tests/golden.rs` and `tests/atxallo_golden.rs`).

/// Scratch buffers for evaluating one node's candidate moves, reused across
/// the sweep.
///
/// Link weights live in a dense [`DenseAccumulator`] indexed by community
/// id — O(1) add/get with no hashing or per-node allocation. After
/// [`CommunityState::gather_links`] the touched-list is sorted, so
/// [`MoveScratch::candidates`] enumerates the connected communities `C_v`
/// (Eq. 9) in ascending id order, which is the deterministic candidate
/// order the sweep algorithms' tie-breaking contract requires (see
/// `txallo_louvain::GAIN_EPS`).
#[derive(Debug, Default)]
pub struct MoveScratch {
    /// Weight from the node to each connected community.
    link: DenseAccumulator,
    /// Weight from the node to unassigned nodes.
    pub to_unassigned: f64,
}

impl MoveScratch {
    /// Weight from the node to community `c` (0 if unconnected).
    #[inline]
    pub fn weight_to(&self, c: u32) -> f64 {
        self.link.get(c)
    }

    /// Whether the node has any edge into community `c`.
    #[inline]
    pub fn touches(&self, c: u32) -> bool {
        self.link.contains(c)
    }

    /// Number of distinct communities the node is connected to (`|C_v|`).
    #[inline]
    pub fn len(&self) -> usize {
        self.link.len()
    }

    /// Whether the node touches no assigned community (`C_v = ∅`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.link.is_empty()
    }

    /// Whether `c` is the *only* community the node touches (no move can
    /// change anything; the sweep skips such nodes).
    #[inline]
    pub fn only_touches(&self, c: u32) -> bool {
        self.link.len() == 1 && self.link.contains(c)
    }

    /// `(community, weight)` candidates in ascending community order.
    pub fn candidates(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.link.entries()
    }
}

impl CommunityState {
    /// Builds the state for `labels` over `graph`.
    ///
    /// `labels[v]` may be [`UNASSIGNED`]; such nodes contribute only to the
    /// `cut` of their assigned neighbors.
    pub fn from_labels(
        graph: &impl WeightedGraph,
        labels: &[u32],
        community_count: usize,
        eta: f64,
        capacity: f64,
    ) -> Self {
        assert_eq!(labels.len(), graph.node_count());
        let mut intra = vec![0.0f64; community_count];
        let mut cut = vec![0.0f64; community_count];
        for v in 0..graph.node_count() as NodeId {
            let cv = labels[v as usize];
            if cv == UNASSIGNED {
                continue;
            }
            let c = cv as usize;
            intra[c] += graph.self_loop(v);
            graph.for_each_neighbor(v, |u, w| {
                let cu = labels[u as usize];
                if cu == cv {
                    if u > v {
                        intra[c] += w;
                    }
                } else {
                    // Includes cu == UNASSIGNED: cut from v's side.
                    cut[c] += w;
                }
            });
        }
        let mut state = Self {
            intra,
            cut,
            eta,
            capacity,
            sigma: vec![0.0; community_count],
            lambda_hat: vec![0.0; community_count],
            throughput: vec![0.0; community_count],
            saturated: vec![false; community_count],
        };
        state.refresh_throughput();
        state
    }

    /// Rebuilds the state from checkpointed aggregates: `intra`/`cut` are
    /// adopted bit-for-bit (they are chronological float accumulations and
    /// must *not* be recomputed), and every cached scalar is re-derived
    /// through the exact expressions of the cache invariant — identical to
    /// what a state that never stopped would hold.
    pub fn from_raw(intra: Vec<f64>, cut: Vec<f64>, eta: f64, capacity: f64) -> Self {
        assert_eq!(
            intra.len(),
            cut.len(),
            "intra/cut must cover the same communities"
        );
        let k = intra.len();
        let mut state = Self {
            intra,
            cut,
            eta,
            capacity,
            sigma: vec![0.0; k],
            lambda_hat: vec![0.0; k],
            throughput: vec![0.0; k],
            saturated: vec![false; k],
        };
        state.refresh_throughput();
        state
    }

    /// Recomputes every cached scalar of community `c` from `intra`/`cut`.
    /// The expressions here *define* the cache invariant — every cached
    /// read must be bit-identical to evaluating them fresh.
    #[inline]
    fn recompute_community(&mut self, c: u32) {
        let ci = c as usize;
        let sigma = self.intra[ci] + self.eta * self.cut[ci];
        let hat = self.intra[ci] + self.cut[ci] / 2.0;
        let uncapped = self.capacity > 0.0 && sigma <= self.capacity;
        self.sigma[ci] = sigma;
        self.lambda_hat[ci] = hat;
        self.saturated[ci] = !uncapped;
        self.throughput[ci] = if uncapped {
            hat
        } else {
            capped_throughput(sigma, hat, self.capacity)
        };
    }

    /// Number of communities tracked.
    pub fn community_count(&self) -> usize {
        self.intra.len()
    }

    /// η used by this state.
    pub fn eta(&self) -> f64 {
        self.eta
    }

    /// λ used by this state.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Intra-community weight of `c`.
    pub fn intra(&self, c: u32) -> f64 {
        self.intra[c as usize]
    }

    /// Cut weight of `c`.
    pub fn cut(&self, c: u32) -> f64 {
        self.cut[c as usize]
    }

    /// Workload `σ_c = intra + η·cut` (Eq. 5). Cached — bit-identical to
    /// recomputing from `intra`/`cut` (see the cache invariant).
    #[inline]
    pub fn sigma(&self, c: u32) -> f64 {
        self.sigma[c as usize]
    }

    /// Uncapped throughput `Λ̂_c = intra + cut/2`. Cached, bit-identical.
    #[inline]
    pub fn lambda_hat(&self, c: u32) -> f64 {
        self.lambda_hat[c as usize]
    }

    /// Whether `c` is in the saturated regime (`σ_c > λ`, or a degenerate
    /// capacity): its cached throughput went through the Eq. 3 scaling
    /// instead of the identity branch.
    #[inline]
    pub fn is_saturated(&self, c: u32) -> bool {
        self.saturated[c as usize]
    }

    /// Capacity-capped throughput of `c` (Eq. 3).
    #[inline]
    pub fn throughput(&self, c: u32) -> f64 {
        self.throughput[c as usize]
    }

    /// Total system throughput `Λ = Σ Λᵢ` (Eq. 2).
    pub fn total_throughput(&self) -> f64 {
        (0..fit_u32(self.intra.len()))
            .map(|c| self.throughput(c))
            .sum()
    }

    /// Approximate resident bytes of the per-community aggregate arrays
    /// (capacity-based; all six caches are `O(communities)`).
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.intra.capacity()
            + self.cut.capacity()
            + self.sigma.capacity()
            + self.lambda_hat.capacity()
            + self.throughput.capacity())
            * size_of::<f64>()
            + self.saturated.capacity() * size_of::<bool>()
    }

    /// Gathers the per-community link weights of `v` into `scratch`
    /// (weights toward [`UNASSIGNED`] neighbors are summed separately).
    ///
    /// On return the scratch's candidate list is sorted ascending, ready
    /// for a deterministic sweep over `C_v`.
    ///
    /// Graphs exposing their rows as sorted-run slices
    /// ([`WeightedGraph::row_view`] — the CSR snapshots and the mutable
    /// slab graph) take a *blocked* gather: labels for a strip of targets
    /// are loaded into a local array before the strip accumulates, so the
    /// gather's random label loads overlap instead of serializing behind
    /// each `acc.add`. The accumulation order is position-for-position the
    /// row's ascending order either way — bit-identical to the callback
    /// path.
    pub fn gather_links(
        &self,
        graph: &impl WeightedGraph,
        labels: &[u32],
        v: NodeId,
        scratch: &mut MoveScratch,
    ) {
        scratch.link.begin(self.intra.len());
        scratch.to_unassigned = 0.0;
        // The blocked path requires a fully-merged row (a pending tail
        // would have to interleave with the run to reproduce the ascending
        // accumulation order bit-for-bit — the callback merge does that).
        match graph.row_view(v) {
            Some(view) if view.tail_ids.is_empty() => {
                gather_labels_blocked(view.run_ids, view.run_ws, labels, |cu, w| {
                    if cu == UNASSIGNED {
                        scratch.to_unassigned += w;
                    } else {
                        scratch.link.add(cu, w);
                    }
                });
            }
            _ => {
                graph.for_each_neighbor(v, |u, w| {
                    let cu = labels[u as usize];
                    if cu == UNASSIGNED {
                        scratch.to_unassigned += w;
                    } else {
                        scratch.link.add(cu, w);
                    }
                });
            }
        }
        scratch.link.sort_touched();
    }

    /// Throughput gain `Δ_{join} Λ_q` of `v` joining `q` (Eq. 6), where `v`
    /// is currently outside every community (left already / brand new).
    ///
    /// * `self_w` — self-loop weight `w{v,v}`;
    /// * `d_v` — total incident weight of `v` (self-loop once);
    /// * `w_vq` — weight between `v` and community `q`.
    ///
    /// This is the innermost expression of every sweep (one evaluation per
    /// candidate per node per sweep), so it reads the cached `σ_q`/`Λ̂_q`
    /// instead of re-deriving them from `intra`/`cut`, and in the common
    /// uncapped regime resolves with a single compare against `λ` and no
    /// division — byte-identical to the formula path by the cache
    /// invariant.
    #[inline]
    pub fn join_gain(&self, q: u32, self_w: f64, d_v: f64, w_vq: f64) -> f64 {
        let (sigma_new, hat_new) = self.joined_state(q, self_w, d_v, w_vq);
        self.gain_vs_current(q, sigma_new, hat_new)
    }

    fn joined_state(&self, q: u32, self_w: f64, d_v: f64, w_vq: f64) -> (f64, f64) {
        // σ'_q = σ_q + w_vv + η(d_v − w_vv − w_vq) + (1−η) w_vq
        let sigma_new =
            self.sigma(q) + self_w + self.eta * (d_v - self_w - w_vq) + (1.0 - self.eta) * w_vq;
        // Λ̂'_q = Λ̂_q + w_vv + (d_v − w_vv)/2
        let hat_new = self.lambda_hat(q) + self_w + (d_v - self_w) / 2.0;
        (sigma_new, hat_new)
    }

    /// Throughput gain `Δ_{leave} Λ_p` of `v` leaving its community `p`
    /// (the leaving half of Eq. 8). `w_vp` is the weight between `v` and
    /// the *other* members of `p` (`w{v, V_p \ v}`). Same fast path as
    /// [`CommunityState::join_gain`].
    #[inline]
    pub fn leave_gain(&self, p: u32, self_w: f64, d_v: f64, w_vp: f64) -> f64 {
        let (sigma_new, hat_new) = self.left_state(p, self_w, d_v, w_vp);
        self.gain_vs_current(p, sigma_new, hat_new)
    }

    fn left_state(&self, p: u32, self_w: f64, d_v: f64, w_vp: f64) -> (f64, f64) {
        // σ'_p = σ_p − w_vv − η(d_v − w_vv − w_vp) + (η−1) w_vp
        let sigma_new =
            self.sigma(p) - self_w - self.eta * (d_v - self_w - w_vp) + (self.eta - 1.0) * w_vp;
        // Λ̂'_p = Λ̂_p − w_vv − (d_v − w_vv)/2
        let hat_new = self.lambda_hat(p) - self_w - (d_v - self_w) / 2.0;
        (sigma_new, hat_new)
    }

    /// `Λ(σ', Λ̂') − Λ_c`: the capped throughput of the hypothetical state
    /// minus the community's cached current throughput.
    ///
    /// Fast path: when `σ' ≤ λ` (and `λ` is non-degenerate), Eq. 3 is the
    /// identity, and when `c` is additionally in the uncapped regime its
    /// cached throughput *is* `Λ̂_c` bit-for-bit — so the whole gain is one
    /// compare and one subtraction of a value already loaded for `Λ̂'`.
    /// Every other case defers to [`capped_throughput`] unchanged.
    #[inline]
    fn gain_vs_current(&self, c: u32, sigma_new: f64, hat_new: f64) -> f64 {
        let ci = c as usize;
        if self.capacity > 0.0 && sigma_new <= self.capacity {
            if self.saturated[ci] {
                hat_new - self.throughput[ci]
            } else {
                hat_new - self.lambda_hat[ci]
            }
        } else {
            capped_throughput(sigma_new, hat_new, self.capacity) - self.throughput[ci]
        }
    }

    /// Full move gain `Δ_{(i,p,q)}Λ = Δ_{leave}Λ_p + Δ_{join}Λ_q` (Eq. 8).
    pub fn move_gain(&self, p: u32, q: u32, self_w: f64, d_v: f64, w_vp: f64, w_vq: f64) -> f64 {
        debug_assert_ne!(p, q);
        self.leave_gain(p, self_w, d_v, w_vp) + self.join_gain(q, self_w, d_v, w_vq)
    }

    /// Commits `v` joining community `q` (updates `intra`/`cut`). The caller
    /// updates the label vector.
    pub fn apply_join(&mut self, q: u32, self_w: f64, d_v: f64, w_vq: f64) {
        self.intra[q as usize] += self_w + w_vq;
        self.cut[q as usize] += (d_v - self_w - w_vq) - w_vq;
        self.recompute_community(q);
    }

    /// Commits `v` leaving community `p`.
    pub fn apply_leave(&mut self, p: u32, self_w: f64, d_v: f64, w_vp: f64) {
        self.intra[p as usize] -= self_w + w_vp;
        self.cut[p as usize] -= (d_v - self_w - w_vp) - w_vp;
        self.recompute_community(p);
    }

    /// Updates the `η`/`λ` limits (per-epoch parameter refresh — `λ = |T|/k`
    /// grows with the graph) and recomputes every cached scalar (`σ`
    /// depends on `η`; throughput and regime depend on both). The
    /// `intra`/`cut` aggregates are limit-independent and keep their values.
    pub fn set_limits(&mut self, eta: f64, capacity: f64) {
        self.eta = eta;
        self.capacity = capacity;
        self.refresh_throughput();
    }

    /// Folds a freshly-ingested edge-weight delta into the accounting:
    /// weight `w` was added between two *distinct* nodes currently labelled
    /// `la` and `lb` (either may be [`UNASSIGNED`]; edges toward unassigned
    /// nodes count as cut from the assigned side, matching
    /// [`CommunityState::from_labels`]).
    ///
    /// Leaves the cached scalars (`σ`, `Λ̂`, throughput, regime) stale —
    /// call [`CommunityState::refresh_throughput`] once per batch before
    /// reading any of them.
    pub fn apply_edge_delta(&mut self, la: u32, lb: u32, w: f64) {
        if la == lb {
            if la != UNASSIGNED {
                self.intra[la as usize] += w;
            }
            return;
        }
        if la != UNASSIGNED {
            self.cut[la as usize] += w;
        }
        if lb != UNASSIGNED {
            self.cut[lb as usize] += w;
        }
    }

    /// Folds a freshly-ingested self-loop delta on a node labelled `la`
    /// into the accounting (companion of [`CommunityState::apply_edge_delta`];
    /// same staleness contract).
    pub fn apply_self_loop_delta(&mut self, la: u32, w: f64) {
        if la != UNASSIGNED {
            self.intra[la as usize] += w;
        }
    }

    /// Folds a tagged delta list produced by the parallel ingestion path
    /// (tag = `community << 1`, low bit set = `cut` slot, clear = `intra`
    /// slot; unassigned endpoints were dropped at emission). The list is
    /// the chunk-order concatenation of per-canonical-chunk emissions, so
    /// every slot's contributions arrive in the serial application order
    /// and the folded aggregates are bit-identical to a serial
    /// `apply_edge_delta`/`apply_self_loop_delta` replay. Same staleness
    /// contract as those: close the batch with
    /// [`CommunityState::refresh_throughput`].
    pub(crate) fn fold_tagged_deltas(&mut self, deltas: &[(u32, f64)]) {
        for &(tag, w) in deltas {
            let c = (tag >> 1) as usize;
            if tag & 1 == 0 {
                self.intra[c] += w;
            } else {
                self.cut[c] += w;
            }
        }
    }

    /// Recomputes every cached scalar (`σ`, `Λ̂`, capped throughput and
    /// saturation regime) from the current `intra`/`cut` (`O(k)`), closing
    /// a batch of `apply_*_delta` calls.
    pub fn refresh_throughput(&mut self) {
        for c in 0..fit_u32(self.intra.len()) {
            self.recompute_community(c);
        }
    }

    /// Scales every `intra`/`cut` aggregate by `factor` and refreshes every
    /// cached scalar — the accounting image of a uniform edge-weight
    /// rescale of the underlying graph (exponential decay). The limits
    /// `η`/`λ` are left untouched; callers refresh them separately (the
    /// per-epoch [`CommunityState::set_limits`] pass re-derives `λ = |T|/k`
    /// from the decayed total).
    ///
    /// Sign safety: the fold is a multiplication by a positive factor, so
    /// non-negative aggregates can *never* drift below zero no matter how
    /// many small factors are folded in sequence (pinned by
    /// `repeated_decay_folds_stay_nonnegative` below and the ≥100-fold
    /// golden stream in `tests/atxallo_golden.rs`).
    pub fn scale_aggregates(&mut self, factor: f64) {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "scale factor must be positive and finite"
        );
        for v in &mut self.intra {
            *v *= factor;
        }
        for v in &mut self.cut {
            *v *= factor;
        }
        self.refresh_throughput();
    }

    /// Verifies Lemma 1 numerically: only `p` and `q` change. Debug aid for
    /// tests; O(k).
    #[cfg(test)]
    fn snapshot(&self) -> (Vec<f64>, Vec<f64>) {
        (self.intra.clone(), self.cut.clone())
    }
}

/// The blocked gather strip shared by every row gather in this crate
/// (`CommunityState::gather_links` here, `gather_row` in the epoch sweep
/// kernel): labels for a strip of 8 targets are loaded into a local array
/// first, then `f(label, weight)` runs left to right over the strip — the
/// label loads are the gather's random accesses, and batching them breaks
/// the load→accumulate dependency chain so they overlap. The callback
/// sequence is position-for-position identical to the scalar loop, hence
/// bit-identical accumulation (callers branch on [`UNASSIGNED`] inside
/// `f`).
#[inline]
pub(crate) fn gather_labels_blocked(
    ids: &[NodeId],
    ws: &[f64],
    labels: &[u32],
    mut f: impl FnMut(u32, f64),
) {
    const BLOCK: usize = 8;
    let mut cls = [0u32; BLOCK];
    let mut chunks_i = ids.chunks_exact(BLOCK);
    let mut chunks_w = ws.chunks_exact(BLOCK);
    for (ts, strip) in chunks_i.by_ref().zip(chunks_w.by_ref()) {
        for j in 0..BLOCK {
            cls[j] = labels[ts[j] as usize];
        }
        for j in 0..BLOCK {
            f(cls[j], strip[j]);
        }
    }
    for (&u, &w) in chunks_i.remainder().iter().zip(chunks_w.remainder()) {
        f(labels[u as usize], w);
    }
}

/// The capacity-capped shard throughput of Eq. 3:
/// `Λ = Λ̂` when `σ ≤ λ`, else `Λ = (λ/σ)·Λ̂`.
///
/// Total over degenerate inputs (a shard model must never emit NaN into
/// the gain comparisons, where it would poison every `GAIN_EPS` decision):
///
/// * `capacity ≤ 0` (or NaN) — a shard with no processing capacity serves
///   nothing: `Λ = 0`. The old code took the identity branch whenever
///   `σ ≤ λ`, which reported *positive* throughput for a zero-capacity
///   shard with `σ = 0 < Λ̂` inputs and *negative* throughput when
///   `σ > λ ≥ 0 > Λ̂·λ/σ` flipped the scale's sign.
/// * `σ = 0` with `Λ̂ > 0` can only reach the scaling branch when
///   `capacity < 0`, which the guard above now absorbs — no more `λ/0`
///   infinities.
/// * NaN `σ` (degenerate η upstream): `σ ≤ λ` is false, and the scale
///   `λ/σ` is NaN — reported as `Λ = 0` instead of propagating.
#[inline]
pub fn capped_throughput(sigma: f64, lambda_hat: f64, capacity: f64) -> f64 {
    if capacity <= 0.0 || capacity.is_nan() {
        return 0.0;
    }
    if sigma <= capacity {
        lambda_hat
    } else {
        let scaled = capacity / sigma * lambda_hat;
        if scaled.is_nan() {
            0.0
        } else {
            scaled
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txallo_graph::AdjacencyGraph;

    /// Line graph 0-1-2-3 plus a self-loop on 0; labels {0,1} per pair.
    fn fixture() -> (AdjacencyGraph, Vec<u32>) {
        let g = AdjacencyGraph::from_edges(
            4,
            vec![(0u32, 1, 1.0), (1, 2, 2.0), (2, 3, 1.0), (0, 0, 0.5)],
        );
        (g, vec![0, 0, 1, 1])
    }

    #[test]
    fn from_labels_accounts_intra_and_cut() {
        let (g, labels) = fixture();
        let s = CommunityState::from_labels(&g, &labels, 2, 2.0, 100.0);
        // Community 0: intra = edge(0,1) + loop(0) = 1.5, cut = edge(1,2) = 2.
        assert!((s.intra(0) - 1.5).abs() < 1e-12);
        assert!((s.cut(0) - 2.0).abs() < 1e-12);
        assert!((s.intra(1) - 1.0).abs() < 1e-12);
        assert!((s.cut(1) - 2.0).abs() < 1e-12);
        assert!((s.sigma(0) - 5.5).abs() < 1e-12, "σ₀ = 1.5 + 2η");
        assert!((s.lambda_hat(0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn unassigned_neighbors_count_as_cut() {
        let (g, mut labels) = fixture();
        labels[2] = UNASSIGNED;
        let s = CommunityState::from_labels(&g, &labels, 2, 2.0, 100.0);
        // Community 1 = {3}: its only neighbor 2 is unassigned => cut 1.
        assert!((s.intra(1) - 0.0).abs() < 1e-12);
        assert!((s.cut(1) - 1.0).abs() < 1e-12);
        // Community 0 unchanged: node 1's edge to 2 is still cut.
        assert!((s.cut(0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn capped_throughput_cases() {
        assert_eq!(
            capped_throughput(5.0, 4.0, 10.0),
            4.0,
            "sufficient capacity"
        );
        assert!(
            (capped_throughput(20.0, 4.0, 10.0) - 2.0).abs() < 1e-12,
            "halved"
        );
        assert_eq!(capped_throughput(0.0, 0.0, 10.0), 0.0);
    }

    #[test]
    fn capped_throughput_degenerate_capacity() {
        // A shard with no capacity serves nothing, whatever σ/Λ̂ claim.
        assert_eq!(capped_throughput(0.0, 4.0, 0.0), 0.0);
        assert_eq!(capped_throughput(5.0, 4.0, 0.0), 0.0);
        assert_eq!(capped_throughput(5.0, 4.0, -1.0), 0.0);
        assert_eq!(capped_throughput(-2.0, 4.0, -1.0), 0.0);
        assert_eq!(capped_throughput(5.0, 4.0, f64::NAN), 0.0);
        // In particular no λ/0 infinity: σ = 0 under a negative capacity.
        assert_eq!(capped_throughput(0.0, 3.0, -1.0), 0.0);
    }

    #[test]
    fn capped_throughput_zero_lambda_hat_with_positive_sigma() {
        // All-cut pathological state: Λ̂ = 0 but σ > 0; both regimes must
        // report exactly zero, never a signed artifact.
        assert_eq!(capped_throughput(3.0, 0.0, 10.0), 0.0);
        assert_eq!(capped_throughput(30.0, 0.0, 10.0), 0.0);
        assert_eq!(capped_throughput(f64::INFINITY, 0.0, 10.0), 0.0);
    }

    #[test]
    fn capped_throughput_never_propagates_nan_sigma() {
        // Degenerate η upstream turns σ into NaN; the throughput must
        // degrade to zero instead of poisoning every gain comparison.
        assert_eq!(capped_throughput(f64::NAN, 4.0, 10.0), 0.0);
        assert_eq!(capped_throughput(f64::NAN, 0.0, 10.0), 0.0);
    }

    /// The cache invariant: after arbitrary joins/leaves, every cached
    /// scalar equals — bit-for-bit — recomputation from `intra`/`cut`.
    #[test]
    fn cached_scalars_match_recomputation_bitwise() {
        let (g, labels) = fixture();
        let (eta, cap) = (2.0, 2.5); // tight capacity: both regimes occur
        let mut s = CommunityState::from_labels(&g, &labels, 2, eta, cap);
        // A churny sequence of moves (including ones that saturate).
        let moves = [(0u32, 1u32, 2u32), (1, 0, 1), (0, 1, 3), (1, 0, 2)];
        for &(p, q, v) in &moves {
            let (self_w, d_v) = (g.self_loop(v), g.incident_weight(v));
            let mut scratch = MoveScratch::default();
            s.gather_links(&g, &labels, v, &mut scratch);
            s.apply_leave(p, self_w, d_v, scratch.weight_to(p));
            s.apply_join(q, self_w, d_v, scratch.weight_to(q));
            for c in 0..2u32 {
                let sigma = s.intra(c) + eta * s.cut(c);
                let hat = s.intra(c) + s.cut(c) / 2.0;
                assert_eq!(s.sigma(c).to_bits(), sigma.to_bits(), "σ cache");
                assert_eq!(s.lambda_hat(c).to_bits(), hat.to_bits(), "Λ̂ cache");
                assert_eq!(
                    s.throughput(c).to_bits(),
                    capped_throughput(sigma, hat, cap).to_bits(),
                    "Λ cache"
                );
                assert_eq!(
                    s.is_saturated(c),
                    !(cap > 0.0 && sigma <= cap),
                    "regime cache"
                );
            }
        }
    }

    /// The gain fast path must be bit-identical to evaluating the raw
    /// Eq. 6/8 formulas through [`capped_throughput`].
    #[test]
    fn gain_fast_path_matches_formula_bitwise() {
        let (g, labels) = fixture();
        for cap in [100.0, 2.5, 1.0, 0.1] {
            let eta = 2.0;
            let s = CommunityState::from_labels(&g, &labels, 2, eta, cap);
            let mut scratch = MoveScratch::default();
            for v in 0..4u32 {
                let (self_w, d_v) = (g.self_loop(v), g.incident_weight(v));
                s.gather_links(&g, &labels, v, &mut scratch);
                for c in 0..2u32 {
                    let w_vc = scratch.weight_to(c);
                    let sigma_c = s.intra(c) + eta * s.cut(c);
                    let hat_c = s.intra(c) + s.cut(c) / 2.0;
                    let thr_c = capped_throughput(sigma_c, hat_c, cap);

                    let sj = sigma_c + self_w + eta * (d_v - self_w - w_vc) + (1.0 - eta) * w_vc;
                    let hj = hat_c + self_w + (d_v - self_w) / 2.0;
                    let join_ref = capped_throughput(sj, hj, cap) - thr_c;
                    assert_eq!(
                        s.join_gain(c, self_w, d_v, w_vc).to_bits(),
                        join_ref.to_bits(),
                        "join_gain(v={v}, c={c}, cap={cap})"
                    );

                    let sl = sigma_c - self_w - eta * (d_v - self_w - w_vc) + (eta - 1.0) * w_vc;
                    let hl = hat_c - self_w - (d_v - self_w) / 2.0;
                    let leave_ref = capped_throughput(sl, hl, cap) - thr_c;
                    assert_eq!(
                        s.leave_gain(c, self_w, d_v, w_vc).to_bits(),
                        leave_ref.to_bits(),
                        "leave_gain(v={v}, c={c}, cap={cap})"
                    );
                }
            }
        }
    }

    /// Repeated small decay folds can shrink the aggregates toward zero
    /// but never push a non-negative value below it, and every cached
    /// scalar stays in lock-step through the stream.
    #[test]
    fn repeated_decay_folds_stay_nonnegative() {
        let (g, labels) = fixture();
        let cap = 2.0;
        let mut s = CommunityState::from_labels(&g, &labels, 2, 2.0, cap);
        for i in 0..200 {
            s.scale_aggregates(0.97);
            for c in 0..2u32 {
                assert!(s.intra(c) >= 0.0, "fold {i}: intra({c}) negative");
                assert!(s.cut(c) >= 0.0, "fold {i}: cut({c}) negative");
                assert!(s.throughput(c) >= 0.0, "fold {i}: Λ({c}) negative");
                let sigma = s.intra(c) + 2.0 * s.cut(c);
                let hat = s.intra(c) + s.cut(c) / 2.0;
                assert_eq!(
                    s.throughput(c).to_bits(),
                    capped_throughput(sigma, hat, cap).to_bits(),
                    "fold {i}: throughput cache stale"
                );
            }
        }
    }

    #[test]
    fn join_then_leave_is_identity() {
        let (g, labels) = fixture();
        let mut s = CommunityState::from_labels(&g, &labels, 2, 3.0, 100.0);
        let before = s.snapshot();
        // Move node 1 (community 0): self_w=0, d_v=3, w_to_0 = 1 (node 0), w_to_1 = 2 (node 2).
        s.apply_leave(0, 0.0, 3.0, 1.0);
        s.apply_join(0, 0.0, 3.0, 1.0);
        let after = s.snapshot();
        for (a, b) in before.0.iter().zip(after.0.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
        for (a, b) in before.1.iter().zip(after.1.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn gain_matches_recomputation() {
        // Move node 2 from community 1 to community 0 and compare the
        // incremental gain against a from-scratch recomputation.
        let (g, labels) = fixture();
        let eta = 2.0;
        let cap = 2.0; // tight capacity so the capped branch is exercised
        let s = CommunityState::from_labels(&g, &labels, 2, eta, cap);
        let v: NodeId = 2;
        let self_w = g.self_loop(v);
        let d_v = g.incident_weight(v);
        let mut scratch = MoveScratch::default();
        s.gather_links(&g, &labels, v, &mut scratch);
        let w_vp = scratch.weight_to(1);
        let w_vq = scratch.weight_to(0);
        let predicted = s.move_gain(1, 0, self_w, d_v, w_vp, w_vq);

        let mut new_labels = labels.clone();
        new_labels[v as usize] = 0;
        let s2 = CommunityState::from_labels(&g, &new_labels, 2, eta, cap);
        let actual = s2.total_throughput() - s.total_throughput();
        assert!(
            (predicted - actual).abs() < 1e-9,
            "delta formula ({predicted}) must equal recomputation ({actual})"
        );
    }

    #[test]
    fn lemma1_only_two_communities_change() {
        // Three communities; moving a node between 0 and 1 must not touch 2.
        let g = AdjacencyGraph::from_edges(
            6,
            vec![
                (0u32, 1, 1.0),
                (2, 3, 1.0),
                (4, 5, 1.0),
                (1, 2, 0.5),
                (3, 4, 0.5),
            ],
        );
        let labels = vec![0, 0, 1, 1, 2, 2];
        let mut s = CommunityState::from_labels(&g, &labels, 3, 2.0, 10.0);
        let before_2 = (s.intra(2), s.cut(2));
        // Move node 2 from community 1 to community 0.
        let (self_w, d_v) = (g.self_loop(2), g.incident_weight(2));
        s.apply_leave(1, self_w, d_v, 1.0);
        s.apply_join(0, self_w, d_v, 0.5);
        assert_eq!(
            (s.intra(2), s.cut(2)),
            before_2,
            "community 2 untouched (Lemma 1)"
        );
    }

    #[test]
    fn apply_join_matches_from_labels() {
        // Incremental updates must agree with a from-scratch rebuild.
        let (g, labels) = fixture();
        let mut labels2 = labels.clone();
        let mut s = CommunityState::from_labels(&g, &labels, 2, 2.0, 100.0);
        let v: NodeId = 1;
        let (self_w, d_v) = (g.self_loop(v), g.incident_weight(v));
        let mut scratch = MoveScratch::default();
        s.gather_links(&g, &labels, v, &mut scratch);
        let w_vp = scratch.weight_to(0);
        let w_vq = scratch.weight_to(1);
        s.apply_leave(0, self_w, d_v, w_vp);
        s.apply_join(1, self_w, d_v, w_vq);
        labels2[v as usize] = 1;
        let rebuilt = CommunityState::from_labels(&g, &labels2, 2, 2.0, 100.0);
        for c in 0..2u32 {
            assert!((s.intra(c) - rebuilt.intra(c)).abs() < 1e-12, "intra({c})");
            assert!((s.cut(c) - rebuilt.cut(c)).abs() < 1e-12, "cut({c})");
        }
    }

    #[test]
    fn gather_links_separates_unassigned() {
        let (g, mut labels) = fixture();
        labels[3] = UNASSIGNED;
        let s = CommunityState::from_labels(&g, &labels, 2, 2.0, 100.0);
        let mut scratch = MoveScratch::default();
        s.gather_links(&g, &labels, 2, &mut scratch);
        assert!((scratch.weight_to(0) - 2.0).abs() < 1e-12);
        assert!((scratch.to_unassigned - 1.0).abs() < 1e-12);
    }
}
