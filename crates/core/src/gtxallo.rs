//! G-TxAllo — the global allocation algorithm (Algorithm 1).

use txallo_graph::{fit_u32, CsrGraph, NodeId, TxGraph, WeightedGraph};
use txallo_louvain::{louvain_csr, LouvainConfig, LouvainResult, GAIN_EPS};

use crate::allocation::Allocation;
use crate::dataset::Dataset;
use crate::params::TxAlloParams;
use crate::state::{CommunityState, MoveScratch, UNASSIGNED};
use crate::Allocator;

/// The global TxAllo algorithm: Louvain initialization, truncation to the
/// `k` heaviest communities, then deterministic throughput-gain sweeps.
///
/// ```
/// use txallo_core::{GTxAllo, MetricsReport, TxAlloParams};
/// use txallo_graph::TxGraph;
/// use txallo_model::{AccountId, Transaction};
///
/// // Two obvious 3-account clusters.
/// let mut g = TxGraph::new();
/// for base in [0u64, 10] {
///     for (i, j) in [(0, 1), (1, 2), (0, 2)] {
///         g.ingest_transaction(&Transaction::transfer(
///             AccountId(base + i),
///             AccountId(base + j),
///         ));
///     }
/// }
/// let params = TxAlloParams::for_graph(&g, 2);
/// let allocation = GTxAllo::new(params.clone()).allocate_graph(&g);
/// let report = MetricsReport::compute(&g, &allocation, &params);
/// assert_eq!(report.cross_shard_ratio, 0.0); // clusters map onto shards
/// ```
#[derive(Debug, Clone)]
pub struct GTxAllo {
    params: TxAlloParams,
}

/// Detailed outcome of a G-TxAllo run (the counters the paper's running
/// time discussion §VI-B6 refers to).
#[derive(Debug, Clone)]
pub struct GTxAlloOutcome {
    /// The final account-shard mapping.
    pub allocation: Allocation,
    /// Number of communities Louvain produced before truncation (`l`).
    pub initial_communities: usize,
    /// Modularity of the Louvain initialization.
    pub louvain_modularity: f64,
    /// Optimization sweeps executed until `ΔΛ < ε`.
    pub sweeps: usize,
    /// Total throughput gain accumulated by the optimization phase.
    pub total_gain: f64,
    /// Number of node moves committed across both phases.
    pub moves: usize,
}

impl GTxAllo {
    /// Creates the allocator with the given hyper-parameters.
    pub fn new(params: TxAlloParams) -> Self {
        Self { params }
    }

    /// The hyper-parameters in use.
    pub fn params(&self) -> &TxAlloParams {
        &self.params
    }

    /// Runs the full pipeline on a transaction graph.
    pub fn allocate_graph(&self, graph: &TxGraph) -> Allocation {
        self.allocate_detailed(graph).allocation
    }

    /// Runs the full pipeline, returning counters as well.
    ///
    /// The mutable hash-adjacency `TxGraph` is snapshotted once into a flat
    /// [`CsrGraph`] *renumbered into canonical sweep order*, so every sweep
    /// — the Louvain initialization's local moving and all optimization
    /// passes — walks packed, sorted rows sequentially instead of hashing
    /// and pointer-chasing per node (see [`GTxAlloPlan`]).
    pub fn allocate_detailed(&self, graph: &TxGraph) -> GTxAlloOutcome {
        let plan = GTxAlloPlan::new(graph, &self.params.louvain);
        self.allocate_planned(&plan)
    }

    /// Runs truncation + optimization from a precomputed [`GTxAlloPlan`].
    ///
    /// The plan depends on neither `k` nor `η`, so experiment sweeps build
    /// it once and reuse it across the whole parameter grid (this is also
    /// how the paper reports initialization time separately: 67.6 s of the
    /// 122.3 s total).
    pub fn allocate_planned(&self, plan: &GTxAlloPlan) -> GTxAlloOutcome {
        let out = self.allocate_with_init(&plan.csr, &plan.init, &plan.sequential);
        // Map the permuted labels back to original node ids.
        let permuted = out.allocation.labels();
        let mut labels = vec![0u32; permuted.len()];
        for (i, &v) in plan.order.iter().enumerate() {
            labels[v as usize] = permuted[i];
        }
        GTxAlloOutcome {
            allocation: Allocation::new(labels, out.allocation.shard_count()),
            ..out
        }
    }

    /// Runs truncation + optimization from a precomputed Louvain result and
    /// node sweep order.
    ///
    /// Exposed separately because the Louvain initialization depends on
    /// neither `k` nor `η` — experiment sweeps reuse it across the whole
    /// parameter grid (this is also how the paper reports initialization
    /// time separately: 67.6 s of the 122.3 s total).
    pub fn allocate_with_init(
        &self,
        graph: &impl WeightedGraph,
        init: &LouvainResult,
        order: &[NodeId],
    ) -> GTxAlloOutcome {
        let n = graph.node_count();
        let k = self.params.shards;
        assert_eq!(
            init.communities.len(),
            n,
            "initialization must label every node"
        );
        assert_eq!(order.len(), n, "sweep order must cover every node");

        if n == 0 {
            return GTxAlloOutcome {
                allocation: Allocation::new(Vec::new(), k),
                initial_communities: 0,
                louvain_modularity: init.modularity,
                sweeps: 0,
                total_gain: 0.0,
                moves: 0,
            };
        }

        let l = init.community_count.max(1);
        let mut moves = 0usize;

        // ---- Truncation: keep the k communities with the largest workload.
        let mut labels: Vec<u32> = init.communities.clone();
        if l > k {
            let full = CommunityState::from_labels(
                graph,
                &labels,
                l,
                self.params.eta,
                self.params.capacity,
            );
            let mut by_sigma: Vec<u32> = (0..l as u32).collect();
            by_sigma.sort_unstable_by(|&a, &b| {
                full.sigma(b)
                    .partial_cmp(&full.sigma(a))
                    .expect("finite workloads") // txallo-lint: allow(lib-unwrap) — sigma values are finite sums of finite per-account workloads, so partial_cmp is total
                    .then(a.cmp(&b))
            });
            let mut remap = vec![UNASSIGNED; l];
            for (new_id, &old_id) in by_sigma.iter().take(k).enumerate() {
                remap[old_id as usize] = fit_u32(new_id);
            }
            for label in labels.iter_mut() {
                *label = remap[*label as usize];
            }
        }
        // (If l <= k the Louvain labels already fit in 0..k, with the
        // remaining communities empty — the paper's "uncommon situation".)

        let mut state =
            CommunityState::from_labels(graph, &labels, k, self.params.eta, self.params.capacity);
        let mut scratch = MoveScratch::default();

        // ---- Initialization phase (lines 2–9): place V_small members.
        for &v in order {
            if labels[v as usize] != UNASSIGNED {
                continue;
            }
            let q = self.best_join(graph, &state, &labels, v, &mut scratch);
            let (self_w, d_v) = (graph.self_loop(v), graph.incident_weight(v));
            let w_vq = scratch.weight_to(q);
            state.apply_join(q, self_w, d_v, w_vq);
            labels[v as usize] = q;
            moves += 1;
        }

        // ---- Optimization phase (lines 10–19), incremental sweeps.
        //
        // A node's move decision depends on exactly two inputs: (a) its
        // per-community link weights `w(v→c)` — which change only when a
        // *neighbor* changes community — and (b) the accounting state of
        // the communities it touches plus its own (Lemma 1: a move changes
        // only its two endpoint communities). Input (a) is the expensive
        // part (a CSR row walk plus a label load per neighbor), so each
        // node caches its gathered `(community, weight)` candidate list and
        // reuses it verbatim until a neighbor moves; the gains over that
        // list — input (b), a handful of flops per candidate — are
        // recomputed against fresh community state every visit. When *both*
        // inputs are untouched since the node's last evaluation the node is
        // skipped outright: re-evaluating would provably repeat the
        // previous no-move. All reuse is bit-exact, so the trajectory is
        // identical to re-gathering every node every sweep.
        let mut sweeps = 0usize;
        let mut total_gain = 0.0;
        let mut move_stamp: u64 = 1; // bumped on every committed move
        let mut last_eval: Vec<u64> = vec![0; n];
        let mut gathered_at: Vec<u64> = vec![0; n];
        let mut links_dirty: Vec<u64> = vec![1; n];
        let mut comm_stamp: Vec<u64> = vec![1; k];
        // Cached candidate lists (ascending community order, straight from
        // `gather_links`), reused until invalidated by a neighbor's move.
        let mut cand_cache: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        loop {
            let mut delta = 0.0;
            for &v in order {
                let vi = v as usize;
                let p = labels[vi];
                let links_fresh = links_dirty[vi] <= gathered_at[vi];
                if links_fresh {
                    let seen = last_eval[vi];
                    if comm_stamp[p as usize] <= seen
                        && cand_cache[vi]
                            .iter()
                            .all(|&(c, _)| comm_stamp[c as usize] <= seen)
                    {
                        continue; // Inputs unchanged: evaluation would no-op.
                    }
                } else {
                    state.gather_links(graph, &labels, v, &mut scratch);
                    gathered_at[vi] = move_stamp;
                    cand_cache[vi].clear();
                    cand_cache[vi].extend(scratch.candidates());
                }
                last_eval[vi] = move_stamp;
                let cand = &cand_cache[vi];
                if cand.is_empty() || (cand.len() == 1 && cand[0].0 == p) {
                    continue; // C_v = ∅: v only touches its own community.
                }
                let self_w = graph.self_loop(v);
                let d_v = graph.incident_weight(v);
                let w_vp = cand.iter().find(|&&(c, _)| c == p).map_or(0.0, |&(_, w)| w);
                let leave = state.leave_gain(p, self_w, d_v, w_vp);

                // Candidates are sorted ascending; a later candidate must
                // beat the best by > GAIN_EPS.
                let mut best: Option<(u32, f64, f64)> = None; // (q, gain, w_vq)
                for &(q, w_vq) in cand {
                    if q == p {
                        continue;
                    }
                    let gain = leave + state.join_gain(q, self_w, d_v, w_vq);
                    match best {
                        Some((_, bg, _)) if gain <= bg + GAIN_EPS => {}
                        _ => best = Some((q, gain, w_vq)),
                    }
                }
                if let Some((q, gain, w_vq)) = best {
                    if gain > 0.0 {
                        state.apply_leave(p, self_w, d_v, w_vp);
                        state.apply_join(q, self_w, d_v, w_vq);
                        labels[vi] = q;
                        delta += gain;
                        total_gain += gain;
                        moves += 1;
                        move_stamp += 1;
                        comm_stamp[p as usize] = move_stamp;
                        comm_stamp[q as usize] = move_stamp;
                        graph.for_each_neighbor(v, |u, _| {
                            links_dirty[u as usize] = move_stamp;
                        });
                    }
                }
            }
            sweeps += 1;
            if delta < self.params.epsilon || sweeps >= self.params.max_sweeps {
                break;
            }
        }

        GTxAlloOutcome {
            allocation: Allocation::new(labels, k),
            initial_communities: init.community_count,
            louvain_modularity: init.modularity,
            sweeps,
            total_gain,
            moves,
        }
    }

    /// Best community for an unassigned node by join gain (Eq. 6);
    /// candidates per Eq. 9, falling back to all communities when the node
    /// touches none (line 4–6 of Algorithm 1).
    ///
    /// Ties on the gain (within [`GAIN_EPS`]) are broken toward the
    /// *least-loaded* community (then the smaller id). This matters: nodes
    /// from dissolved small communities often have identical gains across
    /// every candidate, and an id-based tie-break would funnel them all —
    /// plus their neighbors, by cascade — into community 0, wrecking the
    /// balance the objective is supposed to protect.
    fn best_join(
        &self,
        graph: &impl WeightedGraph,
        state: &CommunityState,
        labels: &[u32],
        v: NodeId,
        scratch: &mut MoveScratch,
    ) -> u32 {
        state.gather_links(graph, labels, v, scratch);
        let self_w = graph.self_loop(v);
        let d_v = graph.incident_weight(v);
        let k = fit_u32(state.community_count());
        // Ties are judged against the running *maximum* gain (not the
        // selected candidate's gain), so the selected community is always
        // within GAIN_EPS of the true best — the tie window cannot slide
        // downward across a chain of near-ties. When a new maximum pushes
        // the selected candidate below `max − GAIN_EPS`, the max-holder
        // takes over.
        let mut best: Option<(u32, f64, f64)> = None; // (q, gain, sigma)
        let mut max_gain = f64::NEG_INFINITY;
        let consider =
            |q: u32, w_vq: f64, best: &mut Option<(u32, f64, f64)>, max_gain: &mut f64| {
                let gain = state.join_gain(q, self_w, d_v, w_vq);
                let sigma = state.sigma(q);
                if gain > *max_gain {
                    *max_gain = gain;
                }
                let better = match *best {
                    None => true,
                    Some((_, bg, bs)) => {
                        bg < *max_gain - GAIN_EPS || (gain >= *max_gain - GAIN_EPS && sigma < bs)
                    }
                };
                if better {
                    *best = Some((q, gain, sigma));
                }
            };
        if scratch.is_empty() {
            for q in 0..k {
                consider(q, 0.0, &mut best, &mut max_gain);
            }
        } else {
            for (q, w_vq) in scratch.candidates() {
                consider(q, w_vq, &mut best, &mut max_gain);
            }
        }
        best.expect("k ≥ 1 guarantees a candidate").0 // txallo-lint: allow(lib-unwrap) — the loop above visits every shard 0..k and k >= 1, so best is always set
    }
}

/// The `k`/`η`-independent preparation shared by every G-TxAllo run on one
/// graph: the canonical sweep order, a CSR snapshot *renumbered* so that
/// node `i` of the snapshot is the `i`-th node of the sweep order, and the
/// Louvain initialization computed on that snapshot.
///
/// Renumbering matters for speed: the deterministic sweep order is the
/// account-hash order (§V-B), which is random with respect to interning
/// order. Sweeping a canonically-renumbered CSR visits rows, labels and
/// per-node scratch *sequentially*, turning the hottest loops from random
/// access into linear scans.
#[derive(Debug, Clone)]
pub struct GTxAlloPlan {
    /// `order[i]` = original node id of compact node `i` (canonical order).
    order: Vec<NodeId>,
    /// `0..n` — the sweep order in the renumbered space.
    sequential: Vec<NodeId>,
    /// CSR snapshot in renumbered space.
    csr: CsrGraph,
    /// Louvain initialization over `csr`.
    init: LouvainResult,
}

impl GTxAlloPlan {
    /// Builds the plan: canonical order, renumbered CSR snapshot, Louvain.
    pub fn new(graph: &TxGraph, louvain: &LouvainConfig) -> Self {
        let order = graph.nodes_in_canonical_order();
        let n = order.len();
        let mut new_id = vec![0 as NodeId; n];
        for (i, &v) in order.iter().enumerate() {
            new_id[v as usize] = i as NodeId;
        }
        let csr = CsrGraph::from_graph_relabeled(graph, &new_id);
        let init = louvain_csr(&csr, louvain);
        Self {
            order,
            sequential: (0..n as NodeId).collect(),
            csr,
            init,
        }
    }

    /// The Louvain initialization (over the renumbered snapshot).
    pub fn init(&self) -> &LouvainResult {
        &self.init
    }

    /// The canonical sweep order (original node ids).
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// The renumbered CSR snapshot.
    pub fn csr(&self) -> &CsrGraph {
        &self.csr
    }

    /// Runs truncation + optimization on this plan for one `(k, η)` point
    /// — the sweep-side entry of [`GTxAllo::allocate_planned`], shaped so
    /// parameter-grid harnesses can reuse a plan without constructing the
    /// allocator themselves.
    pub fn allocate(&self, params: &TxAlloParams) -> GTxAlloOutcome {
        GTxAllo::new(params.clone()).allocate_planned(self)
    }
}

impl Allocator for GTxAllo {
    fn name(&self) -> &str {
        "G-TxAllo"
    }

    fn allocate(&mut self, dataset: &Dataset) -> Allocation {
        self.allocate_graph(dataset.graph())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txallo_model::{AccountId, Transaction};

    /// Builds a graph of `c` dense clusters of `size` accounts plus a few
    /// cross-cluster transfers.
    fn clustered_graph(c: u64, size: u64, cross: u64) -> TxGraph {
        let mut g = TxGraph::new();
        for cluster in 0..c {
            let base = cluster * size;
            for i in 0..size {
                for j in (i + 1)..size {
                    g.ingest_transaction(&Transaction::transfer(
                        AccountId(base + i),
                        AccountId(base + j),
                    ));
                }
            }
        }
        for x in 0..cross {
            let from = (x % c) * size;
            let to = ((x + 1) % c) * size + 1;
            g.ingest_transaction(&Transaction::transfer(AccountId(from), AccountId(to)));
        }
        g
    }

    #[test]
    fn recovers_clusters_as_shards() {
        let g = clustered_graph(4, 6, 4);
        let params = TxAlloParams::for_graph(&g, 4);
        let out = GTxAllo::new(params.clone()).allocate_detailed(&g);
        let alloc = &out.allocation;
        assert_eq!(alloc.shard_count(), 4);
        // Each cluster must land in a single shard.
        for cluster in 0..4u64 {
            let shard0 = alloc.shard_of(g.node_of(AccountId(cluster * 6)).unwrap());
            for i in 1..6 {
                let s = alloc.shard_of(g.node_of(AccountId(cluster * 6 + i)).unwrap());
                assert_eq!(s, shard0, "cluster {cluster} split");
            }
        }
        let report = crate::MetricsReport::compute(&g, alloc, &params);
        assert!(
            report.cross_shard_ratio < 0.1,
            "γ = {}",
            report.cross_shard_ratio
        );
    }

    #[test]
    fn beats_hash_allocation_on_clusters() {
        let g = clustered_graph(6, 5, 10);
        let params = TxAlloParams::for_graph(&g, 6);
        let tx_alloc = GTxAllo::new(params.clone()).allocate_graph(&g);
        let hash_labels: Vec<u32> = (0..g.node_count() as NodeId)
            .map(|v| g.account(v).hash_shard(6).0)
            .collect();
        let hash_alloc = Allocation::new(hash_labels, 6);
        let r_tx = crate::MetricsReport::compute(&g, &tx_alloc, &params);
        let r_hash = crate::MetricsReport::compute(&g, &hash_alloc, &params);
        assert!(
            r_tx.cross_shard_ratio < r_hash.cross_shard_ratio / 2.0,
            "TxAllo γ = {} vs hash γ = {}",
            r_tx.cross_shard_ratio,
            r_hash.cross_shard_ratio
        );
        assert!(r_tx.throughput >= r_hash.throughput);
    }

    #[test]
    fn is_deterministic() {
        let g = clustered_graph(3, 7, 5);
        let params = TxAlloParams::for_graph(&g, 3);
        let a = GTxAllo::new(params.clone()).allocate_graph(&g);
        let b = GTxAllo::new(params).allocate_graph(&g);
        assert_eq!(a, b);
    }

    #[test]
    fn fewer_louvain_communities_than_shards() {
        // One dense cluster, k=4: Louvain finds ~1 community (l < k).
        let g = clustered_graph(1, 8, 0);
        let params = TxAlloParams::for_graph(&g, 4);
        let out = GTxAllo::new(params).allocate_detailed(&g);
        assert_eq!(out.allocation.shard_count(), 4);
        assert_eq!(out.allocation.len(), 8);
        // All labels valid.
        assert!(out.allocation.labels().iter().all(|&l| l < 4));
    }

    #[test]
    fn empty_graph_yields_empty_allocation() {
        let g = TxGraph::new();
        let params = TxAlloParams::for_total_weight(1.0, 3);
        let out = GTxAllo::new(params).allocate_detailed(&g);
        assert!(out.allocation.is_empty());
        assert_eq!(out.allocation.shard_count(), 3);
    }

    #[test]
    fn optimization_never_reduces_throughput() {
        let g = clustered_graph(5, 5, 15);
        let params = TxAlloParams::for_graph(&g, 5);
        let init = txallo_louvain::louvain(&g, &params.louvain);
        let order = g.nodes_in_canonical_order();
        let gt = GTxAllo::new(params.clone());
        let out = gt.allocate_with_init(&g, &init, &order);
        assert!(out.total_gain >= 0.0);
        // The final state's throughput equals state recomputation.
        let report = crate::MetricsReport::compute(&g, &out.allocation, &params);
        assert!(report.throughput > 0.0);
    }

    #[test]
    fn self_loops_do_not_break_allocation() {
        let mut g = clustered_graph(2, 4, 2);
        for i in 0..4u64 {
            g.ingest_transaction(&Transaction::transfer(AccountId(i), AccountId(i)));
        }
        let params = TxAlloParams::for_graph(&g, 2);
        let alloc = GTxAllo::new(params.clone()).allocate_graph(&g);
        assert_eq!(alloc.len(), g.node_count());
        let report = crate::MetricsReport::compute(&g, &alloc, &params);
        assert!(report.throughput > 0.0);
    }
}
