//! Discrete per-shard queue simulation.
//!
//! Eq. 4 of the paper derives confirmation latency *analytically* from the
//! normalized workload. This module measures it instead: every shard is a
//! FIFO queue draining `λ` workload units per block, transactions are
//! charged 1 (intra) or `η` (cross) per involved shard, and — unlike the
//! analytic model — a cross-shard transaction only *confirms* when **all**
//! involved shards have processed it (the atomic-commit barrier of §II-B).
//!
//! The gap between the measured mean latency and Eq. 4's prediction is
//! therefore exactly the cost of cross-shard coordination that the paper's
//! closed form folds into `η`.

use txallo_core::Allocation;
use txallo_graph::{fit_u32, TxGraph};
use txallo_model::Block;

/// One pending unit of work in a shard's queue.
#[derive(Debug, Clone, Copy)]
struct QueuedWork {
    /// Global id of the transaction this work belongs to.
    tx: u32,
    /// Workload units this shard must spend on it.
    cost: f64,
}

/// Latency statistics of a queue simulation run.
#[derive(Debug, Clone)]
pub struct QueueStats {
    /// Number of confirmed transactions.
    pub confirmed: usize,
    /// Transactions still unconfirmed when the simulation ended.
    pub unconfirmed: usize,
    /// Mean confirmation latency in blocks (confirmed transactions only).
    pub mean_latency: f64,
    /// Median confirmation latency.
    pub p50_latency: f64,
    /// 99th-percentile confirmation latency.
    pub p99_latency: f64,
    /// Worst observed latency.
    pub max_latency: f64,
    /// Mean latency among intra-shard transactions.
    pub mean_intra_latency: f64,
    /// Mean latency among cross-shard transactions.
    pub mean_cross_latency: f64,
}

/// Per-shard FIFO queue simulator.
#[derive(Debug)]
pub struct ShardQueueSim {
    eta: f64,
    capacity_per_block: f64,
    queues: Vec<std::collections::VecDeque<QueuedWork>>,
    /// Per-shard fractional progress into the head-of-line item.
    progress: Vec<f64>,
    /// Per transaction: remaining shard count and arrival block.
    remaining: Vec<u32>,
    arrival: Vec<u64>,
    completion: Vec<Option<u64>>,
    cross_flag: Vec<bool>,
    clock: u64,
}

impl ShardQueueSim {
    /// Creates the simulator: `shards` queues, each draining
    /// `capacity_per_block` workload units per block tick.
    pub fn new(shards: usize, capacity_per_block: f64, eta: f64) -> Self {
        assert!(shards > 0 && capacity_per_block > 0.0 && eta >= 1.0);
        Self {
            eta,
            capacity_per_block,
            queues: vec![std::collections::VecDeque::new(); shards],
            progress: vec![0.0; shards],
            remaining: Vec::new(),
            arrival: Vec::new(),
            completion: Vec::new(),
            cross_flag: Vec::new(),
            clock: 0,
        }
    }

    /// Current simulated block height.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Enqueues a block's transactions (at the current clock) and then
    /// advances the clock by one tick, draining every queue.
    pub fn step_block(&mut self, block: &Block, graph: &TxGraph, allocation: &Allocation) {
        let mut shards_scratch: Vec<u32> = Vec::with_capacity(8);
        for tx in block.transactions() {
            let id = fit_u32(self.remaining.len());
            shards_scratch.clear();
            for account in tx.account_set() {
                let node = graph
                    .node_of(account)
                    .expect("accounts ingested before simulation"); // txallo-lint: allow(lib-unwrap) — step_block's contract: the caller ingests the block before stepping the queue
                shards_scratch.push(allocation.shard_of(node).0);
            }
            shards_scratch.sort_unstable();
            shards_scratch.dedup();
            let mu = shards_scratch.len();
            let cost = if mu > 1 { self.eta } else { 1.0 };
            self.remaining.push(mu as u32);
            self.arrival.push(self.clock);
            self.completion.push(None);
            self.cross_flag.push(mu > 1);
            for &s in &shards_scratch {
                self.queues[s as usize].push_back(QueuedWork { tx: id, cost });
            }
        }
        self.tick();
    }

    /// Drains one block's worth of capacity from every shard.
    pub fn tick(&mut self) {
        for s in 0..self.queues.len() {
            let mut budget = self.capacity_per_block;
            while budget > 0.0 {
                let Some(head) = self.queues[s].front().copied() else {
                    break;
                };
                let left = head.cost - self.progress[s];
                if left <= budget {
                    budget -= left;
                    self.progress[s] = 0.0;
                    self.queues[s].pop_front();
                    let rem = &mut self.remaining[head.tx as usize];
                    *rem -= 1;
                    if *rem == 0 {
                        self.completion[head.tx as usize] = Some(self.clock);
                    }
                } else {
                    self.progress[s] += budget;
                    budget = 0.0;
                }
            }
        }
        self.clock += 1;
    }

    /// Runs extra ticks until every queue is empty (bounded by `max_ticks`).
    pub fn drain(&mut self, max_ticks: u64) {
        let mut ticks = 0;
        while ticks < max_ticks && self.queues.iter().any(|q| !q.is_empty()) {
            self.tick();
            ticks += 1;
        }
    }

    /// Summarizes latencies. Latency of a transaction is
    /// `completion_block − arrival_block + 1` (a transaction processed in
    /// its arrival block confirms with latency 1, matching Eq. 4's floor).
    pub fn stats(&self) -> QueueStats {
        let mut latencies: Vec<f64> = Vec::new();
        let mut intra_sum = 0.0;
        let mut intra_n = 0usize;
        let mut cross_sum = 0.0;
        let mut cross_n = 0usize;
        let mut unconfirmed = 0usize;
        for tx in 0..self.remaining.len() {
            match self.completion[tx] {
                Some(done) => {
                    let latency = (done - self.arrival[tx] + 1) as f64;
                    latencies.push(latency);
                    if self.cross_flag[tx] {
                        cross_sum += latency;
                        cross_n += 1;
                    } else {
                        intra_sum += latency;
                        intra_n += 1;
                    }
                }
                None => unconfirmed += 1,
            }
        }
        // txallo-lint: allow(no-unstable-float-sort, lib-unwrap) — sorting bare u64-derived f64 latencies with no payload to scramble; confirmation heights are finite by construction
        latencies.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
        let confirmed = latencies.len();
        let pct = |p: f64| -> f64 {
            if latencies.is_empty() {
                0.0
            } else {
                latencies[((confirmed - 1) as f64 * p) as usize]
            }
        };
        QueueStats {
            confirmed,
            unconfirmed,
            mean_latency: if confirmed == 0 {
                0.0
            } else {
                latencies.iter().sum::<f64>() / confirmed as f64
            },
            p50_latency: pct(0.5),
            p99_latency: pct(0.99),
            max_latency: latencies.last().copied().unwrap_or(0.0),
            mean_intra_latency: if intra_n == 0 {
                0.0
            } else {
                intra_sum / intra_n as f64
            },
            mean_cross_latency: if cross_n == 0 {
                0.0
            } else {
                cross_sum / cross_n as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txallo_core::metrics::latency_of_normalized_load;
    use txallo_graph::WeightedGraph;
    use txallo_model::{AccountId, Transaction};

    fn setup(labels: Vec<u32>, k: usize, txs: Vec<Transaction>) -> (TxGraph, Allocation, Block) {
        let mut g = TxGraph::new();
        let block = Block::new(0, txs);
        g.ingest_block(&block);
        (g, Allocation::new(labels, k), block)
    }

    #[test]
    fn underloaded_shard_confirms_in_one_block() {
        let (g, alloc, block) = setup(
            vec![0, 0],
            1,
            vec![Transaction::transfer(AccountId(1), AccountId(2))],
        );
        let mut sim = ShardQueueSim::new(1, 10.0, 2.0);
        sim.step_block(&block, &g, &alloc);
        let s = sim.stats();
        assert_eq!(s.confirmed, 1);
        assert_eq!(s.mean_latency, 1.0);
    }

    #[test]
    fn batch_drain_matches_analytic_latency() {
        // One shard, 100 intra transactions arriving at once, λ = 25/block:
        // σ̂ = 4 → Eq. 4 predicts ζ = (4+1)/2 = 2.5.
        let txs: Vec<Transaction> = (0..100)
            .map(|i| Transaction::transfer(AccountId(2 * i), AccountId(2 * i + 1)))
            .collect();
        let labels = vec![0u32; 200];
        let (g, alloc, block) = setup(labels, 1, txs);
        let mut sim = ShardQueueSim::new(1, 25.0, 2.0);
        sim.step_block(&block, &g, &alloc);
        sim.drain(100);
        let s = sim.stats();
        assert_eq!(s.confirmed, 100);
        let predicted = latency_of_normalized_load(4.0);
        assert!(
            (s.mean_latency - predicted).abs() < 0.2,
            "measured {} vs analytic {predicted}",
            s.mean_latency
        );
        assert_eq!(s.max_latency, 4.0, "backlog drains in ⌈σ̂⌉ blocks");
    }

    #[test]
    fn cross_shard_barrier_delays_confirmation() {
        // Two shards; shard 1 is congested by intra traffic, so the
        // cross-shard transaction (processed instantly by shard 0) must
        // wait for shard 1 — the barrier the analytic model folds into η.
        let mut txs = vec![Transaction::transfer(AccountId(0), AccountId(100))]; // cross
        for i in 0..50 {
            txs.push(Transaction::transfer(
                AccountId(100 + 2 * i + 1),
                AccountId(100 + 2 * i + 2),
            ));
        }
        let mut g = TxGraph::new();
        let block = Block::new(0, txs);
        g.ingest_block(&block);
        // Account 0 → shard 0; all 1xx accounts → shard 1.
        let labels: Vec<u32> = (0..g.node_count() as u32)
            .map(|v| if g.account(v).0 == 0 { 0 } else { 1 })
            .collect();
        let alloc = Allocation::new(labels, 2);
        let mut sim = ShardQueueSim::new(2, 10.0, 2.0);
        sim.step_block(&block, &g, &alloc);
        sim.drain(100);
        let s = sim.stats();
        assert_eq!(s.unconfirmed, 0);
        assert!(
            s.mean_cross_latency >= 1.0 && s.confirmed == 51,
            "cross tx must confirm after the barrier"
        );
    }

    #[test]
    fn eta_charges_more_work_for_cross_transactions() {
        // Same traffic, higher η → longer drain.
        let txs: Vec<Transaction> = (0..20)
            .map(|i| Transaction::transfer(AccountId(i), AccountId(100 + i)))
            .collect();
        let mut g = TxGraph::new();
        let block = Block::new(0, txs);
        g.ingest_block(&block);
        let labels: Vec<u32> = (0..g.node_count() as u32)
            .map(|v| if g.account(v).0 < 100 { 0 } else { 1 })
            .collect();
        let run = |eta: f64| {
            let mut sim = ShardQueueSim::new(2, 5.0, eta);
            sim.step_block(&block, &g, &Allocation::new(labels.clone(), 2));
            sim.drain(1000);
            sim.stats().mean_latency
        };
        assert!(
            run(6.0) > run(2.0),
            "higher η must increase measured latency"
        );
    }

    #[test]
    fn steady_state_low_load_keeps_latency_at_one() {
        // λ = 20/block, 10 intra tx per block: the queue never backs up.
        let mut g = TxGraph::new();
        let mut sim = ShardQueueSim::new(1, 20.0, 2.0);
        for h in 0..20u64 {
            let txs: Vec<Transaction> = (0..10)
                .map(|i| {
                    Transaction::transfer(
                        AccountId(h * 100 + 2 * i),
                        AccountId(h * 100 + 2 * i + 1),
                    )
                })
                .collect();
            let block = Block::new(h, txs);
            g.ingest_block(&block);
            let alloc = Allocation::new(vec![0; g.node_count()], 1);
            sim.step_block(&block, &g, &alloc);
        }
        sim.drain(10);
        let s = sim.stats();
        assert_eq!(s.unconfirmed, 0);
        assert!((s.mean_latency - 1.0).abs() < 1e-9, "no queueing at ½ load");
    }
}
