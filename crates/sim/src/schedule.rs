//! Reallocation schedules.
//!
//! [`HybridSchedule`] moved into `txallo_core::streaming` with the
//! streaming-API redesign: the schedule is consumed by the core
//! `HybridStream` combinator (G-TxAllo every `τ₂` epochs, A-TxAllo
//! otherwise), not interpreted by the simulation driver. This module
//! re-exports it so simulator consumers keep their imports.

pub use txallo_core::HybridSchedule;
