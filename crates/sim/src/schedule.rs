//! Reallocation schedules.

/// When to run the global algorithm instead of the adaptive one.
///
/// The paper's Fig. 9 compares `τ₂/τ₁ ∈ {20, 40, 100, 200}` against running
/// G-TxAllo every epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HybridSchedule {
    /// Run G-TxAllo every epoch ("Global Method" curve).
    AlwaysGlobal,
    /// Run A-TxAllo every epoch and G-TxAllo every `global_gap` epochs
    /// (epoch 0 is global — the initial mapping must come from somewhere).
    Hybrid {
        /// Global refresh period in epochs (`τ₂/τ₁`).
        global_gap: u64,
    },
    /// Never re-run the global algorithm after warm-up ("pure A-TxAllo").
    AlwaysAdaptive,
}

impl HybridSchedule {
    /// Whether epoch `epoch` (0-based, counted from the end of warm-up)
    /// should run the global algorithm.
    pub fn is_global_epoch(&self, epoch: u64) -> bool {
        match *self {
            HybridSchedule::AlwaysGlobal => true,
            HybridSchedule::Hybrid { global_gap } => {
                let gap = global_gap.max(1);
                epoch > 0 && epoch.is_multiple_of(gap)
            }
            HybridSchedule::AlwaysAdaptive => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_global_fires_each_epoch() {
        let s = HybridSchedule::AlwaysGlobal;
        assert!((0..5).all(|e| s.is_global_epoch(e)));
    }

    #[test]
    fn hybrid_fires_on_multiples() {
        let s = HybridSchedule::Hybrid { global_gap: 20 };
        assert!(
            !s.is_global_epoch(0),
            "warm-up already provided the mapping"
        );
        assert!(!s.is_global_epoch(19));
        assert!(s.is_global_epoch(20));
        assert!(!s.is_global_epoch(21));
        assert!(s.is_global_epoch(40));
    }

    #[test]
    fn adaptive_never_fires() {
        let s = HybridSchedule::AlwaysAdaptive;
        assert!((0..100).all(|e| !s.is_global_epoch(e)));
    }

    #[test]
    fn zero_gap_is_clamped() {
        let s = HybridSchedule::Hybrid { global_gap: 0 };
        assert!(s.is_global_epoch(1));
    }
}
