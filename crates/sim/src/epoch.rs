//! Per-epoch, transaction-level evaluation (blockchain-side definitions of
//! §III-B, complementing the graph-level [`txallo_core::MetricsReport`]).

use std::time::Duration;

use txallo_core::{Allocation, Degradation, StateCarry, UpdatePath};
use txallo_graph::TxGraph;
use txallo_model::Block;

// The epoch-boundary vocabulary now lives with the streaming API in
// `txallo_core::streaming`; re-exported here so simulator consumers keep
// their imports.
pub use txallo_core::UpdateKind;

/// Transaction-level metrics of one epoch's blocks under an allocation.
#[derive(Debug, Clone)]
pub struct EpochMetrics {
    /// Transactions in the epoch.
    pub transactions: usize,
    /// Cross-shard transactions (`µ(Tx) > 1`).
    pub cross_shard: usize,
    /// Cross-shard ratio over the epoch.
    pub cross_shard_ratio: f64,
    /// Per-shard workloads (intra 1, cross η each).
    pub shard_workloads: Vec<f64>,
    /// Capacity-capped system throughput over the epoch (absolute).
    pub throughput: f64,
    /// Throughput normalized by the epoch capacity `λ = |T_epoch|/k`
    /// ("how many times an unsharded chain" — Fig. 9's y-axis).
    pub throughput_normalized: f64,
    /// Accounts the epoch's [`AllocationUpdate`] migrated between shards
    /// (first placements excluded) — the migration cost the mapping
    /// update itself incurs, from the update's move diff. Zero for
    /// metrics computed outside an epoch loop.
    ///
    /// [`AllocationUpdate`]: txallo_core::AllocationUpdate
    pub migrated_accounts: usize,
}

/// Scores `blocks` under `allocation`.
///
/// Every account appearing in `blocks` must already be interned in `graph`
/// and labelled by `allocation` (the driver updates the allocation before
/// scoring, matching the paper's "apply the new mapping, then process").
pub fn epoch_metrics(
    blocks: &[Block],
    graph: &TxGraph,
    allocation: &Allocation,
    shards: usize,
    eta: f64,
) -> EpochMetrics {
    let mut tx_count = 0usize;
    let mut cross = 0usize;
    let mut workloads = vec![0.0f64; shards];
    // Uncapped per-shard throughput contributions (1/µ per involved shard).
    let mut hat = vec![0.0f64; shards];

    let mut shard_scratch: Vec<u32> = Vec::with_capacity(8);
    for block in blocks {
        for tx in block.transactions() {
            tx_count += 1;
            shard_scratch.clear();
            for account in tx.account_set() {
                let node = graph
                    .node_of(account)
                    .expect("epoch accounts are ingested before scoring"); // txallo-lint: allow(lib-unwrap) — the epoch loop ingests every block before scoring it, so all accounts are interned
                shard_scratch.push(allocation.shard_of(node).0);
            }
            shard_scratch.sort_unstable();
            shard_scratch.dedup();
            let mu = shard_scratch.len();
            let unit = if mu > 1 { eta } else { 1.0 };
            if mu > 1 {
                cross += 1;
            }
            for &s in &shard_scratch {
                workloads[s as usize] += unit;
                hat[s as usize] += 1.0 / mu as f64;
            }
        }
    }

    let capacity = if tx_count == 0 {
        1.0
    } else {
        tx_count as f64 / shards as f64
    };
    let throughput: f64 = (0..shards)
        .map(|s| {
            if workloads[s] <= capacity {
                hat[s]
            } else {
                capacity / workloads[s] * hat[s]
            }
        })
        .sum();

    EpochMetrics {
        transactions: tx_count,
        cross_shard: cross,
        cross_shard_ratio: if tx_count == 0 {
            0.0
        } else {
            cross as f64 / tx_count as f64
        },
        shard_workloads: workloads,
        throughput,
        throughput_normalized: throughput / capacity,
        migrated_accounts: 0,
    }
}

/// Everything recorded about one simulated epoch.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// Epoch index (0-based, after warm-up).
    pub epoch: u64,
    /// Height of the first and last block of the epoch.
    pub height_range: (u64, u64),
    /// Which algorithm ran at this boundary.
    pub update: UpdateKind,
    /// For adaptive updates, which snapshot route A-TxAllo took
    /// (delta-CSR vs. full recompute); `None` for global epochs.
    pub update_path: Option<UpdatePath>,
    /// How the stream's serving state crossed the boundary — in
    /// particular, whether a decay epoch *folded* into the warm session's
    /// aggregates ([`StateCarry::WarmRescaled`]) or forced a rebuild
    /// ([`StateCarry::Rebuilt`]).
    pub carry: StateCarry,
    /// Wall-clock time of the epoch-boundary allocation update.
    pub update_time: Duration,
    /// Brand-new accounts placed this epoch.
    pub new_accounts: usize,
    /// The serving-state health rung after this boundary's audit (see
    /// [`Degradation`]): `None` while the stream is healthy, degraded
    /// rungs once the consistency check has tripped the recovery ladder.
    pub degradation: Degradation,
    /// Transaction-level metrics of the epoch under the updated mapping.
    pub metrics: EpochMetrics,
}

#[cfg(test)]
mod tests {
    use super::*;
    use txallo_model::{AccountId, Transaction};

    #[test]
    fn epoch_metrics_by_hand() {
        let mut graph = TxGraph::new();
        let txs = vec![
            Transaction::transfer(AccountId(1), AccountId(2)), // intra (both shard 0)
            Transaction::transfer(AccountId(3), AccountId(4)), // intra (both shard 1)
            Transaction::transfer(AccountId(1), AccountId(3)), // cross
        ];
        let block = Block::new(0, txs);
        graph.ingest_block(&block);
        let mut labels = vec![0u32; 4];
        labels[graph.node_of(AccountId(3)).unwrap() as usize] = 1;
        labels[graph.node_of(AccountId(4)).unwrap() as usize] = 1;
        let alloc = Allocation::new(labels, 2);

        let m = epoch_metrics(&[block], &graph, &alloc, 2, 2.0);
        assert_eq!(m.transactions, 3);
        assert_eq!(m.cross_shard, 1);
        assert!((m.cross_shard_ratio - 1.0 / 3.0).abs() < 1e-12);
        // Each shard: 1 intra (1.0) + 1 cross (η = 2) = 3; capacity = 1.5.
        assert!((m.shard_workloads[0] - 3.0).abs() < 1e-12);
        assert!((m.shard_workloads[1] - 3.0).abs() < 1e-12);
        // hat per shard = 1 + 0.5 = 1.5; capped: 1.5/3 · 1.5 = 0.75 each.
        assert!((m.throughput - 1.5).abs() < 1e-12);
        assert!((m.throughput_normalized - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_intra_epoch_is_ideal() {
        let mut graph = TxGraph::new();
        let block = Block::new(
            0,
            vec![
                Transaction::transfer(AccountId(1), AccountId(2)),
                Transaction::transfer(AccountId(3), AccountId(4)),
            ],
        );
        graph.ingest_block(&block);
        let mut labels = vec![0u32; 4];
        labels[graph.node_of(AccountId(3)).unwrap() as usize] = 1;
        labels[graph.node_of(AccountId(4)).unwrap() as usize] = 1;
        let alloc = Allocation::new(labels, 2);
        let m = epoch_metrics(&[block], &graph, &alloc, 2, 4.0);
        assert_eq!(m.cross_shard, 0);
        assert!(
            (m.throughput_normalized - 2.0).abs() < 1e-12,
            "k× the unsharded chain"
        );
    }

    #[test]
    fn empty_epoch() {
        let graph = TxGraph::new();
        let alloc = Allocation::new(vec![], 3);
        let m = epoch_metrics(&[], &graph, &alloc, 3, 2.0);
        assert_eq!(m.transactions, 0);
        assert_eq!(m.cross_shard_ratio, 0.0);
        assert_eq!(m.throughput, 0.0);
    }
}
