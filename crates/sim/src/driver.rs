//! The simulation driver: warm-up, epoch loop, allocation updates.

use std::time::Instant;

use txallo_core::{Allocation, AtxAlloSession, GTxAllo, TxAlloParams};
use txallo_graph::{NodeId, TxGraph, WeightedGraph};
use txallo_model::{Block, FxHashSet};

use crate::epoch::{epoch_metrics, EpochReport, UpdateKind};
use crate::schedule::HybridSchedule;

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of shards `k`.
    pub shards: usize,
    /// Cross-shard workload `η`.
    pub eta: f64,
    /// Epoch length `τ₁` in blocks (paper: 300 ≈ one hour).
    pub epoch_blocks: usize,
    /// The reallocation schedule.
    pub schedule: HybridSchedule,
    /// Optional per-epoch exponential decay of the accumulated graph's
    /// edge weights (`(0, 1]`; `None` keeps raw history). See
    /// `txallo_graph::decay` — recency weighting per §VI-A's "recent
    /// history" recommendation.
    pub decay_per_epoch: Option<f64>,
}

impl SimConfig {
    /// Paper-default simulation parameters: η = 2, τ₁ = 300 blocks, hybrid
    /// schedule with a 20-epoch global gap.
    pub fn new(shards: usize) -> Self {
        Self {
            shards,
            eta: 2.0,
            epoch_blocks: 300,
            schedule: HybridSchedule::Hybrid { global_gap: 20 },
            decay_per_epoch: None,
        }
    }
}

/// The sharded-chain simulator.
///
/// Usage: [`warmup`] on the historical prefix (the paper trains on 90% of
/// the trace), then feed epochs of blocks through [`run_epoch`].
///
/// [`warmup`]: ShardedChainSim::warmup
/// [`run_epoch`]: ShardedChainSim::run_epoch
#[derive(Debug)]
pub struct ShardedChainSim {
    config: SimConfig,
    graph: TxGraph,
    allocation: Allocation,
    /// Long-lived A-TxAllo serving state (community aggregates carried
    /// across adaptive epochs). Dropped whenever the aggregates go stale:
    /// after a global G-TxAllo run (labels replaced wholesale) or after
    /// decay (graph weights rescaled out-of-band); lazily rebuilt on the
    /// next adaptive epoch.
    session: Option<AtxAlloSession>,
    epoch: u64,
    warmed_up: bool,
}

impl ShardedChainSim {
    /// Creates an empty simulator.
    pub fn new(config: SimConfig) -> Self {
        assert!(config.shards > 0, "need at least one shard");
        assert!(config.epoch_blocks > 0, "epochs must contain blocks");
        let shards = config.shards;
        Self {
            config,
            graph: TxGraph::new(),
            allocation: Allocation::new(Vec::new(), shards),
            session: None,
            epoch: 0,
            warmed_up: false,
        }
    }

    /// The accumulated transaction graph.
    pub fn graph(&self) -> &TxGraph {
        &self.graph
    }

    /// The current account-shard mapping.
    pub fn allocation(&self) -> &Allocation {
        &self.allocation
    }

    /// Epochs processed since warm-up.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    fn current_params(&self) -> TxAlloParams {
        TxAlloParams::for_graph(&self.graph, self.config.shards).with_eta(self.config.eta)
    }

    /// Ingests the historical prefix and runs G-TxAllo once to produce the
    /// initial mapping. Returns the wall-clock time of that global run.
    pub fn warmup(&mut self, blocks: &[Block]) -> std::time::Duration {
        for b in blocks {
            self.graph.ingest_block(b);
        }
        let start = Instant::now();
        self.allocation = GTxAllo::new(self.current_params()).allocate_graph(&self.graph);
        self.warmed_up = true;
        start.elapsed()
    }

    /// Processes one epoch: ingest `blocks`, update the allocation per the
    /// schedule, then score the epoch's transactions under the new mapping.
    ///
    /// # Panics
    /// Panics if called before [`ShardedChainSim::warmup`] or with an empty
    /// block slice.
    pub fn run_epoch(&mut self, blocks: &[Block]) -> EpochReport {
        assert!(self.warmed_up, "call warmup() before run_epoch()");
        assert!(!blocks.is_empty(), "an epoch must contain blocks");

        if let Some(factor) = self.config.decay_per_epoch {
            self.graph.apply_decay(factor);
            // Decay rescales every edge weight out-of-band; the session's
            // maintained aggregates no longer match the graph.
            self.session = None;
        }
        let session_predates_epoch = self.session.is_some();
        let mut touched: FxHashSet<NodeId> = FxHashSet::default();
        for b in blocks {
            for v in self.graph.ingest_block(b) {
                touched.insert(v);
            }
        }
        let mut touched: Vec<NodeId> = touched.into_iter().collect();
        touched.sort_unstable();

        let params = self.current_params();
        let run_global = self.config.schedule.is_global_epoch(self.epoch);
        let new_accounts = self.graph.node_count() - self.allocation.len();
        let start = Instant::now();
        let (update, update_path) = if run_global {
            self.allocation = GTxAllo::new(params).allocate_graph(&self.graph);
            self.session = None; // labels replaced wholesale
            (UpdateKind::Global, None)
        } else {
            let outcome = match self.session.as_mut() {
                // Warm session: fold this epoch's transaction deltas into
                // the aggregates, then sweep — no full-graph walk.
                Some(session) if session_predates_epoch => {
                    for b in blocks {
                        session.apply_block(&self.graph, b);
                    }
                    session.update(&self.graph, &touched, &params)
                }
                // Cold start (first adaptive epoch, or right after a
                // global run / decay): the session is built from the
                // post-ingestion graph, so the deltas are already counted.
                _ => {
                    let mut session = AtxAlloSession::new(&self.graph, &self.allocation, &params);
                    let outcome = session.update(&self.graph, &touched, &params);
                    self.session = Some(session);
                    outcome
                }
            };
            let path = outcome.path;
            self.allocation = outcome.allocation;
            (UpdateKind::Adaptive, Some(path))
        };
        let update_time = start.elapsed();

        let metrics = epoch_metrics(
            blocks,
            &self.graph,
            &self.allocation,
            self.config.shards,
            self.config.eta,
        );
        let report = EpochReport {
            epoch: self.epoch,
            height_range: (blocks[0].height(), blocks[blocks.len() - 1].height()),
            update,
            update_path,
            update_time,
            new_accounts,
            metrics,
        };
        self.epoch += 1;
        report
    }

    /// Convenience: run a whole stream of blocks in `epoch_blocks`-sized
    /// epochs, returning one report per complete epoch.
    pub fn run_stream(&mut self, blocks: &[Block]) -> Vec<EpochReport> {
        let epoch_blocks = self.config.epoch_blocks;
        blocks
            .chunks(epoch_blocks)
            .filter(|chunk| chunk.len() == epoch_blocks)
            .map(|chunk| self.run_epoch(chunk))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txallo_workload::{EthereumLikeGenerator, WorkloadConfig};

    fn generator() -> EthereumLikeGenerator {
        let cfg = WorkloadConfig {
            accounts: 1_500,
            transactions: 40_000,
            block_size: 50,
            groups: 30,
            ..WorkloadConfig::default()
        };
        EthereumLikeGenerator::new(cfg, 21)
    }

    #[test]
    fn warmup_then_adaptive_epochs() {
        let mut gen = generator();
        let warm = gen.blocks(100);
        let mut sim = ShardedChainSim::new(SimConfig {
            shards: 4,
            eta: 2.0,
            epoch_blocks: 20,
            schedule: HybridSchedule::AlwaysAdaptive,
            decay_per_epoch: None,
        });
        sim.warmup(&warm);
        let stream = gen.blocks(60);
        let reports = sim.run_stream(&stream);
        assert_eq!(reports.len(), 3);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.epoch, i as u64);
            assert_eq!(r.update, UpdateKind::Adaptive);
            assert!(r.update_path.is_some(), "adaptive epochs record the route");
            assert_eq!(r.metrics.transactions, 20 * 50);
            assert!(r.metrics.throughput_normalized > 1.0, "sharding must help");
            assert!(r.metrics.cross_shard_ratio < 0.9);
        }
        // Heights carry through.
        assert_eq!(reports[0].height_range, (100, 119));
        assert_eq!(reports[2].height_range, (140, 159));
    }

    #[test]
    fn hybrid_schedule_runs_global_on_gap() {
        let mut gen = generator();
        let warm = gen.blocks(60);
        let mut sim = ShardedChainSim::new(SimConfig {
            shards: 3,
            eta: 2.0,
            epoch_blocks: 10,
            schedule: HybridSchedule::Hybrid { global_gap: 2 },
            decay_per_epoch: None,
        });
        sim.warmup(&warm);
        let stream = gen.blocks(40);
        let reports = sim.run_stream(&stream);
        assert_eq!(reports.len(), 4);
        assert_eq!(reports[0].update, UpdateKind::Adaptive);
        assert_eq!(reports[1].update, UpdateKind::Adaptive);
        assert_eq!(
            reports[2].update,
            UpdateKind::Global,
            "epoch 2 hits the gap"
        );
        assert!(
            reports[2].update_path.is_none(),
            "global epochs have no route"
        );
        assert_eq!(reports[3].update, UpdateKind::Adaptive);
    }

    #[test]
    fn adaptive_is_faster_than_global() {
        let mut gen = generator();
        let warm = gen.blocks(200);
        let mut sim = ShardedChainSim::new(SimConfig {
            shards: 4,
            eta: 2.0,
            epoch_blocks: 10,
            schedule: HybridSchedule::AlwaysAdaptive,
            decay_per_epoch: None,
        });
        let global_time = sim.warmup(&warm);
        let stream = gen.blocks(10);
        let report = sim.run_stream(&stream).pop().unwrap();
        // The adaptive update touches a fraction of the graph; it must be
        // significantly faster than the global warm-up run.
        assert!(
            report.update_time < global_time,
            "adaptive {:?} should beat global {:?}",
            report.update_time,
            global_time
        );
    }

    #[test]
    #[should_panic(expected = "warmup")]
    fn epoch_before_warmup_panics() {
        let mut gen = generator();
        let blocks = gen.blocks(10);
        let mut sim = ShardedChainSim::new(SimConfig::new(2));
        let _ = sim.run_epoch(&blocks);
    }

    #[test]
    fn decay_keeps_graph_weight_bounded() {
        let mut gen = generator();
        let warm = gen.blocks(40);
        let mut sim = ShardedChainSim::new(SimConfig {
            shards: 3,
            eta: 2.0,
            epoch_blocks: 10,
            schedule: HybridSchedule::AlwaysAdaptive,
            decay_per_epoch: Some(0.5),
        });
        sim.warmup(&warm);
        use txallo_graph::WeightedGraph;
        let stream = gen.blocks(100);
        let mut last_weight = f64::INFINITY;
        for (i, r) in sim.run_stream(&stream).iter().enumerate() {
            assert!(r.metrics.throughput_normalized > 0.5, "epoch {i} collapsed");
            // With decay 0.5 and 500 tx/epoch, total weight converges to
            // < 1000 + epoch contribution instead of growing linearly.
            let w = sim.graph().total_weight();
            assert!(w < 2_500.0, "decayed weight must stay bounded, got {w}");
            last_weight = w;
        }
        assert!(last_weight < 2_500.0);
    }

    #[test]
    fn throughput_stays_reasonable_across_drift() {
        let mut gen = generator();
        let warm = gen.blocks(150);
        let mut sim = ShardedChainSim::new(SimConfig {
            shards: 4,
            eta: 2.0,
            epoch_blocks: 25,
            schedule: HybridSchedule::Hybrid { global_gap: 3 },
            decay_per_epoch: None,
        });
        sim.warmup(&warm);
        let stream = gen.blocks(150);
        let reports = sim.run_stream(&stream);
        for r in &reports {
            assert!(
                r.metrics.throughput_normalized > 0.9,
                "epoch {}: throughput collapsed to {}",
                r.epoch,
                r.metrics.throughput_normalized
            );
        }
    }
}
