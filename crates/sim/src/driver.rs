//! The simulation driver: warm-up, epoch loop, allocation updates.
//!
//! Since the streaming-API redesign the driver owns no algorithm wiring at
//! all: it resolves a [`StreamingAllocator`] by name through the
//! [`AllocatorRegistry`] and drives epochs purely through the service
//! contract — `on_reweight` for decay, `on_block` per ingested block,
//! `end_epoch` for the boundary — folding each returned
//! [`AllocationUpdate`](txallo_core::AllocationUpdate) diff into its
//! mapping with [`Allocation::apply_update`].

// txallo-lint: allow(no-wall-clock) — measures solve latency for EpochReport only; no allocation decision reads the clock
use std::time::Instant;

use txallo_core::{
    Allocation, AllocatorRegistry, Degradation, EpochKind, GlobalStream, HashAllocator,
    HybridSchedule, StreamingAllocator, TxAlloParams,
};
use txallo_graph::{MemoryFootprint, ResidencyConfig, TxGraph};
use txallo_model::Block;

use crate::epoch::{epoch_metrics, EpochReport};

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of shards `k`.
    pub shards: usize,
    /// Cross-shard workload `η`.
    pub eta: f64,
    /// Epoch length `τ₁` in blocks (paper: 300 ≈ one hour).
    pub epoch_blocks: usize,
    /// The allocation method, resolved through
    /// [`AllocatorRegistry::builtin`] (`txallo`, `hash`, `metis`,
    /// `scheduler`).
    pub method: String,
    /// The reallocation schedule (`txallo`'s global-refresh policy;
    /// schedule-free methods ignore it).
    pub schedule: HybridSchedule,
    /// Optional per-epoch exponential decay of the accumulated graph's
    /// edge weights (`(0, 1]`; `None` keeps raw history). See
    /// `txallo_graph::decay` — recency weighting per §VI-A's "recent
    /// history" recommendation.
    pub decay_per_epoch: Option<f64>,
    /// Worker threads of the allocation sweep kernels (`1` = serial,
    /// `0` = one per core; never changes an allocation, only wall-clock
    /// time). Defaults to the `TXALLO_THREADS` environment variable
    /// (unset = `1`).
    pub threads: usize,
    /// Out-of-core mode: evict graph rows of accounts idle for more than
    /// the configured window of epochs (see `txallo_graph::residency`).
    /// Changes no allocation — eviction/rehydration is bit-transparent —
    /// only the resident footprint. `None` keeps every row in the slab.
    pub residency: Option<ResidencyConfig>,
}

impl SimConfig {
    /// Paper-default simulation parameters: η = 2, τ₁ = 300 blocks,
    /// TxAllo under the hybrid schedule with a 20-epoch global gap.
    pub fn new(shards: usize) -> Self {
        Self {
            shards,
            eta: 2.0,
            epoch_blocks: 300,
            method: "txallo".to_string(),
            schedule: HybridSchedule::Hybrid { global_gap: 20 },
            decay_per_epoch: None,
            threads: txallo_graph::par::threads_from_env(),
            residency: None,
        }
    }
}

/// The sharded-chain simulator.
///
/// Usage: [`warmup`] on the historical prefix (the paper trains on 90% of
/// the trace), then feed epochs of blocks through [`run_epoch`].
///
/// [`warmup`]: ShardedChainSim::warmup
/// [`run_epoch`]: ShardedChainSim::run_epoch
#[derive(Debug)]
pub struct ShardedChainSim {
    config: SimConfig,
    graph: TxGraph,
    allocation: Allocation,
    /// The epoch-driven allocation service (resolved by name; for
    /// `txallo` this is the hybrid/adaptive stream whose warm
    /// `AtxAlloSession` carries the community aggregates across epochs).
    stream: Box<dyn StreamingAllocator>,
    epoch: u64,
    warmed_up: bool,
    /// Health-check cadence in epochs (0 = disabled).
    health_interval: u64,
    /// Consistency-error tolerance of the health check.
    health_tolerance: f64,
    /// The current rung of the recovery ladder.
    degradation: Degradation,
}

impl ShardedChainSim {
    /// Creates an empty simulator.
    ///
    /// # Panics
    /// Panics on a structurally invalid configuration, including a
    /// `method` the builtin registry does not know.
    pub fn new(config: SimConfig) -> Self {
        Self::with_registry(config, &AllocatorRegistry::builtin())
    }

    /// [`ShardedChainSim::new`] with a caller-supplied registry (for
    /// experimental allocators).
    pub fn with_registry(config: SimConfig, registry: &AllocatorRegistry) -> Self {
        assert!(config.shards > 0, "need at least one shard");
        assert!(config.epoch_blocks > 0, "epochs must contain blocks");
        let shards = config.shards;
        // Placeholder hyper-parameters until warm-up: every stream
        // re-derives the weight-dependent fields from the graph it is
        // begun on.
        let mut params = TxAlloParams::for_total_weight(0.0, shards)
            .with_eta(config.eta)
            .with_threads(config.threads);
        if config.residency.is_some() {
            // Cold rows read as empty through `&TxGraph`, so the adaptive
            // update must take the touched-rows-only snapshot route —
            // exactly the rows ingestion just rehydrated. (Route choice is
            // result-identical either way; see `TxAlloParams`.)
            params = params.with_incremental_threshold(1.0);
        }
        let stream = registry
            .streaming(&config.method, &params, config.schedule)
            .unwrap_or_else(|e| panic!("{e}"));
        let mut graph = TxGraph::new();
        if let Some(res) = &config.residency {
            graph.enable_residency(res);
        }
        Self {
            config,
            graph,
            allocation: Allocation::new(Vec::new(), shards),
            stream,
            epoch: 0,
            warmed_up: false,
            health_interval: 0,
            health_tolerance: 0.0,
            degradation: Degradation::None,
        }
    }

    /// The accumulated transaction graph.
    pub fn graph(&self) -> &TxGraph {
        &self.graph
    }

    /// The current account-shard mapping.
    pub fn allocation(&self) -> &Allocation {
        &self.allocation
    }

    /// Epochs processed since warm-up.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Enables the epoch-boundary serving-state health check: every
    /// `interval_epochs` epochs the stream's maintained aggregates are
    /// audited against a from-scratch recomputation
    /// ([`StreamingAllocator::consistency_error`]); a divergence above
    /// `tolerance` steps down the recovery ladder (see [`Degradation`]) —
    /// first invalidating the warm session, then falling back to
    /// deterministic hash allocation. Each [`EpochReport`] records the
    /// rung in force after its boundary.
    pub fn enable_health_check(&mut self, interval_epochs: u64, tolerance: f64) {
        self.health_interval = interval_epochs;
        self.health_tolerance = tolerance;
    }

    /// The current rung of the recovery ladder.
    pub fn degradation(&self) -> Degradation {
        self.degradation
    }

    fn current_params(&self) -> TxAlloParams {
        let params = TxAlloParams::for_graph(&self.graph, self.config.shards)
            .with_eta(self.config.eta)
            .with_threads(self.config.threads);
        if self.config.residency.is_some() {
            params.with_incremental_threshold(1.0)
        } else {
            params
        }
    }

    /// Ingests the historical prefix and opens the allocation service on
    /// it (for TxAllo: one global G-TxAllo run). Returns the wall-clock
    /// time of that initial solve.
    pub fn warmup(&mut self, blocks: &[Block]) -> std::time::Duration {
        for b in blocks {
            self.graph.ingest_block(b);
        }
        let start = Instant::now(); // txallo-lint: allow(no-wall-clock) — measures solve latency for EpochReport only; no allocation decision reads the clock
        let params = self.current_params();
        self.allocation = self.stream.begin(&self.graph, &params);
        self.warmed_up = true;
        start.elapsed()
    }

    /// Processes one epoch: ingest `blocks` into the graph and the
    /// stream, close the epoch per the service contract, then score the
    /// epoch's transactions under the updated mapping.
    ///
    /// # Panics
    /// Panics if called before [`ShardedChainSim::warmup`] or with an empty
    /// block slice.
    pub fn run_epoch(&mut self, blocks: &[Block]) -> EpochReport {
        assert!(self.warmed_up, "call warmup() before run_epoch()");
        assert!(!blocks.is_empty(), "an epoch must contain blocks");

        if let Some(factor) = self.config.decay_per_epoch {
            self.graph.apply_decay(factor);
            // Uniform rescale: the adaptive stream folds it into its
            // aggregates (`StateCarry::WarmRescaled`) instead of dropping
            // its session — see `AtxAlloSession::apply_decay`.
            self.stream.on_reweight(factor);
        }
        for b in blocks {
            // The interned view carries each transaction's dense node ids
            // (and the deduplicated touched set) from ingestion into the
            // stream, so the serving surface never re-hashes an account id.
            let nodes = self.graph.ingest_block_nodes(b);
            self.stream.on_block_nodes(&self.graph, b, &nodes);
        }

        self.rehydrate_for_boundary();
        let start = Instant::now(); // txallo-lint: allow(no-wall-clock) — measures solve latency for EpochReport only; no allocation decision reads the clock
        let update = self.stream.end_epoch(&self.graph, EpochKind::Scheduled);
        let update_time = start.elapsed();
        let new_accounts = update.placements();
        self.allocation.apply_update(&update);
        self.run_health_check();
        self.graph.advance_residency_epoch();

        let mut metrics = epoch_metrics(
            blocks,
            &self.graph,
            &self.allocation,
            self.config.shards,
            self.config.eta,
        );
        metrics.migrated_accounts = update.migrations();
        let report = EpochReport {
            epoch: self.epoch,
            height_range: (blocks[0].height(), blocks[blocks.len() - 1].height()),
            update: update.kind,
            update_path: update.path,
            carry: update.carry,
            update_time,
            new_accounts,
            degradation: self.degradation,
            metrics,
        };
        self.epoch += 1;
        report
    }

    /// Rehydrates every cold row ahead of an epoch boundary that will read
    /// the whole graph (the residency read invariant —
    /// `txallo_graph::residency`): a scheduled global re-solve, a
    /// consistency audit, any degraded state (whose rebuild/fallback paths
    /// re-solve globally), or a non-adaptive method (the batch baselines
    /// re-read the full graph at every boundary). Purely-adaptive epochs
    /// skip this: their incremental snapshot only reads rows ingestion
    /// just rehydrated.
    fn rehydrate_for_boundary(&mut self) {
        if !self.graph.residency_enabled() {
            return;
        }
        let audit_epoch =
            self.health_interval != 0 && (self.epoch + 1).is_multiple_of(self.health_interval);
        let full_read = self.config.method != "txallo"
            || self.config.schedule.is_global_epoch(self.epoch)
            || self.degradation != Degradation::None
            || audit_epoch;
        if full_read {
            self.graph.ensure_all_resident();
        }
    }

    /// The epoch-boundary health audit and its recovery ladder, mirroring
    /// `txallo_chain::ChainService`.
    fn run_health_check(&mut self) {
        if self.health_interval == 0 || !(self.epoch + 1).is_multiple_of(self.health_interval) {
            return;
        }
        let Some(err) = self.stream.consistency_error(&self.graph) else {
            return; // nothing maintained, nothing to diverge
        };
        if err <= self.health_tolerance {
            return;
        }
        if self.degradation < Degradation::Invalidated && self.stream.invalidate_state() {
            // First strike: drop the warm aggregates, keep the labels;
            // the next boundary rebuilds from the graph.
            self.degradation = Degradation::Invalidated;
            return;
        }
        // Last rung: swap in deterministic hash allocation so the epoch
        // loop keeps running — quality is sacrificed, visibly.
        let params = self.current_params();
        let mut fallback = GlobalStream::new(
            "hash-fallback",
            params.clone(),
            Box::new(|g, p| HashAllocator::new(p.shards).allocate_graph(g)),
        );
        self.allocation = fallback.begin(&self.graph, &params);
        self.stream = Box::new(fallback);
        self.degradation = Degradation::HashFallback;
    }

    /// Convenience: run a whole stream of blocks in `epoch_blocks`-sized
    /// epochs, returning one report per complete epoch.
    pub fn run_stream(&mut self, blocks: &[Block]) -> Vec<EpochReport> {
        let epoch_blocks = self.config.epoch_blocks;
        blocks
            .chunks(epoch_blocks)
            .filter(|chunk| chunk.len() == epoch_blocks)
            .map(|chunk| self.run_epoch(chunk))
            .collect()
    }

    /// [`ShardedChainSim::warmup`] from a block *iterator*: each block is
    /// ingested and dropped before the next is produced, so the warm-up
    /// prefix is never materialized — the out-of-core entry point for
    /// synthesized workloads (`txallo_workload::StreamingWorkload`).
    pub fn warmup_streamed<I>(&mut self, blocks: I) -> std::time::Duration
    where
        I: IntoIterator<Item = Block>,
    {
        for b in blocks {
            self.graph.ingest_block(&b);
        }
        let start = Instant::now(); // txallo-lint: allow(no-wall-clock) — measures solve latency for EpochReport only; no allocation decision reads the clock
        let params = self.current_params();
        self.allocation = self.stream.begin(&self.graph, &params);
        self.warmed_up = true;
        start.elapsed()
    }

    /// Runs `epochs` epochs, synthesizing each epoch's blocks on demand
    /// via `epoch_blocks` (called with the absolute epoch index, i.e.
    /// continuing from [`ShardedChainSim::epoch`]). Only one epoch of
    /// blocks is ever alive at a time — with a [`SimConfig::residency`]
    /// window this is the full out-of-core replay loop.
    pub fn run_stream_with<F>(&mut self, epochs: u64, mut epoch_blocks: F) -> Vec<EpochReport>
    where
        F: FnMut(u64) -> Vec<Block>,
    {
        (0..epochs)
            .map(|_| {
                let blocks = epoch_blocks(self.epoch);
                self.run_epoch(&blocks)
            })
            .collect()
    }

    /// The graph's current memory accounting (see
    /// [`MemoryFootprint`]) — slab arena, interner, residency index,
    /// spill.
    pub fn memory_footprint(&self) -> MemoryFootprint {
        self.graph.memory_footprint()
    }

    /// Approximate resident bytes of the allocator's own serving state
    /// (session aggregates, snapshot buffer, sweep scratch).
    pub fn allocator_state_bytes(&self) -> usize {
        self.stream.state_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::UpdateKind;
    use txallo_core::StateCarry;
    use txallo_workload::{EthereumLikeGenerator, WorkloadConfig};

    fn generator() -> EthereumLikeGenerator {
        let cfg = WorkloadConfig {
            accounts: 1_500,
            transactions: 40_000,
            block_size: 50,
            groups: 30,
            ..WorkloadConfig::default()
        };
        EthereumLikeGenerator::new(cfg, 21)
    }

    fn config(shards: usize, epoch_blocks: usize, schedule: HybridSchedule) -> SimConfig {
        SimConfig {
            shards,
            epoch_blocks,
            schedule,
            ..SimConfig::new(shards)
        }
    }

    #[test]
    fn warmup_then_adaptive_epochs() {
        let mut gen = generator();
        let warm = gen.blocks(100);
        let mut sim = ShardedChainSim::new(config(4, 20, HybridSchedule::AlwaysAdaptive));
        sim.warmup(&warm);
        let stream = gen.blocks(60);
        let reports = sim.run_stream(&stream);
        assert_eq!(reports.len(), 3);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.epoch, i as u64);
            assert_eq!(r.update, UpdateKind::Adaptive);
            assert!(r.update_path.is_some(), "adaptive epochs record the route");
            assert_eq!(r.carry, StateCarry::Warm, "session must stay warm");
            assert_eq!(r.metrics.transactions, 20 * 50);
            assert!(r.metrics.throughput_normalized > 1.0, "sharding must help");
            assert!(r.metrics.cross_shard_ratio < 0.9);
        }
        // Heights carry through.
        assert_eq!(reports[0].height_range, (100, 119));
        assert_eq!(reports[2].height_range, (140, 159));
    }

    #[test]
    fn hybrid_schedule_runs_global_on_gap() {
        let mut gen = generator();
        let warm = gen.blocks(60);
        let mut sim = ShardedChainSim::new(config(3, 10, HybridSchedule::Hybrid { global_gap: 2 }));
        sim.warmup(&warm);
        let stream = gen.blocks(40);
        let reports = sim.run_stream(&stream);
        assert_eq!(reports.len(), 4);
        assert_eq!(reports[0].update, UpdateKind::Adaptive);
        assert_eq!(reports[1].update, UpdateKind::Adaptive);
        assert_eq!(
            reports[2].update,
            UpdateKind::Global,
            "epoch 2 hits the gap"
        );
        assert!(
            reports[2].update_path.is_none(),
            "global epochs have no route"
        );
        assert_eq!(
            reports[2].carry,
            StateCarry::Rebuilt,
            "global refresh replaces the serving session"
        );
        assert_eq!(reports[3].update, UpdateKind::Adaptive);
    }

    #[test]
    fn adaptive_is_faster_than_global() {
        let mut gen = generator();
        let warm = gen.blocks(200);
        let mut sim = ShardedChainSim::new(config(4, 10, HybridSchedule::AlwaysAdaptive));
        let global_time = sim.warmup(&warm);
        let stream = gen.blocks(10);
        let report = sim.run_stream(&stream).pop().unwrap();
        // The adaptive update touches a fraction of the graph; it must be
        // significantly faster than the global warm-up run.
        assert!(
            report.update_time < global_time,
            "adaptive {:?} should beat global {:?}",
            report.update_time,
            global_time
        );
    }

    #[test]
    #[should_panic(expected = "warmup")]
    fn epoch_before_warmup_panics() {
        let mut gen = generator();
        let blocks = gen.blocks(10);
        let mut sim = ShardedChainSim::new(SimConfig::new(2));
        let _ = sim.run_epoch(&blocks);
    }

    #[test]
    #[should_panic(expected = "unknown method")]
    fn unknown_method_panics_with_registry_names() {
        let _ = ShardedChainSim::new(SimConfig {
            method: "nope".into(),
            ..SimConfig::new(2)
        });
    }

    #[test]
    fn baseline_methods_stream_too() {
        // The §VI comparison can run epoch-driven: every registered
        // method serves the same epoch loop.
        let mut gen = generator();
        let warm = gen.blocks(40);
        let stream = gen.blocks(20);
        for method in ["hash", "metis", "scheduler"] {
            let mut sim = ShardedChainSim::new(SimConfig {
                method: method.into(),
                ..config(3, 10, HybridSchedule::AlwaysAdaptive)
            });
            sim.warmup(&warm);
            for r in sim.run_stream(&stream) {
                assert_eq!(r.metrics.transactions, 500, "{method}");
                assert!(r.metrics.throughput_normalized > 0.0, "{method}");
            }
            assert_eq!(
                sim.allocation().len(),
                {
                    use txallo_graph::WeightedGraph;
                    sim.graph().node_count()
                },
                "{method} must label every account"
            );
        }
    }

    #[test]
    fn decay_keeps_graph_weight_bounded_and_folds_into_session() {
        let mut gen = generator();
        let warm = gen.blocks(40);
        let mut sim = ShardedChainSim::new(SimConfig {
            decay_per_epoch: Some(0.5),
            ..config(3, 10, HybridSchedule::AlwaysAdaptive)
        });
        sim.warmup(&warm);
        use txallo_graph::WeightedGraph;
        let stream = gen.blocks(100);
        let mut last_weight = f64::INFINITY;
        for (i, r) in sim.run_stream(&stream).iter().enumerate() {
            assert!(r.metrics.throughput_normalized > 0.5, "epoch {i} collapsed");
            assert_eq!(
                r.carry,
                StateCarry::WarmRescaled,
                "epoch {i}: decay must fold into the warm session, not rebuild it"
            );
            // With decay 0.5 and 500 tx/epoch, total weight converges to
            // < 1000 + epoch contribution instead of growing linearly.
            let w = sim.graph().total_weight();
            assert!(w < 2_500.0, "decayed weight must stay bounded, got {w}");
            last_weight = w;
        }
        assert!(last_weight < 2_500.0);
    }

    #[test]
    fn throughput_stays_reasonable_across_drift() {
        let mut gen = generator();
        let warm = gen.blocks(150);
        let mut sim = ShardedChainSim::new(config(4, 25, HybridSchedule::Hybrid { global_gap: 3 }));
        sim.warmup(&warm);
        let stream = gen.blocks(150);
        let reports = sim.run_stream(&stream);
        for r in &reports {
            assert!(
                r.metrics.throughput_normalized > 0.9,
                "epoch {}: throughput collapsed to {}",
                r.epoch,
                r.metrics.throughput_normalized
            );
        }
    }

    /// An account that appears mid-epoch and is placed by `end_epoch` must
    /// be counted exactly once — as a placement (`new_accounts`), never as
    /// a migration (`migrated_accounts`); when it later *does* change
    /// shard, that is one migration, not a second placement.
    #[test]
    fn mid_epoch_new_account_is_placement_not_migration() {
        use txallo_model::{AccountId, Block, Transaction};
        let clique = |base: u64| -> Vec<Transaction> {
            let mut txs = Vec::new();
            for i in 0..4 {
                for j in (i + 1)..4 {
                    txs.push(Transaction::transfer(
                        AccountId(base + i),
                        AccountId(base + j),
                    ));
                }
            }
            txs
        };
        let warm: Vec<Block> = vec![
            Block::new(0, clique(0)),
            Block::new(1, clique(10)),
            Block::new(2, clique(0)),
            Block::new(3, clique(10)),
        ];
        let mut sim = ShardedChainSim::new(config(2, 1, HybridSchedule::AlwaysAdaptive));
        sim.warmup(&warm);

        // Epoch 0: brand-new account 100 transacts with clique 0 only.
        let r = sim.run_epoch(&[Block::new(
            4,
            vec![
                Transaction::transfer(AccountId(100), AccountId(0)),
                Transaction::transfer(AccountId(100), AccountId(1)),
            ],
        )]);
        assert_eq!(r.new_accounts, 1, "one placement");
        assert_eq!(
            r.metrics.migrated_accounts, 0,
            "a first placement must not be double-counted as a migration"
        );
        let shard_100 = {
            let n = sim.graph().node_of(AccountId(100)).unwrap();
            sim.allocation().shard_of(n)
        };
        let shard_0 = {
            let n = sim.graph().node_of(AccountId(0)).unwrap();
            sim.allocation().shard_of(n)
        };
        assert_eq!(shard_100, shard_0, "placed with its partners");

        // Epoch 1: account 100 defects to clique 10's side, heavily.
        let defect: Vec<Transaction> = (0..40)
            .map(|i| Transaction::transfer(AccountId(100), AccountId(10 + (i % 4))))
            .collect();
        let r = sim.run_epoch(&[Block::new(5, defect)]);
        assert_eq!(r.new_accounts, 0, "no new accounts this epoch");
        assert_eq!(
            r.metrics.migrated_accounts, 1,
            "the defection is exactly one migration"
        );
    }

    #[test]
    fn residency_mode_reproduces_the_in_core_run() {
        use txallo_graph::ResidencyConfig;
        use txallo_workload::StreamingWorkload;
        // Deterministic drifting workload, synthesized per epoch — the
        // same generator feeds an in-core sim and an out-of-core twin
        // (1-epoch window, decay, hybrid schedule with global refreshes
        // and health audits, so every rehydration path runs).
        let cfg = WorkloadConfig {
            accounts: 1_200,
            transactions: 60_000,
            block_size: 50,
            groups: 24,
            ..WorkloadConfig::default()
        };
        let w = StreamingWorkload::new(cfg, 77);
        let base = SimConfig {
            decay_per_epoch: Some(0.8),
            ..config(4, 10, HybridSchedule::Hybrid { global_gap: 4 })
        };
        let run = |residency: Option<ResidencyConfig>| {
            let mut sim = ShardedChainSim::new(SimConfig {
                residency,
                ..base.clone()
            });
            sim.enable_health_check(3, 1e-6);
            sim.warmup_streamed(w.blocks(0..40));
            let reports = sim.run_stream_with(12, |e| w.epoch_blocks(e + 4, 10));
            (reports, sim)
        };
        let (plain, plain_sim) = run(None);
        let (evicted, evicted_sim) = run(Some(ResidencyConfig::in_memory(1)));
        assert!(
            evicted_sim.memory_footprint().evicted_rows > 0,
            "the window must actually evict"
        );
        assert_eq!(plain.len(), evicted.len());
        for (a, b) in plain.iter().zip(&evicted) {
            assert_eq!(a.update, b.update, "epoch {}", a.epoch);
            assert_eq!(a.metrics.cross_shard, b.metrics.cross_shard);
            assert_eq!(
                a.metrics.throughput_normalized.to_bits(),
                b.metrics.throughput_normalized.to_bits(),
                "epoch {}: out-of-core replay must be bit-identical",
                a.epoch
            );
            assert_eq!(a.metrics.migrated_accounts, b.metrics.migrated_accounts);
            assert_eq!(a.degradation, b.degradation);
        }
        assert_eq!(
            plain_sim.allocation().labels(),
            evicted_sim.allocation().labels(),
            "final mappings must match label-for-label"
        );
        assert!(evicted_sim.allocator_state_bytes() > 0);
    }

    #[test]
    fn health_check_degrades_and_reports_the_rung() {
        let mut gen = generator();
        let warm = gen.blocks(40);
        let mut sim = ShardedChainSim::new(config(3, 10, HybridSchedule::AlwaysAdaptive));
        sim.warmup(&warm);
        // An impossible tolerance forces a strike at every audited
        // boundary: first Invalidated, then the hash fallback.
        sim.enable_health_check(1, -1.0);
        let stream = gen.blocks(30);
        let reports = sim.run_stream(&stream);
        assert_eq!(reports[0].degradation, Degradation::Invalidated);
        assert_eq!(reports[1].degradation, Degradation::HashFallback);
        assert_eq!(reports[2].degradation, Degradation::HashFallback, "sticky");
        assert_eq!(sim.degradation(), Degradation::HashFallback);
        // Even degraded, every epoch still closes with a full mapping.
        for r in &reports {
            assert!(r.metrics.throughput_normalized > 0.0);
        }
        assert_eq!(sim.allocation().len(), {
            use txallo_graph::WeightedGraph;
            sim.graph().node_count()
        });
    }

    #[test]
    fn healthy_stream_never_degrades() {
        let mut gen = generator();
        let warm = gen.blocks(40);
        let mut sim = ShardedChainSim::new(config(3, 10, HybridSchedule::AlwaysAdaptive));
        sim.warmup(&warm);
        // The adaptive session's float aggregates are maintained exactly
        // (chronological accumulation); a generous tolerance never trips.
        sim.enable_health_check(1, 1e-6);
        for r in sim.run_stream(&gen.blocks(30)) {
            assert_eq!(r.degradation, Degradation::None);
            assert_eq!(
                r.carry,
                StateCarry::Warm,
                "audit must not disturb the session"
            );
        }
    }

    #[test]
    fn migration_diffs_are_surfaced() {
        let mut gen = generator();
        let warm = gen.blocks(100);
        let mut sim = ShardedChainSim::new(config(4, 20, HybridSchedule::Hybrid { global_gap: 2 }));
        sim.warmup(&warm);
        let stream = gen.blocks(80);
        let reports = sim.run_stream(&stream);
        let moved: usize = reports.iter().map(|r| r.metrics.migrated_accounts).sum();
        let placed: usize = reports.iter().map(|r| r.new_accounts).sum();
        assert!(
            moved + placed > 0,
            "a drifting workload must move or place accounts"
        );
        // The driver's mapping is exactly the stream's mapping (diffs
        // applied losslessly).
        assert_eq!(sim.allocation().labels().len(), {
            use txallo_graph::WeightedGraph;
            sim.graph().node_count()
        });
    }
}
