//! Epoch-driven simulation of a sharded blockchain under dynamic
//! transaction allocation (the §VI-C experiments).
//!
//! The simulator consumes a block stream in *epochs* of `τ₁` blocks
//! (paper: 300 blocks ≈ one hour of Ethereum). At the end of each epoch it
//! updates the account-shard mapping — adaptively with A-TxAllo, or
//! globally with G-TxAllo every `τ₂` epochs — and then scores the epoch's
//! transactions under the updated mapping using the blockchain-level
//! definitions of §III-B (per-transaction `µ`, capacity-capped
//! throughput). Wall-clock time of every update is recorded, reproducing
//! Fig. 9 (throughput evolution) and Fig. 10 (running time).

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]

pub mod driver;
pub mod epoch;
pub mod queue;
pub mod schedule;

pub use driver::{ShardedChainSim, SimConfig};
pub use epoch::{epoch_metrics, EpochMetrics, EpochReport, UpdateKind};
pub use queue::{QueueStats, ShardQueueSim};
pub use schedule::HybridSchedule;
