//! Property-based tests of the simulator invariants.

use proptest::prelude::*;
use txallo_core::Allocation;
use txallo_graph::{TxGraph, WeightedGraph};
use txallo_model::{AccountId, Block, Transaction};
use txallo_sim::{epoch_metrics, ShardQueueSim};

fn block_of(pairs: &[(u64, u64)]) -> Block {
    Block::new(
        0,
        pairs
            .iter()
            .map(|&(a, b)| Transaction::transfer(AccountId(a), AccountId(b)))
            .collect(),
    )
}

proptest! {
    /// epoch_metrics conservation: cross ≤ total; per-shard workload sums
    /// to intra + µ·η-weighted cross; throughput never exceeds the ideal.
    #[test]
    fn epoch_metrics_conservation(
        pairs in prop::collection::vec((0u64..30, 0u64..30), 1..80),
        k in 1usize..6,
        eta in 1.0f64..8.0,
    ) {
        let mut g = TxGraph::new();
        let block = block_of(&pairs);
        g.ingest_block(&block);
        let labels: Vec<u32> = (0..g.node_count() as u32).map(|v| v % k as u32).collect();
        let alloc = Allocation::new(labels, k);
        let m = epoch_metrics(std::slice::from_ref(&block), &g, &alloc, k, eta);
        prop_assert_eq!(m.transactions, pairs.len());
        prop_assert!(m.cross_shard <= m.transactions);
        prop_assert!((0.0..=1.0).contains(&m.cross_shard_ratio));
        // Workload decomposition: Σσ = intra·1 + Σ_cross µ(Tx)·η.
        let sigma_sum: f64 = m.shard_workloads.iter().sum();
        prop_assert!(sigma_sum >= m.transactions as f64 - 1e-9);
        // Throughput is capped by both |T| and k·λ.
        prop_assert!(m.throughput <= m.transactions as f64 + 1e-9);
        prop_assert!(m.throughput_normalized <= k as f64 + 1e-9);
    }

    /// Queue simulation conserves transactions and latency is ≥ 1.
    #[test]
    fn queue_conserves_transactions(
        pairs in prop::collection::vec((0u64..25, 0u64..25), 1..60),
        k in 1usize..5,
        capacity in 1.0f64..50.0,
    ) {
        let mut g = TxGraph::new();
        let block = block_of(&pairs);
        g.ingest_block(&block);
        let labels: Vec<u32> = (0..g.node_count() as u32).map(|v| v % k as u32).collect();
        let alloc = Allocation::new(labels, k);
        let mut sim = ShardQueueSim::new(k, capacity, 2.0);
        sim.step_block(&block, &g, &alloc);
        sim.drain(100_000);
        let s = sim.stats();
        prop_assert_eq!(s.confirmed + s.unconfirmed, pairs.len());
        prop_assert_eq!(s.unconfirmed, 0, "drain must finish everything");
        if s.confirmed > 0 {
            prop_assert!(s.mean_latency >= 1.0 - 1e-12);
            prop_assert!(s.p50_latency <= s.p99_latency + 1e-12);
            prop_assert!(s.p99_latency <= s.max_latency + 1e-12);
        }
    }

    /// More capacity never increases measured mean latency (monotonicity).
    #[test]
    fn queue_latency_monotone_in_capacity(
        pairs in prop::collection::vec((0u64..20, 0u64..20), 5..50),
    ) {
        let mut g = TxGraph::new();
        let block = block_of(&pairs);
        g.ingest_block(&block);
        let labels: Vec<u32> = (0..g.node_count() as u32).map(|v| v % 2).collect();
        let alloc = Allocation::new(labels, 2);
        let run = |cap: f64| {
            let mut sim = ShardQueueSim::new(2, cap, 2.0);
            sim.step_block(&block, &g, &alloc);
            sim.drain(100_000);
            sim.stats().mean_latency
        };
        prop_assert!(run(20.0) <= run(2.0) + 1e-9);
    }
}

use txallo_graph::ResidencyConfig;
use txallo_sim::{HybridSchedule, ShardedChainSim, SimConfig};
use txallo_workload::{StreamingWorkload, WorkloadConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The out-of-core replay loop — blocks synthesized per epoch, with or
    /// without cold-row eviction — reproduces the materialized-ledger run
    /// bit-for-bit: same update kinds, same cross-shard counts, same
    /// throughput bits, same final labels.
    #[test]
    fn out_of_core_replay_matches_materialized(
        seed in any::<u64>(),
        shards in 2usize..5,
        window in 1u32..3,
    ) {
        let cfg = WorkloadConfig {
            accounts: 600,
            transactions: 20_000,
            block_size: 40,
            groups: 12,
            ..WorkloadConfig::default()
        };
        let w = StreamingWorkload::new(cfg, seed);
        let (epoch_blocks, warm_epochs, epochs) = (5u64, 2u64, 6u64);
        let sim_config = |residency| SimConfig {
            epoch_blocks: epoch_blocks as usize,
            schedule: HybridSchedule::Hybrid { global_gap: 3 },
            decay_per_epoch: Some(0.9),
            residency,
            ..SimConfig::new(shards)
        };
        // Materialized reference: the whole ledger as slices up front.
        let mut mat = ShardedChainSim::new(sim_config(None));
        mat.warmup(&w.blocks(0..warm_epochs * epoch_blocks));
        let stream =
            w.blocks(warm_epochs * epoch_blocks..(warm_epochs + epochs) * epoch_blocks);
        let want = mat.run_stream(&stream);
        // Streamed twins: one epoch of blocks alive at a time.
        for residency in [None, Some(ResidencyConfig::in_memory(window))] {
            let mut sim = ShardedChainSim::new(sim_config(residency));
            sim.warmup_streamed(w.block_iter(0..warm_epochs * epoch_blocks));
            let got =
                sim.run_stream_with(epochs, |e| w.epoch_blocks(e + warm_epochs, epoch_blocks));
            prop_assert_eq!(want.len(), got.len());
            for (a, b) in want.iter().zip(&got) {
                prop_assert_eq!(a.update, b.update);
                prop_assert_eq!(a.metrics.cross_shard, b.metrics.cross_shard);
                prop_assert_eq!(
                    a.metrics.throughput_normalized.to_bits(),
                    b.metrics.throughput_normalized.to_bits()
                );
                prop_assert_eq!(a.metrics.migrated_accounts, b.metrics.migrated_accounts);
            }
            prop_assert_eq!(mat.allocation().labels(), sim.allocation().labels());
        }
    }
}
