//@ path: crates/core/src/fixture_doc.rs
// Fixture: pub-undocumented — public API surface in the documented crates
// must carry doc comments.

pub fn trigger() {}
//~^ pub-undocumented

pub struct TriggerStruct;
//~^ pub-undocumented

pub fn suppressed() {} // txallo-lint: allow(pub-undocumented) — internal-only helper pending the API split
//~^ SUPPRESSED pub-undocumented

/// Documented items pass.
pub fn negative_documented() {}

/// Attributes between the doc comment and the item are walked over.
#[inline]
pub fn negative_documented_with_attr() {}

pub(crate) fn negative_crate_private() {}

pub mod negative_out_of_line;
