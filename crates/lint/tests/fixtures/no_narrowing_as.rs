//@ path: crates/workload/src/fixture_narrow.rs
// Fixture: no-narrowing-as — silent `as` truncation on id/count-shaped
// values.

fn trigger(items: &[u64]) -> u32 {
    let next_id = items.len() as u32;
    //~^ no-narrowing-as
    next_id
}

fn trigger_count(account_count: usize) -> u16 {
    account_count as u16
    //~^ no-narrowing-as
}

fn suppressed(nodes: &[u64]) -> u32 {
    nodes.len() as u32 // txallo-lint: allow(no-narrowing-as) — bounded by the interner's u32 id-space cap
    //~^ SUPPRESSED no-narrowing-as
}

fn negative_widening(mask: u32) -> u64 {
    // Widening casts cannot truncate — no finding.
    mask as u64
}

fn negative_non_id(ratio: f64) -> u32 {
    // Only id/count-shaped identifiers are on the checked path.
    ratio as u32
}
