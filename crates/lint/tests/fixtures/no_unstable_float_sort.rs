//@ path: crates/sim/src/fixture_sort.rs
// Fixture: no-unstable-float-sort — unstable sorts keyed on floats without
// an integer tie-break (the PR 5 Louvain aggregation bug shape).

fn trigger(xs: &mut Vec<f64>) {
    xs.sort_unstable_by(|a, b| a.total_cmp(b));
    //~^ no-unstable-float-sort
}

fn trigger_multiline(pairs: &mut Vec<(u32, f64)>) {
    pairs.sort_unstable_by(|a, b| {
    //~^ no-unstable-float-sort
        b.1.total_cmp(&a.1)
    });
}

fn suppressed_bare_values(ws: &mut Vec<f64>) {
    // txallo-lint: allow(no-unstable-float-sort) — sorting bare f64 values; equal keys are indistinguishable, no payload to scramble
    ws.sort_unstable_by(|a, b| a.total_cmp(b));
    //~^ SUPPRESSED no-unstable-float-sort
}

fn negative_tie_broken(pairs: &mut Vec<(u32, f64)>) {
    // The `.then(..)` integer tie-break makes equal float keys ordered.
    pairs.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
}

fn negative_integer_sort(ids: &mut Vec<u32>) {
    // Integer keys are total — no finding.
    ids.sort_unstable();
}
