//@ path: crates/metis/src/fixture_d2.rs
// Fixture: D2-eps-literal — ad-hoc negative-exponent epsilon literals
// outside the sanctioned GAIN_EPS definition site.

fn trigger(gain: f64) -> bool {
    gain > 1e-12
    //~^ D2-eps-literal
}

// txallo-lint: allow(D2-eps-literal) — named, documented magnitude floor with a written invariant
const NAMED_FLOOR: f64 = 1e-9;
//~^ SUPPRESSED D2-eps-literal

fn negative_positive_exponent(x: f64) -> f64 {
    // Positive exponents are scale factors, not tolerances — no finding.
    x * 1e6
}

fn negative_identifier() -> u32 {
    // An identifier containing `e` followed by a dash in a later token is
    // not a literal.
    let x1e = 3;
    x1e - 1
}
