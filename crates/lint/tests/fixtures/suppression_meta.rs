//@ path: crates/chain/src/fixture_meta.rs
// Fixture: the engine's meta rules — suppression-hygiene (reasonless,
// malformed, or unknown-rule suppressions are themselves findings, and are
// not suppressible) and unused-suppression (stale annotations are flagged
// unless self-exempted).

fn reasonless(x: Option<u32>) -> u32 {
    x.unwrap() // txallo-lint: allow(lib-unwrap)
    //~^ lib-unwrap
    //~^^ suppression-hygiene
}

fn short_reason(x: Option<u32>) -> u32 {
    x.unwrap() // txallo-lint: allow(lib-unwrap) — ok
    //~^ lib-unwrap
    //~^^ suppression-hygiene
}

fn unknown_rule() {} // txallo-lint: allow(no-such-rule) — a perfectly long reason for a rule that does not exist
//~^ suppression-hygiene

fn hygiene_is_not_suppressible(x: Option<u32>) -> u32 {
    // Naming the meta rule cannot silence the hygiene finding: with no
    // written reason the unwrap stays active too, and the audit failure
    // survives alongside it.
    x.unwrap() // txallo-lint: allow(lib-unwrap, suppression-hygiene)
    //~^ lib-unwrap
    //~^^ suppression-hygiene
}

fn stale() {} // txallo-lint: allow(lib-unwrap) — nothing on this line unwraps anymore
//~^ unused-suppression

fn stale_but_kept() {} // txallo-lint: allow(lib-unwrap, unused-suppression) — annotation kept deliberately for the cfg'd-out debug path
