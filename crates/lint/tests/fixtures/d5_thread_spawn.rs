//@ path: crates/graph/src/fixture_d5.rs
// Fixture: D5-thread-spawn — threading primitives outside the sanctioned
// txallo_graph::par layer.

fn trigger(chunks: Vec<Vec<u32>>) {
    std::thread::scope(|scope| {
    //~^ D5-thread-spawn
        for c in chunks {
            scope.spawn(move || drop(c));
        }
    });
}

fn trigger_sync_primitive() {
    let shared: Mutex<Vec<u32>> = Mutex::new(Vec::new());
    //~^ D5-thread-spawn
    drop(shared);
}

fn suppressed_core_count() -> usize {
    // txallo-lint: allow(D5-thread-spawn) — reads core count only to size chunks; output is bit-identical at every chunk count
    std::thread::available_parallelism().map_or(1, |p| p.get())
    //~^ SUPPRESSED D5-thread-spawn
}

fn negative_serial(data: &[f64]) -> f64 {
    // Serial folds are always fine.
    data.iter().sum()
}
