//@ path: crates/sim/src/fixture_clock.rs
// Fixture: no-wall-clock — wall-clock reads in library (non-bench, non-CLI)
// code.

use std::time::Instant;
//~^ no-wall-clock

fn trigger() -> u64 {
    let epoch = SystemTime::now();
    //~^ no-wall-clock
    drop(epoch);
    0
}

fn suppressed_reporting() {
    let t0 = Instant::now(); // txallo-lint: allow(no-wall-clock) — measures solve latency for the report only; no algorithm decision reads it
    //~^ SUPPRESSED no-wall-clock
    drop(t0);
}

fn negative_logical_clock(height: u64) -> u64 {
    // Block heights are the only clock the algorithms may read.
    height + 1
}
