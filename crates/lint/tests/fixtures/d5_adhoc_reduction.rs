//@ path: crates/core/src/fixture_d5_reduction.rs
// Fixture: D5-adhoc-reduction — float folds over per-chunk partials must
// go through txallo_graph::par::reduce_tree (exact combine) or stay in
// serial caller code in canonical order.

fn trigger_sum(partials: Vec<f64>) -> f64 {
    let total: f64 = partials.iter().sum();
    //~^ D5-adhoc-reduction
    total
}

fn trigger_multiline_fold(chunk_gains: &[f64]) -> f64 {
    let total = chunk_gains
        .iter()
        .fold(0.0, |acc, g| acc + g);
    //~^ D5-adhoc-reduction
    total
}

fn suppressed_documented(shard_weights: &[f64]) -> f64 {
    // txallo-lint: allow(D5-adhoc-reduction) — shard list is canonical (one slot per fixed shard id), fold order is data-defined, not thread-defined
    let total: f64 = shard_weights.iter().sum();
    //~^ SUPPRESSED D5-adhoc-reduction
    total
}

fn negative_tree(partials: Vec<Vec<u32>>) -> Option<Vec<u32>> {
    // The sanctioned combiner: exact elementwise merge in fixed tree order.
    txallo_graph::par::reduce_tree(partials, |mut a, b| {
        for (x, y) in a.iter_mut().zip(b) {
            *x += y;
        }
        a
    })
}

fn negative_integer_counts(chunk_counts: &[usize]) -> usize {
    // Integer folds are exact in any order.
    let n: usize = chunk_counts.iter().sum();
    n
}

fn negative_plain_serial(weights: &[f64]) -> f64 {
    // A float fold over non-chunk data is ordinary serial code.
    let m: f64 = weights.iter().sum();
    m
}
