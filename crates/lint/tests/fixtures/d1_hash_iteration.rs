//@ path: crates/louvain/src/fixture_d1.rs
// Fixture: D1-hash-iteration — iterating a hash container inside a kernel
// crate. Never compiled; scanned lexically by the golden test.

fn trigger(gain: FxHashMap<u32, f64>) -> f64 {
    let mut total = 0.0;
    for (&_u, &g) in &gain {
    //~^ D1-hash-iteration
        total += g;
    }
    total
}

fn trigger_method(seen: FxHashSet<u32>) -> usize {
    seen.iter().count()
    //~^ D1-hash-iteration
}

fn suppressed(active: FxHashSet<u32>) -> Vec<u32> {
    // txallo-lint: allow(D1-hash-iteration) — collect-and-sort: the next line sorts ascending, so hash order never escapes
    let mut v: Vec<u32> = active.into_iter().collect();
    //~^ SUPPRESSED D1-hash-iteration
    v.sort_unstable();
    v
}

fn negative_dense(gains: Vec<f64>) -> f64 {
    // Dense structures iterate in index order — no finding expected.
    let mut total = 0.0;
    for g in &gains {
        total += g;
    }
    total
}
