//@ path: crates/chain/src/fixture_unwrap.rs
// Fixture: lib-unwrap — unwrap/expect in non-test library code.

fn trigger(x: Option<u32>) -> u32 {
    x.unwrap()
    //~^ lib-unwrap
}

fn trigger_expect(x: Option<u32>) -> u32 {
    x.expect("present")
    //~^ lib-unwrap
}

fn suppressed(x: Option<u32>) -> u32 {
    x.unwrap() // txallo-lint: allow(lib-unwrap) — caller validated x is Some on the line above
    //~^ SUPPRESSED lib-unwrap
}

fn negative_typed_error(x: Option<u32>) -> Result<u32, String> {
    // The typed-error form the rule asks for — no finding.
    x.ok_or_else(|| "missing".to_owned())
}
