//! Golden tests: every fixture under `tests/fixtures/` is scanned with the
//! virtual repo path from its `//@ path:` header, and the findings must
//! match the inline expectation markers exactly.
//!
//! Marker syntax (standalone comment lines, compile-test style):
//!
//! * `//~^ rule-id` — an **active** finding of `rule-id` on the line one
//!   caret-count above the marker (`^^` = two lines up, etc.);
//! * `//~^ SUPPRESSED rule-id` — a finding of `rule-id` on that line that
//!   was silenced by a well-formed `txallo-lint: allow(..)` comment.
//!
//! Matching is exhaustive in both directions: an unexpected finding or an
//! unmatched expectation fails the test, so fixtures double as regression
//! tests for false positives on their negative cases.

use std::collections::BTreeSet;
use std::path::PathBuf;

/// (line, rule, suppressed) triple used for exact comparison.
type Expectation = (usize, String, bool);

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Parse `//~^ [SUPPRESSED] rule-id` markers; returns expectations keyed to
/// the marked (caret-offset) line.
fn parse_expectations(source: &str) -> BTreeSet<Expectation> {
    let mut out = BTreeSet::new();
    for (idx, line) in source.lines().enumerate() {
        let t = line.trim_start();
        let Some(rest) = t.strip_prefix("//~") else {
            continue;
        };
        let carets = rest.chars().take_while(|&c| c == '^').count();
        assert!(carets > 0, "marker without carets on line {}", idx + 1);
        let rest = rest[carets..].trim();
        let (suppressed, rule) = match rest.strip_prefix("SUPPRESSED ") {
            Some(r) => (true, r.trim()),
            None => (false, rest),
        };
        assert!(
            !rule.is_empty(),
            "marker without a rule on line {}",
            idx + 1
        );
        let target = idx + 1 - carets; // marker is 1-based idx+1; ^ = one up
        out.insert((target, rule.to_owned(), suppressed));
    }
    out
}

/// The `//@ path:` header naming the virtual repo-relative path the
/// fixture is scanned under (rule scoping is path-based).
fn virtual_path(source: &str) -> String {
    let first = source.lines().next().expect("fixture is non-empty");
    first
        .strip_prefix("//@ path:")
        .expect("fixture must start with a `//@ path:` header")
        .trim()
        .to_owned()
}

fn check_fixture(name: &str, source: &str) -> BTreeSet<Expectation> {
    let path = virtual_path(source);
    let expected = parse_expectations(source);
    let actual: BTreeSet<Expectation> = txallo_lint::analyze(&path, source)
        .into_iter()
        .map(|f| (f.line, f.rule, f.suppressed.is_some()))
        .collect();
    let missing: Vec<_> = expected.difference(&actual).collect();
    let unexpected: Vec<_> = actual.difference(&expected).collect();
    assert!(
        missing.is_empty() && unexpected.is_empty(),
        "fixture {name} (as {path}):\n  expected but not reported: {missing:?}\n  \
         reported but not expected: {unexpected:?}"
    );
    expected
}

#[test]
fn fixtures_match_expectations_exactly() {
    let dir = fixtures_dir();
    let mut names: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("fixtures directory exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    names.sort();
    assert!(!names.is_empty(), "no fixtures found in {dir:?}");

    let mut all: BTreeSet<(String, bool)> = BTreeSet::new();
    for path in &names {
        let source = std::fs::read_to_string(path).expect("readable fixture");
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        for (_, rule, suppressed) in check_fixture(&name, &source) {
            all.insert((rule, suppressed));
        }
    }

    // Coverage floor: every source rule has at least one triggering AND one
    // suppressed case across the fixture set; both meta rules have at least
    // one triggering case (they are never suppressible / self-exempt only).
    for rule in txallo_lint::rules::RULES {
        assert!(
            all.contains(&(rule.id.to_owned(), false)),
            "no fixture triggers rule {}",
            rule.id
        );
        assert!(
            all.contains(&(rule.id.to_owned(), true)),
            "no fixture exercises a suppressed case for rule {}",
            rule.id
        );
    }
    for meta in ["suppression-hygiene", "unused-suppression"] {
        assert!(
            all.contains(&(meta.to_owned(), false)),
            "no fixture triggers meta rule {meta}"
        );
    }
}

#[test]
fn fixture_paths_stay_out_of_real_crates() {
    // Virtual paths must look like workspace files (so scoping applies)
    // but never collide with a file that actually exists.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf();
    for entry in std::fs::read_dir(fixtures_dir()).expect("fixtures dir") {
        let path = entry.expect("entry").path();
        if path.extension().is_none_or(|e| e != "rs") {
            continue;
        }
        let source = std::fs::read_to_string(&path).expect("readable");
        let vp = virtual_path(&source);
        assert!(
            vp.starts_with("crates/"),
            "virtual path {vp} not in crates/"
        );
        assert!(
            !root.join(&vp).exists(),
            "virtual path {vp} collides with a real workspace file"
        );
    }
}
