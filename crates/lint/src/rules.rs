//! The lint rules, each mapped to a determinism-contract rule
//! (ARCHITECTURE.md §Determinism contract, D1–D5) or a safety-hygiene
//! policy. All checks run on the comment-stripped, string-blanked code
//! channel of [`FileView`] and skip `#[cfg(test)]` regions.
//!
//! Rules are heuristic by design (no type information), tuned for zero
//! false positives on this workspace's idioms; anything they still flag
//! that is genuinely fine takes an explicit
//! `// txallo-lint: allow(rule) — reason` suppression, which keeps the
//! exceptions auditable in the diff.

use crate::scan::FileView;

/// A rule violation before suppression matching: (1-based line, rule id,
/// message).
pub type RawFinding = (usize, &'static str, String);

/// Static description of one rule.
pub struct Rule {
    /// Stable id, as written in `allow(...)` suppressions.
    pub id: &'static str,
    /// One-line description for `--rules` output.
    pub summary: &'static str,
    /// The contract rule this enforces (for docs cross-referencing).
    pub contract: &'static str,
    /// The check itself.
    pub check: fn(&FileView, &mut Vec<RawFinding>),
}

/// Every source-level rule, in reporting order. The two meta rules
/// (`suppression-hygiene`, `unused-suppression`) live in the engine, not
/// here, because they examine suppressions rather than code.
pub const RULES: &[Rule] = &[
    Rule {
        id: "D1-hash-iteration",
        summary: "no hash-container iteration in sweep/kernel crates (lookups fine, traversal order is not canonical)",
        contract: "D1 canonical sweep order",
        check: d1_hash_iteration,
    },
    Rule {
        id: "D2-eps-literal",
        summary: "no ad-hoc epsilon literals (<= 1e-9); tie-breaking tolerance is txallo_louvain::GAIN_EPS",
        contract: "D2 GAIN_EPS tie-breaking",
        check: d2_eps_literal,
    },
    Rule {
        id: "D5-thread-spawn",
        summary: "no thread spawning or shared-state sync primitives outside txallo_graph::par",
        contract: "D5 parallel reduction",
        check: d5_thread_spawn,
    },
    Rule {
        id: "D5-adhoc-reduction",
        summary: "no ad-hoc float folds over per-chunk/per-worker partials; exact combines go through txallo_graph::par::reduce_tree",
        contract: "D5 parallel reduction",
        check: d5_adhoc_reduction,
    },
    Rule {
        id: "no-wall-clock",
        summary: "no SystemTime/Instant feeding algorithm state (bench/CLI measurement code is exempt)",
        contract: "D1-D5 (replayability)",
        check: no_wall_clock,
    },
    Rule {
        id: "no-unstable-float-sort",
        summary: "no sort_unstable with a float comparator and no integer tie-break (equal keys scramble)",
        contract: "D2 GAIN_EPS tie-breaking",
        check: no_unstable_float_sort,
    },
    Rule {
        id: "no-narrowing-as",
        summary: "no `as u8/u16/u32` narrowing on id/count paths; use checked constructors (IdSpaceExhausted-style)",
        contract: "hygiene (id-space safety)",
        check: no_narrowing_as,
    },
    Rule {
        id: "lib-unwrap",
        summary: "no unwrap/expect in non-test library code without a documented suppression",
        contract: "hygiene (total library surface)",
        check: lib_unwrap,
    },
    Rule {
        id: "pub-undocumented",
        summary: "public items in core/graph/louvain need doc comments",
        contract: "hygiene (API documentation)",
        check: pub_undocumented,
    },
];

/// True when `id` names a source rule or one of the engine's meta rules.
pub fn known_rule(id: &str) -> bool {
    id == "suppression-hygiene" || id == "unused-suppression" || RULES.iter().any(|r| r.id == id)
}

// ---------------------------------------------------------------- helpers

fn is_ident_byte(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

/// Find `needle` in `hay` at an identifier boundary (both edges that are
/// identifier characters must not extend into surrounding identifiers).
/// Returns the byte offset of the first such occurrence at or after
/// `from`.
fn find_token_from(hay: &str, needle: &str, from: usize) -> Option<usize> {
    let bytes = hay.as_bytes();
    let mut start = from;
    while start <= hay.len() {
        let rel = hay.get(start..)?.find(needle)?;
        let at = start + rel;
        let end = at + needle.len();
        let head_is_ident = needle
            .as_bytes()
            .first()
            .copied()
            .is_some_and(is_ident_byte);
        let tail_is_ident = needle.as_bytes().last().copied().is_some_and(is_ident_byte);
        let before_ok = !head_is_ident || at == 0 || !is_ident_byte(bytes[at - 1]);
        let after_ok = !tail_is_ident || end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + 1;
    }
    None
}

fn find_token(hay: &str, needle: &str) -> Option<usize> {
    find_token_from(hay, needle, 0)
}

fn has_token(hay: &str, needle: &str) -> bool {
    find_token(hay, needle).is_some()
}

/// Iterate non-test code lines as (1-based line number, code).
fn code_lines<'a>(view: &'a FileView) -> impl Iterator<Item = (usize, &'a str)> + 'a {
    view.code
        .iter()
        .enumerate()
        .filter(|(i, _)| !view.in_test[*i])
        .map(|(i, l)| (i + 1, l.as_str()))
}

/// The identifier ending at byte offset `end` (exclusive), if any.
fn ident_ending_at(line: &str, end: usize) -> Option<&str> {
    let bytes = line.as_bytes();
    let mut start = end;
    while start > 0 && is_ident_byte(bytes[start - 1]) {
        start -= 1;
    }
    if start == end {
        None
    } else {
        line.get(start..end)
    }
}

/// The identifier starting at byte offset `start`, if any.
fn ident_starting_at(line: &str, start: usize) -> Option<&str> {
    let bytes = line.as_bytes();
    let mut end = start;
    while end < bytes.len() && is_ident_byte(bytes[end]) {
        end += 1;
    }
    if end == start {
        None
    } else {
        line.get(start..end)
    }
}

/// Path prefix test on the normalized repo-relative path.
fn in_scope(view: &FileView, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| view.path.starts_with(p))
}

// ------------------------------------------------------------------ rules

/// Crates whose modules are sweep/kernel code for D1 purposes: the whole
/// allocation stack. Ingestion-side crates (model, workload) and the
/// consensus substrate canonicalize by collect-and-sort, which is fine
/// anywhere; inside the kernel even that needs an explicit suppression so
/// the exception is auditable.
const KERNEL_PREFIXES: &[&str] = &[
    "crates/graph/src",
    "crates/louvain/src",
    "crates/metis/src",
    "crates/core/src",
];

/// Methods whose call on a hash container exposes traversal order.
const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".retain(",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
];

fn d1_hash_iteration(view: &FileView, out: &mut Vec<RawFinding>) {
    if !in_scope(view, KERNEL_PREFIXES) {
        return;
    }
    let symbols = hash_bound_symbols(view);
    if symbols.is_empty() {
        return;
    }
    for (lineno, code) in code_lines(view) {
        // `for pat in <expr>` where <expr> resolves to a hash binding.
        if let Some(name) = for_loop_target(code) {
            if symbols.contains(&name) && !declares_hash_binding(code, &name) {
                out.push((
                    lineno,
                    "D1-hash-iteration",
                    format!(
                        "`for` over hash container `{name}` — traversal order is not canonical \
                         (collect-and-sort outside the kernel, or use a dense/sorted structure)"
                    ),
                ));
                continue;
            }
        }
        for method in ITER_METHODS {
            let mut from = 0;
            while let Some(at) = find_token_from(code, method, from) {
                from = at + 1;
                let Some(recv) = ident_ending_at(code, at) else {
                    continue;
                };
                let recv = recv.to_owned();
                if symbols.contains(&recv) && !declares_hash_binding(code, &recv) {
                    out.push((
                        lineno,
                        "D1-hash-iteration",
                        format!(
                            "`{recv}{}` iterates a hash container — traversal order is not \
                             canonical (collect-and-sort outside the kernel, or use a \
                             dense/sorted structure)",
                            method.trim_end_matches('(')
                        ),
                    ));
                }
            }
        }
    }
}

/// Collect identifiers bound to hash-container types anywhere in the
/// file's non-test code: type annotations (`name: FxHashMap<...>`, struct
/// fields, fn/closure params) and constructor lets
/// (`let name = FxHashMap::default()`).
fn hash_bound_symbols(view: &FileView) -> std::collections::BTreeSet<String> {
    let mut symbols = std::collections::BTreeSet::new();
    for (_, code) in code_lines(view) {
        for ty in ["FxHashMap", "FxHashSet", "HashMap", "HashSet"] {
            let mut from = 0;
            while let Some(at) = find_token_from(code, ty, from) {
                from = at + 1;
                let ty_start = at;
                let after = at + ty.len();
                let bytes = code.as_bytes();
                if bytes.get(after) == Some(&b'<') {
                    // Annotation form: walk left over path segments, `&`,
                    // `mut`, whitespace to the `:` then the name.
                    if let Some(name) = annotated_name(code, ty_start) {
                        symbols.insert(name);
                    }
                } else if code[after..].starts_with("::") {
                    // Constructor form on a let line.
                    if let Some(name) = let_binding_name(code) {
                        symbols.insert(name);
                    }
                }
            }
        }
    }
    symbols
}

/// For `... name: [&][mut] [path::]Type` with `Type` starting at
/// `ty_start`, extract `name`.
fn annotated_name(code: &str, ty_start: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let mut i = ty_start;
    // Walk left over `path::` segments feeding the type.
    loop {
        while i > 0 && bytes[i - 1] == b' ' {
            i -= 1;
        }
        if i >= 2 && &code[i - 2..i] == "::" {
            i -= 2;
            let seg = ident_ending_at(code, i)?;
            i -= seg.len();
            continue;
        }
        break;
    }
    // Optional `&`, `&&`, `mut`.
    loop {
        while i > 0 && (bytes[i - 1] == b' ' || bytes[i - 1] == b'&') {
            i -= 1;
        }
        if code[..i].ends_with("mut") {
            i -= 3;
            continue;
        }
        break;
    }
    if i == 0 || bytes[i - 1] != b':' {
        return None;
    }
    i -= 1;
    while i > 0 && bytes[i - 1] == b' ' {
        i -= 1;
    }
    ident_ending_at(code, i).map(str::to_owned)
}

/// The `name` of a `let [mut] name` binding on this line, if any.
fn let_binding_name(code: &str) -> Option<String> {
    let at = find_token(code, "let")?;
    let mut i = at + 3;
    let bytes = code.as_bytes();
    while bytes.get(i) == Some(&b' ') {
        i += 1;
    }
    if code[i..].starts_with("mut ") {
        i += 4;
        while bytes.get(i) == Some(&b' ') {
            i += 1;
        }
    }
    ident_starting_at(code, i).map(str::to_owned)
}

/// True when this line `let`-binds `name` itself to a hash type — the
/// conversion-*into*-a-hash-container idiom
/// (`let set: FxHashSet<_> = set.into_iter().collect()`), which consumes
/// an ordered source and exposes no traversal order.
fn declares_hash_binding(code: &str, name: &str) -> bool {
    let Some(eq) = code.find('=') else {
        return false;
    };
    let lhs = &code[..eq];
    (lhs.contains("HashMap") || lhs.contains("HashSet"))
        && let_binding_name(lhs).as_deref() == Some(name)
}

/// For `for pat in <expr> {`, the trailing identifier of `<expr>` when the
/// expression is a plain (possibly `&`/`mut`/`self.`-prefixed) binding.
fn for_loop_target(code: &str) -> Option<String> {
    let f = find_token(code, "for")?;
    let in_at = find_token_from(code, "in", f + 3)?;
    let mut expr = code[in_at + 2..].trim();
    if let Some(stripped) = expr.strip_suffix('{') {
        expr = stripped.trim_end();
    }
    loop {
        if let Some(s) = expr.strip_prefix('&') {
            expr = s.trim_start();
            continue;
        }
        if let Some(s) = expr.strip_prefix("mut ") {
            expr = s.trim_start();
            continue;
        }
        if let Some(s) = expr.strip_prefix("self.") {
            expr = s;
            continue;
        }
        break;
    }
    if !expr.is_empty() && expr.bytes().all(is_ident_byte) {
        Some(expr.to_owned())
    } else {
        None
    }
}

/// The one sanctioned definition site for the tie-break tolerance.
const GAIN_EPS_HOME: &str = "crates/louvain/src/lib.rs";

fn d2_eps_literal(view: &FileView, out: &mut Vec<RawFinding>) {
    if view.path == GAIN_EPS_HOME {
        return;
    }
    for (lineno, code) in code_lines(view) {
        let bytes = code.as_bytes();
        for i in 0..bytes.len() {
            if bytes[i] != b'e' && bytes[i] != b'E' {
                continue;
            }
            // Numeric mantissa to the left ...
            if i == 0 || !(bytes[i - 1].is_ascii_digit() || bytes[i - 1] == b'.') {
                continue;
            }
            let mut m = i - 1;
            while m > 0 && (bytes[m - 1].is_ascii_digit() || bytes[m - 1] == b'.') {
                m -= 1;
            }
            if m > 0 && is_ident_byte(bytes[m - 1]) {
                continue; // part of an identifier like `x1e`, not a literal
            }
            // ... and `-NN` to the right.
            if bytes.get(i + 1) != Some(&b'-') {
                continue;
            }
            let mut j = i + 2;
            let mut exp: u32 = 0;
            while j < bytes.len() && bytes[j].is_ascii_digit() {
                exp = exp.saturating_mul(10) + u32::from(bytes[j] - b'0');
                j += 1;
            }
            if j == i + 2 {
                continue; // no digits after the minus
            }
            if exp >= 9 {
                out.push((
                    lineno,
                    "D2-eps-literal",
                    format!(
                        "ad-hoc epsilon literal `{}` — tie-break tolerances must be \
                         txallo_louvain::GAIN_EPS (D2); name any other tolerance as a \
                         documented const",
                        &code[m..j]
                    ),
                ));
            }
        }
    }
}

/// The one sanctioned home for thread spawning and work partitioning.
const PAR_HOME: &str = "crates/graph/src/par.rs";

const THREAD_TOKENS: &[&str] = &[
    "std::thread",
    "thread::spawn",
    "thread::scope",
    "available_parallelism",
    "Mutex<",
    "RwLock<",
    "Condvar",
    "mpsc::",
    "AtomicUsize",
    "AtomicU64",
    "AtomicU32",
    "AtomicI64",
    "AtomicI32",
    "AtomicBool",
];

fn d5_thread_spawn(view: &FileView, out: &mut Vec<RawFinding>) {
    if view.path == PAR_HOME {
        return;
    }
    for (lineno, code) in code_lines(view) {
        for tok in THREAD_TOKENS {
            if has_token(code, tok) {
                out.push((
                    lineno,
                    "D5-thread-spawn",
                    format!(
                        "`{}` outside txallo_graph::par — worker partitioning and \
                         cross-thread state live only in the par layer (D5); shared \
                         mutation and cross-chunk float folds are forbidden in workers",
                        tok.trim_end_matches('<')
                    ),
                ));
                break; // one finding per line is enough
            }
        }
    }
}

/// Identifier fragments marking a value as per-chunk/per-worker output of
/// a parallel phase — the inputs whose fold order would depend on the
/// chunk shape if combined with floats outside the canonical tree.
const PARTIAL_FRAGMENTS: &[&str] = &[
    "partial", "partials", "chunk", "chunks", "chunked", "worker", "workers", "stage", "stages",
    "shard", "shards",
];

/// Iterator adapters that fold a stream into one value.
const REDUCER_TOKENS: &[&str] = &[".sum(", ".sum::<", ".product(", ".product::<", ".fold("];

fn d5_adhoc_reduction(view: &FileView, out: &mut Vec<RawFinding>) {
    if !in_scope(view, KERNEL_PREFIXES) || view.path == PAR_HOME {
        return;
    }
    for (lineno, code) in code_lines(view) {
        let Some(reducer) = REDUCER_TOKENS.iter().find(|t| code.contains(*t)) else {
            continue;
        };
        // Assemble the full statement. Reducers end dotted chains, so the
        // receiver is usually on an *earlier* line: walk back to the
        // statement head first, then forward to the `;`.
        let mut start = lineno - 1;
        while start > 0 && lineno - start < 11 {
            let prev = view.code[start - 1].trim_end();
            if view.in_test[start - 1]
                || prev.is_empty()
                || prev.ends_with(';')
                || prev.ends_with('{')
                || prev.ends_with('}')
            {
                break;
            }
            start -= 1;
        }
        let mut stmt = String::new();
        let mut i = start;
        loop {
            if view.in_test[i] {
                break;
            }
            stmt.push_str(&view.code[i]);
            stmt.push(' ');
            if view.code[i].contains(';') || i + 1 >= view.len() || i >= lineno + 11 {
                break;
            }
            i += 1;
        }
        if stmt.contains("reduce_tree") {
            continue; // the sanctioned combiner itself
        }
        let floaty = ["f64", "f32"].iter().any(|t| has_token(&stmt, t)) || stmt.contains("0.0");
        if !floaty {
            continue; // integer folds are exact in any order
        }
        let over_partials = stmt
            .split(|c: char| !(c == '_' || c.is_ascii_alphanumeric()))
            .any(|word| {
                word.split('_')
                    .any(|seg| PARTIAL_FRAGMENTS.contains(&seg.to_ascii_lowercase().as_str()))
            });
        if over_partials {
            out.push((
                lineno,
                "D5-adhoc-reduction",
                format!(
                    "float `{}..)` over per-chunk partials — a cross-chunk float fold's \
                     bits depend on the chunk shape; combine through \
                     txallo_graph::par::reduce_tree with an exact merge, or fold serially \
                     in canonical order in caller code (D5)",
                    reducer.trim_end_matches(['(', ':', '<'])
                ),
            ));
        }
    }
}

/// Measurement-side code where wall-clock reads are the point.
const CLOCK_EXEMPT: &[&str] = &["crates/bench/src", "crates/cli/src"];

fn no_wall_clock(view: &FileView, out: &mut Vec<RawFinding>) {
    if in_scope(view, CLOCK_EXEMPT) {
        return;
    }
    for (lineno, code) in code_lines(view) {
        for tok in ["SystemTime", "Instant"] {
            if has_token(code, tok) {
                out.push((
                    lineno,
                    "no-wall-clock",
                    format!(
                        "`{tok}` in library code — wall-clock state cannot feed any \
                         algorithm decision (replayability); measure in bench/CLI code only"
                    ),
                ));
                break;
            }
        }
    }
}

fn no_unstable_float_sort(view: &FileView, out: &mut Vec<RawFinding>) {
    for (lineno, code) in code_lines(view) {
        // Plain substring: `sort_unstable` must also match the `_by` and
        // `_by_key` variants (string contents are already blanked).
        if !code.contains("sort_unstable") {
            continue;
        }
        // Assemble the full statement (comparators often span lines).
        let mut stmt = String::new();
        let mut i = lineno - 1;
        loop {
            if view.in_test[i] {
                break;
            }
            stmt.push_str(&view.code[i]);
            stmt.push(' ');
            if view.code[i].contains(';') || i + 1 >= view.len() || i >= lineno + 11 {
                break;
            }
            i += 1;
        }
        let floaty = ["partial_cmp", "total_cmp", "f64", "f32"]
            .iter()
            .any(|t| has_token(&stmt, t));
        let tie_broken = stmt.contains(".then");
        if floaty && !tie_broken {
            out.push((
                lineno,
                "no-unstable-float-sort",
                "sort_unstable with a float comparator and no `.then(..)` integer \
                 tie-break — equal keys scramble, so the order is not reproducible \
                 across platforms/toolchains (the PR 5 Louvain aggregation bug)"
                    .to_owned(),
            ));
        }
    }
}

/// Identifier fragments that mark a value as an id/count on the checked-
/// constructor path.
const ID_FRAGMENTS: &[&str] = &[
    "id", "idx", "len", "count", "node", "nodes", "account", "accounts",
];

fn no_narrowing_as(view: &FileView, out: &mut Vec<RawFinding>) {
    for (lineno, code) in code_lines(view) {
        for target in [" as u8", " as u16", " as u32"] {
            let mut from = 0;
            while let Some(at) = find_token_from(code, target, from) {
                from = at + 1;
                // Source expression tail: `ident` or `ident()` before `as`.
                let mut end = at;
                let bytes = code.as_bytes();
                if end >= 2 && &code[end - 2..end] == "()" {
                    end -= 2;
                }
                while end > 0 && bytes[end - 1] == b' ' {
                    end -= 1;
                }
                let Some(ident) = ident_ending_at(code, end) else {
                    continue;
                };
                let lower = ident.to_ascii_lowercase();
                if lower.split('_').any(|seg| ID_FRAGMENTS.contains(&seg)) {
                    out.push((
                        lineno,
                        "no-narrowing-as",
                        format!(
                            "`{ident}{}` narrows silently — id/count paths use checked \
                             conversions (IdSpaceExhausted-style) or a documented \
                             invariant suppression",
                            target
                        ),
                    ));
                }
            }
        }
    }
}

/// The bench harness may panic freely: it is a measurement tool, not a
/// serving surface.
const UNWRAP_EXEMPT: &[&str] = &["crates/bench/src"];

fn lib_unwrap(view: &FileView, out: &mut Vec<RawFinding>) {
    if in_scope(view, UNWRAP_EXEMPT) {
        return;
    }
    for (lineno, code) in code_lines(view) {
        for tok in [".unwrap()", ".unwrap_err()", ".expect(", ".expect_err("] {
            if code.contains(tok) {
                out.push((
                    lineno,
                    "lib-unwrap",
                    format!(
                        "`{}` in non-test library code — return a typed error, or \
                         suppress with the invariant that makes this infallible",
                        tok.trim_end_matches('(')
                    ),
                ));
                break;
            }
        }
    }
}

/// Crates whose public API surface must be documented.
const DOC_SCOPE: &[&str] = &["crates/core/src", "crates/graph/src", "crates/louvain/src"];

const ITEM_KEYWORDS: &[&str] = &[
    "fn", "struct", "enum", "trait", "const", "static", "type", "mod", "union",
];

fn pub_undocumented(view: &FileView, out: &mut Vec<RawFinding>) {
    if !in_scope(view, DOC_SCOPE) {
        return;
    }
    for (lineno, code) in code_lines(view) {
        let t = code.trim_start();
        let Some(rest) = t.strip_prefix("pub ") else {
            continue; // `pub(crate)` etc. are internal, not API surface
        };
        let Some(kw) = rest.split_whitespace().next() else {
            continue;
        };
        let kw = kw.trim_end_matches('<'); // `pub fn f<...>` splits cleanly anyway
        if !ITEM_KEYWORDS.contains(&kw) {
            continue;
        }
        // `pub mod foo;` declares an out-of-line module whose docs are the
        // module file's own `//!` header; only inline `pub mod { .. }`
        // needs a doc comment at the declaration.
        if kw == "mod" && t.trim_end().ends_with(';') {
            continue;
        }
        // Walk upward past attributes to the doc position.
        let mut j = lineno - 1; // 0-based index of this line
        let documented = loop {
            if j == 0 {
                break false;
            }
            j -= 1;
            let above_code = view.code[j].trim();
            let above_raw = view.raw[j].trim_start();
            if above_raw.starts_with("///") || above_raw.starts_with("#[doc") {
                break true;
            }
            // Skip attribute lines (single- or multi-line closers).
            if above_code.starts_with("#[") || above_code == ")]" || above_code == "]" {
                continue;
            }
            break false;
        };
        if !documented {
            out.push((
                lineno,
                "pub-undocumented",
                format!(
                    "public `{kw}` without a doc comment — core/graph/louvain API \
                     surface is documented (rustdoc builds with -D warnings)"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_rule(rule_id: &str, path: &str, src: &str) -> Vec<RawFinding> {
        let view = FileView::scan(path, src);
        let mut out = Vec::new();
        for r in RULES {
            if r.id == rule_id {
                (r.check)(&view, &mut out);
            }
        }
        out
    }

    #[test]
    fn d1_flags_for_loop_over_map_in_kernel() {
        let src = "fn f() {\n    let mut gain: FxHashMap<u32, f64> = FxHashMap::default();\n    for (k, v) in &gain {\n    }\n}";
        let hits = run_rule("D1-hash-iteration", "crates/metis/src/x.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 3);
    }

    #[test]
    fn d1_allows_lookups_and_out_of_scope() {
        let src = "fn f(m: &FxHashMap<u32, f64>) -> Option<&f64> { m.get(&1) }";
        assert!(run_rule("D1-hash-iteration", "crates/core/src/x.rs", src).is_empty());
        let iter = "fn f() { let mut s: FxHashSet<u32> = FxHashSet::default(); for x in &s {} }";
        assert!(run_rule("D1-hash-iteration", "crates/chain/src/x.rs", iter).is_empty());
    }

    #[test]
    fn d1_skips_conversion_into_hash() {
        let src = "fn f(v: Vec<u32>) {\n    let masked: FxHashSet<u32> = masked.into_iter().collect();\n}";
        assert!(run_rule("D1-hash-iteration", "crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn d2_flags_small_literals_only() {
        let src = "const A: f64 = 1e-15;\nconst B: f64 = 1e-3;\nlet c = 2.5e-12;";
        let hits = run_rule("D2-eps-literal", "crates/core/src/x.rs", src);
        assert_eq!(hits.iter().map(|h| h.0).collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn d2_exempts_gain_eps_home() {
        let src = "pub const GAIN_EPS: f64 = 1e-15;";
        assert!(run_rule("D2-eps-literal", "crates/louvain/src/lib.rs", src).is_empty());
    }

    #[test]
    fn d5_flags_thread_outside_par() {
        let src = "fn f() { std::thread::scope(|s| {}); }";
        assert_eq!(
            run_rule("D5-thread-spawn", "crates/graph/src/csr.rs", src).len(),
            1
        );
        assert!(run_rule("D5-thread-spawn", "crates/graph/src/par.rs", src).is_empty());
    }

    #[test]
    fn adhoc_reduction_flags_float_folds_over_partials() {
        let bad = "let total: f64 = partials.iter().sum();";
        assert_eq!(
            run_rule("D5-adhoc-reduction", "crates/core/src/x.rs", bad).len(),
            1
        );
        let bad_fold = "let t = chunk_sums.iter().fold(0.0, |a, b| a + b);";
        assert_eq!(
            run_rule("D5-adhoc-reduction", "crates/louvain/src/x.rs", bad_fold).len(),
            1
        );
        let multiline = "let total = worker_gains\n    .iter()\n    .fold(0.0, |acc, g| acc + g);";
        assert_eq!(
            run_rule("D5-adhoc-reduction", "crates/metis/src/x.rs", multiline).len(),
            1
        );
    }

    #[test]
    fn adhoc_reduction_allows_sanctioned_and_exact_folds() {
        // Through the canonical tree: fine.
        let tree = "let total = reduce_tree(partials, |a, b| a + b);";
        assert!(run_rule("D5-adhoc-reduction", "crates/core/src/x.rs", tree).is_empty());
        // Integer folds are exact in any order.
        let ints = "let n: usize = chunk_counts.iter().sum();";
        assert!(run_rule("D5-adhoc-reduction", "crates/core/src/x.rs", ints).is_empty());
        // Float folds over non-chunk data are ordinary serial code.
        let serial = "let m: f64 = weights.iter().sum();";
        assert!(run_rule("D5-adhoc-reduction", "crates/core/src/x.rs", serial).is_empty());
        // Out of kernel scope, and the par layer itself.
        assert!(run_rule("D5-adhoc-reduction", "crates/chain/src/x.rs", bad()).is_empty());
        assert!(run_rule("D5-adhoc-reduction", "crates/graph/src/par.rs", bad()).is_empty());
    }

    fn bad() -> &'static str {
        "let total: f64 = partials.iter().sum();"
    }

    #[test]
    fn float_sort_needs_tiebreak() {
        let bad = "v.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());";
        assert_eq!(
            run_rule("no-unstable-float-sort", "crates/core/src/x.rs", bad).len(),
            1
        );
        let good = "v.sort_unstable_by(|&a, &b| w[a].partial_cmp(&w[b]).unwrap().then(a.cmp(&b)));";
        assert!(run_rule("no-unstable-float-sort", "crates/core/src/x.rs", good).is_empty());
        let ints = "v.sort_unstable();";
        assert!(run_rule("no-unstable-float-sort", "crates/core/src/x.rs", ints).is_empty());
    }

    #[test]
    fn narrowing_flags_id_paths_only() {
        let src = "let a = node_count() as u32;\nlet b = shards as u32;\nlet c = v.len() as u32;";
        let hits = run_rule("no-narrowing-as", "crates/core/src/x.rs", src);
        assert_eq!(hits.iter().map(|h| h.0).collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn unwrap_flagged_outside_bench_and_tests() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(run_rule("lib-unwrap", "crates/core/src/x.rs", src).len(), 1);
        assert!(run_rule("lib-unwrap", "crates/bench/src/x.rs", src).is_empty());
        let test_src = "#[cfg(test)]\nmod tests { fn f(x: Option<u32>) -> u32 { x.unwrap() } }";
        assert!(run_rule("lib-unwrap", "crates/core/src/x.rs", test_src).is_empty());
    }

    #[test]
    fn unwrap_or_is_not_flagged() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }";
        assert!(run_rule("lib-unwrap", "crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn pub_items_need_docs_in_scope() {
        let undoc = "pub fn f() {}";
        assert_eq!(
            run_rule("pub-undocumented", "crates/graph/src/x.rs", undoc).len(),
            1
        );
        let doc = "/// Does f.\npub fn f() {}";
        assert!(run_rule("pub-undocumented", "crates/graph/src/x.rs", doc).is_empty());
        let attr = "/// Doc.\n#[derive(Clone)]\npub struct S;";
        assert!(run_rule("pub-undocumented", "crates/graph/src/x.rs", attr).is_empty());
        let crate_vis = "pub(crate) fn f() {}";
        assert!(run_rule("pub-undocumented", "crates/graph/src/x.rs", crate_vis).is_empty());
        assert!(run_rule("pub-undocumented", "crates/sim/src/x.rs", undoc).is_empty());
    }
}
