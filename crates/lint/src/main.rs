//! CLI entry point: `cargo run -p txallo-lint --release -- --workspace`.
//!
//! Exit codes: 0 clean, 1 unsuppressed findings, 2 usage/io error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
txallo-lint — static determinism-contract checks for the txallo workspace

USAGE:
    txallo-lint [--workspace] [--root DIR] [--verbose] [--rules] [FILE...]

    --workspace   lint every crate under the workspace root (default when
                  no FILEs are given)
    --root DIR    workspace root (default: current directory)
    --verbose     also print suppressed findings with their reasons
    --rules       list the rule set and exit

Findings print as `file:line rule message`; the final stdout line is a
machine-readable JSON summary. Suppress a finding with a trailing (or
directly-preceding standalone) comment:

    // txallo-lint: allow(rule-id) — reason (mandatory)
";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut verbose = false;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => {}
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root needs a directory\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--verbose" => verbose = true,
            "--rules" => {
                for rule in txallo_lint::rules::RULES {
                    println!("{:24} [{}] {}", rule.id, rule.contract, rule.summary);
                }
                println!("{:24} [meta] suppressions need a known rule id and a written reason (not suppressible)", "suppression-hygiene");
                println!("{:24} [meta] suppressions that match no finding are flagged (self-exempt by listing this rule)", "unused-suppression");
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
            file => files.push(file.to_owned()),
        }
    }

    let report = if files.is_empty() {
        match txallo_lint::run_workspace(&root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("txallo-lint: workspace walk failed: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let mut findings = Vec::new();
        let count = files.len();
        for f in &files {
            let source = match std::fs::read_to_string(f) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("txallo-lint: cannot read {f}: {e}");
                    return ExitCode::from(2);
                }
            };
            findings.extend(txallo_lint::analyze(&f.replace('\\', "/"), &source));
        }
        txallo_lint::Report {
            findings,
            files: count,
        }
    };

    for f in &report.findings {
        match &f.suppressed {
            None => println!("{}:{} {} {}", f.file, f.line, f.rule, f.message),
            Some(reason) if verbose => {
                println!("{}:{} {} suppressed — {}", f.file, f.line, f.rule, reason);
            }
            Some(_) => {}
        }
    }
    println!("{}", report.json_summary());
    if report.active_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
