//! `txallo-lint` — workspace static analyzer for the determinism contract.
//!
//! The paper (§IV-A) requires every validator to reproduce the allocation
//! bit-for-bit; ARCHITECTURE.md §Determinism contract encodes that as five
//! rules (D1–D5). The golden/proptest suites enforce the contract
//! *dynamically* — they can only catch a violation once a workload trips
//! it. This crate enforces it *statically*: a dependency-free, hand-rolled
//! source scanner (no `syn`; the build is offline with vendored stubs
//! only) walks every workspace crate and rejects nondeterminism-shaped
//! code before it can compile into a bug.
//!
//! See [`rules::RULES`] for the rule set and
//! `ARCHITECTURE.md §Running the linter` for the suppression syntax.
//! Findings print as `file:line rule message`; the run exits nonzero on
//! any unsuppressed finding, and the final stdout line is a
//! machine-readable JSON summary.

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]

pub mod rules;
pub mod scan;
pub mod suppress;

use scan::FileView;
use std::path::{Path, PathBuf};

/// One lint finding, after suppression matching.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Repo-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Stable rule id.
    pub rule: String,
    /// Human-readable explanation.
    pub message: String,
    /// The suppression reason when an `allow` comment silenced this.
    pub suppressed: Option<String>,
}

impl Finding {
    /// True when this finding counts against the exit code.
    pub fn is_active(&self) -> bool {
        self.suppressed.is_none()
    }
}

/// Analyze one file's source. `path` must be repo-relative with forward
/// slashes — rule scoping is path-based.
pub fn analyze(path: &str, source: &str) -> Vec<Finding> {
    let view = FileView::scan(path, source);
    let mut raw: Vec<rules::RawFinding> = Vec::new();
    for rule in rules::RULES {
        (rule.check)(&view, &mut raw);
    }
    let mut sups = suppress::parse(&view);

    let mut findings: Vec<Finding> = Vec::new();
    for (line, rule, message) in raw {
        let mut suppressed = None;
        for s in sups.iter_mut() {
            if s.applies_to == line
                && s.reason.len() >= suppress::MIN_REASON
                && s.rules.iter().any(|r| r == rule)
            {
                s.used = true;
                suppressed = Some(s.reason.clone());
                break;
            }
        }
        findings.push(Finding {
            file: path.to_owned(),
            line,
            rule: rule.to_owned(),
            message,
            suppressed,
        });
    }

    // Meta rule: suppression hygiene. These findings are not themselves
    // suppressible — a suppression that cannot explain itself is exactly
    // the audit failure the rule exists to catch.
    for s in &sups {
        if s.rules.is_empty() {
            findings.push(Finding {
                file: path.to_owned(),
                line: s.line,
                rule: "suppression-hygiene".to_owned(),
                message: "malformed suppression: no rule ids inside allow(...)".to_owned(),
                suppressed: None,
            });
            continue;
        }
        for r in &s.rules {
            if !rules::known_rule(r) {
                findings.push(Finding {
                    file: path.to_owned(),
                    line: s.line,
                    rule: "suppression-hygiene".to_owned(),
                    message: format!("suppression names unknown rule `{r}`"),
                    suppressed: None,
                });
            }
        }
        if s.reason.len() < suppress::MIN_REASON {
            findings.push(Finding {
                file: path.to_owned(),
                line: s.line,
                rule: "suppression-hygiene".to_owned(),
                message: format!(
                    "suppression without a written reason (need >= {} chars after the \
                     closing paren) — reasons are mandatory so exceptions stay auditable",
                    suppress::MIN_REASON
                ),
                suppressed: None,
            });
        }
    }

    // Meta rule: unused suppressions. A suppression may exempt itself by
    // listing `unused-suppression` among its own rules (for annotations
    // kept deliberately, e.g. guarding a cfg'd-out path).
    for s in &sups {
        let well_formed = !s.rules.is_empty()
            && s.reason.len() >= suppress::MIN_REASON
            && s.rules.iter().all(|r| rules::known_rule(r));
        let self_exempt = s.rules.iter().any(|r| r == "unused-suppression");
        if well_formed && !s.used && !self_exempt {
            findings.push(Finding {
                file: path.to_owned(),
                line: s.line,
                rule: "unused-suppression".to_owned(),
                message: format!(
                    "suppression for {} matched no finding — remove it (stale \
                     annotations hide real regressions)",
                    s.rules.join(", ")
                ),
                suppressed: None,
            });
        }
    }

    findings.sort_by(|a, b| (a.line, a.rule.as_str()).cmp(&(b.line, b.rule.as_str())));
    findings
}

/// Directory names never descended into during the workspace walk:
/// vendored stubs mirror external APIs, and test/bench/example/fixture
/// code is outside the contract's scope (the `#[cfg(test)]` mask handles
/// in-file test mods).
const SKIP_DIRS: &[&str] = &[
    "target", "vendor", "tests", "benches", "examples", "fixtures", ".git",
];

/// Collect every lintable `.rs` file under `root`, sorted, as
/// (repo-relative path, absolute path).
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    for top in ["crates", "src"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, root, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<(String, PathBuf)>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(&path, root, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((rel, path));
        }
    }
    Ok(())
}

/// Aggregate result of a workspace run.
pub struct Report {
    /// All findings across all files, active and suppressed.
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files: usize,
}

impl Report {
    /// Findings that count against the exit code.
    pub fn active(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.is_active())
    }

    /// Number of active (unsuppressed) findings.
    pub fn active_count(&self) -> usize {
        self.active().count()
    }

    /// Number of suppressed findings.
    pub fn suppressed_count(&self) -> usize {
        self.findings.len() - self.active_count()
    }

    /// The machine-readable one-line JSON summary.
    pub fn json_summary(&self) -> String {
        let mut per_rule: std::collections::BTreeMap<&str, usize> =
            std::collections::BTreeMap::new();
        for f in self.active() {
            *per_rule.entry(f.rule.as_str()).or_insert(0) += 1;
        }
        let rules: Vec<String> = per_rule
            .iter()
            .map(|(r, n)| format!("\"{r}\":{n}"))
            .collect();
        format!(
            "{{\"files\":{},\"active\":{},\"suppressed\":{},\"rules\":{{{}}}}}",
            self.files,
            self.active_count(),
            self.suppressed_count(),
            rules.join(",")
        )
    }
}

/// Run the linter over the workspace rooted at `root`.
pub fn run_workspace(root: &Path) -> std::io::Result<Report> {
    let files = workspace_files(root)?;
    let mut findings = Vec::new();
    let count = files.len();
    for (rel, abs) in files {
        let source = std::fs::read_to_string(&abs)?;
        findings.extend(analyze(&rel, &source));
    }
    Ok(Report {
        findings,
        files: count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppressed_finding_is_inactive_and_counted() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // txallo-lint: allow(lib-unwrap) — caller validated x above\n}";
        let findings = analyze("crates/core/src/x.rs", src);
        assert_eq!(findings.len(), 1);
        assert!(!findings[0].is_active());
        assert_eq!(
            findings[0].suppressed.as_deref(),
            Some("caller validated x above")
        );
    }

    #[test]
    fn suppression_without_reason_is_a_finding() {
        let src =
            "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // txallo-lint: allow(lib-unwrap)\n}";
        let findings = analyze("crates/core/src/x.rs", src);
        // The unwrap stays active AND the bare suppression is flagged.
        assert!(findings
            .iter()
            .any(|f| f.rule == "lib-unwrap" && f.is_active()));
        assert!(findings
            .iter()
            .any(|f| f.rule == "suppression-hygiene" && f.is_active()));
    }

    #[test]
    fn unknown_rule_in_suppression_is_a_finding() {
        let src = "fn f() {} // txallo-lint: allow(no-such-rule) — some long reason here";
        let findings = analyze("crates/core/src/x.rs", src);
        assert!(findings.iter().any(|f| f.rule == "suppression-hygiene"));
    }

    #[test]
    fn unused_suppression_is_a_finding_unless_self_exempt() {
        let src = "fn f() {} // txallo-lint: allow(lib-unwrap) — nothing here unwraps";
        let findings = analyze("crates/core/src/x.rs", src);
        assert!(findings.iter().any(|f| f.rule == "unused-suppression"));
        let exempt =
            "fn f() {} // txallo-lint: allow(lib-unwrap, unused-suppression) — kept for the cfg'd path";
        let findings = analyze("crates/core/src/x.rs", exempt);
        assert!(!findings.iter().any(|f| f.rule == "unused-suppression"));
    }

    #[test]
    fn hygiene_findings_are_not_suppressible() {
        // A reasonless suppression cannot be silenced by naming the meta
        // rule — the hygiene finding must survive.
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // txallo-lint: allow(lib-unwrap, suppression-hygiene)\n}";
        let findings = analyze("crates/core/src/x.rs", src);
        assert!(findings
            .iter()
            .any(|f| f.rule == "suppression-hygiene" && f.is_active()));
    }

    #[test]
    fn standalone_suppression_covers_the_next_line() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // txallo-lint: allow(lib-unwrap) — caller validated x above\n    x.unwrap()\n}";
        let findings = analyze("crates/core/src/x.rs", src);
        assert_eq!(findings.len(), 1);
        assert!(!findings[0].is_active());
    }
}
