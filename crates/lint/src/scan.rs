//! Line-level source model for the lint rules.
//!
//! The scanner is deliberately *not* a Rust parser: the workspace builds
//! offline with vendored stubs only, so the linter is hand-rolled at the
//! token level (no `syn`). It produces, per source line:
//!
//! * `code` — the line with comments removed and string-literal *contents*
//!   blanked (quotes kept), so rule patterns never match inside strings or
//!   comments;
//! * `comment` — the concatenated comment text of the line, which is where
//!   `txallo-lint: allow(...)` suppressions live;
//! * `in_test` — whether the line sits inside a `#[cfg(test)]` item
//!   (tracked by brace depth on the stripped code), since the determinism
//!   contract governs shipped library code, not test scaffolding.
//!
//! Char literals, lifetimes, raw strings (`r#"..."#`) and nested block
//! comments are handled well enough for this workspace's idioms; the goal
//! is zero false positives on real code, not a grammar.

/// One scanned source file, ready for rule checks.
pub struct FileView {
    /// Repo-relative path with forward slashes (used for scope decisions).
    pub path: String,
    /// Raw source lines, 0-indexed (findings report 1-based lines).
    pub raw: Vec<String>,
    /// Comment-free, string-blanked code per line.
    pub code: Vec<String>,
    /// Comment text per line (both `//` and `/* */` parts).
    pub comment: Vec<String>,
    /// True for lines inside a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Code,
    LineComment,
    /// Nested depth of `/* */` comments.
    Block(u32),
    Str,
    /// Raw string, closing delimiter is `"` followed by this many `#`.
    RawStr(u32),
}

impl FileView {
    /// Scan `source` into per-line code/comment channels.
    pub fn scan(path: &str, source: &str) -> FileView {
        let raw: Vec<String> = source.lines().map(str::to_owned).collect();
        let mut code: Vec<String> = Vec::with_capacity(raw.len());
        let mut comment: Vec<String> = Vec::with_capacity(raw.len());
        let mut mode = Mode::Code;
        for line in &raw {
            let (c, m, next) = scan_line(line, mode);
            code.push(c);
            comment.push(m);
            mode = match next {
                // Line comments never span lines.
                Mode::LineComment => Mode::Code,
                other => other,
            };
        }
        let in_test = test_mask(&code);
        FileView {
            path: path.to_owned(),
            raw,
            code,
            comment,
            in_test,
        }
    }

    /// Number of lines in the file.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// True when the file has no lines at all.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }
}

/// Scan one line starting in `mode`; returns (code, comment, end mode).
fn scan_line(line: &str, start: Mode) -> (String, String, Mode) {
    let b: Vec<char> = line.chars().collect();
    let mut code = String::with_capacity(line.len());
    let mut comment = String::new();
    let mut mode = start;
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        match mode {
            Mode::Code => {
                if c == '/' && b.get(i + 1) == Some(&'/') {
                    mode = Mode::LineComment;
                    i += 2;
                    continue;
                }
                if c == '/' && b.get(i + 1) == Some(&'*') {
                    mode = Mode::Block(1);
                    i += 2;
                    continue;
                }
                if c == '"' {
                    // Raw string? Look back for r / r# / br## prefixes.
                    let hashes = raw_prefix_hashes(&code);
                    if let Some(h) = hashes {
                        mode = Mode::RawStr(h);
                    } else {
                        mode = Mode::Str;
                    }
                    code.push('"');
                    i += 1;
                    continue;
                }
                if c == '\'' {
                    // Char literal vs lifetime: a literal is 'x', '\..', or
                    // '\u{..}'; a lifetime has no closing quote nearby.
                    if b.get(i + 1) == Some(&'\\') {
                        // Escaped char literal: consume to the closing quote.
                        code.push('\'');
                        i += 2;
                        while i < b.len() && b[i] != '\'' {
                            i += 1;
                        }
                        code.push('\'');
                        i += 1;
                        continue;
                    }
                    if b.get(i + 2) == Some(&'\'') {
                        // Plain 'x' literal; blank the payload.
                        code.push('\'');
                        code.push(' ');
                        code.push('\'');
                        i += 3;
                        continue;
                    }
                    // Lifetime: keep the tick, scan on.
                    code.push('\'');
                    i += 1;
                    continue;
                }
                code.push(c);
                i += 1;
            }
            Mode::LineComment => {
                comment.push(c);
                i += 1;
            }
            Mode::Block(depth) => {
                if c == '*' && b.get(i + 1) == Some(&'/') {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::Block(depth - 1)
                    };
                    i += 2;
                    continue;
                }
                if c == '/' && b.get(i + 1) == Some(&'*') {
                    mode = Mode::Block(depth + 1);
                    i += 2;
                    continue;
                }
                comment.push(c);
                i += 1;
            }
            Mode::Str => {
                if c == '\\' {
                    i += 2; // skip the escaped char (may be a quote)
                    continue;
                }
                if c == '"' {
                    code.push('"');
                    mode = Mode::Code;
                }
                i += 1;
            }
            Mode::RawStr(h) => {
                if c == '"' {
                    let mut k = 0u32;
                    while k < h && b.get(i + 1 + k as usize) == Some(&'#') {
                        k += 1;
                    }
                    if k == h {
                        code.push('"');
                        mode = Mode::Code;
                        i += 1 + h as usize;
                        continue;
                    }
                }
                i += 1;
            }
        }
    }
    // A string continuing past the newline keeps its mode (multi-line
    // string literal); same for block comments.
    (code, comment, mode)
}

/// If the code emitted so far ends with a raw-string prefix (`r`, `r#`,
/// `br##`, ...), return the hash count; else None.
fn raw_prefix_hashes(code: &str) -> Option<u32> {
    let t = code.as_bytes();
    let mut i = t.len();
    let mut hashes = 0u32;
    while i > 0 && t[i - 1] == b'#' {
        hashes += 1;
        i -= 1;
    }
    if i == 0 {
        return None;
    }
    let r_at = i - 1;
    if t[r_at] != b'r' {
        return None;
    }
    // `r` must start the prefix: preceded by non-ident (or `b` preceded by
    // non-ident for byte raw strings).
    let before = if r_at == 0 { None } else { Some(t[r_at - 1]) };
    let ident_before =
        |c: Option<u8>| matches!(c, Some(x) if x == b'_' || x.is_ascii_alphanumeric());
    match before {
        Some(b'b') => {
            let bb = if r_at >= 2 { Some(t[r_at - 2]) } else { None };
            if ident_before(bb) {
                None
            } else {
                Some(hashes)
            }
        }
        c if ident_before(c) => None,
        _ => Some(hashes),
    }
}

/// Mark lines inside `#[cfg(test)]` items via brace-depth tracking on the
/// stripped code. Handles both braced items (`mod tests { ... }`) and
/// braceless ones (an attributed `use`), plus extra attributes between the
/// cfg and the item.
fn test_mask(code: &[String]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    let mut depth: i64 = 0;
    let mut in_test = false;
    let mut test_depth: i64 = 0;
    let mut pending = false;
    for (i, line) in code.iter().enumerate() {
        if !in_test && line.contains("#[cfg(test)]") {
            pending = true;
            mask[i] = true;
            continue;
        }
        if pending {
            mask[i] = true;
        }
        let opens = line.matches('{').count() as i64;
        let closes = line.matches('}').count() as i64;
        if pending && opens > 0 {
            in_test = true;
            test_depth = depth;
            pending = false;
        } else if pending && line.contains(';') {
            // Braceless attributed item (e.g. `use`): ends here.
            pending = false;
        }
        depth += opens - closes;
        if in_test {
            mask[i] = true;
            if depth <= test_depth {
                in_test = false;
            }
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let v = FileView::scan(
            "x.rs",
            "let a = \"sort_unstable\"; // sort_unstable\nlet b = 1;",
        );
        assert!(!v.code[0].contains("sort_unstable"));
        assert!(v.comment[0].contains("sort_unstable"));
        assert_eq!(v.code[1], "let b = 1;");
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let v = FileView::scan(
            "x.rs",
            "fn f<'a>(x: &'a str) { let q = '\"'; let n = '\\n'; }",
        );
        // The quote inside the char literal must not open a string.
        assert!(v.code[0].contains("fn f<'a>"));
        assert!(!v.code[0].contains("\\n"));
    }

    #[test]
    fn raw_strings_close_on_matching_hashes() {
        let v = FileView::scan("x.rs", "let s = r#\"a \" b\"#; let t = 2;");
        assert!(v.code[0].contains("let t = 2;"));
        assert!(!v.code[0].contains("a \" b"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let v = FileView::scan("x.rs", "a /* x /* y */ z */ b\n/* open\nstill */ after");
        assert_eq!(v.code[0].replace(' ', ""), "ab");
        assert_eq!(v.code[1], "");
        assert!(v.code[2].contains("after"));
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn tail() {}";
        let v = FileView::scan("x.rs", src);
        assert_eq!(v.in_test, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_test_braceless_item_is_masked() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn lib() {}";
        let v = FileView::scan("x.rs", src);
        assert_eq!(v.in_test, vec![true, true, false]);
    }
}
