//! `txallo-lint: allow(rule-id) — reason` suppression comments.
//!
//! Suppressions are explicit and auditable: every one names the rule(s) it
//! silences and carries a mandatory written reason. Two placements are
//! recognized:
//!
//! * trailing, on the offending line itself;
//! * a standalone comment line directly **above** the offending line (for
//!   lines too long to carry the comment).
//!
//! A suppression with a missing or too-short reason, or naming an unknown
//! rule, is itself a finding (`suppression-hygiene`); one that matches no
//! finding is flagged `unused-suppression` so stale annotations cannot
//! accumulate.

use crate::scan::FileView;

/// The marker that introduces a suppression inside a comment.
pub const MARKER: &str = "txallo-lint: allow(";

/// Minimum number of characters for a suppression reason to count.
pub const MIN_REASON: usize = 8;

/// One parsed suppression comment.
pub struct Suppression {
    /// 1-based line the comment sits on.
    pub line: usize,
    /// 1-based line findings must be on for this suppression to match
    /// (same line for trailing comments, next line for standalone ones).
    pub applies_to: usize,
    /// Rule ids named inside `allow(...)`, comma-separated.
    pub rules: Vec<String>,
    /// Reason text after the closing paren (separators stripped).
    pub reason: String,
    /// Set when any finding was silenced by this suppression.
    pub used: bool,
}

/// Parse every suppression comment in the file.
///
/// Standalone comments (no code on the line) apply to the line directly
/// below; trailing comments apply to their own line.
pub fn parse(view: &FileView) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (idx, comment) in view.comment.iter().enumerate() {
        let Some(pos) = comment.find(MARKER) else {
            continue;
        };
        // Doc comments describe the syntax; only regular comments suppress.
        let raw = view.raw[idx].trim_start();
        if raw.starts_with("///") || raw.starts_with("//!") {
            continue;
        }
        let after = &comment[pos + MARKER.len()..];
        let Some(close) = after.find(')') else {
            // Malformed (no closing paren): record as an empty-rule
            // suppression; hygiene reporting flags it.
            out.push(Suppression {
                line: idx + 1,
                applies_to: target_line(view, idx),
                rules: Vec::new(),
                reason: String::new(),
                used: false,
            });
            continue;
        };
        let rules: Vec<String> = after[..close]
            .split(',')
            .map(|r| r.trim().to_owned())
            .filter(|r| !r.is_empty())
            .collect();
        let reason = after[close + 1..]
            .trim_start_matches(|c: char| {
                c.is_whitespace() || c == '\u{2014}' || c == '-' || c == ':'
            })
            .trim()
            .to_owned();
        out.push(Suppression {
            line: idx + 1,
            applies_to: target_line(view, idx),
            rules,
            reason,
            used: false,
        });
    }
    out
}

/// The 1-based line a suppression at 0-based `idx` governs.
fn target_line(view: &FileView, idx: usize) -> usize {
    if view.code[idx].trim().is_empty() {
        idx + 2 // standalone comment: the line below
    } else {
        idx + 1 // trailing comment: this line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(src: &str) -> FileView {
        FileView::scan("crates/core/src/x.rs", src)
    }

    #[test]
    fn trailing_suppression_applies_to_its_own_line() {
        let v = view("let x = m.unwrap(); // txallo-lint: allow(lib-unwrap) — checked above");
        let s = parse(&v);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].applies_to, 1);
        assert_eq!(s[0].rules, vec!["lib-unwrap"]);
        assert_eq!(s[0].reason, "checked above");
    }

    #[test]
    fn standalone_suppression_applies_to_next_line() {
        let v =
            view("// txallo-lint: allow(no-narrowing-as) — bounded by id space\nlet y = n as u32;");
        let s = parse(&v);
        assert_eq!(s[0].applies_to, 2);
    }

    #[test]
    fn multiple_rules_and_ascii_dash() {
        let v = view(
            "x(); // txallo-lint: allow(lib-unwrap, no-wall-clock) - measured outside the kernel",
        );
        let s = parse(&v);
        assert_eq!(s[0].rules, vec!["lib-unwrap", "no-wall-clock"]);
        assert_eq!(s[0].reason, "measured outside the kernel");
    }

    #[test]
    fn missing_reason_is_empty() {
        let v = view("x(); // txallo-lint: allow(lib-unwrap)");
        let s = parse(&v);
        assert!(s[0].reason.is_empty());
    }
}
