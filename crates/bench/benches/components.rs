//! Criterion benchmarks of the pipeline components: graph construction,
//! Louvain initialization, the G-TxAllo optimization phase and a single
//! A-TxAllo epoch update. These decompose the Fig. 10 running-time story
//! (the paper: init 67.6 s of G-TxAllo's 122.3 s; A-TxAllo 0.55 s).
//!
//! Run with `cargo bench -p txallo-bench --bench components`.

use criterion::{criterion_group, criterion_main, Criterion};

use txallo_core::{AtxAllo, GTxAllo, TxAlloParams};
use txallo_graph::TxGraph;
use txallo_louvain::{louvain, LouvainConfig};
use txallo_workload::{EthereumLikeGenerator, WorkloadConfig};

fn workload() -> WorkloadConfig {
    WorkloadConfig {
        accounts: 5_000,
        transactions: 40_000,
        block_size: 100,
        groups: 80,
        ..WorkloadConfig::default()
    }
}

fn bench_components(_: &mut Criterion) {
    // Heavier-than-micro benchmarks: cap sampling so the suite stays fast.
    let mut c = Criterion::default().sample_size(10).configure_from_args();
    let c = &mut c;
    let mut generator = EthereumLikeGenerator::new(workload(), 42);
    let ledger = generator.default_ledger();
    let graph = TxGraph::from_ledger(&ledger);
    let k = 20;
    let params = TxAlloParams::for_graph(&graph, k);

    c.bench_function("graph/from_ledger", |b| {
        b.iter(|| TxGraph::from_ledger(&ledger));
    });

    c.bench_function("louvain/full", |b| {
        b.iter(|| louvain(&graph, &LouvainConfig::default()));
    });

    let init = louvain(&graph, &LouvainConfig::default());
    let order = graph.nodes_in_canonical_order();
    c.bench_function("gtxallo/optimize_only", |b| {
        let gtx = GTxAllo::new(params.clone());
        b.iter(|| gtx.allocate_with_init(&graph, &init, &order));
    });

    c.bench_function("gtxallo/end_to_end", |b| {
        let gtx = GTxAllo::new(params.clone());
        b.iter(|| gtx.allocate_graph(&graph));
    });

    // A-TxAllo: one epoch of fresh blocks on top of the warm allocation.
    let prev = GTxAllo::new(params).allocate_graph(&graph);
    let mut graph2 = graph.clone();
    let new_blocks = generator.blocks(10);
    let mut touched = Vec::new();
    for b in &new_blocks {
        touched.extend(graph2.ingest_block(b));
    }
    touched.sort_unstable();
    touched.dedup();
    let params2 = TxAlloParams::for_graph(&graph2, k);
    c.bench_function("atxallo/epoch_update", |b| {
        let atx = AtxAllo::new(params2.clone());
        b.iter(|| atx.update(&graph2, &prev, &touched));
    });
}

criterion_group!(benches, bench_components);
criterion_main!(benches);
