//! Criterion benchmarks of the pipeline components: graph construction,
//! Louvain initialization, the G-TxAllo optimization phase and a single
//! A-TxAllo epoch update. These decompose the Fig. 10 running-time story
//! (the paper: init 67.6 s of G-TxAllo's 122.3 s; A-TxAllo 0.55 s).
//!
//! The `gather/*` pair isolates the per-node link-weight gathering that
//! dominates every sweep: `gather/hashmap` is the seed implementation
//! (fresh `FxHashMap` + copy + sort per node), `gather/dense` is the CSR +
//! dense-scratch hot path that replaced it. The `gain/*` pair does the
//! same for the per-candidate gain evaluation (`gain/eval_seed` is the
//! pre-cache formula path: σ/Λ̂ recomputed from `intra`/`cut` plus two
//! Eq. 3 evaluations per candidate; `gain/eval` is the cached fast path),
//! and `csr/*` for the snapshot build (`csr/build_seed` is the edge-list
//! extraction + per-row sort; `csr/build` the counting-sort rewrite). The
//! `scale/*` group repeats the build benchmarks on a 50k-account /
//! 400k-transaction workload, where the §VI-B6 init cost actually bites.
//!
//! Run with `cargo bench -p txallo-bench --bench components`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use txallo_bench::seed_ref::{
    gain_sweep_fast, gain_sweep_seed, seed_atxallo_update, seed_csr_from_graph, seed_delta_rows,
    SeedDeltaRows, SeedTxGraph,
};
use txallo_core::{
    AdaptiveStream, AtxAllo, AtxAlloSession, CommunityState, EpochKind, GTxAllo, GTxAlloPlan,
    MoveScratch, StreamingAllocator, TxAlloParams,
};
use txallo_graph::{CsrGraph, NodeId, TxGraph, WeightedGraph};
use txallo_louvain::{
    aggregate_graph_threaded, louvain, louvain_csr, AggregateScratch, LouvainConfig,
};
use txallo_metis::{metis_partition, MetisConfig};
use txallo_model::{Block, FxHashMap};
use txallo_workload::{EthereumLikeGenerator, WorkloadConfig};

fn workload() -> WorkloadConfig {
    WorkloadConfig {
        accounts: 5_000,
        transactions: 40_000,
        block_size: 100,
        groups: 80,
        ..WorkloadConfig::default()
    }
}

/// Seed-style gather: hash every neighbor's community into a fresh map,
/// copy the entries out and sort them — what the sweeps did before the
/// dense-scratch refactor. Returns a checksum so the work cannot be
/// optimized away.
fn gather_sweep_hashmap(graph: &CsrGraph, labels: &[u32]) -> f64 {
    let mut link: FxHashMap<u32, f64> = FxHashMap::default();
    let mut checksum = 0.0;
    for v in 0..graph.node_count() as NodeId {
        link.clear();
        graph.for_each_neighbor(v, |u, w| {
            *link.entry(labels[u as usize]).or_insert(0.0) += w;
        });
        let mut candidates: Vec<(u32, f64)> = link.iter().map(|(&c, &w)| (c, w)).collect();
        candidates.sort_unstable_by_key(|&(c, _)| c);
        if let Some(&(_, w)) = candidates.first() {
            checksum += w;
        }
    }
    checksum
}

/// Dense-scratch gather via `CommunityState::gather_links` — the
/// production hot path.
fn gather_sweep_dense(
    graph: &CsrGraph,
    labels: &[u32],
    state: &CommunityState,
    scratch: &mut MoveScratch,
) -> f64 {
    let mut checksum = 0.0;
    for v in 0..graph.node_count() as NodeId {
        state.gather_links(graph, labels, v, scratch);
        if let Some((_, w)) = scratch.candidates().next() {
            checksum += w;
        }
    }
    checksum
}

fn bench_components(_: &mut Criterion) {
    // Heavier-than-micro benchmarks: cap sampling so the suite stays fast.
    let mut c = Criterion::default().sample_size(10).configure_from_args();
    let c = &mut c;
    let mut generator = EthereumLikeGenerator::new(workload(), 42);
    let ledger = generator.default_ledger();
    let graph = TxGraph::from_ledger(&ledger);
    let k = 20;
    let params = TxAlloParams::for_graph(&graph, k);

    // Ingestion: the sorted-run slab adjacency (rows CSR-shaped by
    // construction, one interner lookup per account) vs the preserved
    // hash-map adjacency (per-pair hash probes + per-pair interning).
    // `ingest/ledger` is the measurement previously named
    // `graph/from_ledger`, moved into the group that pairs it with its
    // same-run seed baseline.
    c.bench_function("ingest/ledger", |b| {
        b.iter(|| black_box(TxGraph::from_ledger(&ledger)));
    });
    c.bench_function("ingest/ledger_seed", |b| {
        b.iter(|| black_box(SeedTxGraph::from_ledger(&ledger)));
    });

    // The snapshot build (previously named `graph/csr_snapshot`), radix
    // counting-sort vs the preserved edge-list path — same-run ratio for
    // the §VI-B6 init-cost lead.
    c.bench_function("csr/build", |b| {
        b.iter(|| CsrGraph::from_graph(&graph));
    });
    c.bench_function("csr/build_seed", |b| {
        b.iter(|| seed_csr_from_graph(&graph));
    });

    c.bench_function("louvain/full", |b| {
        b.iter(|| louvain(&graph, &LouvainConfig::default()));
    });

    let csr = CsrGraph::from_graph(&graph);
    c.bench_function("louvain/csr", |b| {
        b.iter(|| louvain_csr(&csr, &LouvainConfig::default()));
    });

    // The optimization phase as production runs it: sweeps over the shared
    // renumbered CSR snapshot (the plan is built once in
    // `allocate_detailed`, outside this timer).
    let init = louvain_csr(&csr, &LouvainConfig::default());
    let plan = GTxAlloPlan::new(&graph, &LouvainConfig::default());
    c.bench_function("gtxallo/optimize_only", |b| {
        let gtx = GTxAllo::new(params.clone());
        b.iter(|| gtx.allocate_planned(&plan));
    });

    c.bench_function("gtxallo/end_to_end", |b| {
        let gtx = GTxAllo::new(params.clone());
        b.iter(|| gtx.allocate_graph(&graph));
    });

    // Link-gathering micro-benchmark: one full sweep over every node.
    let labels = init.communities.clone();
    let state = CommunityState::from_labels(
        &csr,
        &labels,
        init.community_count,
        params.eta,
        params.capacity,
    );
    c.bench_function("gather/hashmap", |b| {
        b.iter(|| black_box(gather_sweep_hashmap(&csr, &labels)));
    });
    c.bench_function("gather/dense", |b| {
        let mut scratch = MoveScratch::default();
        b.iter(|| black_box(gather_sweep_dense(&csr, &labels, &state, &mut scratch)));
    });

    // A-TxAllo: one epoch of fresh blocks on top of the warm allocation.
    let prev = GTxAllo::new(params.clone()).allocate_graph(&graph);

    // Per-candidate gain evaluation over the *converged k-shard state*
    // (communities hover around σ ≈ λ there, so both regimes are hit —
    // the Louvain init state would be almost entirely uncapped): cached
    // fast path vs pre-cache formula recompute, bit-identical results.
    let kstate = CommunityState::from_labels(&csr, prev.labels(), k, params.eta, params.capacity);
    c.bench_function("gain/eval", |b| {
        let mut scratch = MoveScratch::default();
        b.iter(|| black_box(gain_sweep_fast(&csr, prev.labels(), &kstate, &mut scratch)));
    });
    c.bench_function("gain/eval_seed", |b| {
        let mut scratch = MoveScratch::default();
        b.iter(|| black_box(gain_sweep_seed(&csr, prev.labels(), &kstate, &mut scratch)));
    });
    let mut graph2 = graph.clone();
    let new_blocks = generator.blocks(10);
    let mut touched = Vec::new();
    for b in &new_blocks {
        touched.extend(graph2.ingest_block(b));
    }
    touched.sort_unstable();
    touched.dedup();
    let params2 = TxAlloParams::for_graph(&graph2, k);

    // Snapshot assembly over the epoch's touched set: straight run copies
    // out of the sorted-run adjacency vs the seed per-row hash gather +
    // packed-key sort (bit-identical outputs, pinned in `seed_ref` tests).
    let mut seed_graph2 = SeedTxGraph::from_ledger(&ledger);
    for b in &new_blocks {
        seed_graph2.ingest_block(b);
    }
    c.bench_function("snapshot/touched", |b| {
        let mut snap = txallo_graph::DeltaCsr::default();
        b.iter(|| {
            snap.refill_touched(&graph2, &touched);
            black_box(snap.len())
        });
    });
    c.bench_function("snapshot/touched_seed", |b| {
        let mut rows = SeedDeltaRows::default();
        b.iter(|| {
            seed_delta_rows(&seed_graph2, &touched, &mut rows);
            black_box(rows.node.len())
        });
    });

    // The serving configuration (what the simulator runs): a warm
    // `AtxAlloSession` carries the community aggregates across epochs, so
    // the epoch pays delta folding + the delta-CSR sweep only. The session
    // is opened on the pre-epoch graph and cloned per iteration (the clone
    // is a ~20 KB memcpy, three orders of magnitude below the update).
    let warm = AtxAlloSession::new(&graph, &prev, &params2);
    c.bench_function("atxallo/epoch_update", |b| {
        b.iter(|| {
            let mut session = warm.clone();
            for blk in &new_blocks {
                session.apply_block(&graph2, blk);
            }
            black_box(session.update(&graph2, &touched, &params2))
        });
    });
    // The public serving surface: the same warm session driven through the
    // `StreamingAllocator` API — measures what the service layer adds on
    // top of the raw session (touched-set collection + move-diffing).
    let stream_warm = {
        let mut stream = AdaptiveStream::new(params2.clone());
        stream.begin(&graph, &params2);
        stream
    };
    c.bench_function("atxallo/epoch_update_stream", |b| {
        b.iter(|| {
            let mut stream = stream_warm.clone();
            for blk in &new_blocks {
                stream.on_block(&graph2, blk);
            }
            black_box(stream.end_epoch(&graph2, EpochKind::Scheduled))
        });
    });
    // The stateless one-shot paths, both snapshot routes pinned: delta-CSR
    // over V̂'s neighborhood vs. the full-graph CSR fallback. These rebuild
    // the community aggregates from the whole graph every call.
    c.bench_function("atxallo/epoch_update_incremental", |b| {
        let atx = AtxAllo::new(params2.clone());
        b.iter(|| atx.update_incremental(&graph2, &prev, &touched));
    });
    c.bench_function("atxallo/epoch_update_full", |b| {
        let atx = AtxAllo::new(params2.clone());
        b.iter(|| atx.update_full(&graph2, &prev, &touched));
    });
    // The seed implementation preserved as a same-run baseline (the
    // `gather/hashmap` of this refactor).
    c.bench_function("atxallo/epoch_update_seed", |b| {
        b.iter(|| black_box(seed_atxallo_update(&params2, &graph2, &prev, &touched)));
    });

    // The multi-core sweep engine: the same warm epoch update and the
    // Louvain initialization at 1, 2 and 4 workers. Outputs are pinned
    // bit-identical at every count (the `parallel_invariance` suite), so
    // these only measure scaling — on a single-core runner the curve is
    // flat by construction but still worth recording.
    //
    // The three canonical-reduction paths ride the same matrix: Louvain
    // aggregation over the init labels, the full METIS partition (heavy-
    // edge matching + FM refinement are the threaded phases inside), and
    // big-block epoch ingestion through the warm session's clique-
    // expansion fold. The ingest blocks are deliberately oversized
    // (~5 000 transactions each) so the work crosses the canonical chunk
    // quantum and the threaded fold genuinely splits.
    let mut agg_scratch = AggregateScratch::default();
    let big_nodes = {
        let mut ingest_graph = graph2.clone();
        let extra = generator.blocks(100);
        let mut txs: Vec<_> = extra
            .iter()
            .flat_map(|b| b.transactions().iter().cloned())
            .collect();
        let tail = txs.split_off(txs.len() / 2);
        [Block::new(1_000, txs), Block::new(1_001, tail)]
            .iter()
            .map(|blk| ingest_graph.ingest_block_nodes(blk))
            .collect::<Vec<_>>()
    };
    for threads in [1usize, 2, 4] {
        let params_t = params2.clone().with_threads(threads);
        c.bench_function(&format!("sweep/threads/epoch_t{threads}"), |b| {
            b.iter(|| {
                let mut session = warm.clone();
                for blk in &new_blocks {
                    session.apply_block(&graph2, blk);
                }
                black_box(session.update(&graph2, &touched, &params_t))
            });
        });
        c.bench_function(&format!("sweep/threads/louvain_t{threads}"), |b| {
            b.iter(|| louvain_csr(&csr, &LouvainConfig::default().with_threads(threads)));
        });
        c.bench_function(&format!("louvain/aggregate_threads/t{threads}"), |b| {
            b.iter(|| {
                black_box(aggregate_graph_threaded(
                    &csr,
                    &init.communities,
                    init.community_count,
                    &mut agg_scratch,
                    threads,
                ))
            });
        });
        c.bench_function(&format!("metis/refine_threads/t{threads}"), |b| {
            let cfg = MetisConfig::new(k).with_threads(threads);
            b.iter(|| black_box(metis_partition(&csr, &cfg)));
        });
        c.bench_function(&format!("ingest/threads/t{threads}"), |b| {
            b.iter(|| {
                let mut session = warm.clone();
                for nodes in &big_nodes {
                    session.apply_block_nodes_threaded(nodes, threads);
                }
                black_box(session)
            });
        });
    }
}

/// The 50k-account / 400k-transaction scale workload: the graph is big
/// enough that the CSR build's counting sort (and its chunked parallel
/// fill) dominate differently than at 5k/40k, which is where the §VI-B6
/// init-cost claim lives.
fn bench_scale(_: &mut Criterion) {
    let mut c = Criterion::default().sample_size(5).configure_from_args();
    let c = &mut c;
    let cfg = WorkloadConfig {
        accounts: 50_000,
        transactions: 400_000,
        block_size: 200,
        groups: 800,
        ..WorkloadConfig::default()
    };
    let mut generator = EthereumLikeGenerator::new(cfg, 42);
    let graph = TxGraph::from_ledger(&generator.default_ledger());

    c.bench_function("scale/csr_build_50k", |b| {
        b.iter(|| CsrGraph::from_graph(&graph));
    });
    c.bench_function("scale/csr_build_50k_seed", |b| {
        b.iter(|| seed_csr_from_graph(&graph));
    });
    // The plan's renumbered snapshot — the CSR share of G-TxAllo's init.
    let order = graph.nodes_in_canonical_order();
    let mut new_id = vec![0 as NodeId; order.len()];
    for (i, &v) in order.iter().enumerate() {
        new_id[v as usize] = i as NodeId;
    }
    c.bench_function("scale/plan_csr_50k", |b| {
        b.iter(|| CsrGraph::from_graph_relabeled(&graph, &new_id));
    });
    c.bench_function("scale/gtxallo_end_to_end_50k", |b| {
        let gtx = GTxAllo::new(TxAlloParams::for_graph(&graph, 40));
        b.iter(|| gtx.allocate_graph(&graph));
    });
}

criterion_group!(benches, bench_components, bench_scale);
criterion_main!(benches);
