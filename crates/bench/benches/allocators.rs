//! Criterion benchmarks of the four allocators (the paper's Fig. 8 /
//! §VI-B6 running-time comparison, at benchmark-friendly scale).
//!
//! Run with `cargo bench -p txallo-bench --bench allocators`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use txallo_bench::{build_dataset, run_allocator, AllocatorKind, ExperimentScale};

fn bench_allocators(c: &mut Criterion) {
    // ~30k transactions: enough structure for realistic behaviour, small
    // enough for Criterion's repeated sampling.
    let scale = ExperimentScale {
        factor: 0.15,
        seed: 42,
    };
    let dataset = build_dataset(scale);
    let eta = 2.0;

    let mut group = c.benchmark_group("allocators");
    group.sample_size(10);
    for k in [10usize, 20, 60] {
        for kind in [
            AllocatorKind::TxAllo,
            AllocatorKind::Random,
            AllocatorKind::Metis,
            AllocatorKind::Scheduler,
        ] {
            group.bench_with_input(BenchmarkId::new(format!("{kind}"), k), &k, |b, &k| {
                b.iter(|| run_allocator(kind, &dataset, k, eta, None));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_allocators);
criterion_main!(benches);
