//! The seed (pre-delta-CSR) A-TxAllo epoch update, preserved verbatim as a
//! measurable baseline — the same role `gather/hashmap` plays for the
//! G-TxAllo sweep refactor. Benchmarks pin `atxallo/epoch_update_seed`
//! against it so every snapshot records a same-machine, same-run speedup
//! instead of comparing medians across machine states.
//!
//! Implementation notes: gathers candidate links over the mutable hash
//! adjacency via `CommunityState::gather_links`, re-gathers every node in
//! every sweep, and re-derives the community aggregates from the whole
//! graph per update — exactly the code A-TxAllo ran before the delta-CSR
//! epoch pipeline.

use txallo_core::state::UNASSIGNED;
use txallo_core::{Allocation, CommunityState, MoveScratch, TxAlloParams, GAIN_EPS};
use txallo_graph::{NodeId, TxGraph, WeightedGraph};

/// One adaptive epoch update, seed implementation. Returns the updated
/// label vector.
pub fn seed_atxallo_update(
    params: &TxAlloParams,
    graph: &TxGraph,
    previous: &Allocation,
    touched: &[NodeId],
) -> Vec<u32> {
    let n = graph.node_count();
    let k = params.shards;
    let mut labels: Vec<u32> = Vec::with_capacity(n);
    labels.extend_from_slice(previous.labels());
    labels.resize(n, UNASSIGNED);
    let mut state = CommunityState::from_labels(graph, &labels, k, params.eta, params.capacity);
    let mut scratch = MoveScratch::default();
    let mut order: Vec<NodeId> = touched.to_vec();
    order.sort_unstable_by_key(|&v| {
        let a = graph.account(v);
        (a.address_hash(), a.0)
    });

    // Phase 1: place brand-new nodes.
    for &v in &order {
        if labels[v as usize] != UNASSIGNED {
            continue;
        }
        state.gather_links(graph, &labels, v, &mut scratch);
        let self_w = graph.self_loop(v);
        let d_v = graph.incident_weight(v);
        let mut best: Option<(u32, f64, f64)> = None;
        let mut max_gain = f64::NEG_INFINITY;
        let consider = |q: u32,
                        w_vq: f64,
                        best: &mut Option<(u32, f64, f64)>,
                        max_gain: &mut f64,
                        state: &CommunityState| {
            let gain = state.join_gain(q, self_w, d_v, w_vq);
            let sigma = state.sigma(q);
            if gain > *max_gain {
                *max_gain = gain;
            }
            let better = match *best {
                None => true,
                Some((_, bg, bs)) => {
                    bg < *max_gain - GAIN_EPS || (gain >= *max_gain - GAIN_EPS && sigma < bs)
                }
            };
            if better {
                *best = Some((q, gain, sigma));
            }
        };
        if scratch.is_empty() {
            for q in 0..k as u32 {
                consider(q, 0.0, &mut best, &mut max_gain, &state);
            }
        } else {
            for (q, w_vq) in scratch.candidates() {
                consider(q, w_vq, &mut best, &mut max_gain, &state);
            }
        }
        let q = best.expect("k >= 1").0;
        let w_vq = scratch.weight_to(q);
        state.apply_join(q, self_w, d_v, w_vq);
        labels[v as usize] = q;
    }

    // Phase 2: optimize over V̂, full re-gather every sweep.
    let mut sweeps = 0usize;
    loop {
        let mut delta = 0.0;
        for &v in &order {
            let p = labels[v as usize];
            state.gather_links(graph, &labels, v, &mut scratch);
            if scratch.is_empty() || scratch.only_touches(p) {
                continue;
            }
            let self_w = graph.self_loop(v);
            let d_v = graph.incident_weight(v);
            let w_vp = scratch.weight_to(p);
            let leave = state.leave_gain(p, self_w, d_v, w_vp);
            let mut best: Option<(u32, f64, f64)> = None;
            for (q, w_vq) in scratch.candidates() {
                if q == p {
                    continue;
                }
                let gain = leave + state.join_gain(q, self_w, d_v, w_vq);
                match best {
                    Some((_, bg, _)) if gain <= bg + GAIN_EPS => {}
                    _ => best = Some((q, gain, w_vq)),
                }
            }
            if let Some((q, gain, w_vq)) = best {
                if gain > 0.0 {
                    state.apply_leave(p, self_w, d_v, w_vp);
                    state.apply_join(q, self_w, d_v, w_vq);
                    labels[v as usize] = q;
                    delta += gain;
                }
            }
        }
        sweeps += 1;
        if delta < params.epsilon || sweeps >= params.max_sweeps {
            break;
        }
    }

    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use txallo_core::{AtxAllo, GTxAllo};
    use txallo_model::{AccountId, Block, Transaction};

    /// The seed baseline must still produce a *semantically* equivalent
    /// update (same clusters), keeping the benchmark comparison honest.
    #[test]
    fn seed_reference_still_behaves() {
        let mut g = TxGraph::new();
        for base in [0u64, 10] {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    g.ingest_transaction(&Transaction::transfer(
                        AccountId(base + i),
                        AccountId(base + j),
                    ));
                }
            }
        }
        let params = TxAlloParams::for_graph(&g, 2);
        let prev = GTxAllo::new(params.clone()).allocate_graph(&g);
        let block = Block::new(
            0,
            vec![
                Transaction::transfer(AccountId(100), AccountId(0)),
                Transaction::transfer(AccountId(100), AccountId(1)),
            ],
        );
        let touched = g.ingest_block(&block);
        let seed = seed_atxallo_update(&params, &g, &prev, &touched);
        let new = AtxAllo::new(params).update(&g, &prev, &touched);
        let n100 = g.node_of(AccountId(100)).unwrap() as usize;
        let n0 = g.node_of(AccountId(0)).unwrap() as usize;
        assert_eq!(seed[n100], seed[n0], "seed places 100 with cluster 0");
        assert_eq!(
            new.allocation.labels()[n100],
            seed[n100],
            "both implementations agree on the placement"
        );
    }
}
