//! The seed (pre-delta-CSR) A-TxAllo epoch update, preserved verbatim as a
//! measurable baseline — the same role `gather/hashmap` plays for the
//! G-TxAllo sweep refactor. Benchmarks pin `atxallo/epoch_update_seed`
//! against it so every snapshot records a same-machine, same-run speedup
//! instead of comparing medians across machine states.
//!
//! Implementation notes: gathers candidate links over the mutable hash
//! adjacency via `CommunityState::gather_links`, re-gathers every node in
//! every sweep, and re-derives the community aggregates from the whole
//! graph per update — exactly the code A-TxAllo ran before the delta-CSR
//! epoch pipeline.
//!
//! [`seed_csr_from_graph`] preserves the pre-radix `CsrGraph` snapshot
//! path the same way (edge-list extraction + per-row sort/merge build),
//! so `csr/build` benchmarks record a same-run ratio for the counting-sort
//! rewrite.

use txallo_core::state::UNASSIGNED;
use txallo_core::{Allocation, CommunityState, MoveScratch, TxAlloParams, GAIN_EPS};
use txallo_graph::{CsrGraph, NodeId, TxGraph, WeightedGraph};
use txallo_model::{AccountId, Block, FxHashMap, FxHashSet, Ledger, Transaction};

/// The seed (pre-sorted-run) mutable transaction graph, preserved verbatim
/// as a measurable ingestion baseline: per-node `FxHashMap` adjacency,
/// per-pair `O(1)` hash accumulation, interner lookups per clique pair —
/// exactly the representation `TxGraph` carried before the slab store.
/// `ingest/ledger_seed` and `snapshot/touched_seed` pin the same-run
/// ratios of the sorted-run rewrite against this.
#[derive(Debug, Clone, Default)]
pub struct SeedTxGraph {
    to_node: FxHashMap<AccountId, NodeId>,
    accounts: Vec<AccountId>,
    adjacency: Vec<FxHashMap<NodeId, f64>>,
    self_loops: Vec<f64>,
    incident: Vec<f64>,
    total_weight: f64,
}

impl SeedTxGraph {
    /// Builds the graph of an entire ledger (the seed ingestion loop).
    pub fn from_ledger(ledger: &Ledger) -> Self {
        let mut g = Self::default();
        for block in ledger.blocks() {
            for tx in block.transactions() {
                g.ingest_transaction(tx);
            }
        }
        g
    }

    fn ensure_node(&mut self, account: AccountId) -> NodeId {
        if let Some(&n) = self.to_node.get(&account) {
            return n;
        }
        let n = self.accounts.len() as NodeId;
        self.to_node.insert(account, n);
        self.accounts.push(account);
        self.adjacency.push(FxHashMap::default());
        self.self_loops.push(0.0);
        self.incident.push(0.0);
        n
    }

    /// Seed `add_weight`: re-interns both accounts per clique pair, hash
    /// probes both directions.
    fn add_weight(&mut self, a: AccountId, b: AccountId, w: f64) {
        let na = self.ensure_node(a);
        let nb = self.ensure_node(b);
        self.total_weight += w;
        if na == nb {
            self.self_loops[na as usize] += w;
            self.incident[na as usize] += w;
            return;
        }
        *self.adjacency[na as usize].entry(nb).or_insert(0.0) += w;
        *self.adjacency[nb as usize].entry(na).or_insert(0.0) += w;
        self.incident[na as usize] += w;
        self.incident[nb as usize] += w;
    }

    /// Seed `ingest_transaction` (interns per pair, like the original).
    pub fn ingest_transaction(&mut self, tx: &Transaction) -> Vec<NodeId> {
        let set = tx.account_set();
        let mut touched = Vec::with_capacity(set.len());
        if set.len() == 1 {
            let n = self.ensure_node(set[0]);
            self.self_loops[n as usize] += 1.0;
            self.incident[n as usize] += 1.0;
            self.total_weight += 1.0;
            touched.push(n);
            return touched;
        }
        let w = 1.0 / (set.len() * (set.len() - 1) / 2) as f64;
        for &acct in &set {
            touched.push(self.ensure_node(acct));
        }
        for i in 0..set.len() {
            for j in (i + 1)..set.len() {
                self.add_weight(set[i], set[j], w);
            }
        }
        touched
    }

    /// Seed `ingest_block`: hash-set dedup plus a sort of the touched ids.
    pub fn ingest_block(&mut self, block: &Block) -> Vec<NodeId> {
        let mut touched: FxHashSet<NodeId> = FxHashSet::default();
        for tx in block.transactions() {
            for n in self.ingest_transaction(tx) {
                touched.insert(n);
            }
        }
        let mut v: Vec<NodeId> = touched.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Total accumulated weight (sanity hook for the benches).
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }
}

/// The assembled rows of a seed delta snapshot (see [`seed_delta_rows`]).
#[derive(Debug, Clone, Default)]
pub struct SeedDeltaRows {
    /// Touched nodes, canonical sweep order.
    pub node: Vec<NodeId>,
    /// Row boundaries over `targets`/`weights`.
    pub offsets: Vec<u32>,
    /// Global neighbor ids, ascending per row.
    pub targets: Vec<NodeId>,
    /// Weights parallel to `targets`.
    pub weights: Vec<f64>,
    /// Per-row self-loop and incident scalars.
    pub self_loops: Vec<f64>,
    pub incident: Vec<f64>,
}

/// The seed `DeltaCsr::snapshot_touched` row assembly, preserved verbatim:
/// canonical-order the touched set, then per row gather the *hash*
/// adjacency into a staging buffer and sort packed `target << 32 | slot`
/// keys — the per-row hash-iteration + sort the sorted-run adjacency
/// eliminated (`snapshot/touched` vs `snapshot/touched_seed`).
pub fn seed_delta_rows(graph: &SeedTxGraph, touched: &[NodeId], out: &mut SeedDeltaRows) {
    let mut keyed: Vec<((u64, u64), NodeId)> = touched
        .iter()
        .map(|&v| {
            let a = graph.accounts[v as usize];
            ((a.address_hash(), a.0), v)
        })
        .collect();
    keyed.sort_unstable();
    out.node.clear();
    out.node.extend(keyed.iter().map(|&(_, v)| v));
    let t = out.node.len();
    out.offsets.clear();
    out.offsets.push(0);
    out.targets.clear();
    out.weights.clear();
    out.self_loops.clear();
    out.incident.clear();
    let mut raw: Vec<(NodeId, f64)> = Vec::new();
    let mut keys: Vec<u64> = Vec::new();
    for i in 0..t {
        let v = out.node[i];
        raw.clear();
        keys.clear();
        for (&u, &w) in &graph.adjacency[v as usize] {
            keys.push(((u as u64) << 32) | raw.len() as u64);
            raw.push((u, w));
        }
        keys.sort_unstable();
        let self_w = graph.self_loops[v as usize];
        let mut row_sum = 0.0;
        for &key in keys.iter() {
            let (u, w) = raw[(key & u32::MAX as u64) as usize];
            out.targets.push(u);
            out.weights.push(w);
            row_sum += w;
        }
        // txallo-lint: allow(no-narrowing-as) — seed-era reference implementation preserved verbatim for the regression harness; the delta path it mirrors uses the checked fit_u32
        out.offsets.push(out.targets.len() as u32);
        out.self_loops.push(self_w);
        out.incident.push(self_w + row_sum);
    }
}

/// The pre-radix `CsrGraph::from_graph`: extract every positive self-loop
/// and each unordered edge once into an edge list, then run the
/// duplicate-merging edge-list constructor (scatter + per-row comparison
/// sort + merge). Kept verbatim as the same-run baseline for the
/// counting-sort snapshot build.
pub fn seed_csr_from_graph(g: &impl WeightedGraph) -> CsrGraph {
    let n = g.node_count();
    let mut edges: Vec<(NodeId, NodeId, f64)> = Vec::new();
    for v in 0..n as NodeId {
        let loop_w = g.self_loop(v);
        if loop_w > 0.0 {
            edges.push((v, v, loop_w));
        }
        g.for_each_neighbor(v, |u, w| {
            if v < u {
                edges.push((v, u, w));
            }
        });
    }
    CsrGraph::from_edges(n, edges)
}

/// One full node sweep of move-gain evaluations through the production
/// entry points (cached σ/Λ̂/regime): the Eq. 6/8 inner loop as the sweep
/// kernels run it. Returns a gain checksum so nothing is optimized away.
pub fn gain_sweep_fast(
    graph: &CsrGraph,
    labels: &[u32],
    state: &CommunityState,
    scratch: &mut MoveScratch,
) -> f64 {
    let mut checksum = 0.0;
    for v in 0..graph.node_count() as NodeId {
        state.gather_links(graph, labels, v, scratch);
        let p = labels[v as usize];
        let (self_w, d_v) = (graph.self_loop(v), graph.incident_weight(v));
        let leave = state.leave_gain(p, self_w, d_v, scratch.weight_to(p));
        for (q, w_vq) in scratch.candidates() {
            if q != p {
                checksum += leave + state.join_gain(q, self_w, d_v, w_vq);
            }
        }
    }
    checksum
}

/// The same sweep through the pre-cache formula path: σ_c/Λ̂_c recomputed
/// from `intra`/`cut` on every evaluation and both sides of the gain going
/// through Eq. 3 (two `capped_throughput` calls — two divisions in the
/// saturated regime — per candidate). Bit-identical results; this is the
/// per-candidate cost the σ/Λ̂/regime caches removed.
pub fn gain_sweep_seed(
    graph: &CsrGraph,
    labels: &[u32],
    state: &CommunityState,
    scratch: &mut MoveScratch,
) -> f64 {
    let mut checksum = 0.0;
    for v in 0..graph.node_count() as NodeId {
        state.gather_links(graph, labels, v, scratch);
        let p = labels[v as usize];
        let (self_w, d_v) = (graph.self_loop(v), graph.incident_weight(v));
        let leave = seed_leave_gain(state, p, self_w, d_v, scratch.weight_to(p));
        for (q, w_vq) in scratch.candidates() {
            if q != p {
                checksum += leave + seed_join_gain(state, q, self_w, d_v, w_vq);
            }
        }
    }
    checksum
}

/// Seed-era gain evaluation: the pre-cache `CommunityState` derived `σ_c`
/// and `Λ̂_c` from `intra`/`cut` inside every gain call and ran both sides
/// of the difference through Eq. 3. The serving path now reads cached
/// scalars instead; the seed baseline must keep paying the original cost
/// (values are bit-identical either way — golden-tested — so only the
/// timing differs).
fn seed_scalars(state: &CommunityState, c: u32) -> (f64, f64, f64) {
    use txallo_core::state::capped_throughput;
    let sigma = state.intra(c) + state.eta() * state.cut(c);
    let hat = state.intra(c) + state.cut(c) / 2.0;
    (sigma, hat, capped_throughput(sigma, hat, state.capacity()))
}

fn seed_join_gain(state: &CommunityState, q: u32, self_w: f64, d_v: f64, w_vq: f64) -> f64 {
    use txallo_core::state::capped_throughput;
    let eta = state.eta();
    let (sigma, hat, thr) = seed_scalars(state, q);
    let sigma_new = sigma + self_w + eta * (d_v - self_w - w_vq) + (1.0 - eta) * w_vq;
    let hat_new = hat + self_w + (d_v - self_w) / 2.0;
    capped_throughput(sigma_new, hat_new, state.capacity()) - thr
}

fn seed_leave_gain(state: &CommunityState, p: u32, self_w: f64, d_v: f64, w_vp: f64) -> f64 {
    use txallo_core::state::capped_throughput;
    let eta = state.eta();
    let (sigma, hat, thr) = seed_scalars(state, p);
    let sigma_new = sigma - self_w - eta * (d_v - self_w - w_vp) + (eta - 1.0) * w_vp;
    let hat_new = hat - self_w - (d_v - self_w) / 2.0;
    capped_throughput(sigma_new, hat_new, state.capacity()) - thr
}

/// One adaptive epoch update, seed implementation. Returns the updated
/// label vector.
pub fn seed_atxallo_update(
    params: &TxAlloParams,
    graph: &TxGraph,
    previous: &Allocation,
    touched: &[NodeId],
) -> Vec<u32> {
    let n = graph.node_count();
    let k = params.shards;
    let mut labels: Vec<u32> = Vec::with_capacity(n);
    labels.extend_from_slice(previous.labels());
    labels.resize(n, UNASSIGNED);
    let mut state = CommunityState::from_labels(graph, &labels, k, params.eta, params.capacity);
    let mut scratch = MoveScratch::default();
    let mut order: Vec<NodeId> = touched.to_vec();
    order.sort_unstable_by_key(|&v| {
        let a = graph.account(v);
        (a.address_hash(), a.0)
    });

    // Phase 1: place brand-new nodes.
    for &v in &order {
        if labels[v as usize] != UNASSIGNED {
            continue;
        }
        state.gather_links(graph, &labels, v, &mut scratch);
        let self_w = graph.self_loop(v);
        let d_v = graph.incident_weight(v);
        let mut best: Option<(u32, f64, f64)> = None;
        let mut max_gain = f64::NEG_INFINITY;
        let consider = |q: u32,
                        w_vq: f64,
                        best: &mut Option<(u32, f64, f64)>,
                        max_gain: &mut f64,
                        state: &CommunityState| {
            let gain = seed_join_gain(state, q, self_w, d_v, w_vq);
            let sigma = seed_scalars(state, q).0;
            if gain > *max_gain {
                *max_gain = gain;
            }
            let better = match *best {
                None => true,
                Some((_, bg, bs)) => {
                    bg < *max_gain - GAIN_EPS || (gain >= *max_gain - GAIN_EPS && sigma < bs)
                }
            };
            if better {
                *best = Some((q, gain, sigma));
            }
        };
        if scratch.is_empty() {
            for q in 0..k as u32 {
                consider(q, 0.0, &mut best, &mut max_gain, &state);
            }
        } else {
            for (q, w_vq) in scratch.candidates() {
                consider(q, w_vq, &mut best, &mut max_gain, &state);
            }
        }
        let q = best.expect("k >= 1").0;
        let w_vq = scratch.weight_to(q);
        state.apply_join(q, self_w, d_v, w_vq);
        labels[v as usize] = q;
    }

    // Phase 2: optimize over V̂, full re-gather every sweep.
    let mut sweeps = 0usize;
    loop {
        let mut delta = 0.0;
        for &v in &order {
            let p = labels[v as usize];
            state.gather_links(graph, &labels, v, &mut scratch);
            if scratch.is_empty() || scratch.only_touches(p) {
                continue;
            }
            let self_w = graph.self_loop(v);
            let d_v = graph.incident_weight(v);
            let w_vp = scratch.weight_to(p);
            let leave = seed_leave_gain(&state, p, self_w, d_v, w_vp);
            let mut best: Option<(u32, f64, f64)> = None;
            for (q, w_vq) in scratch.candidates() {
                if q == p {
                    continue;
                }
                let gain = leave + seed_join_gain(&state, q, self_w, d_v, w_vq);
                match best {
                    Some((_, bg, _)) if gain <= bg + GAIN_EPS => {}
                    _ => best = Some((q, gain, w_vq)),
                }
            }
            if let Some((q, gain, w_vq)) = best {
                if gain > 0.0 {
                    state.apply_leave(p, self_w, d_v, w_vp);
                    state.apply_join(q, self_w, d_v, w_vq);
                    labels[v as usize] = q;
                    delta += gain;
                }
            }
        }
        sweeps += 1;
        if delta < params.epsilon || sweeps >= params.max_sweeps {
            break;
        }
    }

    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use txallo_core::{AtxAllo, GTxAllo};
    use txallo_model::{AccountId, Block, Transaction};

    /// The preserved edge-list CSR build and the production counting-sort
    /// build must agree on everything observable — same graph, either
    /// constructor.
    #[test]
    fn seed_csr_build_matches_production() {
        let mut g = TxGraph::new();
        for (a, b) in [(1u64, 2), (2, 3), (3, 1), (4, 4), (2, 5), (5, 1)] {
            g.ingest_transaction(&Transaction::transfer(AccountId(a), AccountId(b)));
        }
        g.ingest_transaction(
            &Transaction::new(vec![AccountId(1)], vec![AccountId(6), AccountId(7)]).unwrap(),
        );
        let seed = seed_csr_from_graph(&g);
        let prod = CsrGraph::from_graph(&g);
        assert_eq!(seed.node_count(), prod.node_count());
        assert_eq!(seed.edge_count(), prod.edge_count());
        // The production total is the graph's own accumulator bit-for-bit;
        // the seed edge-list build re-sums over the extracted edges, which
        // agrees only up to summation-order rounding (same contract as
        // `radix_snapshot_matches_edge_list_build` in `txallo-graph`).
        assert_eq!(prod.total_weight().to_bits(), g.total_weight().to_bits());
        let tol = 1e-12 * prod.total_weight().abs();
        assert!((seed.total_weight() - prod.total_weight()).abs() <= tol);
        for v in 0..g.node_count() as NodeId {
            assert_eq!(seed.neighbor_ids(v), prod.neighbor_ids(v));
            assert_eq!(seed.neighbor_weights(v), prod.neighbor_weights(v));
            assert_eq!(seed.self_loop(v).to_bits(), prod.self_loop(v).to_bits());
            assert_eq!(
                seed.incident_weight(v).to_bits(),
                prod.incident_weight(v).to_bits()
            );
        }
    }

    /// The preserved hash-adjacency graph and the production sorted-run
    /// graph agree bit-for-bit on every edge weight (chronological
    /// per-pair accumulation either way), and the seed snapshot assembly
    /// reproduces the production `DeltaCsr` arrays exactly — the honest
    /// equivalence behind the `ingest/` and `snapshot/` ratios.
    #[test]
    fn seed_graph_and_snapshot_match_production_bitwise() {
        use txallo_graph::DeltaCsr;
        let mut seed = SeedTxGraph::default();
        let mut prod = TxGraph::new();
        let txs: Vec<Transaction> = (0u64..60)
            .map(|i| {
                if i % 11 == 0 {
                    Transaction::transfer(AccountId(i % 7), AccountId(i % 7))
                } else if i % 13 == 0 {
                    Transaction::new(
                        vec![AccountId(i % 5)],
                        vec![AccountId(i % 9 + 1), AccountId(i % 4 + 10)],
                    )
                    .unwrap()
                } else {
                    Transaction::transfer(AccountId((i * 17) % 23), AccountId((i * 5) % 19))
                }
            })
            .collect();
        let block = Block::new(0, txs);
        let seed_touched = seed.ingest_block(&block);
        let prod_touched = prod.ingest_block(&block);
        assert_eq!(seed_touched, prod_touched, "same touched set");
        assert_eq!(seed.total_weight().to_bits(), prod.total_weight().to_bits());

        let mut rows = SeedDeltaRows::default();
        seed_delta_rows(&seed, &seed_touched, &mut rows);
        let snap = DeltaCsr::snapshot_touched(&prod, &prod_touched);
        assert_eq!(rows.node, snap.nodes());
        for i in 0..snap.len() {
            let (targets, weights) = snap.row(i);
            let (s, e) = (rows.offsets[i] as usize, rows.offsets[i + 1] as usize);
            assert_eq!(&rows.targets[s..e], targets, "row {i} targets");
            let got: Vec<u64> = rows.weights[s..e].iter().map(|w| w.to_bits()).collect();
            let want: Vec<u64> = weights.iter().map(|w| w.to_bits()).collect();
            assert_eq!(got, want, "row {i} weights bit-identical");
            assert_eq!(rows.self_loops[i].to_bits(), snap.self_loop(i).to_bits());
            assert_eq!(
                rows.incident[i].to_bits(),
                snap.incident_weight(i).to_bits()
            );
        }
    }

    /// The seed baseline must still produce a *semantically* equivalent
    /// update (same clusters), keeping the benchmark comparison honest.
    #[test]
    fn seed_reference_still_behaves() {
        let mut g = TxGraph::new();
        for base in [0u64, 10] {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    g.ingest_transaction(&Transaction::transfer(
                        AccountId(base + i),
                        AccountId(base + j),
                    ));
                }
            }
        }
        let params = TxAlloParams::for_graph(&g, 2);
        let prev = GTxAllo::new(params.clone()).allocate_graph(&g);
        let block = Block::new(
            0,
            vec![
                Transaction::transfer(AccountId(100), AccountId(0)),
                Transaction::transfer(AccountId(100), AccountId(1)),
            ],
        );
        let touched = g.ingest_block(&block);
        let seed = seed_atxallo_update(&params, &g, &prev, &touched);
        let new = AtxAllo::new(params).update(&g, &prev, &touched);
        let n100 = g.node_of(AccountId(100)).unwrap() as usize;
        let n0 = g.node_of(AccountId(0)).unwrap() as usize;
        assert_eq!(seed[n100], seed[n0], "seed places 100 with cluster 0");
        assert_eq!(
            new.allocation.labels()[n100],
            seed[n100],
            "both implementations agree on the placement"
        );
    }
}
