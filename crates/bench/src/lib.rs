//! Shared infrastructure for the experiment harness.
//!
//! Every figure/table of the paper's §VI maps to one function in
//! [`figures`]; the `experiments` binary dispatches to them. Results are
//! printed as CSV rows (same axes as the paper) and mirrored into
//! `results/<experiment>.csv`.

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]

pub mod figures;
pub mod harness;
pub mod seed_ref;
pub mod stream_bench;

pub use harness::{
    build_dataset, eta_sweep, k_sweep, run_allocator, AllocatorKind, ExperimentScale, ResultWriter,
    ALL_ALLOCATORS,
};
pub use stream_bench::{run_stream_bench, StreamBenchConfig, StreamBenchReport};
