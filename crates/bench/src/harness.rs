//! Dataset construction, allocator dispatch and result recording.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use txallo_core::{Allocation, AllocatorRegistry, Dataset, GTxAlloPlan, TxAlloParams};
use txallo_workload::{EthereumLikeGenerator, WorkloadConfig};

/// Scale knobs for the experiments (the paper runs 91.8M transactions on a
/// cluster node; the default here reproduces the shapes on a laptop).
#[derive(Debug, Clone, Copy)]
pub struct ExperimentScale {
    /// Scale factor relative to the default workload (1.0 → 20k accounts /
    /// 200k transactions).
    pub factor: f64,
    /// Seed for the synthetic trace.
    pub seed: u64,
}

impl Default for ExperimentScale {
    fn default() -> Self {
        Self {
            factor: 1.0,
            seed: 42,
        }
    }
}

impl ExperimentScale {
    /// The workload configuration at this scale.
    pub fn config(&self) -> WorkloadConfig {
        WorkloadConfig::scaled(self.factor)
    }
}

/// Builds the shared experiment dataset.
pub fn build_dataset(scale: ExperimentScale) -> Dataset {
    let mut generator = EthereumLikeGenerator::new(scale.config(), scale.seed);
    Dataset::from_ledger(generator.default_ledger())
}

/// The four methods of the paper's comparison (legend of Figs. 2–8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocatorKind {
    /// G-TxAllo ("Our Method").
    TxAllo,
    /// Hash-based random allocation.
    Random,
    /// METIS-style graph partitioning.
    Metis,
    /// Shard Scheduler (transaction-level).
    Scheduler,
}

/// All four, in the paper's legend order.
pub const ALL_ALLOCATORS: [AllocatorKind; 4] = [
    AllocatorKind::TxAllo,
    AllocatorKind::Random,
    AllocatorKind::Metis,
    AllocatorKind::Scheduler,
];

impl fmt::Display for AllocatorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AllocatorKind::TxAllo => "Our Method",
            AllocatorKind::Random => "Random",
            AllocatorKind::Metis => "Metis",
            AllocatorKind::Scheduler => "Shard Scheduler",
        };
        f.write_str(name)
    }
}

impl AllocatorKind {
    /// The [`AllocatorRegistry`] name this figure-legend kind resolves to.
    pub fn registry_name(self) -> &'static str {
        match self {
            AllocatorKind::TxAllo => "txallo",
            AllocatorKind::Random => "hash",
            AllocatorKind::Metis => "metis",
            AllocatorKind::Scheduler => "scheduler",
        }
    }
}

/// Runs one allocator through the shared [`AllocatorRegistry`], timing the
/// full allocation (for G-TxAllo a cached [`GTxAlloPlan`] — canonical
/// order + CSR snapshot + Louvain init — may be supplied; the plan is
/// independent of both `k` and `η`, so sweeps reuse it; pass `None` to
/// time end-to-end).
pub fn run_allocator(
    kind: AllocatorKind,
    dataset: &Dataset,
    k: usize,
    eta: f64,
    cached_plan: Option<&GTxAlloPlan>,
) -> (Allocation, Duration) {
    let params = TxAlloParams::for_graph(dataset.graph(), k).with_eta(eta);
    let start = Instant::now();
    let allocation = match (kind, cached_plan) {
        (AllocatorKind::TxAllo, Some(plan)) => plan.allocate(&params).allocation,
        _ => AllocatorRegistry::builtin()
            .batch(kind.registry_name(), &params)
            .expect("builtin kinds are registered")
            .allocate(dataset),
    };
    (allocation, start.elapsed())
}

/// Prints CSV rows to stdout and mirrors them into `results/<name>.csv`.
pub struct ResultWriter {
    file: Option<fs::File>,
    name: String,
}

impl ResultWriter {
    /// Opens `results/<name>.csv` (best-effort — falls back to
    /// stdout-only when the directory cannot be created).
    pub fn new(name: &str) -> Self {
        let dir = PathBuf::from("results");
        let file = fs::create_dir_all(&dir)
            .ok()
            .and_then(|_| fs::File::create(dir.join(format!("{name}.csv"))).ok());
        Self {
            file,
            name: name.to_string(),
        }
    }

    /// Emits one row.
    pub fn row(&mut self, line: &str) {
        println!("{line}");
        if let Some(f) = &mut self.file {
            let _ = writeln!(f, "{line}");
        }
    }

    /// Emits a comment/header line (prefixed `#` in the CSV mirror).
    pub fn note(&mut self, line: &str) {
        println!("{line}");
        if let Some(f) = &mut self.file {
            let _ = writeln!(f, "# {line}");
        }
    }

    /// Experiment name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// The k values swept by Figures 2–8 (paper: 2..60).
pub fn k_sweep(quick: bool) -> Vec<usize> {
    if quick {
        vec![2, 10, 30]
    } else {
        vec![2, 5, 10, 20, 30, 40, 50, 60]
    }
}

/// The η values swept by Figures 2–8.
pub fn eta_sweep(quick: bool) -> Vec<f64> {
    if quick {
        vec![2.0]
    } else {
        vec![2.0, 4.0, 6.0, 8.0, 10.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_have_expected_shape() {
        assert!(k_sweep(true).len() < k_sweep(false).len());
        assert!(eta_sweep(true).len() < eta_sweep(false).len());
        assert!(k_sweep(false).contains(&60), "paper sweeps up to k = 60");
        assert!(eta_sweep(false).contains(&2.0) && eta_sweep(false).contains(&10.0));
    }

    #[test]
    fn scale_produces_usable_config() {
        let scale = ExperimentScale {
            factor: 0.01,
            seed: 1,
        };
        let cfg = scale.config();
        cfg.validate();
        assert!(cfg.transactions >= 1_000);
    }

    #[test]
    fn tiny_dataset_runs_every_allocator() {
        let dataset = build_dataset(ExperimentScale {
            factor: 0.01,
            seed: 3,
        });
        for kind in ALL_ALLOCATORS {
            let (alloc, time) = run_allocator(kind, &dataset, 4, 2.0, None);
            assert_eq!(alloc.len(), {
                use txallo_graph::WeightedGraph;
                dataset.graph().node_count()
            });
            assert!(time.as_nanos() > 0);
        }
    }

    #[test]
    fn txallo_cached_plan_matches_uncached() {
        let dataset = build_dataset(ExperimentScale {
            factor: 0.01,
            seed: 5,
        });
        let plan = GTxAlloPlan::new(dataset.graph(), &txallo_louvain::LouvainConfig::default());
        let (a, _) = run_allocator(AllocatorKind::TxAllo, &dataset, 5, 2.0, Some(&plan));
        let (b, _) = run_allocator(AllocatorKind::TxAllo, &dataset, 5, 2.0, None);
        assert_eq!(a, b, "cached plan must not change the result");
    }

    #[test]
    fn allocator_names_match_paper_legend() {
        assert_eq!(AllocatorKind::TxAllo.to_string(), "Our Method");
        assert_eq!(AllocatorKind::Random.to_string(), "Random");
        assert_eq!(AllocatorKind::Metis.to_string(), "Metis");
        assert_eq!(AllocatorKind::Scheduler.to_string(), "Shard Scheduler");
    }
}
