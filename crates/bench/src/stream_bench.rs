//! Out-of-core streaming replay benchmark: million-account epochs through
//! the full [`txallo_core::StreamingAllocator`] service loop without ever
//! materializing the ledger, with a §VI-B6-style per-phase time
//! decomposition and peak-resident-memory accounting.
//!
//! The loop mirrors `txallo_sim::ShardedChainSim::run_epoch` phase by
//! phase — synthesize, reweight, ingest, fold, update, score, evict — but
//! times each phase separately, which the driver deliberately does not.
//! The residency rules are the driver's exactly (incremental snapshot
//! route forced, rehydrate-all ahead of any full-graph read), so the run
//! is bit-identical to an in-core replay of the same workload.

use std::time::Instant;

use txallo_core::{AllocatorRegistry, EpochKind, HybridSchedule, TxAlloParams};
use txallo_graph::{MemoryFootprint, ResidencyConfig, TxGraph, WeightedGraph};
use txallo_workload::{StreamingWorkload, WorkloadConfig};

/// Configuration of one streaming replay run.
#[derive(Debug, Clone)]
pub struct StreamBenchConfig {
    /// Initially existing accounts (births add more over the run).
    pub accounts: usize,
    /// Warm-up epochs (history before the service opens).
    pub warm_epochs: u64,
    /// Served epochs after warm-up.
    pub epochs: u64,
    /// Blocks per epoch.
    pub epoch_blocks: u64,
    /// Transactions per block.
    pub block_size: usize,
    /// Number of shards `k`.
    pub shards: usize,
    /// Residency window in epochs (0 = keep every row in core).
    pub window: u32,
    /// Per-epoch edge-weight decay (1.0 = none).
    pub decay: f64,
    /// Global-refresh gap (0 = adaptive-only epochs; warm-up always runs
    /// one global solve either way).
    pub global_gap: u64,
    /// Workload seed.
    pub seed: u64,
}

impl StreamBenchConfig {
    /// A replay at `accounts` initial accounts with paper-shaped defaults:
    /// 1000-transaction blocks, 50-block epochs (so the default 60-epoch
    /// run replays 3.5M transactions), recency decay, k = 20.
    pub fn at_scale(accounts: usize) -> Self {
        Self {
            accounts,
            warm_epochs: 10,
            epochs: 60,
            epoch_blocks: 50,
            block_size: 1_000,
            shards: 20,
            window: 4,
            decay: 0.9,
            global_gap: 0,
            seed: 42,
        }
    }
}

/// Wall-clock totals of each service-loop phase, in seconds, summed over
/// all served epochs.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimes {
    /// Synthesizing the epoch's blocks from the counter-based streams.
    pub generate: f64,
    /// Decay rescale of graph weights + session aggregates.
    pub reweight: f64,
    /// Graph ingestion (interning, slab row merges, rehydration).
    pub ingest: f64,
    /// Folding block deltas into the allocator's warm aggregates.
    pub fold: f64,
    /// Epoch-boundary allocation update (snapshot + sweep + diff).
    pub update: f64,
    /// Scoring the epoch under the updated mapping.
    pub score: f64,
    /// Residency epoch advance (eviction + spill serialization).
    pub evict: f64,
}

impl PhaseTimes {
    /// Sum of all phases.
    pub fn total(&self) -> f64 {
        self.generate
            + self.reweight
            + self.ingest
            + self.fold
            + self.update
            + self.score
            + self.evict
    }
}

/// Everything one replay run measured.
#[derive(Debug, Clone)]
pub struct StreamBenchReport {
    /// The configuration that produced it.
    pub config: StreamBenchConfig,
    /// Distinct accounts interned by the end (initial + births).
    pub distinct_accounts: usize,
    /// Transactions replayed (warm-up + served epochs).
    pub transactions: u64,
    /// Warm-up wall clock: history ingestion + the one global solve.
    pub warmup_seconds: f64,
    /// Per-phase totals over the served epochs.
    pub phases: PhaseTimes,
    /// Peak of (graph resident bytes + allocator state bytes) sampled at
    /// every epoch boundary.
    pub peak_resident_bytes: usize,
    /// Peak of the graph's resident bytes alone.
    pub peak_graph_bytes: usize,
    /// The footprint at the end of the run.
    pub final_footprint: MemoryFootprint,
    /// Allocator serving-state bytes at the end of the run.
    pub final_allocator_bytes: usize,
    /// Mean normalized throughput over the served epochs.
    pub avg_throughput: f64,
}

impl StreamBenchReport {
    /// The report as one hand-formatted JSON object (the BENCH snapshot
    /// embeds it verbatim).
    pub fn to_json(&self) -> String {
        let c = &self.config;
        let p = &self.phases;
        let f = &self.final_footprint;
        format!(
            "{{\"workload\": {{\"accounts\": {}, \"epochs\": {}, \"epoch_blocks\": {}, \
             \"block_size\": {}, \"k\": {}, \"window\": {}, \"decay\": {}, \"seed\": {}}}, \
             \"distinct_accounts\": {}, \"transactions\": {}, \
             \"warmup_seconds\": {:.3}, \
             \"phase_seconds\": {{\"generate\": {:.3}, \"reweight\": {:.3}, \"ingest\": {:.3}, \
             \"fold\": {:.3}, \"update\": {:.3}, \"score\": {:.3}, \"evict\": {:.3}, \
             \"total\": {:.3}}}, \
             \"peak_resident_mib\": {:.1}, \"peak_graph_mib\": {:.1}, \
             \"spilled_mib\": {:.1}, \"evicted_rows\": {}, \"restored_rows\": {}, \
             \"final_cold_rows\": {}, \"final_resident_rows\": {}, \
             \"final_allocator_mib\": {:.1}, \"avg_throughput_times\": {:.3}}}",
            c.accounts,
            c.epochs,
            c.epoch_blocks,
            c.block_size,
            c.shards,
            c.window,
            c.decay,
            c.seed,
            self.distinct_accounts,
            self.transactions,
            self.warmup_seconds,
            p.generate,
            p.reweight,
            p.ingest,
            p.fold,
            p.update,
            p.score,
            p.evict,
            p.total(),
            self.peak_resident_bytes as f64 / MIB,
            self.peak_graph_bytes as f64 / MIB,
            f.spill_bytes as f64 / MIB,
            f.evicted_rows,
            f.restored_rows,
            f.cold_rows,
            f.resident_rows,
            self.final_allocator_bytes as f64 / MIB,
            self.avg_throughput,
        )
    }
}

const MIB: f64 = 1024.0 * 1024.0;

/// Runs the out-of-core replay and returns its measurements.
pub fn run_stream_bench(cfg: &StreamBenchConfig) -> StreamBenchReport {
    let total_blocks = (cfg.warm_epochs + cfg.epochs) * cfg.epoch_blocks;
    let wl = WorkloadConfig {
        accounts: cfg.accounts,
        transactions: total_blocks as usize * cfg.block_size,
        block_size: cfg.block_size,
        groups: (cfg.accounts / 50).max(10),
        new_account_prob: 0.002,
        ..WorkloadConfig::default()
    };
    wl.validate();
    let workload = StreamingWorkload::new(wl, cfg.seed);

    let mut graph = TxGraph::new();
    if cfg.window > 0 {
        graph.enable_residency(&ResidencyConfig::in_memory(cfg.window));
    }
    let schedule = if cfg.global_gap == 0 {
        HybridSchedule::AlwaysAdaptive
    } else {
        HybridSchedule::Hybrid {
            global_gap: cfg.global_gap,
        }
    };
    let params_for = |graph: &TxGraph, window: u32| {
        let p = TxAlloParams::for_graph(graph, cfg.shards)
            .with_threads(txallo_graph::par::threads_from_env());
        // Cold rows read as empty, so the adaptive update must take the
        // touched-rows-only snapshot route (the driver's rule).
        if window > 0 {
            p.with_incremental_threshold(1.0)
        } else {
            p
        }
    };
    let mut stream = AllocatorRegistry::builtin()
        .streaming("txallo", &params_for(&graph, cfg.window), schedule)
        .expect("txallo is registered");

    // Warm-up: stream the history in (one block alive at a time), then the
    // one global solve every serving mode pays.
    let warm_start = Instant::now();
    for b in workload.block_iter(0..cfg.warm_epochs * cfg.epoch_blocks) {
        graph.ingest_block(&b);
    }
    let mut allocation = stream.begin(&graph, &params_for(&graph, cfg.window));
    let warmup_seconds = warm_start.elapsed().as_secs_f64();

    let mut phases = PhaseTimes::default();
    let mut peak_resident = 0usize;
    let mut peak_graph = 0usize;
    let mut transactions = cfg.warm_epochs * cfg.epoch_blocks * cfg.block_size as u64;
    let mut throughput_sum = 0.0;

    for epoch in 0..cfg.epochs {
        let t = Instant::now();
        let blocks = workload.epoch_blocks(cfg.warm_epochs + epoch, cfg.epoch_blocks);
        phases.generate += t.elapsed().as_secs_f64();

        if cfg.decay < 1.0 {
            let t = Instant::now();
            graph.apply_decay(cfg.decay);
            stream.on_reweight(cfg.decay);
            phases.reweight += t.elapsed().as_secs_f64();
        }

        for b in &blocks {
            let t = Instant::now();
            let nodes = graph.ingest_block_nodes(b);
            phases.ingest += t.elapsed().as_secs_f64();
            let t = Instant::now();
            stream.on_block_nodes(&graph, b, &nodes);
            phases.fold += t.elapsed().as_secs_f64();
            transactions += b.len() as u64;
        }

        let t = Instant::now();
        if cfg.global_gap != 0 && schedule.is_global_epoch(epoch) {
            // The residency read invariant: a global re-solve reads every
            // row, so every row must be in core first.
            graph.ensure_all_resident();
        }
        let update = stream.end_epoch(&graph, EpochKind::Scheduled);
        allocation.apply_update(&update);
        phases.update += t.elapsed().as_secs_f64();

        let t = Instant::now();
        let metrics = txallo_sim::epoch_metrics(&blocks, &graph, &allocation, cfg.shards, 2.0);
        throughput_sum += metrics.throughput_normalized;
        phases.score += t.elapsed().as_secs_f64();

        let t = Instant::now();
        graph.advance_residency_epoch();
        phases.evict += t.elapsed().as_secs_f64();

        let fp = graph.memory_footprint();
        peak_graph = peak_graph.max(fp.resident_bytes());
        peak_resident = peak_resident.max(fp.resident_bytes() + stream.state_bytes());
    }

    StreamBenchReport {
        config: cfg.clone(),
        distinct_accounts: graph.node_count(),
        transactions,
        warmup_seconds,
        phases,
        peak_resident_bytes: peak_resident,
        peak_graph_bytes: peak_graph,
        final_footprint: graph.memory_footprint(),
        final_allocator_bytes: stream.state_bytes(),
        avg_throughput: throughput_sum / cfg.epochs.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_replay_reports_and_evicts() {
        let cfg = StreamBenchConfig {
            accounts: 3_000,
            warm_epochs: 2,
            epochs: 6,
            epoch_blocks: 5,
            block_size: 100,
            shards: 4,
            window: 1,
            decay: 0.9,
            global_gap: 3,
            seed: 7,
        };
        let report = run_stream_bench(&cfg);
        // Zipf activity: not every configured account transacts in a short
        // run, but most of the head does (plus births past the initial
        // id space).
        assert!(report.distinct_accounts > 1_000);
        assert_eq!(report.transactions, 8 * 5 * 100);
        assert!(report.final_footprint.evicted_rows > 0, "window must evict");
        assert!(report.peak_resident_bytes >= report.peak_graph_bytes);
        assert!(report.avg_throughput > 1.0, "sharding must help");
        let json = report.to_json();
        assert!(json.contains("\"phase_seconds\""));
        assert!(json.contains("\"peak_resident_mib\""));
    }
}
