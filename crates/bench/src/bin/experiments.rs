//! Regenerates every table and figure of the paper's evaluation (§VI).
//!
//! ```text
//! cargo run --release -p txallo-bench --bin experiments -- <experiment> [--scale F] [--seed N] [--quick]
//!
//! experiments:
//!   fig1            dataset structure statistics
//!   fig2 .. fig8    the (k, η, allocator) sweep figures
//!   fig9            A-TxAllo throughput evolution (τ₂ sweep)
//!   fig10           running time: pure G-TxAllo vs hybrid
//!   runtime-table   §VI-B6 running-time comparison
//!   ablation        G-TxAllo design-choice ablations
//!   latency-validation   measured queue latency vs capacity headroom
//!   measure-eta     empirical η from the consensus substrate
//!   broker          BrokerChain-style hot-account splitting on TxAllo
//!   recency         full-history vs window vs decayed training graphs
//!   headline        γ at k = 60 (98% / 28% / 12% in the paper)
//!   bench-snapshot  hot-path component timings -> BENCH_pr7.json (or --out FILE)
//!   all             everything above
//! ```
//!
//! `--scale` multiplies the default workload (20k accounts / 200k
//! transactions); `--quick` shrinks the sweeps for smoke testing; `--out`
//! redirects the bench-snapshot JSON.

use txallo_bench::figures;
use txallo_bench::{build_dataset, ExperimentScale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = None;
    let mut scale = ExperimentScale::default();
    let mut quick = false;
    // Default snapshot name for `bench-snapshot`; later PRs bump it (or
    // pass `--out BENCH_prN.json`) so earlier baselines are never clobbered.
    let mut out_path = String::from("BENCH_pr7.json");

    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                scale.factor = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
            }
            "--seed" => {
                scale.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--quick" => quick = true,
            "--out" => {
                out_path = it
                    .next()
                    .cloned()
                    .unwrap_or_else(|| die("--out needs a file path"));
            }
            name if experiment.is_none() && !name.starts_with('-') => {
                experiment = Some(name.to_string());
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }
    let experiment = experiment.unwrap_or_else(|| "all".to_string());

    let needs_sweep = matches!(
        experiment.as_str(),
        "fig2" | "fig3" | "fig5" | "fig6" | "fig7" | "fig8" | "all"
    );
    let sweep_rows = if needs_sweep {
        eprintln!(
            "# building dataset (scale {:.2}, seed {})...",
            scale.factor, scale.seed
        );
        let dataset = build_dataset(scale);
        eprintln!(
            "# dataset: {} transactions / {} accounts",
            dataset.ledger().transaction_count(),
            {
                use txallo_graph::WeightedGraph;
                dataset.graph().node_count()
            }
        );
        eprintln!("# running (k, eta, allocator) sweep...");
        Some(figures::run_sweep(&dataset, quick))
    } else {
        None
    };

    match experiment.as_str() {
        "fig1" => figures::fig1(scale),
        "fig2" => figures::fig2(sweep_rows.as_deref().expect("sweep computed")),
        "fig3" => figures::fig3(sweep_rows.as_deref().expect("sweep computed")),
        "fig4" => figures::fig4(scale),
        "fig5" => figures::fig5(sweep_rows.as_deref().expect("sweep computed")),
        "fig6" => figures::fig6(sweep_rows.as_deref().expect("sweep computed")),
        "fig7" => figures::fig7(sweep_rows.as_deref().expect("sweep computed")),
        "fig8" => figures::fig8(sweep_rows.as_deref().expect("sweep computed")),
        "fig9" => figures::fig9(scale, quick),
        "fig10" => figures::fig10(scale, quick),
        "runtime-table" => figures::runtime_table(scale),
        "ablation" => figures::ablation(scale),
        "latency-validation" => figures::latency_validation(scale),
        "measure-eta" => figures::measure_eta(scale),
        "broker" => figures::broker(scale),
        "recency" => figures::recency(scale),
        "headline" => figures::headline(scale),
        "bench-snapshot" => figures::bench_snapshot(&out_path),
        "all" => {
            let rows = sweep_rows.as_deref().expect("sweep computed");
            figures::fig1(scale);
            figures::fig2(rows);
            figures::fig3(rows);
            figures::fig4(scale);
            figures::fig5(rows);
            figures::fig6(rows);
            figures::fig7(rows);
            figures::fig8(rows);
            figures::fig9(scale, quick);
            figures::fig10(scale, quick);
            figures::runtime_table(scale);
            figures::ablation(scale);
            figures::latency_validation(scale);
            figures::measure_eta(scale);
            figures::broker(scale);
            figures::recency(scale);
            figures::headline(scale);
            figures::bench_snapshot(&out_path);
        }
        other => die(&format!(
            "unknown experiment {other:?} (expected fig1..fig10, runtime-table, ablation, \
             headline, bench-snapshot, all)"
        )),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
