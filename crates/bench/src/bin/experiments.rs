//! Regenerates every table and figure of the paper's evaluation (§VI).
//!
//! ```text
//! cargo run --release -p txallo-bench --bin experiments -- <experiment> [--scale F] [--seed N] [--quick]
//!
//! experiments:
//!   fig1            dataset structure statistics
//!   fig2 .. fig8    the (k, η, allocator) sweep figures
//!   fig9            A-TxAllo throughput evolution (τ₂ sweep)
//!   fig10           running time: pure G-TxAllo vs hybrid
//!   runtime-table   §VI-B6 running-time comparison
//!   ablation        G-TxAllo design-choice ablations
//!   latency-validation   measured queue latency vs capacity headroom
//!   measure-eta     empirical η from the consensus substrate
//!   broker          BrokerChain-style hot-account splitting on TxAllo
//!   recency         full-history vs window vs decayed training graphs
//!   headline        γ at k = 60 (98% / 28% / 12% in the paper)
//!   scale-stream    out-of-core streaming replay (--accounts/--epochs/--window;
//!                   --max-resident-mib F exits nonzero on a ceiling breach)
//!   bench-snapshot  hot-path component timings -> BENCH_pr8.json (or --out FILE)
//!   all             everything above
//! ```
//!
//! `--scale` multiplies the default workload (20k accounts / 200k
//! transactions); `--quick` shrinks the sweeps for smoke testing; `--out`
//! redirects the bench-snapshot JSON.

use txallo_bench::figures;
use txallo_bench::{build_dataset, run_stream_bench, ExperimentScale, StreamBenchConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = None;
    let mut scale = ExperimentScale::default();
    let mut quick = false;
    // Default snapshot name for `bench-snapshot`; later PRs bump it (or
    // pass `--out BENCH_prN.json`) so earlier baselines are never clobbered.
    let mut out_path = String::from("BENCH_pr10.json");
    // `scale-stream` knobs.
    let mut stream_accounts: usize = 1_000_000;
    let mut stream_epochs: u64 = 60;
    let mut stream_window: u32 = 4;
    let mut max_resident_mib: Option<f64> = None;

    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                scale.factor = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
            }
            "--seed" => {
                scale.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--quick" => quick = true,
            "--out" => {
                out_path = it
                    .next()
                    .cloned()
                    .unwrap_or_else(|| die("--out needs a file path"));
            }
            "--accounts" => {
                stream_accounts = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--accounts needs an integer"));
            }
            "--epochs" => {
                stream_epochs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--epochs needs an integer"));
            }
            "--window" => {
                stream_window = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--window needs an integer"));
            }
            "--max-resident-mib" => {
                max_resident_mib = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--max-resident-mib needs a number")),
                );
            }
            name if experiment.is_none() && !name.starts_with('-') => {
                experiment = Some(name.to_string());
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }
    let experiment = experiment.unwrap_or_else(|| "all".to_string());

    let needs_sweep = matches!(
        experiment.as_str(),
        "fig2" | "fig3" | "fig5" | "fig6" | "fig7" | "fig8" | "all"
    );
    let sweep_rows = if needs_sweep {
        eprintln!(
            "# building dataset (scale {:.2}, seed {})...",
            scale.factor, scale.seed
        );
        let dataset = build_dataset(scale);
        eprintln!(
            "# dataset: {} transactions / {} accounts",
            dataset.ledger().transaction_count(),
            {
                use txallo_graph::WeightedGraph;
                dataset.graph().node_count()
            }
        );
        eprintln!("# running (k, eta, allocator) sweep...");
        Some(figures::run_sweep(&dataset, quick))
    } else {
        None
    };

    match experiment.as_str() {
        "fig1" => figures::fig1(scale),
        "fig2" => figures::fig2(sweep_rows.as_deref().expect("sweep computed")),
        "fig3" => figures::fig3(sweep_rows.as_deref().expect("sweep computed")),
        "fig4" => figures::fig4(scale),
        "fig5" => figures::fig5(sweep_rows.as_deref().expect("sweep computed")),
        "fig6" => figures::fig6(sweep_rows.as_deref().expect("sweep computed")),
        "fig7" => figures::fig7(sweep_rows.as_deref().expect("sweep computed")),
        "fig8" => figures::fig8(sweep_rows.as_deref().expect("sweep computed")),
        "fig9" => figures::fig9(scale, quick),
        "fig10" => figures::fig10(scale, quick),
        "runtime-table" => figures::runtime_table(scale),
        "ablation" => figures::ablation(scale),
        "latency-validation" => figures::latency_validation(scale),
        "measure-eta" => figures::measure_eta(scale),
        "broker" => figures::broker(scale),
        "recency" => figures::recency(scale),
        "headline" => figures::headline(scale),
        "scale-stream" => {
            let config = StreamBenchConfig {
                accounts: stream_accounts,
                epochs: stream_epochs,
                window: stream_window,
                seed: scale.seed,
                ..StreamBenchConfig::at_scale(stream_accounts)
            };
            eprintln!(
                "# out-of-core replay: {} accounts, {} epochs, window {}...",
                config.accounts, config.epochs, config.window
            );
            let report = run_stream_bench(&config);
            println!("{}", report.to_json());
            let peak_mib = report.peak_resident_bytes as f64 / (1024.0 * 1024.0);
            eprintln!(
                "# peak resident {peak_mib:.1} MiB ({} distinct accounts, {} evictions, \
                 {:.1} MiB spilled)",
                report.distinct_accounts,
                report.final_footprint.evicted_rows,
                report.final_footprint.spill_bytes as f64 / (1024.0 * 1024.0),
            );
            if let Some(ceiling) = max_resident_mib {
                if config.window > 0 && report.final_footprint.evicted_rows == 0 {
                    die("residency window evicted nothing — eviction layer inactive");
                }
                if peak_mib > ceiling {
                    die(&format!(
                        "peak resident {peak_mib:.1} MiB exceeds the {ceiling:.1} MiB ceiling"
                    ));
                }
                eprintln!("# ceiling ok: {peak_mib:.1} <= {ceiling:.1} MiB");
            }
        }
        "bench-snapshot" => figures::bench_snapshot(&out_path),
        "all" => {
            let rows = sweep_rows.as_deref().expect("sweep computed");
            figures::fig1(scale);
            figures::fig2(rows);
            figures::fig3(rows);
            figures::fig4(scale);
            figures::fig5(rows);
            figures::fig6(rows);
            figures::fig7(rows);
            figures::fig8(rows);
            figures::fig9(scale, quick);
            figures::fig10(scale, quick);
            figures::runtime_table(scale);
            figures::ablation(scale);
            figures::latency_validation(scale);
            figures::measure_eta(scale);
            figures::broker(scale);
            figures::recency(scale);
            figures::headline(scale);
            figures::bench_snapshot(&out_path);
        }
        other => die(&format!(
            "unknown experiment {other:?} (expected fig1..fig10, runtime-table, ablation, \
             headline, scale-stream, bench-snapshot, all)"
        )),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
