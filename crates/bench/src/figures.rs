//! One function per figure/table of the paper's evaluation (§VI).
//!
//! Each function prints CSV rows with the same axes as the corresponding
//! figure and mirrors them into `results/`. EXPERIMENTS.md records the
//! paper-vs-measured comparison.

use std::time::Duration;

use txallo_core::{Dataset, GTxAlloPlan, MetricsReport, TxAlloParams};
use txallo_graph::GraphStats;
use txallo_louvain::louvain;
use txallo_sim::{HybridSchedule, ShardedChainSim, SimConfig, UpdateKind};
use txallo_workload::{EthereumLikeGenerator, WorkloadConfig};

use crate::harness::{
    build_dataset, eta_sweep, k_sweep, run_allocator, AllocatorKind, ExperimentScale, ResultWriter,
    ALL_ALLOCATORS,
};

/// One row of the Figures 2–8 sweep.
pub struct SweepRow {
    /// Number of shards.
    pub k: usize,
    /// Cross-shard workload parameter.
    pub eta: f64,
    /// Which allocator produced the row.
    pub allocator: AllocatorKind,
    /// The evaluated metrics.
    pub report: MetricsReport,
    /// Wall-clock time of the allocation.
    pub time: Duration,
}

/// Runs the full (k, η, allocator) grid shared by Figures 2–8.
///
/// The G-TxAllo rows reuse one Louvain initialization per dataset (the init
/// depends on neither k nor η); its reported time adds the amortized init
/// cost so Fig. 8 remains honest about end-to-end runtime.
pub fn run_sweep(dataset: &Dataset, quick: bool) -> Vec<SweepRow> {
    let init_start = std::time::Instant::now();
    let plan = GTxAlloPlan::new(dataset.graph(), &txallo_louvain::LouvainConfig::default());
    let init_time = init_start.elapsed();
    eprintln!(
        "# louvain init: {} communities in {:?} (plan shared across the sweep)",
        plan.init().community_count,
        init_time
    );

    let mut rows = Vec::new();
    for &k in &k_sweep(quick) {
        // Random and METIS labels ignore η: allocate once per k, re-score
        // the same labels under each η.
        let eta_independent: Vec<(AllocatorKind, _, Duration)> =
            [AllocatorKind::Random, AllocatorKind::Metis]
                .into_iter()
                .map(|alloc| {
                    let (allocation, time) = run_allocator(alloc, dataset, k, 2.0, None);
                    (alloc, allocation, time)
                })
                .collect();
        for &eta in &eta_sweep(quick) {
            let params = TxAlloParams::for_graph(dataset.graph(), k).with_eta(eta);
            for &alloc in &ALL_ALLOCATORS {
                let (allocation, time) = match alloc {
                    AllocatorKind::Random | AllocatorKind::Metis => {
                        let (_, allocation, time) = eta_independent
                            .iter()
                            .find(|(a, _, _)| *a == alloc)
                            .expect("precomputed above");
                        (allocation.clone(), *time)
                    }
                    AllocatorKind::TxAllo => {
                        let (allocation, time) = run_allocator(alloc, dataset, k, eta, Some(&plan));
                        (allocation, time + init_time)
                    }
                    AllocatorKind::Scheduler => run_allocator(alloc, dataset, k, eta, None),
                };
                let report = MetricsReport::compute(dataset.graph(), &allocation, &params);
                rows.push(SweepRow {
                    k,
                    eta,
                    allocator: alloc,
                    report,
                    time,
                });
            }
        }
    }
    rows
}

fn emit_metric(
    rows: &[SweepRow],
    writer: &mut ResultWriter,
    metric_name: &str,
    metric: impl Fn(&SweepRow) -> f64,
) {
    writer.note(&format!("# columns: eta,k,allocator,{metric_name}"));
    for row in rows {
        writer.row(&format!(
            "{},{},{},{:.6}",
            row.eta,
            row.k,
            row.allocator,
            metric(row)
        ));
    }
}

/// Fig. 1 — structure of the dataset (long tail, dominant account).
pub fn fig1(scale: ExperimentScale) {
    let mut w = ResultWriter::new("fig1_dataset");
    let dataset = build_dataset(scale);
    let ledger_stats = dataset.ledger().stats();
    let graph_stats = GraphStats::compute(dataset.graph());
    w.note("# Fig.1 analogue: dataset structure statistics");
    w.row(&format!("blocks,{}", ledger_stats.block_count));
    w.row(&format!("transactions,{}", ledger_stats.transaction_count));
    w.row(&format!("accounts,{}", ledger_stats.account_count));
    w.row(&format!("self_loops,{}", ledger_stats.self_loop_count));
    w.row(&format!("multi_io,{}", ledger_stats.multi_io_count));
    w.row(&format!(
        "hottest_account_share,{:.4}",
        ledger_stats.hottest_account_share()
    ));
    w.row(&format!("activity_gini,{:.4}", graph_stats.gini));
    w.row(&format!(
        "low_activity_fraction,{:.4}",
        graph_stats.low_activity_fraction
    ));
    for (i, d) in graph_stats.incident_deciles.iter().enumerate() {
        w.row(&format!("incident_weight_decile_{},{:.3}", (i + 1) * 10, d));
    }
}

/// Fig. 2 — cross-shard transaction ratio γ vs k, per η.
pub fn fig2(rows: &[SweepRow]) {
    let mut w = ResultWriter::new("fig2_cross_shard_ratio");
    emit_metric(rows, &mut w, "gamma", |r| r.report.cross_shard_ratio);
}

/// Fig. 3 — workload balance ρ/λ vs k, per η.
pub fn fig3(rows: &[SweepRow]) {
    let mut w = ResultWriter::new("fig3_workload_balance");
    emit_metric(rows, &mut w, "rho_over_lambda", |r| {
        r.report.workload_std_normalized
    });
}

/// Fig. 4 — per-shard workload distribution case study (η = 2, k = 20).
pub fn fig4(scale: ExperimentScale) {
    let mut w = ResultWriter::new("fig4_workload_distribution");
    let dataset = build_dataset(scale);
    let (k, eta) = (20usize, 2.0);
    let params = TxAlloParams::for_graph(dataset.graph(), k).with_eta(eta);
    w.note("# Fig.4: normalized per-shard workload (sigma_i / lambda), eta=2, k=20");
    w.note("# columns: allocator,shard,normalized_workload");
    for &alloc in &ALL_ALLOCATORS {
        let (allocation, _) = run_allocator(alloc, &dataset, k, eta, None);
        let report = MetricsReport::compute(dataset.graph(), &allocation, &params);
        let mut loads = report.shard_loads.clone();
        // txallo-lint: allow(no-unstable-float-sort) — sorting bare f64 loads for figure output; equal keys are indistinguishable, there is no payload to scramble
        loads.sort_unstable_by(|a, b| b.partial_cmp(a).expect("finite"));
        for (shard, load) in loads.iter().enumerate() {
            w.row(&format!("{alloc},{shard},{load:.4}"));
        }
    }
}

/// Fig. 5 — normalized throughput Λ/λ vs k, per η.
pub fn fig5(rows: &[SweepRow]) {
    let mut w = ResultWriter::new("fig5_throughput");
    emit_metric(rows, &mut w, "throughput_times", |r| {
        r.report.throughput_normalized
    });
}

/// Fig. 6 — average confirmation latency ζ vs k, per η.
pub fn fig6(rows: &[SweepRow]) {
    let mut w = ResultWriter::new("fig6_avg_latency");
    emit_metric(rows, &mut w, "avg_latency_blocks", |r| r.report.avg_latency);
}

/// Fig. 7 — worst-case latency vs k, per η.
pub fn fig7(rows: &[SweepRow]) {
    let mut w = ResultWriter::new("fig7_worst_latency");
    emit_metric(rows, &mut w, "worst_latency_blocks", |r| {
        r.report.worst_latency
    });
}

/// Fig. 8 — allocation running time vs k, per η.
pub fn fig8(rows: &[SweepRow]) {
    let mut w = ResultWriter::new("fig8_running_time");
    emit_metric(rows, &mut w, "seconds", |r| r.time.as_secs_f64());
}

/// The workload used by the adaptive experiments (Figs. 9–10).
fn adaptive_workload(scale: ExperimentScale) -> WorkloadConfig {
    let base = scale.config();
    WorkloadConfig {
        block_size: 100,
        new_account_prob: 0.004,
        drift_interval: 50,
        ..base
    }
}

/// Fig. 9 — throughput evolution of A-TxAllo under different global
/// updating gaps τ₂ (plus the always-global reference), and the per-gap
/// averages (Fig. 9b).
pub fn fig9(scale: ExperimentScale, quick: bool) {
    let mut w = ResultWriter::new("fig9_throughput_evolution");
    let k = 16;
    let epoch_blocks = if quick { 10 } else { 30 };
    let epochs: u64 = if quick { 8 } else { 60 };
    let warmup_blocks = epoch_blocks as u64 * epochs; // 1:1 split (see EXPERIMENTS.md)

    let schedules: Vec<(String, HybridSchedule)> = if quick {
        vec![
            ("Global".into(), HybridSchedule::AlwaysGlobal),
            ("Gap=4".into(), HybridSchedule::Hybrid { global_gap: 4 }),
            ("Adaptive".into(), HybridSchedule::AlwaysAdaptive),
        ]
    } else {
        vec![
            ("Global".into(), HybridSchedule::AlwaysGlobal),
            ("Gap=10".into(), HybridSchedule::Hybrid { global_gap: 10 }),
            ("Gap=20".into(), HybridSchedule::Hybrid { global_gap: 20 }),
            ("Gap=40".into(), HybridSchedule::Hybrid { global_gap: 40 }),
            ("Adaptive".into(), HybridSchedule::AlwaysAdaptive),
        ]
    };

    w.note("# Fig.9a: columns: schedule,epoch,throughput_times");
    let mut averages = Vec::new();
    for (name, schedule) in &schedules {
        // Identical trace for every schedule: same seed, fresh generator.
        let mut generator = EthereumLikeGenerator::new(adaptive_workload(scale), scale.seed);
        let warm = generator.blocks(warmup_blocks);
        let stream = generator.blocks(epoch_blocks as u64 * epochs);
        let mut sim = ShardedChainSim::new(SimConfig {
            shards: k,
            eta: 2.0,
            epoch_blocks,
            method: "txallo".into(),
            schedule: *schedule,
            decay_per_epoch: None,
            threads: txallo_graph::par::threads_from_env(),
            residency: None,
        });
        sim.warmup(&warm);
        let reports = sim.run_stream(&stream);
        let mut sum = 0.0;
        for r in &reports {
            w.row(&format!(
                "{name},{},{:.4}",
                r.epoch, r.metrics.throughput_normalized
            ));
            sum += r.metrics.throughput_normalized;
        }
        averages.push((name.clone(), sum / reports.len() as f64));
    }
    w.note("# Fig.9b: columns: schedule,average_throughput_times");
    for (name, avg) in averages {
        w.row(&format!("{name},avg,{avg:.4}"));
    }
}

/// Fig. 10 — per-epoch allocation running time: pure G-TxAllo vs the
/// hybrid schedule (G-TxAllo every τ₂, A-TxAllo otherwise).
pub fn fig10(scale: ExperimentScale, quick: bool) {
    let mut w = ResultWriter::new("fig10_running_time_evolution");
    let k = 16;
    let epoch_blocks = if quick { 10 } else { 30 };
    let epochs: u64 = if quick { 8 } else { 60 };
    let warmup_blocks = epoch_blocks as u64 * epochs;
    let gap = if quick { 4 } else { 20 };

    w.note("# Fig.10: columns: schedule,epoch,update,seconds");
    for (name, schedule) in [
        ("Pure G-TxAllo".to_string(), HybridSchedule::AlwaysGlobal),
        (
            format!("Hybrid gap={gap}"),
            HybridSchedule::Hybrid { global_gap: gap },
        ),
    ] {
        let mut generator = EthereumLikeGenerator::new(adaptive_workload(scale), scale.seed);
        let warm = generator.blocks(warmup_blocks);
        let stream = generator.blocks(epoch_blocks as u64 * epochs);
        let mut sim = ShardedChainSim::new(SimConfig {
            shards: k,
            eta: 2.0,
            epoch_blocks,
            method: "txallo".into(),
            schedule,
            decay_per_epoch: None,
            threads: txallo_graph::par::threads_from_env(),
            residency: None,
        });
        sim.warmup(&warm);
        for r in sim.run_stream(&stream) {
            let kind = match r.update {
                UpdateKind::Global => "global",
                UpdateKind::Adaptive => "adaptive",
            };
            w.row(&format!(
                "{name},{},{kind},{:.6}",
                r.epoch,
                r.update_time.as_secs_f64()
            ));
        }
    }
}

/// §VI-B6's running-time table: mean end-to-end allocation time per method
/// at η = 2 (the paper reports 3447.9 s / 422.7 s / 122.3 s at full scale).
pub fn runtime_table(scale: ExperimentScale) {
    let mut w = ResultWriter::new("runtime_table");
    let dataset = build_dataset(scale);
    let eta = 2.0;
    let ks = [20usize, 40, 60];
    w.note("# columns: allocator,k,seconds (end-to-end, no cached init)");
    for &alloc in &ALL_ALLOCATORS {
        for &k in &ks {
            let (_, time) = run_allocator(alloc, &dataset, k, eta, None);
            w.row(&format!("{alloc},{k},{:.4}", time.as_secs_f64()));
        }
    }
    // Recursive-bisection METIS (the real pmetis strategy, ~log2(k)
    // multilevel passes — the variant whose running time grows with k).
    let registry = txallo_core::AllocatorRegistry::builtin();
    for &k in &ks {
        let params = TxAlloParams::for_graph(dataset.graph(), k).with_eta(eta);
        let mut metis_rb = registry
            .batch("metis-recursive", &params)
            .expect("builtin name");
        let start = std::time::Instant::now();
        let _ = metis_rb.allocate(&dataset);
        w.row(&format!(
            "Metis (recursive bisection),{k},{:.4}",
            start.elapsed().as_secs_f64()
        ));
    }
    // G-TxAllo initialization share (paper: 67.6 s of 122.3 s).
    let start = std::time::Instant::now();
    let init = louvain(dataset.graph(), &txallo_louvain::LouvainConfig::default());
    let init_time = start.elapsed();
    w.row(&format!(
        "G-TxAllo louvain init,-,{:.4}",
        init_time.as_secs_f64()
    ));
    w.note(&format!("# louvain communities: {}", init.community_count));
}

/// The headline comparison (§I / §VI-B2): γ at k = 60, η = 2 for hash vs
/// METIS vs TxAllo (paper: 98% / 28% / 12%).
pub fn headline(scale: ExperimentScale) {
    let mut w = ResultWriter::new("headline");
    let dataset = build_dataset(scale);
    let (k, eta) = (60usize, 2.0);
    let params = TxAlloParams::for_graph(dataset.graph(), k).with_eta(eta);
    w.note("# headline: gamma at k=60, eta=2 (paper: Random 98%, METIS 28%, TxAllo 12%)");
    for alloc in [
        AllocatorKind::Random,
        AllocatorKind::Metis,
        AllocatorKind::TxAllo,
    ] {
        let (allocation, _) = run_allocator(alloc, &dataset, k, eta, None);
        let r = MetricsReport::compute(dataset.graph(), &allocation, &params);
        w.row(&format!("{alloc},{:.4}", r.cross_shard_ratio));
    }
    // Also report G-TxAllo's detailed counters at this setting (via the
    // reusable plan — the counters are not part of the `Allocator` trait).
    let plan = GTxAlloPlan::new(dataset.graph(), &params.louvain);
    let outcome = plan.allocate(&params);
    w.note(&format!(
        "# G-TxAllo: louvain communities = {}, sweeps = {}, moves = {}",
        outcome.initial_communities, outcome.sweeps, outcome.moves
    ));
}

/// Ablation study of G-TxAllo's design choices (DESIGN.md): the Louvain
/// initialization vs hash / round-robin starts, and Eq. 9's candidate
/// restriction vs a full `k`-scan.
pub fn ablation(scale: ExperimentScale) {
    use std::time::Instant;
    use txallo_core::{gtxallo_full_scan, gtxallo_with_init_strategy, InitStrategy};

    let mut w = ResultWriter::new("ablation");
    let dataset = build_dataset(scale);
    let (k, eta) = (20usize, 2.0);
    let params = TxAlloParams::for_graph(dataset.graph(), k).with_eta(eta);

    w.note("# ablation A: initialization strategy (k=20, eta=2)");
    w.note("# columns: variant,gamma,rho_over_lambda,throughput_times,seconds");
    for strategy in InitStrategy::ALL {
        let start = Instant::now();
        let out = gtxallo_with_init_strategy(&params, dataset.graph(), strategy);
        let secs = start.elapsed().as_secs_f64();
        let r = MetricsReport::compute(dataset.graph(), &out.allocation, &params);
        w.row(&format!(
            "{},{:.4},{:.4},{:.4},{:.4}",
            strategy.name(),
            r.cross_shard_ratio,
            r.workload_std_normalized,
            r.throughput_normalized,
            secs
        ));
    }

    w.note("# ablation B: candidate communities C_v (Eq. 9) vs full k-scan");
    let (restricted, restricted_time) =
        run_allocator(AllocatorKind::TxAllo, &dataset, k, eta, None);
    let restricted_secs = restricted_time.as_secs_f64();
    let start = Instant::now();
    let full = gtxallo_full_scan(&params, dataset.graph());
    let full_secs = start.elapsed().as_secs_f64();
    let r1 = MetricsReport::compute(dataset.graph(), &restricted, &params);
    let r2 = MetricsReport::compute(dataset.graph(), &full, &params);
    w.row(&format!(
        "candidate-restricted,{:.4},{:.4},{:.4},{:.4}",
        r1.cross_shard_ratio, r1.workload_std_normalized, r1.throughput_normalized, restricted_secs
    ));
    w.row(&format!(
        "full-scan,{:.4},{:.4},{:.4},{:.4}",
        r2.cross_shard_ratio, r2.workload_std_normalized, r2.throughput_normalized, full_secs
    ));
}

/// Extension experiment: measured queue latency vs capacity headroom.
///
/// Eq. 4 is a per-batch model (each block's backlog is scored, not carried
/// over); a real shard carries its backlog forward, so whenever the
/// η-inflated workload exceeds capacity the queues diverge. This experiment
/// replays the same stream through the per-shard queue simulator at
/// capacity `c · block_size/k` for several headroom factors `c` and reports
/// the measured mean/p99 latency per allocator — the allocator with the
/// lowest cross-shard ratio and best balance (TxAllo) reaches latency ≈ 1
/// with the least headroom.
pub fn latency_validation(scale: ExperimentScale) {
    use txallo_sim::ShardQueueSim;

    let mut w = ResultWriter::new("latency_validation");
    let (k, eta) = (16usize, 2.0);
    let mut generator = EthereumLikeGenerator::new(
        WorkloadConfig {
            block_size: 100,
            ..scale.config()
        },
        scale.seed,
    );
    let warm = generator.blocks(500);
    let eval = generator.blocks(200);

    let mut graph = txallo_graph::TxGraph::new();
    for b in warm.iter().chain(eval.iter()) {
        graph.ingest_block(b);
    }
    let ledger =
        txallo_model::Ledger::from_blocks(warm.iter().chain(eval.iter()).cloned().collect())
            .expect("contiguous");
    let dataset = txallo_core::Dataset::from_parts(ledger, graph.clone());

    w.note("# columns: allocator,headroom,measured_mean,measured_p99,unconfirmed");
    for &alloc_kind in &ALL_ALLOCATORS {
        let (allocation, _) = run_allocator(alloc_kind, &dataset, k, eta, None);
        for headroom in [1.5f64, 2.0, 3.0, 4.0] {
            let capacity = headroom * 100.0 / k as f64;
            let mut sim = ShardQueueSim::new(k, capacity, eta);
            for b in &eval {
                sim.step_block(b, &graph, &allocation);
            }
            sim.drain(5_000);
            let stats = sim.stats();
            w.row(&format!(
                "{alloc_kind},{headroom},{:.3},{:.3},{}",
                stats.mean_latency, stats.p99_latency, stats.unconfirmed
            ));
        }
    }
}

/// Extension experiment: measure η empirically from the consensus
/// substrate. The paper treats η as a hyper-parameter swept over 2–10;
/// the chain engine counts actual PBFT/Atomix messages per shard per
/// transaction and reports the observed ratio under each allocator.
pub fn measure_eta(scale: ExperimentScale) {
    use txallo_chain::{ChainEngine, ChainEngineConfig};

    let mut w = ResultWriter::new("measure_eta");
    let dataset = build_dataset(ExperimentScale {
        factor: scale.factor.min(0.25),
        ..scale
    });
    let k = 8;
    w.note("# columns: allocator,intra_msgs_per_shard_tx,cross_msgs_per_shard_tx,measured_eta,cross_committed,aborted");
    for &alloc_kind in &ALL_ALLOCATORS {
        let (allocation, _) = run_allocator(alloc_kind, &dataset, k, 2.0, None);
        let mut engine = ChainEngine::new(ChainEngineConfig::new(k));
        for block in dataset.ledger().blocks() {
            engine.process_block(block, dataset.graph(), &allocation);
        }
        let r = engine.report();
        w.row(&format!(
            "{alloc_kind},{:.1},{:.1},{:.3},{},{}",
            r.intra_cost_per_shard,
            r.cross_cost_per_shard,
            r.measured_eta(),
            r.cross_committed,
            r.aborted
        ));
    }
}

/// Extension experiment: BrokerChain-style hot-account splitting on top of
/// TxAllo — the mechanism the paper credits BrokerChain \[19\] with for
/// workload balance. Compares plain G-TxAllo against the split-then-
/// allocate broker pipeline on the metrics the hot shard hurts.
pub fn broker(scale: ExperimentScale) {
    use txallo_core::{allocate_with_brokers, BrokerConfig};

    let mut w = ResultWriter::new("broker");
    let dataset = build_dataset(scale);
    let (k, eta) = (20usize, 2.0);
    let params = TxAlloParams::for_graph(dataset.graph(), k).with_eta(eta);

    let (plain_alloc, _) = run_allocator(AllocatorKind::TxAllo, &dataset, k, eta, None);
    let plain = MetricsReport::compute(dataset.graph(), &plain_alloc, &params);
    let (_, brokered) = allocate_with_brokers(dataset.graph(), &params, &BrokerConfig::default());

    w.note("# columns: variant,gamma,rho_over_lambda,throughput_times,avg_latency,worst_latency,split_accounts");
    w.row(&format!(
        "plain G-TxAllo,{:.4},{:.4},{:.4},{:.3},{:.0},0",
        plain.cross_shard_ratio,
        plain.workload_std_normalized,
        plain.throughput_normalized,
        plain.avg_latency,
        plain.worst_latency
    ));
    w.row(&format!(
        "broker pipeline,{:.4},{:.4},{:.4},{:.3},{:.0},{}",
        brokered.cross_shard_ratio,
        brokered.workload_std_normalized,
        brokered.throughput_normalized,
        brokered.avg_latency,
        brokered.worst_latency,
        brokered.split_accounts.len()
    ));
}

/// Extension experiment: recency weighting. §VI-A recommends training on
/// recent history; this compares full-history, sliding-window and
/// exponentially-decayed graphs by the quality of the allocation they
/// produce *for the next epoch* of a drifting workload.
pub fn recency(scale: ExperimentScale) {
    use txallo_graph::{DecayingGraph, SlidingWindowGraph, TxGraph};

    let mut w = ResultWriter::new("recency");
    let (k, eta) = (16usize, 2.0);
    let cfg = WorkloadConfig {
        block_size: 100,
        drift_interval: 20, // brisk drift so recency matters
        new_account_prob: 0.004,
        ..scale.config()
    };
    let mut generator = EthereumLikeGenerator::new(cfg, scale.seed);
    let history = generator.blocks(600);
    let future = generator.blocks(50);

    // Build the three views of history.
    let mut full = TxGraph::new();
    for b in &history {
        full.ingest_block(b);
    }
    let mut window = SlidingWindowGraph::new(200);
    for b in &history {
        window.push_block(b.clone());
    }
    let mut decayed = DecayingGraph::new(0.8, 1e-4);
    for chunk in history.chunks(50) {
        decayed.push_epoch(chunk);
    }

    // The scoring graph must contain the future accounts too.
    let mut scoring = full.clone();
    for b in &future {
        scoring.ingest_block(b);
    }

    w.note("# columns: history_view,gamma_next_epoch,throughput_next_epoch");
    let views: Vec<(&str, &TxGraph)> = vec![
        ("full-history", &full),
        ("window-200", window.graph()),
        ("decay-0.8", decayed.graph()),
    ];
    for (name, graph) in views {
        let params = TxAlloParams::for_graph(graph, k).with_eta(eta);
        // Graph-only views have no ledger to form a `Dataset`, so this
        // goes through the plan path of the same G-TxAllo pipeline.
        let alloc = GTxAlloPlan::new(graph, &params.louvain)
            .allocate(&params)
            .allocation;
        // Extend labels to cover future-only accounts via hash fallback.
        let mut labels = alloc.labels().to_vec();
        use txallo_graph::WeightedGraph;
        for v in labels.len()..scoring.node_count() {
            labels.push(scoring.account(v as u32).hash_shard(k).0);
        }
        let extended = txallo_core::Allocation::new(labels, k);
        let m = txallo_sim::epoch_metrics(&future, &scoring, &extended, k, eta);
        w.row(&format!(
            "{name},{:.4},{:.4}",
            m.cross_shard_ratio, m.throughput_normalized
        ));
    }
}

/// Timed snapshot of the sweep hot-path components on the 5k-account /
/// 40k-transaction component workload, dumped as JSON (`BENCH_pr<N>.json`)
/// so successive PRs accumulate a perf trajectory. Each number is the
/// median of `reps` runs, in milliseconds.
pub fn bench_snapshot(out_path: &str) {
    use std::time::Instant;
    use txallo_core::{AtxAllo, GTxAllo, GTxAlloPlan};
    use txallo_graph::CsrGraph;
    use txallo_louvain::{louvain_csr, LouvainConfig};

    fn median_ms(reps: usize, mut f: impl FnMut()) -> f64 {
        let mut samples: Vec<f64> = (0..reps)
            .map(|_| {
                let t = Instant::now();
                f();
                t.elapsed().as_secs_f64() * 1e3
            })
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        samples[samples.len() / 2]
    }

    let cfg = WorkloadConfig {
        accounts: 5_000,
        transactions: 40_000,
        block_size: 100,
        groups: 80,
        ..WorkloadConfig::default()
    };
    let mut generator = EthereumLikeGenerator::new(cfg, 42);
    let ledger = generator.default_ledger();
    let graph = txallo_graph::TxGraph::from_ledger(&ledger);
    let k = 20;
    let params = TxAlloParams::for_graph(&graph, k);
    let reps = 15;

    // Ingestion: sorted-run slab adjacency vs the preserved hash-map
    // adjacency (`ingest/` bench group; same-run ratio). Measured once and
    // reported under both `graph_from_ledger` (the key earlier BENCH
    // snapshots used) and `ingest_ledger` (paired with its seed) — they
    // are the same quantity.
    let ingest_ledger = median_ms(reps, || {
        std::hint::black_box(txallo_graph::TxGraph::from_ledger(&ledger));
    });
    let from_ledger = ingest_ledger;
    let ingest_ledger_seed = median_ms(reps, || {
        std::hint::black_box(crate::seed_ref::SeedTxGraph::from_ledger(&ledger));
    });
    let csr_snapshot = median_ms(reps, || {
        std::hint::black_box(CsrGraph::from_graph(&graph));
    });
    // The preserved pre-radix build (edge-list extraction + per-row sort)
    // — the same-run baseline for the counting-sort snapshot.
    let csr_snapshot_seed = median_ms(reps, || {
        std::hint::black_box(crate::seed_ref::seed_csr_from_graph(&graph));
    });
    // The plan's renumbered snapshot on its own — the CSR share of
    // G-TxAllo's init cost, reported separately from the Louvain share.
    let plan_csr = {
        let order = graph.nodes_in_canonical_order();
        let mut new_id = vec![0u32; order.len()];
        for (i, &v) in order.iter().enumerate() {
            new_id[v as usize] = i as u32;
        }
        median_ms(reps, || {
            std::hint::black_box(CsrGraph::from_graph_relabeled(&graph, &new_id));
        })
    };
    let csr = CsrGraph::from_graph(&graph);
    let louvain_full = median_ms(reps, || {
        std::hint::black_box(txallo_louvain::louvain(&graph, &LouvainConfig::default()));
    });
    let louvain_flat = median_ms(reps, || {
        std::hint::black_box(louvain_csr(&csr, &LouvainConfig::default()));
    });
    let plan = GTxAlloPlan::new(&graph, &LouvainConfig::default());
    let gtx = GTxAllo::new(params.clone());
    let optimize_only = median_ms(reps, || {
        std::hint::black_box(gtx.allocate_planned(&plan));
    });
    let end_to_end = median_ms(reps, || {
        std::hint::black_box(gtx.allocate_graph(&graph));
    });

    let prev = gtx.allocate_graph(&graph);
    // Per-candidate gain evaluation over the converged k-shard state
    // (σ ≈ λ there, so both throughput regimes are exercised): cached
    // fast path vs the pre-cache formula recompute, bit-identical results.
    let (gain_eval, gain_eval_seed) = {
        use txallo_core::{CommunityState, MoveScratch};
        let kstate =
            CommunityState::from_labels(&csr, prev.labels(), k, params.eta, params.capacity);
        let mut scratch = MoveScratch::default();
        let fast = median_ms(reps, || {
            std::hint::black_box(crate::seed_ref::gain_sweep_fast(
                &csr,
                prev.labels(),
                &kstate,
                &mut scratch,
            ));
        });
        let seed = median_ms(reps, || {
            std::hint::black_box(crate::seed_ref::gain_sweep_seed(
                &csr,
                prev.labels(),
                &kstate,
                &mut scratch,
            ));
        });
        (fast, seed)
    };
    let mut graph2 = graph.clone();
    let new_blocks = generator.blocks(10);
    let mut touched = Vec::new();
    for b in &new_blocks {
        touched.extend(graph2.ingest_block(b));
    }
    touched.sort_unstable();
    touched.dedup();
    let params2 = TxAlloParams::for_graph(&graph2, k);
    let touched_fraction = touched.len() as f64 / {
        use txallo_graph::WeightedGraph;
        graph2.node_count() as f64
    };
    // Snapshot assembly over the touched set: straight run copies vs the
    // seed per-row hash gather + packed-key sort (`snapshot/` group).
    let (snapshot_touched, snapshot_touched_seed) = {
        let mut seed_graph2 = crate::seed_ref::SeedTxGraph::from_ledger(&ledger);
        for b in &new_blocks {
            seed_graph2.ingest_block(b);
        }
        let mut snap = txallo_graph::DeltaCsr::default();
        let fast = median_ms(reps, || {
            snap.refill_touched(&graph2, &touched);
            std::hint::black_box(snap.len());
        });
        let mut rows = crate::seed_ref::SeedDeltaRows::default();
        let seed = median_ms(reps, || {
            crate::seed_ref::seed_delta_rows(&seed_graph2, &touched, &mut rows);
            std::hint::black_box(rows.node.len());
        });
        (fast, seed)
    };
    // Serving configuration: warm session (aggregates carried across
    // epochs), delta folding + delta-CSR sweep per epoch.
    let warm = txallo_core::AtxAlloSession::new(&graph, &prev, &params2);
    let atxallo_epoch = median_ms(reps, || {
        let mut session = warm.clone();
        for blk in &new_blocks {
            session.apply_block(&graph2, blk);
        }
        std::hint::black_box(session.update(&graph2, &touched, &params2));
    });
    // The public serving surface: the same warm session driven through
    // the `StreamingAllocator` API (`on_block` + `end_epoch`), including
    // the move-diff construction the service layer adds.
    let stream_warm = {
        use txallo_core::StreamingAllocator;
        let mut stream = txallo_core::AdaptiveStream::new(params2.clone());
        stream.begin(&graph, &params2);
        stream
    };
    let atxallo_epoch_stream = median_ms(reps, || {
        use txallo_core::StreamingAllocator;
        let mut stream = stream_warm.clone();
        for blk in &new_blocks {
            stream.on_block(&graph2, blk);
        }
        std::hint::black_box(stream.end_epoch(&graph2, txallo_core::EpochKind::Scheduled));
    });
    // Stateless one-shot paths (aggregates rebuilt per call), both routes.
    let atx = AtxAllo::new(params2.clone());
    let atxallo_incremental = median_ms(reps, || {
        std::hint::black_box(atx.update_incremental(&graph2, &prev, &touched));
    });
    let atxallo_full = median_ms(reps, || {
        std::hint::black_box(atx.update_full(&graph2, &prev, &touched));
    });
    // The seed implementation, same-run: the honest baseline for the
    // speedup claim regardless of machine drift between PR snapshots.
    let atxallo_seed = median_ms(reps, || {
        std::hint::black_box(crate::seed_ref::seed_atxallo_update(
            &params2, &graph2, &prev, &touched,
        ));
    });

    // The multi-core sweep engine (PR 7): the warm epoch update and the
    // Louvain initialization at 1/2/4 workers. The allocations are pinned
    // bit-identical across counts, so this matrix records scaling only —
    // on a single-core container expect a flat-or-worse curve, but record
    // it anyway so multi-core machines accumulate a real trajectory.
    let sweep_threads: Vec<(usize, f64, f64)> = [1usize, 2, 4]
        .iter()
        .map(|&t| {
            let params_t = params2.clone().with_threads(t);
            let epoch = median_ms(reps, || {
                let mut session = warm.clone();
                for blk in &new_blocks {
                    session.apply_block(&graph2, blk);
                }
                std::hint::black_box(session.update(&graph2, &touched, &params_t));
            });
            let lv = median_ms(reps, || {
                std::hint::black_box(louvain_csr(&csr, &LouvainConfig::default().with_threads(t)));
            });
            (t, epoch, lv)
        })
        .collect();
    let sweep_threads_json = sweep_threads
        .iter()
        .map(|(t, epoch, lv)| {
            format!(
                "{{\"threads\": {t}, \"atxallo_epoch_update\": {epoch:.3}, \"louvain_csr\": {lv:.3}}}"
            )
        })
        .collect::<Vec<_>>()
        .join(", ");

    // The canonical-reduction matrix (PR 10): the three paths rebuilt on
    // `txallo_graph::par::reduce_tree` — Louvain aggregation over the init
    // labels, the full METIS partition (heavy-edge matching + FM
    // refinement are its threaded phases), and big-block ingestion through
    // the warm session's clique-expansion fold. Each is pinned
    // bit-identical across thread counts (proptests + parallel_invariance),
    // so this matrix, like `sweep_threads`, records scaling only. The
    // ingest blocks are oversized (~5 000 transactions each) so the work
    // crosses the canonical chunk quantum and the fold genuinely splits.
    let reduction_threads: Vec<(usize, f64, f64, f64)> = {
        use txallo_louvain::{aggregate_graph_threaded, AggregateScratch};
        use txallo_metis::{metis_partition, MetisConfig};
        let init = louvain_csr(&csr, &LouvainConfig::default());
        let mut agg_scratch = AggregateScratch::default();
        let big_nodes = {
            let mut ingest_graph = graph2.clone();
            let extra = generator.blocks(100);
            let mut txs: Vec<_> = extra
                .iter()
                .flat_map(|b| b.transactions().iter().cloned())
                .collect();
            let tail = txs.split_off(txs.len() / 2);
            [
                txallo_model::Block::new(1_000, txs),
                txallo_model::Block::new(1_001, tail),
            ]
            .iter()
            .map(|blk| ingest_graph.ingest_block_nodes(blk))
            .collect::<Vec<_>>()
        };
        [1usize, 2, 4]
            .iter()
            .map(|&t| {
                let agg = median_ms(reps, || {
                    std::hint::black_box(aggregate_graph_threaded(
                        &csr,
                        &init.communities,
                        init.community_count,
                        &mut agg_scratch,
                        t,
                    ));
                });
                let cfg = MetisConfig::new(k).with_threads(t);
                let metis = median_ms(reps, || {
                    std::hint::black_box(metis_partition(&csr, &cfg));
                });
                let ingest = median_ms(reps, || {
                    let mut session = warm.clone();
                    for nodes in &big_nodes {
                        session.apply_block_nodes_threaded(nodes, t);
                    }
                    std::hint::black_box(session);
                });
                (t, agg, metis, ingest)
            })
            .collect()
    };
    let reduction_threads_json = reduction_threads
        .iter()
        .map(|(t, agg, metis, ingest)| {
            format!(
                "{{\"threads\": {t}, \"louvain_aggregate\": {agg:.3}, \
                 \"metis_partition\": {metis:.3}, \"ingest_big_block\": {ingest:.3}}}"
            )
        })
        .collect::<Vec<_>>()
        .join(", ");

    // The 50k/400k scale workload: where the §VI-B6 init cost actually
    // bites; the CSR build ratio at this size is the tentpole claim.
    let scale_reps = 5;
    let big = {
        let cfg = WorkloadConfig {
            accounts: 50_000,
            transactions: 400_000,
            block_size: 200,
            groups: 800,
            ..WorkloadConfig::default()
        };
        let mut generator = EthereumLikeGenerator::new(cfg, 42);
        txallo_graph::TxGraph::from_ledger(&generator.default_ledger())
    };
    let scale_csr_build = median_ms(scale_reps, || {
        std::hint::black_box(CsrGraph::from_graph(&big));
    });
    let scale_csr_build_seed = median_ms(scale_reps, || {
        std::hint::black_box(crate::seed_ref::seed_csr_from_graph(&big));
    });
    let scale_plan_csr = {
        let order = big.nodes_in_canonical_order();
        let mut new_id = vec![0u32; order.len()];
        for (i, &v) in order.iter().enumerate() {
            new_id[v as usize] = i as u32;
        }
        median_ms(scale_reps, || {
            std::hint::black_box(CsrGraph::from_graph_relabeled(&big, &new_id));
        })
    };
    let scale_end_to_end = {
        let gtx = GTxAllo::new(TxAlloParams::for_graph(&big, 40));
        median_ms(scale_reps, || {
            std::hint::black_box(gtx.allocate_graph(&big));
        })
    };

    // Recovery (PR 6): restarting the epoch service from a checkpoint
    // (decode + import of the serialized labels/aggregates/graph) vs the
    // §V-B cold path (re-ingest the whole history, one global solve).
    // Also the protocol cost a faulty run pays, from the substrate's own
    // tallies: timeout retries and Atomix aborts under a mixed fault plan.
    let (
        recovery_cold_init,
        recovery_warm_resume,
        recovery_image_kib,
        fault_retries,
        fault_aborted,
        fault_migrations_aborted,
        fault_crash_outages,
    ) = {
        use txallo_chain::{ChainService, ChainServiceConfig, FaultPlan};
        let service_cfg = || ChainServiceConfig {
            epoch_blocks: 10,
            ..ChainServiceConfig::new(4)
        };
        let trace_cfg = WorkloadConfig {
            accounts: 5_000,
            transactions: 40_000,
            block_size: 100,
            groups: 80,
            ..WorkloadConfig::default()
        };
        let mut generator = EthereumLikeGenerator::new(trace_cfg, 42);
        let warm_blocks = generator.blocks(100);
        let live_blocks = generator.blocks(60);

        let mut service = ChainService::new(service_cfg());
        service.set_fault_plan(FaultPlan::mixed(7));
        service.warmup(&warm_blocks);
        service.run(&live_blocks);
        let report = service.report();
        let image = service.checkpoint().expect("boundary checkpoint");

        // Cold: everything the checkpoint lets us skip — replaying the
        // history into the graph and re-running the global solve.
        let cold = median_ms(reps, || {
            let mut cold = ChainService::new(service_cfg());
            cold.warmup(&warm_blocks);
            std::hint::black_box(cold.allocation().len());
        });
        // Warm: decode + validate + import the image; no solve at all.
        let warm = median_ms(reps, || {
            let resumed = ChainService::resume(service_cfg(), &image).expect("resume");
            std::hint::black_box(resumed.allocation().len());
        });
        (
            cold,
            warm,
            image.len() as f64 / 1024.0,
            report.retries,
            report.aborted,
            report.migrations_aborted,
            report.crash_outages,
        )
    };

    // Memory accounting of the component workload's graph and warm
    // session (PR 8: the `MemoryFootprint` surface, reported in every
    // snapshot from here on).
    let footprint = graph2.memory_footprint();
    let session_bytes = warm.approx_bytes();

    // Out-of-core streaming replay (PR 8): a million-account epoch loop
    // through the full service surface, ledger never materialized, cold
    // rows evicted past the residency window. Per-phase decomposition in
    // seconds (§VI-B6 style).
    eprintln!("# running out-of-core stream replay (1M accounts; this is the slow part)...");
    let stream_replay = crate::stream_bench::run_stream_bench(
        &crate::stream_bench::StreamBenchConfig::at_scale(1_000_000),
    )
    .to_json();

    let json = format!(
        "{{\n  \"workload\": {{\"accounts\": 5000, \"transactions\": 40000, \"k\": {k}, \"seed\": 42}},\n  \
         \"unit\": \"ms (median of {reps})\",\n  \
         \"graph_from_ledger\": {from_ledger:.3},\n  \
         \"ingest_ledger\": {ingest_ledger:.3},\n  \
         \"ingest_ledger_seed\": {ingest_ledger_seed:.3},\n  \
         \"snapshot_touched\": {snapshot_touched:.3},\n  \
         \"snapshot_touched_seed\": {snapshot_touched_seed:.3},\n  \
         \"csr_snapshot\": {csr_snapshot:.3},\n  \
         \"csr_snapshot_seed\": {csr_snapshot_seed:.3},\n  \
         \"plan_csr\": {plan_csr:.3},\n  \
         \"louvain_full\": {louvain_full:.3},\n  \
         \"louvain_csr\": {louvain_flat:.3},\n  \
         \"gtxallo_optimize_only\": {optimize_only:.3},\n  \
         \"gtxallo_end_to_end\": {end_to_end:.3},\n  \
         \"gain_eval\": {gain_eval:.3},\n  \
         \"gain_eval_seed\": {gain_eval_seed:.3},\n  \
         \"atxallo_epoch_update\": {atxallo_epoch:.3},\n  \
         \"atxallo_epoch_update_stream\": {atxallo_epoch_stream:.3},\n  \
         \"atxallo_epoch_update_incremental\": {atxallo_incremental:.3},\n  \
         \"atxallo_epoch_update_full\": {atxallo_full:.3},\n  \
         \"atxallo_epoch_update_seed\": {atxallo_seed:.3},\n  \
         \"atxallo_touched_fraction\": {touched_fraction:.4},\n  \
         \"sweep_threads\": [{sweep_threads_json}],\n  \
         \"reduction_threads\": [{reduction_threads_json}],\n  \
         \"scale_workload\": {{\"accounts\": 50000, \"transactions\": 400000, \"k\": 40, \"seed\": 42}},\n  \
         \"scale_unit\": \"ms (median of {scale_reps})\",\n  \
         \"scale_csr_build\": {scale_csr_build:.3},\n  \
         \"scale_csr_build_seed\": {scale_csr_build_seed:.3},\n  \
         \"scale_plan_csr\": {scale_plan_csr:.3},\n  \
         \"scale_gtxallo_end_to_end\": {scale_end_to_end:.3},\n  \
         \"recovery_workload\": {{\"warm_blocks\": 100, \"live_blocks\": 60, \"epoch_blocks\": 10, \"k\": 4, \"fault_seed\": 7}},\n  \
         \"recovery_cold_init\": {recovery_cold_init:.3},\n  \
         \"recovery_warm_resume\": {recovery_warm_resume:.3},\n  \
         \"recovery_image_kib\": {recovery_image_kib:.1},\n  \
         \"fault_run_retries\": {fault_retries},\n  \
         \"fault_run_aborted\": {fault_aborted},\n  \
         \"fault_run_migrations_aborted\": {fault_migrations_aborted},\n  \
         \"fault_run_crash_outages\": {fault_crash_outages},\n  \
         \"memory_footprint\": {{\"slab_arena_bytes\": {slab_arena}, \"slab_live_entries\": {slab_live}, \
         \"node_scalar_bytes\": {node_scalar}, \"interner_bytes\": {interner}, \
         \"graph_resident_bytes\": {graph_resident}, \"session_bytes\": {session_bytes}}},\n  \
         \"stream_replay\": {stream_replay}\n}}\n",
        slab_arena = footprint.slab_arena_bytes,
        slab_live = footprint.slab_live_entries,
        node_scalar = footprint.node_scalar_bytes,
        interner = footprint.interner_bytes,
        graph_resident = footprint.resident_bytes(),
    );
    print!("{json}");
    if let Err(e) = std::fs::write(out_path, &json) {
        eprintln!("# could not write {out_path}: {e}");
    } else {
        eprintln!("# wrote {out_path}");
    }
}
