//! Synthetic Ethereum-like workloads and trace I/O.
//!
//! The paper evaluates on 91.8M real Ethereum transactions (blocks
//! 10,000,000–10,600,000). That dataset is not redistributable, so this
//! crate generates a *statistically equivalent* trace (see DESIGN.md,
//! "Dataset substitution") with the properties the evaluation depends on:
//!
//! * **long-tailed account activity** — Zipf-distributed participation with
//!   a single dominant account (paper: ≈11% of all transactions);
//! * **latent community structure** — accounts belong to power-law-sized
//!   groups and prefer in-group counterparties, which is what graph-based
//!   allocators exploit;
//! * **multi-input/multi-output transactions** and **self-loops**;
//! * **temporal drift** — group popularity rotates slowly and new accounts
//!   are born over time, so adaptive re-allocation has real work to do.
//!
//! Real traces can also be round-tripped through a simple CSV format
//! ([`csvio`]) for replaying actual Ethereum exports.

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]

pub mod config;
pub mod csvio;
pub mod etl;
pub mod generator;
pub mod stream;
pub mod zipf;

pub use config::WorkloadConfig;
pub use csvio::{read_ledger_csv, write_ledger_csv, CsvError};
pub use etl::{address_to_account, read_ethereum_etl_csv};
pub use generator::EthereumLikeGenerator;
pub use stream::StreamingWorkload;
pub use zipf::ZipfTable;
