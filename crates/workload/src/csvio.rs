//! Minimal CSV trace format for replaying real exports.
//!
//! One transaction per line:
//! `block_height,in1|in2|…,out1|out2|…` with decimal account ids.
//! The format maps 1:1 onto what an Ethereum-ETL export reduces to once
//! values/gas/scripts are dropped (§III-A keeps only the account sets).

use std::fmt;
use std::io::{BufRead, Write};

use txallo_model::{AccountId, Block, Ledger, Transaction};

/// Errors raised while parsing a CSV trace.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line (missing fields / bad number), with its 1-based
    /// line number.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "I/O error: {e}"),
            CsvError::Malformed { line, reason } => {
                write!(f, "malformed trace line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Writes `ledger` in the CSV trace format.
pub fn write_ledger_csv(ledger: &Ledger, mut out: impl Write) -> Result<(), CsvError> {
    for block in ledger.blocks() {
        for tx in block.transactions() {
            let ins: Vec<String> = tx.inputs().iter().map(|a| a.0.to_string()).collect();
            let outs: Vec<String> = tx.outputs().iter().map(|a| a.0.to_string()).collect();
            writeln!(
                out,
                "{},{},{}",
                block.height(),
                ins.join("|"),
                outs.join("|")
            )?;
        }
    }
    Ok(())
}

fn parse_accounts(field: &str, line: usize) -> Result<Vec<AccountId>, CsvError> {
    if field.is_empty() {
        return Err(CsvError::Malformed {
            line,
            reason: "empty account list".into(),
        });
    }
    field
        .split('|')
        .map(|tok| {
            tok.parse::<u64>()
                .map(AccountId)
                .map_err(|e| CsvError::Malformed {
                    line,
                    reason: format!("bad account id {tok:?}: {e}"),
                })
        })
        .collect()
}

/// Reads a ledger from the CSV trace format. Transactions must appear in
/// block order; consecutive rows with the same height form one block.
/// Gaps in heights are tolerated by renumbering blocks contiguously
/// (real exports often skip empty blocks).
pub fn read_ledger_csv(input: impl BufRead) -> Result<Ledger, CsvError> {
    let mut blocks: Vec<Block> = Vec::new();
    let mut current_height: Option<u64> = None;
    let mut current_txs: Vec<Transaction> = Vec::new();

    for (idx, line) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.splitn(3, ',');
        let height: u64 = fields
            .next()
            .ok_or_else(|| CsvError::Malformed {
                line: line_no,
                reason: "missing height".into(),
            })?
            .parse()
            .map_err(|e| CsvError::Malformed {
                line: line_no,
                reason: format!("bad height: {e}"),
            })?;
        let ins = parse_accounts(
            fields.next().ok_or_else(|| CsvError::Malformed {
                line: line_no,
                reason: "missing inputs".into(),
            })?,
            line_no,
        )?;
        let outs = parse_accounts(
            fields.next().ok_or_else(|| CsvError::Malformed {
                line: line_no,
                reason: "missing outputs".into(),
            })?,
            line_no,
        )?;
        let tx = Transaction::new(ins, outs).map_err(|e| CsvError::Malformed {
            line: line_no,
            reason: e.to_string(),
        })?;

        match current_height {
            Some(h) if h == height => current_txs.push(tx),
            Some(h) if height < h => {
                return Err(CsvError::Malformed {
                    line: line_no,
                    reason: format!("heights must be non-decreasing ({height} after {h})"),
                });
            }
            Some(_) => {
                blocks.push(Block::new(
                    blocks.len() as u64,
                    std::mem::take(&mut current_txs),
                ));
                current_height = Some(height);
                current_txs.push(tx);
            }
            None => {
                current_height = Some(height);
                current_txs.push(tx);
            }
        }
    }
    if !current_txs.is_empty() {
        blocks.push(Block::new(blocks.len() as u64, current_txs));
    }
    Ledger::from_blocks(blocks).map_err(|e| CsvError::Malformed {
        line: 0,
        reason: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EthereumLikeGenerator, WorkloadConfig};
    use std::io::BufReader;

    #[test]
    fn roundtrip_preserves_transactions() {
        let cfg = WorkloadConfig {
            accounts: 500,
            multi_io_prob: 0.3,
            ..WorkloadConfig::default()
        };
        let mut gen = EthereumLikeGenerator::new(cfg, 8);
        let ledger = gen.ledger(5);
        let mut buf = Vec::new();
        write_ledger_csv(&ledger, &mut buf).unwrap();
        let back = read_ledger_csv(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(back.transaction_count(), ledger.transaction_count());
        for (a, b) in ledger.transactions().zip(back.transactions()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn parses_comments_and_gaps() {
        let text = "# comment\n5,1,2\n5,2|3,4\n\n9,7,8\n";
        let ledger = read_ledger_csv(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(ledger.block_count(), 2, "two distinct heights");
        assert_eq!(ledger.transaction_count(), 3);
        assert_eq!(ledger.blocks()[0].len(), 2);
    }

    #[test]
    fn rejects_bad_ids_and_order() {
        let bad_id = "0,xyz,2\n";
        assert!(matches!(
            read_ledger_csv(BufReader::new(bad_id.as_bytes())),
            Err(CsvError::Malformed { line: 1, .. })
        ));
        let bad_order = "5,1,2\n3,1,2\n";
        assert!(read_ledger_csv(BufReader::new(bad_order.as_bytes())).is_err());
        let empty_field = "1,,2\n";
        assert!(read_ledger_csv(BufReader::new(empty_field.as_bytes())).is_err());
    }

    #[test]
    fn empty_input_gives_empty_ledger() {
        let ledger = read_ledger_csv(BufReader::new("".as_bytes())).unwrap();
        assert_eq!(ledger.block_count(), 0);
    }
}
