//! Adapter for real Ethereum-ETL exports.
//!
//! The paper's dataset comes from the public Ethereum-ETL BigQuery tables
//! (\[37\]). An export of `transactions.csv` has a header row and (among
//! others) the columns `block_number`, `from_address`, `to_address`. This
//! module converts such a file into a [`Ledger`], hashing the 0x-prefixed
//! hex addresses into the 64-bit account space used by the rest of the
//! toolkit.
//!
//! Rows without a `to_address` (contract creations) become self-loops on
//! the sender, mirroring how a creation only touches the creator's shard
//! before the contract exists.

use std::io::BufRead;

use txallo_model::{AccountId, Block, Ledger, Transaction};

use crate::csvio::CsvError;

/// Hashes a 0x-hex Ethereum address (or any string key) into the 64-bit
/// account space. FNV-1a over the lowercase form: deterministic and stable
/// across runs/platforms.
pub fn address_to_account(address: &str) -> AccountId {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in address.trim().bytes() {
        let lower = b.to_ascii_lowercase();
        h ^= lower as u64;
        h = h.wrapping_mul(PRIME);
    }
    AccountId(h)
}

/// Column positions resolved from an Ethereum-ETL header row.
#[derive(Debug, Clone, Copy)]
struct Columns {
    block_number: usize,
    from_address: usize,
    to_address: usize,
}

fn resolve_columns(header: &str) -> Result<Columns, CsvError> {
    let mut block_number = None;
    let mut from_address = None;
    let mut to_address = None;
    for (i, name) in header.split(',').enumerate() {
        match name.trim() {
            "block_number" => block_number = Some(i),
            "from_address" => from_address = Some(i),
            "to_address" => to_address = Some(i),
            _ => {}
        }
    }
    match (block_number, from_address, to_address) {
        (Some(b), Some(f), Some(t)) => Ok(Columns {
            block_number: b,
            from_address: f,
            to_address: t,
        }),
        _ => Err(CsvError::Malformed {
            line: 1,
            reason: "header must contain block_number, from_address, to_address".into(),
        }),
    }
}

/// Reads an Ethereum-ETL `transactions.csv` export into a ledger.
///
/// Rows must be sorted by `block_number` (BigQuery exports are); blocks are
/// renumbered contiguously from 0.
pub fn read_ethereum_etl_csv(input: impl BufRead) -> Result<Ledger, CsvError> {
    let mut lines = input.lines().enumerate();
    let Some((_, header)) = lines.next() else {
        return Ledger::from_blocks(Vec::new()).map_err(|e| CsvError::Malformed {
            line: 0,
            reason: e.to_string(),
        });
    };
    let columns = resolve_columns(&header?)?;

    let mut blocks: Vec<Block> = Vec::new();
    let mut current_block: Option<u64> = None;
    let mut current_txs: Vec<Transaction> = Vec::new();

    for (idx, line) in lines {
        let line_no = idx + 1;
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        let need = columns
            .block_number
            .max(columns.from_address)
            .max(columns.to_address);
        if fields.len() <= need {
            return Err(CsvError::Malformed {
                line: line_no,
                reason: format!(
                    "expected at least {} columns, got {}",
                    need + 1,
                    fields.len()
                ),
            });
        }
        let block_number: u64 =
            fields[columns.block_number]
                .trim()
                .parse()
                .map_err(|e| CsvError::Malformed {
                    line: line_no,
                    reason: format!("bad block_number: {e}"),
                })?;
        let from = fields[columns.from_address].trim();
        if from.is_empty() {
            return Err(CsvError::Malformed {
                line: line_no,
                reason: "empty from_address".into(),
            });
        }
        let sender = address_to_account(from);
        let to_field = fields[columns.to_address].trim();
        let receiver = if to_field.is_empty() {
            sender
        } else {
            address_to_account(to_field)
        };
        let tx = Transaction::transfer(sender, receiver);

        match current_block {
            Some(b) if b == block_number => current_txs.push(tx),
            Some(b) if block_number < b => {
                return Err(CsvError::Malformed {
                    line: line_no,
                    reason: format!(
                        "block numbers must be non-decreasing ({block_number} after {b})"
                    ),
                });
            }
            Some(_) => {
                blocks.push(Block::new(
                    blocks.len() as u64,
                    std::mem::take(&mut current_txs),
                ));
                current_block = Some(block_number);
                current_txs.push(tx);
            }
            None => {
                current_block = Some(block_number);
                current_txs.push(tx);
            }
        }
    }
    if !current_txs.is_empty() {
        blocks.push(Block::new(blocks.len() as u64, current_txs));
    }
    Ledger::from_blocks(blocks).map_err(|e| CsvError::Malformed {
        line: 0,
        reason: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    const SAMPLE: &str = "\
hash,nonce,block_number,from_address,to_address,value
0xaa,0,10000000,0xAbC1,0xdef2,100
0xbb,1,10000000,0xdef2,0xabc1,50
0xcc,2,10000001,0xAbC1,,0
";

    #[test]
    fn parses_etl_export() {
        let ledger = read_ethereum_etl_csv(BufReader::new(SAMPLE.as_bytes())).unwrap();
        assert_eq!(ledger.block_count(), 2);
        assert_eq!(ledger.transaction_count(), 3);
        // Contract creation (empty to_address) became a self-loop.
        let last = ledger.blocks()[1].transactions();
        assert!(last[0].is_self_loop());
    }

    #[test]
    fn addresses_hash_case_insensitively() {
        assert_eq!(address_to_account("0xAbC1"), address_to_account("0xabc1"));
        assert_ne!(address_to_account("0xabc1"), address_to_account("0xabc2"));
        // Round-trips through the sample: 0xAbC1 sender of row 1 equals
        // 0xabc1 receiver of row 2.
        let ledger = read_ethereum_etl_csv(BufReader::new(SAMPLE.as_bytes())).unwrap();
        let txs: Vec<_> = ledger.transactions().collect();
        assert_eq!(txs[0].inputs()[0], txs[1].outputs()[0]);
    }

    #[test]
    fn rejects_missing_columns_and_order() {
        let no_cols = "hash,nonce\n0xaa,0\n";
        assert!(read_ethereum_etl_csv(BufReader::new(no_cols.as_bytes())).is_err());
        let bad_order = "block_number,from_address,to_address\n5,0xa,0xb\n3,0xa,0xb\n";
        assert!(read_ethereum_etl_csv(BufReader::new(bad_order.as_bytes())).is_err());
        let short_row = "block_number,from_address,to_address\n5,0xa\n";
        assert!(read_ethereum_etl_csv(BufReader::new(short_row.as_bytes())).is_err());
    }

    #[test]
    fn empty_input_is_empty_ledger() {
        let ledger = read_ethereum_etl_csv(BufReader::new("".as_bytes())).unwrap();
        assert_eq!(ledger.block_count(), 0);
    }

    #[test]
    fn header_only_is_empty_ledger() {
        let text = "block_number,from_address,to_address\n";
        let ledger = read_ethereum_etl_csv(BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(ledger.block_count(), 0);
    }
}
