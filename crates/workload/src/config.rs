//! Generator configuration.

/// Parameters of the Ethereum-like trace generator.
///
/// Defaults are calibrated to the paper's dataset description (§VI-A,
/// Fig. 1) at a laptop-friendly scale; `accounts`/`transactions` scale the
/// trace up or down without changing its shape.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of initially existing accounts.
    pub accounts: usize,
    /// Total number of transactions to generate (across all blocks).
    pub transactions: usize,
    /// Transactions per block (Ethereum in the paper's window: ~150).
    pub block_size: usize,
    /// Zipf exponent of global account activity (≈1 reproduces the
    /// observed long tail).
    pub activity_exponent: f64,
    /// Fraction of transactions involving the single hottest account
    /// (paper: "about 11% transactions are associated with the most active
    /// account").
    pub hot_account_share: f64,
    /// Number of latent communities.
    pub groups: usize,
    /// Zipf exponent of group sizes.
    pub group_size_exponent: f64,
    /// Probability that a transaction stays inside the sender's group
    /// (`1 − μ_mix`). Drives how much structure allocators can exploit.
    pub intra_group_prob: f64,
    /// Probability of a self-transfer (§V-B's self-loop case; used on
    /// Ethereum to cancel pending transactions).
    pub self_loop_prob: f64,
    /// Probability that a transaction has extra outputs (multi-IO).
    pub multi_io_prob: f64,
    /// Maximum number of extra outputs of a multi-IO transaction.
    pub max_extra_outputs: usize,
    /// Probability that a transaction's receiver is a brand-new account
    /// (account birth; feeds A-TxAllo's phase 1).
    pub new_account_prob: f64,
    /// Every `drift_interval` blocks the group-popularity profile rotates
    /// by one step, slowly shifting which communities are busy.
    pub drift_interval: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            accounts: 20_000,
            transactions: 200_000,
            block_size: 150,
            activity_exponent: 1.0,
            hot_account_share: 0.08,
            groups: 400,
            group_size_exponent: 0.5,
            intra_group_prob: 0.9,
            self_loop_prob: 0.005,
            multi_io_prob: 0.05,
            max_extra_outputs: 3,
            new_account_prob: 0.002,
            drift_interval: 100,
        }
    }
}

impl WorkloadConfig {
    /// A paper-scale-shaped config scaled by `factor` relative to the
    /// default (1.0 → 20k accounts / 200k transactions).
    pub fn scaled(factor: f64) -> Self {
        let base = Self::default();
        Self {
            accounts: ((base.accounts as f64 * factor) as usize).max(100),
            transactions: ((base.transactions as f64 * factor) as usize).max(1_000),
            groups: ((base.groups as f64 * factor.sqrt()) as usize).max(10),
            ..base
        }
    }

    /// Number of whole blocks the configured transaction budget fills.
    pub fn block_count(&self) -> u64 {
        (self.transactions / self.block_size.max(1)) as u64
    }

    /// Panics if the configuration is internally inconsistent.
    pub fn validate(&self) {
        assert!(self.accounts >= 2, "need at least two accounts");
        assert!(self.block_size >= 1, "blocks must hold transactions");
        assert!(self.groups >= 1, "need at least one group");
        assert!(
            (0.0..=1.0).contains(&self.hot_account_share)
                && (0.0..=1.0).contains(&self.intra_group_prob)
                && (0.0..=1.0).contains(&self.self_loop_prob)
                && (0.0..=1.0).contains(&self.multi_io_prob)
                && (0.0..=1.0).contains(&self.new_account_prob),
            "probabilities must lie in [0, 1]"
        );
        assert!(self.activity_exponent >= 0.0 && self.group_size_exponent >= 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        WorkloadConfig::default().validate();
    }

    #[test]
    fn scaled_respects_minimums() {
        let tiny = WorkloadConfig::scaled(0.0001);
        tiny.validate();
        assert!(tiny.accounts >= 100);
        assert!(tiny.transactions >= 1_000);
        assert!(tiny.groups >= 10);
    }

    #[test]
    fn block_count_division() {
        let c = WorkloadConfig {
            transactions: 1000,
            block_size: 100,
            ..Default::default()
        };
        assert_eq!(c.block_count(), 10);
    }

    #[test]
    #[should_panic(expected = "probabilities")]
    fn invalid_probability_panics() {
        let c = WorkloadConfig {
            hot_account_share: 1.5,
            ..Default::default()
        };
        c.validate();
    }
}
