//! Zipf sampling via a precomputed cumulative table.
//!
//! `rand_distr` is not in the workspace dependency set (DESIGN.md); for a
//! fixed support size a cumulative table + binary search is simpler, exact
//! and deterministic.

use rand::Rng;

/// Samples ranks `0..n` with probability `∝ 1/(rank+1)^s`.
#[derive(Debug, Clone)]
pub struct ZipfTable {
    cdf: Vec<f64>,
}

impl ZipfTable {
    /// Builds the table for `n` ranks with exponent `s ≥ 0` (`s = 0` is
    /// uniform).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "support must be non-empty");
        assert!(s >= 0.0, "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 0..n {
            acc += 1.0 / ((rank + 1) as f64).powf(s);
            cdf.push(acc);
        }
        Self { cdf }
    }

    /// Builds a table from arbitrary positive weights.
    pub fn from_weights(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "support must be non-empty");
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w >= 0.0, "weights must be non-negative");
            acc += w;
            cdf.push(acc);
        }
        assert!(acc > 0.0, "total weight must be positive");
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the table is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        self.sample_at(rng.gen::<f64>())
    }

    /// Maps a uniform draw `x01 ∈ [0, 1)` to a rank — the deterministic
    /// core of [`ZipfTable::sample`], exposed so counter-based RNG streams
    /// (which produce their own uniforms) can share the exact table walk.
    pub fn sample_at(&self, x01: f64) -> usize {
        let total = *self.cdf.last().expect("non-empty"); // txallo-lint: allow(lib-unwrap) — both constructors assert a non-empty support and push one cdf entry per rank
        let x = x01 * total;
        // partition_point returns the first rank whose cumulative weight
        // exceeds x.
        self.cdf
            .partition_point(|&c| c <= x)
            .min(self.cdf.len() - 1)
    }

    /// Probability of a given rank.
    pub fn probability(&self, rank: usize) -> f64 {
        let total = *self.cdf.last().expect("non-empty"); // txallo-lint: allow(lib-unwrap) — both constructors assert a non-empty support and push one cdf entry per rank
        let prev = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        (self.cdf[rank] - prev) / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_exponent_zero() {
        let t = ZipfTable::new(4, 0.0);
        for r in 0..4 {
            assert!((t.probability(r) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn skewed_head_dominates() {
        let t = ZipfTable::new(1000, 1.2);
        assert!(t.probability(0) > 10.0 * t.probability(9));
        assert!(t.probability(0) > t.probability(1));
    }

    #[test]
    fn sampling_matches_probabilities() {
        let t = ZipfTable::new(10, 1.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 200_000;
        let mut counts = [0usize; 10];
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        for (r, &count) in counts.iter().enumerate() {
            let freq = count as f64 / n as f64;
            let p = t.probability(r);
            assert!((freq - p).abs() < 0.01, "rank {r}: {freq} vs {p}");
        }
    }

    #[test]
    fn from_weights_respects_ratios() {
        let t = ZipfTable::from_weights(&[3.0, 1.0]);
        assert!((t.probability(0) - 0.75).abs() < 1e-12);
        assert!((t.probability(1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let t = ZipfTable::new(100, 1.0);
        let draw = |seed: u64| -> Vec<usize> {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..50).map(|_| t.sample(&mut rng)).collect()
        };
        assert_eq!(draw(3), draw(3));
        assert_ne!(draw(3), draw(4));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_support_panics() {
        let _ = ZipfTable::new(0, 1.0);
    }
}
