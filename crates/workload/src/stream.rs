//! Counter-based streaming workload: any block regenerable independently.
//!
//! [`EthereumLikeGenerator`] carries a mutable `SmallRng`, so block `h` is
//! only reachable by generating blocks `0..h` first and the whole ledger
//! must be materialized to replay an epoch twice. [`StreamingWorkload`]
//! removes the stored stream state: every random decision is a pure
//! function of `(seed, account index, draw counter)` through `mix64`, in
//! the style of zksync-era's `loadnext` per-account seeded RNG streams.
//! Consequences:
//!
//! - `block_at(h)` is a pure function — any epoch is regenerable on
//!   demand, in any order, on any worker, and replay is bit-identical to
//!   a materialized run by construction (no hidden cursor to desync);
//! - the resident source state is `O(accounts)` derived tables (group
//!   assignment and activity CDFs), never the `O(transactions)` ledger —
//!   the piece the out-of-core replay subsystem needs to stream
//!   multi-million-account epochs through the allocator without holding
//!   the chain in memory.
//!
//! The statistical shape mirrors [`EthereumLikeGenerator`] (same config
//! vocabulary: Zipf activity, latent groups, one hot account, drift,
//! births, self-loops, multi-IO) with one documented deviation: accounts
//! born mid-stream get deterministic ids derived from their birth
//! transaction and do **not** re-enter circulation (the generator routes
//! 5% of member picks to newborns). Drift rotation supplies the hot/cold
//! churn that path provided.
//!
//! [`EthereumLikeGenerator`]: crate::EthereumLikeGenerator

use std::ops::Range;

use txallo_model::hash::mix64;
use txallo_model::{AccountId, Block, BlockHeight, Ledger, Transaction};

use crate::config::WorkloadConfig;
use crate::zipf::ZipfTable;

/// Domain-separation salts (arbitrary odd constants, one per decision
/// family — the same idiom as the fault injector's `SALT_*`).
const SALT_SETUP: u64 = 0xA076_1D64_78BD_642F;
const SALT_TX: u64 = 0xE703_7ED1_A0B4_28DB;
const SALT_ACCOUNT: u64 = 0x8EBC_6AF0_9C88_C6E3;

/// A stateless counter-based draw stream: draw `i` is
/// `mix64(key ^ i)` — no stored RNG state beyond the position counter,
/// so two streams with the same key always produce the same sequence.
#[derive(Debug, Clone, Copy)]
struct Draws {
    key: u64,
    counter: u64,
}

impl Draws {
    fn new(key: u64) -> Self {
        Self { key, counter: 0 }
    }

    /// Stream for transaction-level decisions of global ordinal `ord`.
    fn for_tx(seed: u64, ord: u64) -> Self {
        Self::new(mix64(seed ^ mix64(ord ^ SALT_TX)))
    }

    /// Stream for decisions attributed to `account` at ordinal `ord` —
    /// the "seed ⊕ account-index ⊕ draw-counter" per-account stream.
    fn for_account(seed: u64, account: u64, ord: u64) -> Self {
        Self::new(mix64(
            seed ^ mix64(account ^ SALT_ACCOUNT) ^ mix64(ord ^ SALT_TX),
        ))
    }

    fn next_u64(&mut self) -> u64 {
        let r = mix64(self.key ^ self.counter);
        self.counter += 1;
        r
    }

    /// Uniform in `[0, 1)` with 53 mantissa bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `0..n`. The modulo bias is ≤ `n / 2⁶⁴` — irrelevant for
    /// a synthetic workload's account picks.
    fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// A purely functional Ethereum-like workload source: blocks are
/// synthesized on demand from counter-based RNG streams, so the ledger
/// never needs materializing and any epoch is regenerable independently.
///
/// ```
/// use txallo_workload::{StreamingWorkload, WorkloadConfig};
///
/// let config = WorkloadConfig { accounts: 500, block_size: 50, ..Default::default() };
/// let stream = StreamingWorkload::new(config, 42);
/// // Pure: the same height always yields the same block, in any order.
/// assert_eq!(stream.block_at(7), stream.block_at(7));
/// assert_eq!(stream.blocks(0..10).len(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct StreamingWorkload {
    config: WorkloadConfig,
    seed: u64,
    /// Global activity table over the *non-hot* accounts (ranks map to
    /// account ids `1..accounts`).
    activity: ZipfTable,
    /// Group id of each static account.
    group_of: Vec<u32>,
    /// Static members per group (ascending account id), account 0 excluded.
    members: Vec<Vec<u64>>,
    /// Activity table per group, aligned with `members`.
    member_activity: Vec<ZipfTable>,
    /// Base Zipf table over groups (popularity before drift rotation).
    group_table: ZipfTable,
}

impl StreamingWorkload {
    /// Builds the derived tables — `O(accounts)` work and memory, all a
    /// pure function of `(config, seed)`.
    pub fn new(config: WorkloadConfig, seed: u64) -> Self {
        config.validate();
        let n = config.accounts;
        let g = config.groups.min(n / 2).max(1);

        // Group popularity (sizes) follow a Zipf law of their own.
        let group_weights: Vec<f64> = (0..g)
            .map(|i| 1.0 / ((i + 1) as f64).powf(config.group_size_exponent))
            .collect();
        let group_table = ZipfTable::from_weights(&group_weights);

        // Assign accounts to groups: the first 2g accounts round-robin (so
        // no group is empty), the rest by popularity — same shape as the
        // stateful generator, drawn from the setup stream.
        let mut setup = Draws::new(mix64(seed ^ SALT_SETUP));
        let mut group_of = vec![0u32; n];
        for (i, slot) in group_of.iter_mut().enumerate() {
            *slot = if i < 2 * g {
                (i % g) as u32
            } else {
                group_table.sample_at(setup.next_f64()) as u32
            };
        }

        let mut members: Vec<Vec<u64>> = vec![Vec::new(); g];
        for (i, &grp) in group_of.iter().enumerate() {
            if i == 0 {
                continue; // the hot account is handled explicitly
            }
            members[grp as usize].push(i as u64);
        }
        let member_activity: Vec<ZipfTable> = members
            .iter()
            .map(|m| {
                if m.is_empty() {
                    ZipfTable::from_weights(&[1.0])
                } else {
                    let w: Vec<f64> = m
                        .iter()
                        .map(|&id| 1.0 / ((id + 1) as f64).powf(config.activity_exponent))
                        .collect();
                    ZipfTable::from_weights(&w)
                }
            })
            .collect();

        let activity = ZipfTable::new(n.saturating_sub(1).max(1), config.activity_exponent);

        Self {
            config,
            seed,
            activity,
            group_of,
            members,
            member_activity,
            group_table,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// The seed fixing the whole trace.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The id of the globally hottest account.
    pub fn hot_account(&self) -> AccountId {
        AccountId(0)
    }

    /// Group count after clamping to the account budget.
    pub fn group_count(&self) -> usize {
        self.members.len()
    }

    /// Static accounts in the universe (births mint ids above this).
    pub fn initial_accounts(&self) -> u64 {
        self.config.accounts as u64
    }

    /// The latent group of a static account (ground truth for tests).
    pub fn group_of(&self, account: AccountId) -> Option<u32> {
        self.group_of.get(account.0 as usize).copied()
    }

    /// Samples a non-hot static account id from the global activity law.
    fn sample_global(&self, d: &mut Draws) -> u64 {
        self.activity.sample_at(d.next_f64()) as u64 + 1
    }

    /// Samples a group by drifted popularity. The generator rebuilds a
    /// rotated-weight table per draw; rotating the *rank* after sampling
    /// the base table picks group `i` with probability proportional to
    /// `base[(i + epoch) % g]` — the identical distribution, allocation
    /// free.
    fn sample_group(&self, epoch: u64, d: &mut Draws) -> usize {
        let g = self.group_table.len();
        let j = self.group_table.sample_at(d.next_f64());
        (j + g - (epoch as usize % g)) % g
    }

    /// Samples a static member of `group` by within-group activity.
    fn sample_member(&self, group: usize, d: &mut Draws) -> u64 {
        if self.members[group].is_empty() {
            return self.sample_global(d);
        }
        let idx = self.member_activity[group].sample_at(d.next_f64());
        self.members[group][idx]
    }

    /// Samples a member of `group` other than `exclude`: a few retries,
    /// then a deterministic scan, then a global fallback.
    fn sample_member_excluding(&self, group: usize, exclude: u64, d: &mut Draws) -> u64 {
        for _ in 0..8 {
            let r = self.sample_member(group, d);
            if r != exclude {
                return r;
            }
        }
        if let Some(&m) = self.members[group].iter().find(|&&m| m != exclude) {
            return m;
        }
        self.sample_global(d)
    }

    /// Synthesizes the transaction at `(height, idx)` — a pure function.
    fn transaction_at(&self, height: BlockHeight, idx: usize) -> Transaction {
        let cfg = &self.config;
        let epoch = height / cfg.drift_interval.max(1);
        let ord = height * cfg.block_size as u64 + idx as u64;
        let mut t = Draws::for_tx(self.seed, ord);

        // Hot-account involvement: mostly uniform-tail counterparties (an
        // exchange's long tail), occasionally another active account.
        if t.next_f64() < cfg.hot_account_share {
            let partner = if t.next_f64() < 0.75 {
                AccountId(1 + t.next_below(cfg.accounts as u64 - 1))
            } else {
                AccountId(self.sample_global(&mut t))
            };
            return if t.next_bool() {
                Transaction::transfer(self.hot_account(), partner)
            } else {
                Transaction::transfer(partner, self.hot_account())
            };
        }

        let sender = self.sample_global(&mut t);
        if t.next_f64() < cfg.self_loop_prob {
            return Transaction::transfer(AccountId(sender), AccountId(sender));
        }

        // Everything attributed to the sender comes from its own
        // counter-based stream.
        let mut a = Draws::for_account(self.seed, sender, ord);
        let receiver = if a.next_f64() < cfg.new_account_prob {
            // Births mint deterministic ids above the static universe; at
            // most one birth per transaction, so the ordinal is unique.
            self.initial_accounts() + ord
        } else if a.next_f64() < cfg.intra_group_prob {
            let group = self.group_of[sender as usize] as usize;
            self.sample_member_excluding(group, sender, &mut a)
        } else if a.next_f64() < 0.5 {
            // Diffuse mixing: a uniformly random counterparty.
            1 + a.next_below(cfg.accounts as u64 - 1)
        } else {
            // Drifting mixing: a member of a currently-popular group.
            let group = self.sample_group(epoch, &mut a);
            self.sample_member(group, &mut a)
        };

        if a.next_f64() < cfg.multi_io_prob {
            let extras = 1 + a.next_below(cfg.max_extra_outputs.max(1) as u64);
            let group = self.group_of[sender as usize] as usize;
            let mut outputs = vec![AccountId(receiver)];
            for _ in 0..extras {
                outputs.push(AccountId(self.sample_member(group, &mut a)));
            }
            outputs.sort_unstable();
            outputs.dedup();
            return Transaction::new(vec![AccountId(sender)], outputs)
                .expect("non-empty endpoints by construction"); // txallo-lint: allow(lib-unwrap) — inputs and outputs are built non-empty a few lines above, the only Transaction::new error
        }

        Transaction::transfer(AccountId(sender), AccountId(receiver))
    }

    /// Synthesizes the block at `height` — pure, so any block is
    /// regenerable independently and replay is bit-identical to a
    /// materialized run by construction.
    pub fn block_at(&self, height: BlockHeight) -> Block {
        let txs: Vec<Transaction> = (0..self.config.block_size)
            .map(|i| self.transaction_at(height, i))
            .collect();
        Block::new(height, txs)
    }

    /// Synthesizes a contiguous range of blocks.
    pub fn blocks(&self, heights: Range<u64>) -> Vec<Block> {
        heights.map(|h| self.block_at(h)).collect()
    }

    /// Lazily synthesizes a contiguous range of blocks — one block alive
    /// at a time, for feeding iterator-driven replay loops
    /// (`ShardedChainSim::warmup_streamed`, `ChainService::run_streamed`)
    /// without materializing the range.
    pub fn block_iter(&self, heights: Range<u64>) -> impl Iterator<Item = Block> + '_ {
        heights.map(|h| self.block_at(h))
    }

    /// Synthesizes epoch `epoch` of an `epoch_blocks`-block epoch grid —
    /// the unit the out-of-core replay loop materializes at a time.
    pub fn epoch_blocks(&self, epoch: u64, epoch_blocks: u64) -> Vec<Block> {
        let start = epoch * epoch_blocks;
        self.blocks(start..start + epoch_blocks)
    }

    /// Materializes the first `count` blocks as a [`Ledger`] (for tests
    /// and small-scale comparisons against the streamed path).
    pub fn ledger(&self, count: u64) -> Ledger {
        // txallo-lint: allow(lib-unwrap) — blocks() numbers heights contiguously from 0, the only Ledger::from_blocks error
        Ledger::from_blocks(self.blocks(0..count)).expect("heights are contiguous by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txallo_graph::{GraphStats, TxGraph};

    fn small_config() -> WorkloadConfig {
        WorkloadConfig {
            accounts: 2_000,
            transactions: 30_000,
            block_size: 100,
            groups: 40,
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn blocks_are_pure_and_order_independent() {
        let s = StreamingWorkload::new(small_config(), 99);
        // Query out of order, then in order — identical blocks.
        let backwards: Vec<Block> = (0..20u64).rev().map(|h| s.block_at(h)).collect();
        let forwards = s.blocks(0..20);
        for (f, b) in forwards.iter().zip(backwards.iter().rev()) {
            assert_eq!(f, b);
        }
    }

    #[test]
    fn epochs_are_regenerable_independently() {
        let s = StreamingWorkload::new(small_config(), 7);
        let all = s.blocks(0..30);
        for e in 0..3 {
            let epoch = s.epoch_blocks(e, 10);
            assert_eq!(&all[(e * 10) as usize..((e + 1) * 10) as usize], &epoch[..]);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = StreamingWorkload::new(small_config(), 1);
        let b = StreamingWorkload::new(small_config(), 2);
        assert_ne!(a.block_at(0), b.block_at(0));
    }

    #[test]
    fn hot_account_share_is_near_target() {
        let s = StreamingWorkload::new(small_config(), 42);
        let stats = s.ledger(300).stats();
        let share = stats.hottest_account_share();
        assert!(
            (0.08..0.25).contains(&share),
            "hottest account share {share} not in the expected band"
        );
    }

    #[test]
    fn activity_is_long_tailed() {
        let cfg = WorkloadConfig {
            accounts: 10_000,
            transactions: 30_000,
            block_size: 100,
            groups: 100,
            ..WorkloadConfig::default()
        };
        let s = StreamingWorkload::new(cfg, 42);
        let graph = TxGraph::from_ledger(&s.ledger(300));
        let stats = GraphStats::compute(&graph);
        assert!(stats.gini > 0.5, "gini = {}", stats.gini);
        assert!(
            stats.low_activity_fraction > 0.3,
            "got {}",
            stats.low_activity_fraction
        );
    }

    #[test]
    fn group_structure_is_present() {
        let s = StreamingWorkload::new(small_config(), 7);
        let mut intra = 0usize;
        let mut cross = 0usize;
        for block in s.blocks(0..300) {
            for tx in block.transactions() {
                let set = tx.account_set();
                if set.len() != 2 || set[0].0 == 0 {
                    continue;
                }
                let (Some(ga), Some(gb)) = (s.group_of(set[0]), s.group_of(set[1])) else {
                    continue;
                };
                if ga == gb {
                    intra += 1;
                } else {
                    cross += 1;
                }
            }
        }
        let ratio = intra as f64 / (intra + cross).max(1) as f64;
        assert!(ratio > 0.5, "intra-group ratio too low: {ratio}");
    }

    #[test]
    fn births_mint_fresh_ids_above_the_universe() {
        let mut cfg = small_config();
        cfg.new_account_prob = 0.05;
        let s = StreamingWorkload::new(cfg, 5);
        let mut born = Vec::new();
        for block in s.blocks(0..50) {
            for tx in block.transactions() {
                for a in tx.account_set() {
                    if a.0 >= s.initial_accounts() {
                        born.push(a.0);
                    }
                }
            }
        }
        assert!(!born.is_empty(), "expected account births");
        born.sort_unstable();
        let len = born.len();
        born.dedup();
        assert_eq!(born.len(), len, "birth ids are unique");
    }

    #[test]
    fn self_loops_and_multi_io_appear() {
        let mut cfg = small_config();
        cfg.self_loop_prob = 0.05;
        cfg.multi_io_prob = 0.2;
        let s = StreamingWorkload::new(cfg, 11);
        let stats = s.ledger(100).stats();
        assert!(stats.self_loop_count > 0, "expected self-loops");
        assert!(stats.multi_io_count > 0, "expected multi-IO transactions");
    }

    #[test]
    fn blocks_are_contiguous_and_sized() {
        let s = StreamingWorkload::new(small_config(), 3);
        for (i, b) in s.blocks(5..10).iter().enumerate() {
            assert_eq!(b.height(), 5 + i as u64);
            assert_eq!(b.len(), 100);
        }
    }
}
