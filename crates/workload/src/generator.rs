//! The Ethereum-like trace generator.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use txallo_model::{AccountId, Block, BlockHeight, Ledger, Transaction};

use crate::config::WorkloadConfig;
use crate::zipf::ZipfTable;

/// Streaming generator of an Ethereum-like transaction trace.
///
/// Construction is `O(accounts)`; each call to [`next_block`] advances the
/// stream deterministically (the same seed + config always produces the
/// same ledger). See the crate docs for the statistical properties.
///
/// ```
/// use txallo_workload::{EthereumLikeGenerator, WorkloadConfig};
///
/// let config = WorkloadConfig { accounts: 500, block_size: 50, ..Default::default() };
/// let mut generator = EthereumLikeGenerator::new(config, 42);
/// let ledger = generator.ledger(10);
/// assert_eq!(ledger.block_count(), 10);
/// assert_eq!(ledger.transaction_count(), 500);
/// ```
///
/// [`next_block`]: EthereumLikeGenerator::next_block
#[derive(Debug, Clone)]
pub struct EthereumLikeGenerator {
    config: WorkloadConfig,
    rng: SmallRng,
    /// Global activity table over the *non-hot* accounts (ranks map to
    /// account ids `1..accounts`).
    activity: ZipfTable,
    /// Group id of each static account.
    group_of: Vec<u32>,
    /// Static members per group (ascending account id), account 0 excluded.
    members: Vec<Vec<u64>>,
    /// Activity table per group, aligned with `members`.
    member_activity: Vec<ZipfTable>,
    /// Accounts born during generation, per group.
    dynamic_members: Vec<Vec<u64>>,
    /// Base Zipf weights over groups (popularity before rotation).
    group_weights: Vec<f64>,
    next_account: u64,
    next_height: BlockHeight,
}

impl EthereumLikeGenerator {
    /// Builds the generator. `seed` fixes the whole trace.
    pub fn new(config: WorkloadConfig, seed: u64) -> Self {
        config.validate();
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = config.accounts;
        let g = config.groups.min(n / 2).max(1);

        // Group popularity (sizes) follow a Zipf law of their own.
        let group_weights: Vec<f64> = (0..g)
            .map(|i| 1.0 / ((i + 1) as f64).powf(config.group_size_exponent))
            .collect();
        let group_table = ZipfTable::from_weights(&group_weights);

        // Assign accounts to groups: the first 2g accounts round-robin (so
        // no group is empty), the rest by popularity.
        let mut group_of = vec![0u32; n];
        for (i, slot) in group_of.iter_mut().enumerate() {
            *slot = if i < 2 * g {
                (i % g) as u32
            } else {
                group_table.sample(&mut rng) as u32
            };
        }

        let mut members: Vec<Vec<u64>> = vec![Vec::new(); g];
        for (i, &grp) in group_of.iter().enumerate() {
            if i == 0 {
                continue; // the hot account is handled explicitly
            }
            members[grp as usize].push(i as u64);
        }
        let member_activity: Vec<ZipfTable> = members
            .iter()
            .map(|m| {
                if m.is_empty() {
                    ZipfTable::from_weights(&[1.0])
                } else {
                    let w: Vec<f64> = m
                        .iter()
                        .map(|&id| 1.0 / ((id + 1) as f64).powf(config.activity_exponent))
                        .collect();
                    ZipfTable::from_weights(&w)
                }
            })
            .collect();

        let activity = ZipfTable::new(n.saturating_sub(1).max(1), config.activity_exponent);
        let next_account = n as u64;

        Self {
            config,
            rng,
            activity,
            group_of,
            members,
            member_activity,
            dynamic_members: vec![Vec::new(); g],
            group_weights,
            next_account,
            next_height: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Total accounts created so far (static + born).
    pub fn account_count(&self) -> u64 {
        self.next_account
    }

    /// The id of the globally hottest account.
    pub fn hot_account(&self) -> AccountId {
        AccountId(0)
    }

    /// Group count after clamping to the account budget.
    pub fn group_count(&self) -> usize {
        self.members.len()
    }

    /// The latent group of a static account (useful as ground truth in
    /// tests and examples).
    pub fn group_of(&self, account: AccountId) -> Option<u32> {
        self.group_of.get(account.0 as usize).copied()
    }

    /// Samples a non-hot account id from the global activity law.
    fn sample_global(&mut self) -> u64 {
        self.activity.sample(&mut self.rng) as u64 + 1
    }

    /// Current popularity rank of `group` under drift rotation.
    fn rotated_weight(&self, group: usize, epoch: u64) -> f64 {
        let g = self.group_weights.len();
        self.group_weights[(group + epoch as usize) % g]
    }

    /// Samples a group by drifted popularity.
    fn sample_group(&mut self, epoch: u64) -> usize {
        let g = self.group_weights.len();
        let weights: Vec<f64> = (0..g).map(|i| self.rotated_weight(i, epoch)).collect();
        ZipfTable::from_weights(&weights).sample(&mut self.rng)
    }

    /// Samples a member of `group` (static by activity; occasionally a
    /// dynamically-born account so newcomers keep transacting).
    fn sample_member(&mut self, group: usize) -> u64 {
        let dynamic = &self.dynamic_members[group];
        if !dynamic.is_empty() && self.rng.gen::<f64>() < 0.05 {
            return dynamic[self.rng.gen_range(0..dynamic.len())];
        }
        if self.members[group].is_empty() {
            return self.sample_global();
        }
        let idx = self.member_activity[group].sample(&mut self.rng);
        self.members[group][idx]
    }

    /// Samples a member of `group` other than `exclude`. Retries a few
    /// times (the within-group activity law concentrates on the group head,
    /// which is often the sender), then falls back to a deterministic scan;
    /// only a single-member group escalates to a global sample.
    fn sample_member_excluding(&mut self, group: usize, exclude: u64) -> u64 {
        for _ in 0..8 {
            let r = self.sample_member(group);
            if r != exclude {
                return r;
            }
        }
        if let Some(&m) = self.members[group].iter().find(|&&m| m != exclude) {
            return m;
        }
        if let Some(&m) = self.dynamic_members[group].iter().find(|&&m| m != exclude) {
            return m;
        }
        self.sample_global()
    }

    /// Births a new account into a popularity-sampled group.
    fn birth_account(&mut self, epoch: u64) -> u64 {
        let id = self.next_account;
        self.next_account += 1;
        let group = self.sample_group(epoch);
        self.dynamic_members[group].push(id);
        id
    }

    fn group_of_account(&self, id: u64) -> Option<usize> {
        if (id as usize) < self.group_of.len() {
            return Some(self.group_of[id as usize] as usize);
        }
        // Dynamic accounts: linear probe per group is too slow; exploit the
        // fact that births are appended in id order per group.
        for (g, dyn_members) in self.dynamic_members.iter().enumerate() {
            if dyn_members.binary_search(&id).is_ok() {
                return Some(g);
            }
        }
        None
    }

    /// Generates a single transaction at the given drift epoch.
    fn next_transaction(&mut self, epoch: u64) -> Transaction {
        let cfg_self_loop = self.config.self_loop_prob;
        let cfg_hot = self.config.hot_account_share;
        let cfg_intra = self.config.intra_group_prob;
        let cfg_new = self.config.new_account_prob;
        let cfg_multi = self.config.multi_io_prob;

        // Hot-account involvement (the Fig. 1 "11%" account). Like a real
        // exchange, most of its counterparties are low-activity accounts
        // (sampled uniformly, i.e. from the tail) — which is what lets a
        // good allocator colocate them with the hot account; a minority are
        // other active accounts.
        if self.rng.gen::<f64>() < cfg_hot {
            let partner = if self.rng.gen::<f64>() < 0.75 {
                AccountId(self.rng.gen_range(1..self.config.accounts as u64))
            } else {
                AccountId(self.sample_global())
            };
            return if self.rng.gen::<bool>() {
                Transaction::transfer(self.hot_account(), partner)
            } else {
                Transaction::transfer(partner, self.hot_account())
            };
        }

        let sender = self.sample_global();
        if self.rng.gen::<f64>() < cfg_self_loop {
            return Transaction::transfer(AccountId(sender), AccountId(sender));
        }

        let receiver = if self.rng.gen::<f64>() < cfg_new {
            self.birth_account(epoch)
        } else if self.rng.gen::<f64>() < cfg_intra {
            let group = self.group_of_account(sender).unwrap_or(0);
            self.sample_member_excluding(group, sender)
        } else if self.rng.gen::<f64>() < 0.5 {
            // Diffuse mixing: a uniformly random counterparty. Keeping half
            // of the cross-group traffic flat prevents the popular groups
            // from fusing into one giant community (real-world inter-
            // community traffic is spread over many account pairs).
            self.rng.gen_range(1..self.config.accounts as u64)
        } else {
            // Drifting mixing: a member of a currently-popular group.
            let group = self.sample_group(epoch);
            self.sample_member(group)
        };

        if self.rng.gen::<f64>() < cfg_multi {
            let extras = self.rng.gen_range(1..=self.config.max_extra_outputs.max(1));
            let group = self.group_of_account(sender).unwrap_or(0);
            let mut outputs = vec![AccountId(receiver)];
            for _ in 0..extras {
                outputs.push(AccountId(self.sample_member(group)));
            }
            outputs.sort_unstable();
            outputs.dedup();
            return Transaction::new(vec![AccountId(sender)], outputs)
                .expect("non-empty endpoints by construction"); // txallo-lint: allow(lib-unwrap) — inputs and outputs are built non-empty a few lines above, the only Transaction::new error
        }

        Transaction::transfer(AccountId(sender), AccountId(receiver))
    }

    /// Generates the next block of `config.block_size` transactions.
    pub fn next_block(&mut self) -> Block {
        let height = self.next_height;
        self.next_height += 1;
        let epoch = height / self.config.drift_interval.max(1);
        let txs: Vec<Transaction> = (0..self.config.block_size)
            .map(|_| self.next_transaction(epoch))
            .collect();
        Block::new(height, txs)
    }

    /// Generates `count` consecutive blocks.
    pub fn blocks(&mut self, count: u64) -> Vec<Block> {
        (0..count).map(|_| self.next_block()).collect()
    }

    /// Generates a whole ledger of `count` blocks.
    pub fn ledger(&mut self, count: u64) -> Ledger {
        // txallo-lint: allow(lib-unwrap) — blocks() numbers heights 0..count contiguously, the only Ledger::from_blocks error
        Ledger::from_blocks(self.blocks(count)).expect("heights are contiguous by construction")
    }

    /// Generates the configured default trace
    /// (`config.transactions / config.block_size` blocks).
    pub fn default_ledger(&mut self) -> Ledger {
        self.ledger(self.config.block_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txallo_graph::{GraphStats, TxGraph};

    fn small_config() -> WorkloadConfig {
        WorkloadConfig {
            accounts: 2_000,
            transactions: 30_000,
            block_size: 100,
            groups: 40,
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn trace_is_deterministic() {
        let mut a = EthereumLikeGenerator::new(small_config(), 99);
        let mut b = EthereumLikeGenerator::new(small_config(), 99);
        let la = a.ledger(20);
        let lb = b.ledger(20);
        assert_eq!(la.blocks().len(), lb.blocks().len());
        for (x, y) in la.transactions().zip(lb.transactions()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = EthereumLikeGenerator::new(small_config(), 1);
        let mut b = EthereumLikeGenerator::new(small_config(), 2);
        let la = a.ledger(5);
        let lb = b.ledger(5);
        assert!(la
            .transactions()
            .zip(lb.transactions())
            .any(|(x, y)| x != y));
    }

    #[test]
    fn hot_account_share_is_near_target() {
        let mut gen = EthereumLikeGenerator::new(small_config(), 42);
        let ledger = gen.default_ledger();
        let stats = ledger.stats();
        let share = stats.hottest_account_share();
        assert!(
            (0.08..0.25).contains(&share),
            "hottest account share {share} not in the expected band"
        );
    }

    #[test]
    fn activity_is_long_tailed() {
        // Paper-like sparsity: ~7 transactions per account on average.
        let cfg = WorkloadConfig {
            accounts: 10_000,
            transactions: 30_000,
            block_size: 100,
            groups: 100,
            ..WorkloadConfig::default()
        };
        let mut gen = EthereumLikeGenerator::new(cfg, 42);
        let ledger = gen.default_ledger();
        let graph = TxGraph::from_ledger(&ledger);
        let s = GraphStats::compute(&graph);
        assert!(
            s.gini > 0.5,
            "activity should be concentrated, gini = {}",
            s.gini
        );
        assert!(
            s.low_activity_fraction > 0.3,
            "most accounts are barely active, got {}",
            s.low_activity_fraction
        );
    }

    #[test]
    fn group_structure_is_present() {
        // Most non-hot 2-account transactions stay within a latent group.
        let mut gen = EthereumLikeGenerator::new(small_config(), 7);
        let ledger = gen.default_ledger();
        let mut intra = 0usize;
        let mut cross = 0usize;
        for tx in ledger.transactions() {
            let set = tx.account_set();
            if set.len() != 2 || set[0].0 == 0 {
                continue;
            }
            let (Some(ga), Some(gb)) = (gen.group_of(set[0]), gen.group_of(set[1])) else {
                continue;
            };
            if ga == gb {
                intra += 1;
            } else {
                cross += 1;
            }
        }
        let ratio = intra as f64 / (intra + cross).max(1) as f64;
        assert!(ratio > 0.5, "intra-group ratio too low: {ratio}");
    }

    #[test]
    fn new_accounts_are_born() {
        let mut gen = EthereumLikeGenerator::new(small_config(), 5);
        let before = gen.account_count();
        let _ = gen.ledger(100);
        assert!(gen.account_count() > before, "expected account births");
    }

    #[test]
    fn blocks_are_contiguous_and_sized() {
        let mut gen = EthereumLikeGenerator::new(small_config(), 3);
        let blocks = gen.blocks(5);
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(b.height(), i as u64);
            assert_eq!(b.len(), 100);
        }
        // Continuing the stream keeps heights monotone.
        let next = gen.next_block();
        assert_eq!(next.height(), 5);
    }

    #[test]
    fn self_loops_and_multi_io_appear() {
        let mut cfg = small_config();
        cfg.self_loop_prob = 0.05;
        cfg.multi_io_prob = 0.2;
        let mut gen = EthereumLikeGenerator::new(cfg, 11);
        let ledger = gen.ledger(100);
        let stats = ledger.stats();
        assert!(stats.self_loop_count > 0, "expected self-loops");
        assert!(stats.multi_io_count > 0, "expected multi-IO transactions");
    }
}
