//! Property-based tests of workload generation and trace I/O.

use proptest::prelude::*;
use std::io::BufReader;
use txallo_workload::{
    read_ledger_csv, write_ledger_csv, EthereumLikeGenerator, WorkloadConfig, ZipfTable,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any (validated) configuration yields a well-formed ledger: right
    /// block count/size, contiguous heights, all transactions valid.
    #[test]
    fn generator_is_well_formed(
        accounts in 100usize..2_000,
        block_size in 10usize..200,
        groups in 2usize..50,
        intra in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let config = WorkloadConfig {
            accounts,
            transactions: block_size * 10,
            block_size,
            groups,
            intra_group_prob: intra,
            ..WorkloadConfig::default()
        };
        config.validate();
        let mut generator = EthereumLikeGenerator::new(config, seed);
        let ledger = generator.ledger(10);
        prop_assert_eq!(ledger.block_count(), 10);
        for (i, b) in ledger.blocks().iter().enumerate() {
            prop_assert_eq!(b.height(), i as u64);
            prop_assert_eq!(b.len(), block_size);
        }
        for tx in ledger.transactions() {
            prop_assert!(!tx.inputs().is_empty() && !tx.outputs().is_empty());
            prop_assert!(tx.account_count() >= 1);
        }
    }

    /// The CSV round trip is lossless for generated traces of any shape.
    #[test]
    fn csv_roundtrip_lossless(seed in any::<u64>(), multi in 0.0f64..0.5) {
        let config = WorkloadConfig {
            accounts: 300,
            transactions: 2_000,
            block_size: 50,
            groups: 10,
            multi_io_prob: multi,
            ..WorkloadConfig::default()
        };
        let mut generator = EthereumLikeGenerator::new(config, seed);
        let ledger = generator.ledger(8);
        let mut buf = Vec::new();
        write_ledger_csv(&ledger, &mut buf).unwrap();
        let back = read_ledger_csv(BufReader::new(buf.as_slice())).unwrap();
        prop_assert_eq!(back.transaction_count(), ledger.transaction_count());
        prop_assert_eq!(back.block_count(), ledger.block_count());
        for (a, b) in ledger.transactions().zip(back.transactions()) {
            prop_assert_eq!(a, b);
        }
    }

    /// Zipf tables: probabilities sum to 1, are non-increasing in rank,
    /// and sampling always lands in range.
    #[test]
    fn zipf_table_properties(n in 1usize..500, s in 0.0f64..3.0, seed in any::<u64>()) {
        let t = ZipfTable::new(n, s);
        prop_assert_eq!(t.len(), n);
        let total: f64 = (0..n).map(|r| t.probability(r)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for r in 1..n {
            prop_assert!(t.probability(r) <= t.probability(r - 1) + 1e-12);
        }
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(t.sample(&mut rng) < n);
        }
    }

    /// Same seed ⇒ identical stream even when consumed in different chunk
    /// sizes (the generator is a deterministic stream, not per-call).
    #[test]
    fn chunking_does_not_change_the_stream(seed in any::<u64>()) {
        let config = WorkloadConfig {
            accounts: 200,
            transactions: 3_000,
            block_size: 30,
            groups: 8,
            ..WorkloadConfig::default()
        };
        let mut a = EthereumLikeGenerator::new(config.clone(), seed);
        let mut b = EthereumLikeGenerator::new(config, seed);
        let whole = a.blocks(6);
        let mut chunked = b.blocks(2);
        chunked.extend(b.blocks(3));
        chunked.extend(b.blocks(1));
        prop_assert_eq!(whole.len(), chunked.len());
        for (x, y) in whole.iter().zip(chunked.iter()) {
            prop_assert_eq!(x.height(), y.height());
            prop_assert_eq!(x.transactions(), y.transactions());
        }
    }
}

use txallo_workload::StreamingWorkload;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The streaming workload is a pure function of `(config, seed,
    /// height)`: any epoch regenerated in isolation — even out of order —
    /// is the exact slice of the contiguous stream, and the lazy iterator
    /// is the materialized range. This is the out-of-core replay
    /// guarantee: no epoch's blocks depend on having generated any other.
    #[test]
    fn streaming_epochs_regenerate_bit_identically(
        seed in any::<u64>(),
        accounts in 200usize..1_500,
        groups in 2usize..40,
        epoch_blocks in 1u64..8,
    ) {
        let config = WorkloadConfig {
            accounts,
            transactions: 4_000,
            block_size: 40,
            groups,
            ..WorkloadConfig::default()
        };
        let w = StreamingWorkload::new(config, seed);
        let all = w.blocks(0..4 * epoch_blocks);
        for epoch in (0..4u64).rev() {
            let chunk = w.epoch_blocks(epoch, epoch_blocks);
            let s = (epoch * epoch_blocks) as usize;
            prop_assert_eq!(&chunk[..], &all[s..s + epoch_blocks as usize]);
        }
        let lazy: Vec<_> = w.block_iter(0..all.len() as u64).collect();
        prop_assert_eq!(lazy, all);
    }
}
