//! The local-moving phase of Louvain.

use txallo_graph::{NodeId, WeightedGraph};
use txallo_model::FxHashMap;

use crate::LouvainConfig;

/// Result of repeated local-moving sweeps on one level.
#[derive(Debug, Clone)]
pub struct LocalMoveOutcome {
    /// Community label per node of this level's graph.
    pub communities: Vec<u32>,
    /// Whether any node changed community (drives level termination).
    pub moved_any: bool,
    /// Number of sweeps executed.
    pub sweeps: usize,
}

/// Runs local-moving sweeps until a sweep makes no move (or limits hit).
///
/// Each node starts in its own singleton community. For node `v`, the gain
/// of moving the (isolated) node into community `c` is the standard Louvain
/// delta: `ΔQ = w(v→c)/m − γ·Σ_tot(c)·k_v/(2m²)`. The node joins the
/// neighboring community maximizing the gain; staying put wins ties, and
/// among equal-gain candidates the smallest community id wins
/// (determinism).
pub fn local_moving_pass(graph: &impl WeightedGraph, config: &LouvainConfig) -> LocalMoveOutcome {
    let n = graph.node_count();
    let m = graph.total_weight();
    let mut communities: Vec<u32> = (0..n as u32).collect();
    if n == 0 || m <= 0.0 {
        return LocalMoveOutcome { communities, moved_any: false, sweeps: 0 };
    }

    // Σ_tot per community (strengths, self-loops twice).
    let mut sigma_tot: Vec<f64> = (0..n as NodeId).map(|v| graph.strength(v)).collect();
    let mut moved_any = false;
    let mut sweeps = 0usize;

    // Workhorse map: weight from v to each neighboring community.
    let mut link_weight: FxHashMap<u32, f64> = FxHashMap::default();

    for _ in 0..config.max_sweeps {
        sweeps += 1;
        let mut moved_this_sweep = false;

        for v in 0..n as NodeId {
            let k_v = graph.strength(v);
            let current = communities[v as usize];

            link_weight.clear();
            graph.for_each_neighbor(v, |u, w| {
                *link_weight.entry(communities[u as usize]).or_insert(0.0) += w;
            });

            // Remove v from its community while evaluating.
            sigma_tot[current as usize] -= k_v;
            let w_current = link_weight.get(&current).copied().unwrap_or(0.0);
            let gain_stay =
                w_current / m - config.resolution * sigma_tot[current as usize] * k_v / (2.0 * m * m);

            let mut best_comm = current;
            let mut best_gain = gain_stay;
            // Deterministic candidate order: sort neighboring communities.
            let mut candidates: Vec<(u32, f64)> =
                link_weight.iter().map(|(&c, &w)| (c, w)).collect();
            candidates.sort_unstable_by_key(|&(c, _)| c);
            for (c, w_vc) in candidates {
                if c == current {
                    continue;
                }
                let gain =
                    w_vc / m - config.resolution * sigma_tot[c as usize] * k_v / (2.0 * m * m);
                if gain > best_gain + 1e-15 {
                    best_gain = gain;
                    best_comm = c;
                }
            }

            sigma_tot[best_comm as usize] += k_v;
            if best_comm != current {
                communities[v as usize] = best_comm;
                moved_this_sweep = true;
                moved_any = true;
            }
        }

        if !moved_this_sweep {
            break;
        }
    }

    LocalMoveOutcome { communities, moved_any, sweeps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txallo_graph::AdjacencyGraph;

    #[test]
    fn merges_a_triangle() {
        let g = AdjacencyGraph::from_edges(3, vec![(0u32, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]);
        let out = local_moving_pass(&g, &LouvainConfig::default());
        assert!(out.moved_any);
        assert_eq!(out.communities[0], out.communities[1]);
        assert_eq!(out.communities[1], out.communities[2]);
    }

    #[test]
    fn keeps_disconnected_nodes_apart() {
        let g = AdjacencyGraph::from_edges(4, vec![(0u32, 1, 1.0), (2, 3, 1.0)]);
        let out = local_moving_pass(&g, &LouvainConfig::default());
        assert_eq!(out.communities[0], out.communities[1]);
        assert_eq!(out.communities[2], out.communities[3]);
        assert_ne!(out.communities[0], out.communities[2]);
    }

    #[test]
    fn no_move_on_empty_graph() {
        let g = AdjacencyGraph::from_edges(0, Vec::new());
        let out = local_moving_pass(&g, &LouvainConfig::default());
        assert!(!out.moved_any);
        assert!(out.communities.is_empty());
    }

    #[test]
    fn deterministic_across_runs() {
        let mut edges = Vec::new();
        for a in 0..20u32 {
            edges.push((a, (a + 1) % 20, 1.0));
            edges.push((a, (a + 2) % 20, 0.5));
        }
        let g = AdjacencyGraph::from_edges(20, edges);
        let a = local_moving_pass(&g, &LouvainConfig::default());
        let b = local_moving_pass(&g, &LouvainConfig::default());
        assert_eq!(a.communities, b.communities);
        assert_eq!(a.sweeps, b.sweeps);
    }
}
