//! The local-moving phase of Louvain.

use txallo_graph::{fit_u32, par, DenseAccumulator, NodeId, WeightedGraph};

use crate::{LouvainConfig, GAIN_EPS};

/// Result of repeated local-moving sweeps on one level.
#[derive(Debug, Clone)]
pub struct LocalMoveOutcome {
    /// Community label per node of this level's graph.
    pub communities: Vec<u32>,
    /// Whether any node changed community (drives level termination).
    pub moved_any: bool,
    /// Number of sweeps executed.
    pub sweeps: usize,
}

/// Runs local-moving sweeps until a sweep makes no move (or limits hit).
///
/// Each node starts in its own singleton community. For node `v`, the gain
/// of moving the (isolated) node into community `c` is the standard Louvain
/// delta: `ΔQ = w(v→c)/m − γ·Σ_tot(c)·k_v/(2m²)`. The node joins the
/// neighboring community maximizing the gain; staying put wins ties, and
/// among equal-gain candidates the smallest community id wins (see
/// [`GAIN_EPS`] for the exact tie contract).
///
/// Link weights toward neighboring communities are gathered into a dense
/// [`DenseAccumulator`] indexed by community id — no hashing, no per-node
/// allocation; only the touched-list (the node's distinct neighboring
/// communities) is sorted to fix the deterministic candidate order.
///
/// `config.threads` only chooses *how* the gathers are computed:
/// `threads <= 1` runs the exact serial code path; larger counts run the
/// multi-core variant, which refreshes stale candidate caches in parallel
/// over canonical row ranges at each sweep boundary and then executes the
/// identical serial decision loop — bit-identical labels, sweep counts and
/// move trajectory at any thread count (pinned by the golden tests).
pub fn local_moving_pass(
    graph: &(impl WeightedGraph + Sync),
    config: &LouvainConfig,
) -> LocalMoveOutcome {
    if par::resolve_threads(config.threads) <= 1 {
        local_moving_serial(graph, config)
    } else {
        local_moving_parallel(graph, config)
    }
}

/// The serial local-moving pass — the `threads == 1` code path, byte for
/// byte the implementation that predates the multi-core sweep engine.
fn local_moving_serial(graph: &impl WeightedGraph, config: &LouvainConfig) -> LocalMoveOutcome {
    let n = graph.node_count();
    let m = graph.total_weight();
    let mut communities: Vec<u32> = (0..n as u32).collect();
    if n == 0 || m <= 0.0 {
        return LocalMoveOutcome {
            communities,
            moved_any: false,
            sweeps: 0,
        };
    }

    // Per-node strengths, gathered once — `k_v` is read on every candidate
    // evaluation of every sweep, so it lives in a flat array instead of
    // going through the graph accessor each time (same values bit-for-bit;
    // the initial Σ_tot per community is the same array copied, since every
    // node starts in its own singleton community).
    let strength: Vec<f64> = (0..n as NodeId).map(|v| graph.strength(v)).collect();
    // Σ_tot per community (strengths, self-loops twice).
    let mut sigma_tot: Vec<f64> = strength.clone();
    let mut moved_any = false;
    let mut sweeps = 0usize;

    // Workhorse scratch: weight from v to each neighboring community.
    let mut link = DenseAccumulator::new();

    // Incremental-sweep machinery (same scheme as the G-TxAllo
    // optimization phase): a node's decision depends only on (a) its
    // per-community link weights — which change when a *neighbor* moves —
    // and (b) `sigma_tot` of its candidate communities and its own. The
    // expensive gather (a) is cached per node and reused verbatim until a
    // neighbor moves; the gains (b) are recomputed against fresh
    // `sigma_tot` every visit. When both inputs are untouched since the
    // node's last evaluation the node is skipped outright — re-evaluating
    // would provably repeat the previous no-move. Evaluations are pure
    // (`sigma_tot` is only written when a move commits; the seed's
    // `-= k_v … += k_v` round-trip is gone because float subtraction does
    // not exactly invert addition), so all reuse is bit-exact.
    let mut move_stamp: u64 = 1;
    let mut last_eval: Vec<u64> = vec![0; n];
    let mut gathered_at: Vec<u64> = vec![0; n];
    let mut links_dirty: Vec<u64> = vec![1; n];
    let mut comm_stamp: Vec<u64> = vec![1; n];
    let mut cand_cache: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];

    for _ in 0..config.max_sweeps {
        sweeps += 1;
        let mut moved_this_sweep = false;

        for v in 0..n as NodeId {
            let vi = v as usize;
            let current = communities[vi];
            let links_fresh = links_dirty[vi] <= gathered_at[vi];
            if links_fresh {
                let seen = last_eval[vi];
                if comm_stamp[current as usize] <= seen
                    && cand_cache[vi]
                        .iter()
                        .all(|&(c, _)| comm_stamp[c as usize] <= seen)
                {
                    continue; // Inputs unchanged: evaluation would no-op.
                }
            } else {
                link.begin(n);
                graph.for_each_neighbor(v, |u, w| {
                    link.add(communities[u as usize], w);
                });
                // Deterministic candidate order: ascending community id.
                link.sort_touched();
                gathered_at[vi] = move_stamp;
                cand_cache[vi].clear();
                cand_cache[vi].extend(link.entries());
            }
            last_eval[vi] = move_stamp;

            let k_v = strength[vi];
            let cand = &cand_cache[vi];
            // Evaluate with v removed from its community.
            let sig_cur = sigma_tot[current as usize] - k_v;
            let w_current = cand
                .iter()
                .find(|&&(c, _)| c == current)
                .map_or(0.0, |&(_, w)| w);
            let gain_stay = w_current / m - config.resolution * sig_cur * k_v / (2.0 * m * m);

            let mut best_comm = current;
            let mut best_gain = gain_stay;
            for &(c, w_vc) in cand {
                if c == current {
                    continue;
                }
                let gain =
                    w_vc / m - config.resolution * sigma_tot[c as usize] * k_v / (2.0 * m * m);
                if gain > best_gain + GAIN_EPS {
                    best_gain = gain;
                    best_comm = c;
                }
            }

            if best_comm != current {
                sigma_tot[current as usize] = sig_cur;
                sigma_tot[best_comm as usize] += k_v;
                communities[vi] = best_comm;
                moved_this_sweep = true;
                moved_any = true;
                move_stamp += 1;
                comm_stamp[current as usize] = move_stamp;
                comm_stamp[best_comm as usize] = move_stamp;
                graph.for_each_neighbor(v, |u, _| {
                    links_dirty[u as usize] = move_stamp;
                });
            }
        }

        if !moved_this_sweep {
            break;
        }
    }

    LocalMoveOutcome {
        communities,
        moved_any,
        sweeps,
    }
}

/// The multi-core local-moving pass.
///
/// **Why this is bit-identical to the serial sweep.** A node's cached
/// candidate list is a pure function of its row and its neighbors'
/// labels; the serial pass already reuses it until a neighbor moves
/// (`links_dirty` vs `gathered_at`). The parallel variant exploits
/// exactly that: at each sweep boundary — when the labels are frozen —
/// every *stale* row's gather is refreshed concurrently, partitioned by
/// canonical row ranges ([`par::entry_balanced_split`]), each chunk
/// writing only its own cache window with its own accumulator. The
/// decision loop that follows is the serial one, unchanged: it visits
/// nodes in the same order, sees caches whose bits equal what a
/// visit-time gather would have produced (any cache invalidated by an
/// earlier in-sweep move is re-gathered serially at its turn, exactly as
/// before), and therefore commits the identical move sequence, float by
/// float. No gain, Σ_tot update or modularity fold ever crosses a chunk
/// boundary.
fn local_moving_parallel(
    graph: &(impl WeightedGraph + Sync),
    config: &LouvainConfig,
) -> LocalMoveOutcome {
    let n = graph.node_count();
    let m = graph.total_weight();
    let mut communities: Vec<u32> = (0..n as u32).collect();
    if n == 0 || m <= 0.0 {
        return LocalMoveOutcome {
            communities,
            moved_any: false,
            sweeps: 0,
        };
    }

    let strength: Vec<f64> = (0..n as NodeId).map(|v| graph.strength(v)).collect();
    let mut sigma_tot: Vec<f64> = strength.clone();
    let mut moved_any = false;
    let mut sweeps = 0usize;
    let mut link = DenseAccumulator::new();

    let mut move_stamp: u64 = 1;
    let mut last_eval: Vec<u64> = vec![0; n];
    let mut gathered_at: Vec<u64> = vec![0; n];
    let mut links_dirty: Vec<u64> = vec![1; n];
    let mut comm_stamp: Vec<u64> = vec![1; n];
    let mut cand_cache: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];

    // Canonical row ranges, balanced by degree (the graph trait has no
    // offsets array, so one O(n) prefix builds it).
    let threads = par::resolve_threads(config.threads).min(n);
    let mut deg_prefix: Vec<u32> = vec![0; n + 1];
    for v in 0..n {
        deg_prefix[v + 1] = deg_prefix[v] + graph.neighbor_count(v as NodeId) as u32;
    }
    let bounds = par::entry_balanced_split(&deg_prefix, threads);
    let mut pool: Vec<DenseAccumulator> = Vec::new();
    pool.resize_with(bounds.len() - 1, DenseAccumulator::default);

    for _ in 0..config.max_sweeps {
        sweeps += 1;

        // Refresh every stale gather against the sweep-boundary labels.
        {
            let communities = &communities;
            let links_dirty = &links_dirty;
            let gathered_at_r = &gathered_at;
            par::for_each_chunk_mut(&bounds, &mut cand_cache, &mut pool, |lo, caches, acc| {
                for (idx, cache) in caches.iter_mut().enumerate() {
                    let vi = lo + idx;
                    if links_dirty[vi] <= gathered_at_r[vi] {
                        continue;
                    }
                    acc.begin(n);
                    graph.for_each_neighbor(vi as NodeId, |u, w| {
                        acc.add(communities[u as usize], w);
                    });
                    acc.sort_touched();
                    cache.clear();
                    cache.extend(acc.entries());
                }
            });
        }
        for vi in 0..n {
            if links_dirty[vi] > gathered_at[vi] {
                gathered_at[vi] = move_stamp;
            }
        }

        let mut moved_this_sweep = false;
        for v in 0..n as NodeId {
            let vi = v as usize;
            let current = communities[vi];
            let links_fresh = links_dirty[vi] <= gathered_at[vi];
            if links_fresh {
                let seen = last_eval[vi];
                if comm_stamp[current as usize] <= seen
                    && cand_cache[vi]
                        .iter()
                        .all(|&(c, _)| comm_stamp[c as usize] <= seen)
                {
                    continue; // Inputs unchanged: evaluation would no-op.
                }
            } else {
                link.begin(n);
                graph.for_each_neighbor(v, |u, w| {
                    link.add(communities[u as usize], w);
                });
                link.sort_touched();
                gathered_at[vi] = move_stamp;
                cand_cache[vi].clear();
                cand_cache[vi].extend(link.entries());
            }
            last_eval[vi] = move_stamp;

            let k_v = strength[vi];
            let cand = &cand_cache[vi];
            let sig_cur = sigma_tot[current as usize] - k_v;
            let w_current = cand
                .iter()
                .find(|&&(c, _)| c == current)
                .map_or(0.0, |&(_, w)| w);
            let gain_stay = w_current / m - config.resolution * sig_cur * k_v / (2.0 * m * m);

            let mut best_comm = current;
            let mut best_gain = gain_stay;
            for &(c, w_vc) in cand {
                if c == current {
                    continue;
                }
                let gain =
                    w_vc / m - config.resolution * sigma_tot[c as usize] * k_v / (2.0 * m * m);
                if gain > best_gain + GAIN_EPS {
                    best_gain = gain;
                    best_comm = c;
                }
            }

            if best_comm != current {
                sigma_tot[current as usize] = sig_cur;
                sigma_tot[best_comm as usize] += k_v;
                communities[vi] = best_comm;
                moved_this_sweep = true;
                moved_any = true;
                move_stamp += 1;
                comm_stamp[current as usize] = move_stamp;
                comm_stamp[best_comm as usize] = move_stamp;
                graph.for_each_neighbor(v, |u, _| {
                    links_dirty[u as usize] = move_stamp;
                });
            }
        }

        if !moved_this_sweep {
            break;
        }
    }

    LocalMoveOutcome {
        communities,
        moved_any,
        sweeps,
    }
}

/// One community bucket of a condensed row: the weight toward `comm`,
/// plus the row positions (into the flat neighbor arrays) of the members
/// currently labelled `comm`, kept in ascending position order so a refold
/// replays the exact add sequence a fresh row gather would execute.
struct CondensedGroup {
    comm: u32,
    sum: f64,
    members: Vec<u32>,
}

/// Refolds a group's weight from scratch, in ascending member-position
/// order — bitwise the same sequence of `+=` a [`DenseAccumulator`] gather
/// over the full row would apply to this community's slot.
fn refold(group: &mut CondensedGroup, row_w: &[f64]) {
    let mut sum = 0.0;
    for &p in &group.members {
        sum += row_w[p as usize];
    }
    group.sum = sum;
}

/// Moves every entry for neighbor `v` in one condensed row from the bucket
/// of community `from` to the bucket of `to`, refolding only those two
/// buckets. A row that does not list `v` (asymmetric input) is untouched —
/// exactly what a full re-gather would compute for it.
fn relocate_member(
    groups: &mut Vec<CondensedGroup>,
    row_nbr: &[u32],
    row_w: &[f64],
    v: u32,
    from: u32,
    to: u32,
) {
    let Ok(ai) = groups.binary_search_by_key(&from, |g| g.comm) else {
        return;
    };
    let mut moved: Vec<u32> = Vec::new();
    groups[ai].members.retain(|&p| {
        if row_nbr[p as usize] == v {
            moved.push(p);
            false
        } else {
            true
        }
    });
    if moved.is_empty() {
        return;
    }
    if groups[ai].members.is_empty() {
        groups.remove(ai);
    } else {
        refold(&mut groups[ai], row_w);
    }
    match groups.binary_search_by_key(&to, |g| g.comm) {
        Ok(bi) => {
            // Merge the relocated positions back in ascending order.
            for p in moved {
                let at = groups[bi].members.partition_point(|&q| q < p);
                groups[bi].members.insert(at, p);
            }
            refold(&mut groups[bi], row_w);
        }
        Err(bi) => {
            let mut group = CondensedGroup {
                comm: to,
                sum: 0.0,
                members: moved,
            };
            refold(&mut group, row_w);
            groups.insert(bi, group);
        }
    }
}

/// Local moving with *condensed rows*: instead of re-gathering a node's
/// full row whenever any neighbor moved (the [`local_moving_pass`]
/// scheme), every row is kept pre-grouped by neighbor community across
/// sweeps. A committed move then relocates just the mover's entries inside
/// each adjacent row — O(affected bucket sizes), not O(degree) — and
/// refolds the two touched buckets in member order.
///
/// **Why this is bit-identical to the re-gather path.** A fresh gather
/// computes, for each community `c`, the fold of the row's weights whose
/// neighbor is labelled `c`, in row-walk order. The condensed invariant is
/// exactly that: each bucket holds the positions currently labelled with
/// its community, ascending, and its sum is the fold over them in that
/// order. Relocation preserves the invariant (positions move buckets when
/// their label changes; both touched buckets refold from scratch in
/// position order), so every candidate list the decision loop reads equals
/// the re-gathered one float for float — and the decision loop itself is
/// the serial one, unchanged.
///
/// Intended for the *aggregated* (deep) Louvain levels, where rows are
/// dense community-to-community strips that the stamp scheme re-gathers
/// many times per level; the pass is serial and thread-count independent,
/// so it slots under every `config.threads` without affecting bits.
pub fn local_moving_condensed(
    graph: &impl WeightedGraph,
    config: &LouvainConfig,
) -> LocalMoveOutcome {
    let n = graph.node_count();
    let m = graph.total_weight();
    let mut communities: Vec<u32> = (0..n as u32).collect();
    if n == 0 || m <= 0.0 {
        return LocalMoveOutcome {
            communities,
            moved_any: false,
            sweeps: 0,
        };
    }

    let strength: Vec<f64> = (0..n as NodeId).map(|v| graph.strength(v)).collect();
    let mut sigma_tot: Vec<f64> = strength.clone();
    let mut moved_any = false;
    let mut sweeps = 0usize;

    // Materialize the rows once: the relocation walk needs flat
    // position-indexed access, and deep-level graphs are small.
    let mut offsets: Vec<usize> = vec![0; n + 1];
    for v in 0..n {
        offsets[v + 1] = offsets[v] + graph.neighbor_count(v as NodeId);
    }
    let mut row_nbr: Vec<u32> = Vec::with_capacity(offsets[n]);
    let mut row_w: Vec<f64> = Vec::with_capacity(offsets[n]);
    for v in 0..n as NodeId {
        graph.for_each_neighbor(v, |u, w| {
            row_nbr.push(u);
            row_w.push(w);
        });
    }

    // Initial condensation under the identity labels. Sorting the
    // (community, position) pairs groups each bucket's members in
    // ascending position = row-walk order, matching the gather fold.
    let mut groups: Vec<Vec<CondensedGroup>> = (0..n)
        .map(|v| {
            let mut tagged: Vec<(u32, u32)> = (offsets[v]..offsets[v + 1])
                .map(|p| (communities[row_nbr[p] as usize], fit_u32(p)))
                .collect();
            tagged.sort_unstable();
            let mut gs: Vec<CondensedGroup> = Vec::new();
            for (c, p) in tagged {
                match gs.last_mut() {
                    Some(g) if g.comm == c => g.members.push(p),
                    _ => gs.push(CondensedGroup {
                        comm: c,
                        sum: 0.0,
                        members: vec![p],
                    }),
                }
            }
            for g in gs.iter_mut() {
                refold(g, &row_w);
            }
            gs
        })
        .collect();

    // Same incremental-skip machinery as the re-gather passes, minus the
    // links-dirty half: condensed rows are never stale, and any membership
    // change freshens the stamp of a community the row now lists.
    let mut move_stamp: u64 = 1;
    let mut last_eval: Vec<u64> = vec![0; n];
    let mut comm_stamp: Vec<u64> = vec![1; n];

    for _ in 0..config.max_sweeps {
        sweeps += 1;
        let mut moved_this_sweep = false;

        for v in 0..n as NodeId {
            let vi = v as usize;
            let current = communities[vi];
            let seen = last_eval[vi];
            if comm_stamp[current as usize] <= seen
                && groups[vi]
                    .iter()
                    .all(|g| comm_stamp[g.comm as usize] <= seen)
            {
                continue; // Inputs unchanged: evaluation would no-op.
            }
            last_eval[vi] = move_stamp;

            let k_v = strength[vi];
            let sig_cur = sigma_tot[current as usize] - k_v;
            let w_current = groups[vi]
                .iter()
                .find(|g| g.comm == current)
                .map_or(0.0, |g| g.sum);
            let gain_stay = w_current / m - config.resolution * sig_cur * k_v / (2.0 * m * m);

            let mut best_comm = current;
            let mut best_gain = gain_stay;
            for g in &groups[vi] {
                if g.comm == current {
                    continue;
                }
                let gain = g.sum / m
                    - config.resolution * sigma_tot[g.comm as usize] * k_v / (2.0 * m * m);
                if gain > best_gain + GAIN_EPS {
                    best_gain = gain;
                    best_comm = g.comm;
                }
            }

            if best_comm != current {
                sigma_tot[current as usize] = sig_cur;
                sigma_tot[best_comm as usize] += k_v;
                communities[vi] = best_comm;
                moved_this_sweep = true;
                moved_any = true;
                move_stamp += 1;
                comm_stamp[current as usize] = move_stamp;
                comm_stamp[best_comm as usize] = move_stamp;
                // Relocate v inside every adjacent condensed row (v's own
                // row too, when it carries a self-edge — a re-gather would
                // rebucket that entry the same way).
                for p in offsets[vi]..offsets[vi + 1] {
                    let x = row_nbr[p] as usize;
                    relocate_member(
                        &mut groups[x],
                        &row_nbr,
                        &row_w,
                        v,
                        current,
                        best_comm,
                    );
                }
            }
        }

        if !moved_this_sweep {
            break;
        }
    }

    LocalMoveOutcome {
        communities,
        moved_any,
        sweeps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txallo_graph::AdjacencyGraph;
    use txallo_model::FxHashMap;

    #[test]
    fn merges_a_triangle() {
        let g = AdjacencyGraph::from_edges(3, vec![(0u32, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]);
        let out = local_moving_pass(&g, &LouvainConfig::default());
        assert!(out.moved_any);
        assert_eq!(out.communities[0], out.communities[1]);
        assert_eq!(out.communities[1], out.communities[2]);
    }

    #[test]
    fn keeps_disconnected_nodes_apart() {
        let g = AdjacencyGraph::from_edges(4, vec![(0u32, 1, 1.0), (2, 3, 1.0)]);
        let out = local_moving_pass(&g, &LouvainConfig::default());
        assert_eq!(out.communities[0], out.communities[1]);
        assert_eq!(out.communities[2], out.communities[3]);
        assert_ne!(out.communities[0], out.communities[2]);
    }

    #[test]
    fn no_move_on_empty_graph() {
        let g = AdjacencyGraph::from_edges(0, Vec::new());
        let out = local_moving_pass(&g, &LouvainConfig::default());
        assert!(!out.moved_any);
        assert!(out.communities.is_empty());
    }

    #[test]
    fn deterministic_across_runs() {
        let mut edges = Vec::new();
        for a in 0..20u32 {
            edges.push((a, (a + 1) % 20, 1.0));
            edges.push((a, (a + 2) % 20, 0.5));
        }
        let g = AdjacencyGraph::from_edges(20, edges);
        let a = local_moving_pass(&g, &LouvainConfig::default());
        let b = local_moving_pass(&g, &LouvainConfig::default());
        assert_eq!(a.communities, b.communities);
        assert_eq!(a.sweeps, b.sweeps);
    }

    /// Reference re-implementation of the seed's hash-map gather: collect
    /// per-community weights into a map, copy to a vec, sort by community,
    /// evaluate every node every sweep (no incremental skipping). The
    /// dense-scratch pass must produce byte-identical labels — this pins
    /// down both the dense gather and the exactness of the stamp-based
    /// node skipping.
    fn reference_local_moving(
        graph: &impl WeightedGraph,
        config: &LouvainConfig,
    ) -> LocalMoveOutcome {
        let n = graph.node_count();
        let m = graph.total_weight();
        let mut communities: Vec<u32> = (0..n as u32).collect();
        if n == 0 || m <= 0.0 {
            return LocalMoveOutcome {
                communities,
                moved_any: false,
                sweeps: 0,
            };
        }
        let mut sigma_tot: Vec<f64> = (0..n as NodeId).map(|v| graph.strength(v)).collect();
        let mut moved_any = false;
        let mut sweeps = 0usize;
        let mut link_weight: FxHashMap<u32, f64> = FxHashMap::default();
        for _ in 0..config.max_sweeps {
            sweeps += 1;
            let mut moved_this_sweep = false;
            for v in 0..n as NodeId {
                let k_v = graph.strength(v);
                let current = communities[v as usize];
                link_weight.clear();
                graph.for_each_neighbor(v, |u, w| {
                    *link_weight.entry(communities[u as usize]).or_insert(0.0) += w;
                });
                let sig_cur = sigma_tot[current as usize] - k_v;
                let w_current = link_weight.get(&current).copied().unwrap_or(0.0);
                let gain_stay = w_current / m - config.resolution * sig_cur * k_v / (2.0 * m * m);
                let mut best_comm = current;
                let mut best_gain = gain_stay;
                let mut candidates: Vec<(u32, f64)> =
                    link_weight.iter().map(|(&c, &w)| (c, w)).collect();
                candidates.sort_unstable_by_key(|&(c, _)| c);
                for (c, w_vc) in candidates {
                    if c == current {
                        continue;
                    }
                    let gain =
                        w_vc / m - config.resolution * sigma_tot[c as usize] * k_v / (2.0 * m * m);
                    if gain > best_gain + GAIN_EPS {
                        best_gain = gain;
                        best_comm = c;
                    }
                }
                if best_comm != current {
                    sigma_tot[current as usize] = sig_cur;
                    sigma_tot[best_comm as usize] += k_v;
                    communities[v as usize] = best_comm;
                    moved_this_sweep = true;
                    moved_any = true;
                }
            }
            if !moved_this_sweep {
                break;
            }
        }
        LocalMoveOutcome {
            communities,
            moved_any,
            sweeps,
        }
    }

    /// A messy graph: ring + chords + self-loops + heavy hubs.
    fn messy_graph() -> AdjacencyGraph {
        let mut edges = Vec::new();
        for a in 0..60u32 {
            edges.push((a, (a + 1) % 60, 1.0));
            edges.push((a, (a + 7) % 60, 0.25));
            if a % 5 == 0 {
                edges.push((a, a, 0.5));
                edges.push((a, (a + 30) % 60, 0.1));
            }
        }
        AdjacencyGraph::from_edges(60, edges)
    }

    #[test]
    fn dense_gather_matches_hashmap_reference_byte_for_byte() {
        let g = messy_graph();
        let config = LouvainConfig::default();
        let dense = local_moving_pass(&g, &config);
        let reference = reference_local_moving(&g, &config);
        assert_eq!(dense.communities, reference.communities);
        assert_eq!(dense.sweeps, reference.sweeps);
        assert_eq!(dense.moved_any, reference.moved_any);
    }

    /// A weighted mess with exercised self-loops and hubs, scrambled per
    /// seed so the condensed pass sees varied float folds and tie shapes.
    fn weighted_mess(seed: u64) -> AdjacencyGraph {
        let n = 48u32;
        let mut edges = Vec::new();
        let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut next = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for a in 0..n {
            edges.push((a, (a + 1) % n, 1.0 + (next() % 7) as f64 * 0.125));
            edges.push((a, (a + 5) % n, 0.25 + (next() % 5) as f64 * 0.0625));
            if a % 4 == 0 {
                edges.push((a, a, 0.5 + (next() % 3) as f64 * 0.25));
            }
            if a % 6 == 0 {
                edges.push((a, (a + n / 2) % n, 0.1));
            }
        }
        AdjacencyGraph::from_edges(n as usize, edges)
    }

    /// The condensed-row pass must replay the re-gather pass move for
    /// move: identical labels, sweep counts and convergence flags, with
    /// every gather bit reproduced by bucket relocation + refold instead
    /// of full-row re-gathers.
    #[test]
    fn condensed_pass_matches_regather_pass_byte_for_byte() {
        let config = LouvainConfig::default().with_threads(1);
        for seed in 0..5u64 {
            let g = weighted_mess(seed);
            let regather = local_moving_pass(&g, &config);
            let condensed = local_moving_condensed(&g, &config);
            assert_eq!(condensed.communities, regather.communities, "seed {seed}");
            assert_eq!(condensed.sweeps, regather.sweeps, "seed {seed}");
            assert_eq!(condensed.moved_any, regather.moved_any, "seed {seed}");
        }
        // And on the standing messy graph, against the hash-map reference.
        let g = messy_graph();
        let condensed = local_moving_condensed(&g, &config);
        let reference = reference_local_moving(&g, &config);
        assert_eq!(condensed.communities, reference.communities);
        assert_eq!(condensed.sweeps, reference.sweeps);
    }

    #[test]
    fn condensed_pass_degenerate_shapes() {
        let empty = AdjacencyGraph::from_edges(0, Vec::new());
        let out = local_moving_condensed(&empty, &LouvainConfig::default());
        assert!(!out.moved_any);
        assert!(out.communities.is_empty());

        // Isolated nodes only: zero total weight, nothing moves.
        let isolated = AdjacencyGraph::from_edges(3, Vec::new());
        let out = local_moving_condensed(&isolated, &LouvainConfig::default());
        assert!(!out.moved_any);
        assert_eq!(out.communities, vec![0, 1, 2]);
    }

    /// Golden thread-invariance test: the multi-core pass must reproduce
    /// the serial pass — and through it the seed's hash-map reference —
    /// byte for byte at every thread count, including counts far above
    /// the machine's core count and above the node count.
    #[test]
    fn parallel_pass_is_bit_identical_to_serial_and_reference() {
        let g = messy_graph();
        let serial_cfg = LouvainConfig::default().with_threads(1);
        let serial = local_moving_pass(&g, &serial_cfg);
        let reference = reference_local_moving(&g, &serial_cfg);
        assert_eq!(serial.communities, reference.communities);
        assert_eq!(serial.sweeps, reference.sweeps);
        for threads in [2usize, 3, 8, 61] {
            let cfg = LouvainConfig::default().with_threads(threads);
            let par = local_moving_pass(&g, &cfg);
            assert_eq!(par.communities, serial.communities, "{threads} threads");
            assert_eq!(par.sweeps, serial.sweeps, "{threads} threads");
            assert_eq!(par.moved_any, serial.moved_any, "{threads} threads");
        }
    }
}
