//! Newman modularity for weighted graphs with self-loops.

use txallo_graph::{NodeId, WeightedGraph};

/// Computes generalized modularity
/// `Q = Σ_c [ w_in(c)/m − γ·(Σ_tot(c)/(2m))² ]`
/// where `m` is the total edge weight (each edge once, self-loops once),
/// `w_in(c)` the intra-community weight (self-loops count once) and
/// `Σ_tot(c)` the summed node strengths (self-loops count twice).
///
/// `resolution` is γ; 1.0 recovers classic modularity.
pub fn modularity(graph: &impl WeightedGraph, communities: &[u32], resolution: f64) -> f64 {
    assert_eq!(communities.len(), graph.node_count(), "one label per node");
    let m = graph.total_weight();
    if m <= 0.0 {
        return 0.0;
    }
    let community_count = communities
        .iter()
        .map(|&c| c as usize + 1)
        .max()
        .unwrap_or(0);
    let mut intra = vec![0.0f64; community_count];
    let mut totals = vec![0.0f64; community_count];
    for v in 0..graph.node_count() as NodeId {
        let cv = communities[v as usize] as usize;
        totals[cv] += graph.strength(v);
        intra[cv] += graph.self_loop(v);
        graph.for_each_neighbor(v, |u, w| {
            if communities[u as usize] == communities[v as usize] && u > v {
                intra[cv] += w;
            }
        });
    }
    let mut q = 0.0;
    for c in 0..community_count {
        q += intra[c] / m - resolution * (totals[c] / (2.0 * m)).powi(2);
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use txallo_graph::AdjacencyGraph;

    #[test]
    fn single_community_has_zero_ish_modularity() {
        // All nodes in one community: Q = 1 - 1 = 0 for any connected graph.
        let g = AdjacencyGraph::from_edges(3, vec![(0u32, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]);
        let q = modularity(&g, &[0, 0, 0], 1.0);
        assert!(
            q.abs() < 1e-12,
            "Q of the trivial partition must be 0, got {q}"
        );
    }

    #[test]
    fn all_singletons_give_negative_modularity() {
        let g = AdjacencyGraph::from_edges(3, vec![(0u32, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]);
        let q = modularity(&g, &[0, 1, 2], 1.0);
        assert!(
            q < 0.0,
            "singleton partition of a clique has Q < 0, got {q}"
        );
    }

    #[test]
    fn good_partition_beats_bad_partition() {
        // Two triangles plus one bridging edge.
        let g = AdjacencyGraph::from_edges(
            6,
            vec![
                (0u32, 1, 1.0),
                (1, 2, 1.0),
                (0, 2, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (3, 5, 1.0),
                (2, 3, 0.2),
            ],
        );
        let good = modularity(&g, &[0, 0, 0, 1, 1, 1], 1.0);
        let bad = modularity(&g, &[0, 1, 0, 1, 0, 1], 1.0);
        assert!(good > bad, "good={good} bad={bad}");
        assert!(good > 0.3);
    }

    #[test]
    fn self_loops_count_toward_intra_weight() {
        let g = AdjacencyGraph::from_edges(2, vec![(0u32, 0u32, 1.0), (0, 1, 1.0)]);
        // m = 2; community {0,1}: intra = 2 => Q = 2/2 - (4/4)^2 = 0
        let q = modularity(&g, &[0, 0], 1.0);
        assert!(q.abs() < 1e-12, "got {q}");
    }

    #[test]
    fn resolution_shifts_the_balance() {
        let g = AdjacencyGraph::from_edges(4, vec![(0u32, 1, 1.0), (2, 3, 1.0)]);
        let split = |gamma: f64| modularity(&g, &[0, 0, 1, 1], gamma);
        assert!(
            split(1.0) > split(2.0),
            "higher resolution penalizes communities more"
        );
    }
}
