//! Community aggregation: collapsing a partition into a super-node graph.
//!
//! ## Counting sort instead of per-row comparison sorts
//!
//! The aggregation used to funnel the condensed edge list through the
//! duplicate-merging edge-list constructor, which comparison-sorts every
//! super-node row per level — `O(E log d)` on the hottest level (level 0,
//! the full graph). Community ids are dense (`0..community_count`), so the
//! whole build is a stable two-pass LSD counting sort keyed by community
//! id: scatter the oriented entries by *target*, then by *source* row —
//! `O(E + C)` per level, rows grouped and ascending by construction, no
//! comparison sort anywhere.
//!
//! ## Determinism contract
//!
//! The build is canonical and **stable**: parallel entries of the same
//! super-edge merge in the input order of the level walk (nodes ascending,
//! neighbors in row order), and both orientations of a super-edge see that
//! same order — so the condensed graph is bitwise *symmetric*
//! (`w(c→d) ≡ w(d→c)` bit-for-bit), which the old per-row unstable sorts
//! did not even guarantee. Self-loop and total-weight folds visit
//! contributions in exactly the old input order. The whole pipeline is
//! pinned byte-identical against a stable-sorted reference merge in the
//! tests below.

use txallo_graph::par::{
    canonical_chunk_count, entry_balanced_split, fold_chunks, reduce_tree, resolve_threads,
};
use txallo_graph::{fit_u32, AdjacencyGraph, CsrGraph, NodeId, WeightedGraph};

/// Work quantum of the parallel aggregation: one canonical chunk per this
/// many adjacency entries. A pure constant — never derived from the
/// thread count — so the chunk shape is an invariant of the input.
const CHUNK_QUANTUM: usize = 8192;

/// Byte budget for the per-chunk community histograms (`chunks × C × 4`
/// bytes), capping the canonical chunk count on partitions with many
/// communities. Data-derived, thread-count-independent.
const HIST_BUDGET_BYTES: usize = 1 << 22;

/// Hard ceiling on the canonical chunk count.
const MAX_CHUNKS: usize = 64;

/// Reusable buffers of the counting-sort aggregation — one set per Louvain
/// run, reused across every level (high-water mark set by level 0).
#[derive(Debug, Clone, Default)]
pub struct AggregateScratch {
    /// Condensed cross-community edges, one per unordered pair occurrence
    /// `(c_lo, c_hi, w)`, in level-walk order.
    edges: Vec<(u32, u32, f64)>,
    /// Per-community degree counts / scatter cursors.
    cursor: Vec<u32>,
    /// Pass-A output: entries sorted by target (stable).
    a_row: Vec<u32>,
    a_target: Vec<u32>,
    a_w: Vec<f64>,
    /// Pass-B output: entries grouped by row, ascending target, stable.
    b_target: Vec<u32>,
    b_w: Vec<f64>,
}

/// Builds the condensed graph where each community becomes one node.
///
/// Intra-community weight (including member self-loops) becomes the
/// super-node's self-loop; inter-community weight accumulates on the
/// super-edge. Total weight is preserved exactly, which keeps modularity
/// comparable across levels.
pub fn aggregate_graph(
    graph: &impl WeightedGraph,
    communities: &[u32],
    community_count: usize,
) -> AdjacencyGraph {
    let mut scratch = AggregateScratch::default();
    aggregate_graph_into(graph, communities, community_count, &mut scratch)
}

/// [`aggregate_graph`] with caller-owned scratch, so the level loop of
/// `louvain_csr` reuses every buffer across the whole hierarchy instead of
/// growing fresh ones per aggregation level.
pub fn aggregate_graph_into(
    graph: &impl WeightedGraph,
    communities: &[u32],
    community_count: usize,
    scratch: &mut AggregateScratch,
) -> AdjacencyGraph {
    assert_eq!(communities.len(), graph.node_count());
    let c = community_count;

    // Level walk (nodes ascending, neighbors in row order): fold member
    // self-loops and intra edges straight into the super-node loops, stage
    // each cross edge once, and accumulate the total in exactly this visit
    // order — the same input order the old edge-list build folded.
    let mut self_loops = vec![0.0f64; c];
    let mut total = 0.0f64;
    let edges = &mut scratch.edges;
    edges.clear();
    for v in 0..graph.node_count() as NodeId {
        let cv = communities[v as usize];
        let loop_w = graph.self_loop(v);
        if loop_w > 0.0 {
            total += loop_w;
            self_loops[cv as usize] += loop_w;
        }
        graph.for_each_neighbor(v, |u, w| {
            if v < u {
                let cu = communities[u as usize];
                total += w;
                if cu == cv {
                    self_loops[cv as usize] += w;
                } else {
                    edges.push((cv.min(cu), cv.max(cu), w));
                }
            }
        });
    }

    // Degree counts (each cross occurrence lands in both endpoint rows; a
    // community's count as a scatter *target* equals its count as a row).
    let cursor = &mut scratch.cursor;
    cursor.clear();
    cursor.resize(c, 0);
    for &(a, b, _) in edges.iter() {
        cursor[a as usize] += 1;
        cursor[b as usize] += 1;
    }
    let mut offsets = vec![0u32; c + 1];
    for i in 0..c {
        offsets[i + 1] = offsets[i] + cursor[i];
    }
    let entries = offsets[c] as usize;

    // Pass A — stable counting scatter of the oriented entries by target.
    // Entries are generated edge by edge (both orientations), preserving
    // the staging order within every target bucket.
    scratch.a_row.clear();
    scratch.a_row.resize(entries, 0);
    scratch.a_target.clear();
    scratch.a_target.resize(entries, 0);
    scratch.a_w.clear();
    scratch.a_w.resize(entries, 0.0);
    cursor.copy_from_slice(&offsets[..c]);
    for &(a, b, w) in edges.iter() {
        let slot = cursor[b as usize] as usize;
        cursor[b as usize] += 1;
        scratch.a_row[slot] = a;
        scratch.a_target[slot] = b;
        scratch.a_w[slot] = w;
        let slot = cursor[a as usize] as usize;
        cursor[a as usize] += 1;
        scratch.a_row[slot] = b;
        scratch.a_target[slot] = a;
        scratch.a_w[slot] = w;
    }

    // Pass B — stable counting scatter by row: entries arrive ascending by
    // target, so each row comes out ascending by target with parallel
    // occurrences still in staging order.
    scratch.b_target.clear();
    scratch.b_target.resize(entries, 0);
    scratch.b_w.clear();
    scratch.b_w.resize(entries, 0.0);
    cursor.copy_from_slice(&offsets[..c]);
    for i in 0..entries {
        let row = scratch.a_row[i] as usize;
        let slot = cursor[row] as usize;
        cursor[row] += 1;
        scratch.b_target[slot] = scratch.a_target[i];
        scratch.b_w[slot] = scratch.a_w[i];
    }

    // Merge parallel occurrences (adjacent after the radix; summed in
    // staging order) into the final compact rows.
    let mut final_offsets = vec![0u32; c + 1];
    let mut targets: Vec<NodeId> = Vec::with_capacity(entries);
    let mut weights: Vec<f64> = Vec::with_capacity(entries);
    for row in 0..c {
        let (s, e) = (offsets[row] as usize, offsets[row + 1] as usize);
        let row_start = targets.len();
        for i in s..e {
            let t = scratch.b_target[i];
            let w = scratch.b_w[i];
            match targets.last() {
                Some(&last) if targets.len() > row_start && last == t => {
                    *weights.last_mut().expect("parallel to targets") += w; // txallo-lint: allow(lib-unwrap) — guarded by targets.last() == Some in the match arm, and weights grows in lockstep with targets
                }
                _ => {
                    targets.push(t);
                    weights.push(w);
                }
            }
        }
        final_offsets[row + 1] = fit_u32(targets.len());
    }

    CsrGraph::from_sorted_rows(final_offsets, targets, weights, self_loops, total)
}

/// One canonical chunk's staged aggregation state: the level-walk
/// contributions in walk order, the chunk's community degree histogram,
/// and the chunk-local pass-A counting sort (oriented entries grouped by
/// target community, staging order preserved inside every bucket).
struct ChunkStage {
    /// `(community, w)` float contributions in walk order; `u32::MAX`
    /// tags a cross-community edge (contributes to the total only).
    contrib: Vec<(u32, f64)>,
    /// Per-community oriented-entry counts (both endpoints per edge).
    hist: Vec<u32>,
    /// Bucket boundaries of `sorted`: prefix sums of `hist` (`C + 1`).
    bucket_offsets: Vec<u32>,
    /// `(row, w)` oriented entries, bucket-major by target community.
    sorted: Vec<(u32, f64)>,
}

/// [`aggregate_graph_into`] with a thread-count knob: `threads <= 1`
/// (after [`resolve_threads`]) takes the exact serial code path above;
/// more threads run the same counting-sort pipeline over **canonical
/// chunks** (boundaries a pure function of the adjacency data, per
/// [`canonical_chunk_count`] / [`entry_balanced_split`]) and merge the
/// per-chunk partials through [`reduce_tree`] — integer histogram adds
/// and order-preserving bucket concatenation only, with every float fold
/// kept per-slot in chunk order (the serial walk order). The result is
/// bit-identical to the serial build at every thread count, which the
/// tests below and the Louvain golden suite pin.
pub fn aggregate_graph_threaded(
    graph: &(impl WeightedGraph + Sync),
    communities: &[u32],
    community_count: usize,
    scratch: &mut AggregateScratch,
    threads: usize,
) -> AdjacencyGraph {
    aggregate_impl(graph, communities, community_count, scratch, threads, None)
}

/// The chunked pipeline behind [`aggregate_graph_threaded`], with a test
/// hook forcing the chunk count: the build is *shape-independent* — any
/// chunk partition reproduces the serial bits — so the tests exercise
/// many shapes on graphs far below the production [`CHUNK_QUANTUM`].
fn aggregate_impl(
    graph: &(impl WeightedGraph + Sync),
    communities: &[u32],
    community_count: usize,
    scratch: &mut AggregateScratch,
    threads: usize,
    forced_chunks: Option<usize>,
) -> AdjacencyGraph {
    assert_eq!(communities.len(), graph.node_count());
    let n = graph.node_count();
    let c = community_count;
    let workers = resolve_threads(threads);
    if workers <= 1 || n == 0 || c == 0 {
        return aggregate_graph_into(graph, communities, community_count, scratch);
    }

    // Canonical chunk shape: entry-balanced node ranges, count capped by
    // the histogram budget. Both depend on the data alone.
    let mut deg_prefix = vec![0u32; n + 1];
    for v in 0..n {
        deg_prefix[v + 1] = deg_prefix[v] + fit_u32(graph.neighbor_count(v as NodeId));
    }
    let level_entries = deg_prefix[n] as usize;
    let hist_cap = (HIST_BUDGET_BYTES / (4 * c.max(1))).min(MAX_CHUNKS);
    let chunk_target = forced_chunks
        .unwrap_or_else(|| canonical_chunk_count(level_entries, CHUNK_QUANTUM, hist_cap));
    let bounds = entry_balanced_split(&deg_prefix, chunk_target);
    if bounds.len() - 1 <= 1 {
        return aggregate_graph_into(graph, communities, community_count, scratch);
    }

    // Stage 1+2 (parallel, one partial per canonical chunk): walk the
    // chunk's rows staging contributions and cross edges, then counting-
    // sort the chunk's own oriented entries by target — all chunk-local,
    // so the partial is a pure function of the chunk range.
    let stages: Vec<ChunkStage> = fold_chunks(workers, &bounds, |_, lo, hi| {
        let mut contrib = Vec::new();
        let mut edges = Vec::new();
        let mut hist = vec![0u32; c];
        for v in lo..hi {
            let cv = communities[v];
            let loop_w = graph.self_loop(v as NodeId);
            if loop_w > 0.0 {
                contrib.push((cv, loop_w));
            }
            graph.for_each_neighbor(v as NodeId, |u, w| {
                if (v as NodeId) < u {
                    let cu = communities[u as usize];
                    if cu == cv {
                        contrib.push((cv, w));
                    } else {
                        contrib.push((u32::MAX, w));
                        hist[cv.min(cu) as usize] += 1;
                        hist[cv.max(cu) as usize] += 1;
                        edges.push((cv.min(cu), cv.max(cu), w));
                    }
                }
            });
        }
        let mut bucket_offsets = vec![0u32; c + 1];
        for q in 0..c {
            bucket_offsets[q + 1] = bucket_offsets[q] + hist[q];
        }
        let mut cursor: Vec<u32> = bucket_offsets[..c].to_vec();
        let mut sorted = vec![(0u32, 0.0f64); edges.len() * 2];
        for &(a, b, w) in &edges {
            let slot = cursor[b as usize] as usize;
            cursor[b as usize] += 1;
            sorted[slot] = (a, w);
            let slot = cursor[a as usize] as usize;
            cursor[a as usize] += 1;
            sorted[slot] = (b, w);
        }
        ChunkStage {
            contrib,
            hist,
            bucket_offsets,
            sorted,
        }
    });

    // Serial float folds over the chunk-ordered contributions — chunk
    // order is the walk order, so these bits equal the serial build's.
    let mut self_loops = vec![0.0f64; c];
    let mut total = 0.0f64;
    for stage in &stages {
        for &(tag, w) in &stage.contrib {
            total += w;
            if tag != u32::MAX {
                self_loops[tag as usize] += w;
            }
        }
    }

    // Global community degree histogram: per-chunk histograms merged by
    // the fixed reduction tree (elementwise integer adds are exact under
    // any association).
    let merged_hist = reduce_tree(
        stages.iter().map(|s| s.hist.clone()).collect(),
        |mut left, right| {
            for (a, b) in left.iter_mut().zip(&right) {
                *a += b;
            }
            left
        },
    )
    .expect("at least two chunks exist on this path"); // txallo-lint: allow(lib-unwrap) — bounds.len() - 1 > 1 was checked above, so `stages` is non-empty
    let mut offsets = vec![0u32; c + 1];
    for q in 0..c {
        offsets[q + 1] = offsets[q] + merged_hist[q];
    }
    let entries = offsets[c] as usize;

    // Stage 3 (parallel over canonical target ranges): the logical global
    // pass-A sequence is "targets ascending, chunks ascending within a
    // target, staging order within a chunk" — exactly the serial scatter
    // order. Each worker walks its target range of that sequence and
    // counting-sorts it stably by *row*, yielding per-(range, row)
    // buckets whose concatenation in range order reproduces the serial
    // pass-B output bit-for-bit.
    let target_bounds = entry_balanced_split(&offsets, chunk_target);
    // One target range's output: row-sorted (target, weight) entries plus
    // the per-row bucket offsets into them.
    type RangeBuckets = (Vec<(u32, f64)>, Vec<u32>);
    let row_sorted: Vec<RangeBuckets> =
        fold_chunks(workers, &target_bounds, |_, clo, chi| {
            let mut hist = vec![0u32; c];
            for q in clo..chi {
                for stage in &stages {
                    let (s, e) = (
                        stage.bucket_offsets[q] as usize,
                        stage.bucket_offsets[q + 1] as usize,
                    );
                    for &(row, _) in &stage.sorted[s..e] {
                        hist[row as usize] += 1;
                    }
                }
            }
            let mut local_offsets = vec![0u32; c + 1];
            for r in 0..c {
                local_offsets[r + 1] = local_offsets[r] + hist[r];
            }
            let mut cursor: Vec<u32> = local_offsets[..c].to_vec();
            let range_entries = (offsets[chi] - offsets[clo]) as usize;
            let mut out = vec![(0u32, 0.0f64); range_entries];
            for q in clo..chi {
                for stage in &stages {
                    let (s, e) = (
                        stage.bucket_offsets[q] as usize,
                        stage.bucket_offsets[q + 1] as usize,
                    );
                    for &(row, w) in &stage.sorted[s..e] {
                        let slot = cursor[row as usize] as usize;
                        cursor[row as usize] += 1;
                        out[slot] = (fit_u32(q), w);
                    }
                }
            }
            (out, local_offsets)
        });

    // Stage 4 (parallel over canonical row ranges): each row's final
    // sequence is the range-order concatenation of its per-range buckets
    // — targets ascending (ranges partition the target space), parallel
    // occurrences adjacent and still in staging order — merged exactly
    // like the serial build's last pass.
    struct MergedRows {
        row_counts: Vec<u32>,
        targets: Vec<NodeId>,
        weights: Vec<f64>,
    }
    let merged: Vec<MergedRows> = fold_chunks(workers, &target_bounds, |_, rlo, rhi| {
        let mut row_counts = Vec::with_capacity(rhi - rlo);
        let mut targets: Vec<NodeId> = Vec::new();
        let mut weights: Vec<f64> = Vec::new();
        for r in rlo..rhi {
            let row_start = targets.len();
            for (out, local_offsets) in &row_sorted {
                let (s, e) = (local_offsets[r] as usize, local_offsets[r + 1] as usize);
                for &(t, w) in &out[s..e] {
                    match targets.last() {
                        Some(&last) if targets.len() > row_start && last == t => {
                            let slot = weights.len() - 1;
                            weights[slot] += w;
                        }
                        _ => {
                            targets.push(t);
                            weights.push(w);
                        }
                    }
                }
            }
            row_counts.push(fit_u32(targets.len() - row_start));
        }
        MergedRows {
            row_counts,
            targets,
            weights,
        }
    });

    // Serial assembly in range order (= row order): merged row lengths
    // prefix into the final offsets, merged rows concatenate verbatim.
    let mut final_offsets = vec![0u32; c + 1];
    let mut targets: Vec<NodeId> = Vec::with_capacity(entries);
    let mut weights: Vec<f64> = Vec::with_capacity(entries);
    let mut row = 0usize;
    for part in merged {
        for count in part.row_counts {
            final_offsets[row + 1] = final_offsets[row] + count;
            row += 1;
        }
        targets.extend_from_slice(&part.targets);
        weights.extend_from_slice(&part.weights);
    }
    debug_assert_eq!(row, c);

    CsrGraph::from_sorted_rows(final_offsets, targets, weights, self_loops, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_total_weight() {
        let g = AdjacencyGraph::from_edges(
            4,
            vec![(0u32, 1, 2.0), (2, 3, 1.0), (1, 2, 0.5), (0, 0, 0.25)],
        );
        let agg = aggregate_graph(&g, &[0, 0, 1, 1], 2);
        assert_eq!(agg.node_count(), 2);
        assert!((agg.total_weight() - g.total_weight()).abs() < 1e-12);
        // Community 0 self-loop: edge (0,1)=2.0 plus node-0 loop 0.25.
        assert!((agg.self_loop(0) - 2.25).abs() < 1e-12);
        assert!((agg.self_loop(1) - 1.0).abs() < 1e-12);
        assert!((agg.weight_between(0, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn identity_partition_keeps_structure() {
        let g = AdjacencyGraph::from_edges(3, vec![(0u32, 1, 1.0), (1, 2, 3.0)]);
        let agg = aggregate_graph(&g, &[0, 1, 2], 3);
        assert_eq!(agg.node_count(), 3);
        assert!((agg.weight_between(0, 1) - 1.0).abs() < 1e-12);
        assert!((agg.weight_between(1, 2) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn collapse_to_single_node() {
        let g = AdjacencyGraph::from_edges(3, vec![(0u32, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]);
        let agg = aggregate_graph(&g, &[0, 0, 0], 1);
        assert_eq!(agg.node_count(), 1);
        assert!((agg.self_loop(0) - 3.0).abs() < 1e-12);
        assert_eq!(agg.edge_count(), 0);
    }

    /// A messy deterministic multi-community graph: hubs, non-dyadic
    /// weights, self-loops, and — crucially — many parallel cross edges
    /// per community pair, so the duplicate-merge order is genuinely
    /// exercised.
    fn scrambled(n: usize, communities: usize) -> (AdjacencyGraph, Vec<u32>, usize) {
        let mut edges = Vec::new();
        let mut x = 0x243f6a8885a308d3u64;
        for a in 0..n as NodeId {
            for hop in [1usize, 3, 11, 17] {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let b = ((a as usize + hop + (x >> 59) as usize) % n) as NodeId;
                if a != b {
                    edges.push((a, b, 1.0 + (x >> 44) as f64 / 7.0));
                }
            }
            if a % 5 == 0 {
                edges.push((a, a, 0.3 + a as f64 / 11.0));
            }
        }
        let labels: Vec<u32> = (0..n as u32)
            .map(|v| (v * 7 + 3) % communities as u32)
            .collect();
        (AdjacencyGraph::from_edges(n, edges), labels, communities)
    }

    /// A merged reference row: `(target, weight bits)` pairs.
    type RefRow = Vec<(u32, u64)>;

    /// The stable reference build: condensed edge list → per-row **stable**
    /// sort + merge in input order — the semantics the counting sort must
    /// reproduce byte-for-byte.
    fn reference_aggregate(
        graph: &impl WeightedGraph,
        communities: &[u32],
        c: usize,
    ) -> (Vec<f64>, f64, Vec<RefRow>) {
        let mut self_loops = vec![0.0f64; c];
        let mut total = 0.0f64;
        let mut rows: Vec<Vec<(u32, f64)>> = vec![Vec::new(); c];
        for v in 0..graph.node_count() as NodeId {
            let cv = communities[v as usize];
            let loop_w = graph.self_loop(v);
            if loop_w > 0.0 {
                total += loop_w;
                self_loops[cv as usize] += loop_w;
            }
            graph.for_each_neighbor(v, |u, w| {
                if v < u {
                    let cu = communities[u as usize];
                    total += w;
                    if cu == cv {
                        self_loops[cv as usize] += w;
                    } else {
                        rows[cv as usize].push((cu, w));
                        rows[cu as usize].push((cv, w));
                    }
                }
            });
        }
        let merged = rows
            .into_iter()
            .map(|mut row| {
                row.sort_by_key(|&(t, _)| t); // stable
                let mut out: Vec<(u32, u64)> = Vec::new();
                let mut acc: Option<(u32, f64)> = None;
                for (t, w) in row {
                    match &mut acc {
                        Some((lt, lw)) if *lt == t => *lw += w,
                        _ => {
                            if let Some((lt, lw)) = acc {
                                out.push((lt, lw.to_bits()));
                            }
                            acc = Some((t, w));
                        }
                    }
                }
                if let Some((lt, lw)) = acc {
                    out.push((lt, lw.to_bits()));
                }
                out
            })
            .collect();
        (self_loops, total, merged)
    }

    /// The counting-sort build is byte-identical to the stable reference:
    /// same self-loops, same total (same fold order), every merged row
    /// bit-for-bit.
    #[test]
    fn counting_sort_matches_stable_reference_bitwise() {
        for (n, c) in [(60usize, 4usize), (150, 9), (240, 2), (90, 40)] {
            let (g, labels, c) = {
                let (g, labels, _) = scrambled(n, c);
                (g, labels, c)
            };
            let agg = aggregate_graph(&g, &labels, c);
            let (ref_loops, ref_total, ref_rows) = reference_aggregate(&g, &labels, c);
            assert_eq!(agg.total_weight().to_bits(), ref_total.to_bits(), "n={n}");
            for q in 0..c as u32 {
                assert_eq!(
                    agg.self_loop(q).to_bits(),
                    ref_loops[q as usize].to_bits(),
                    "loop of {q} (n={n})"
                );
                let got: Vec<(u32, u64)> =
                    agg.neighbors(q).map(|(t, w)| (t, w.to_bits())).collect();
                assert_eq!(got, ref_rows[q as usize], "row {q} (n={n}, c={c})");
            }
        }
    }

    /// The condensed graph is bitwise symmetric: both orientations of a
    /// super-edge carry the identical merged weight (parallel occurrences
    /// summed in the same staging order on both sides).
    #[test]
    fn aggregate_is_bitwise_symmetric() {
        let (g, labels, c) = scrambled(200, 7);
        let agg = aggregate_graph(&g, &labels, c);
        for a in 0..c as u32 {
            for (b, w) in agg.neighbors(a) {
                assert_eq!(
                    w.to_bits(),
                    agg.weight_between(b, a).to_bits(),
                    "super-edge ({a},{b})"
                );
            }
        }
    }

    /// Bitwise equality of two condensed graphs, every observable field.
    fn assert_same_graph(a: &AdjacencyGraph, b: &AdjacencyGraph, ctx: &str) {
        assert_eq!(a.node_count(), b.node_count(), "{ctx}");
        assert_eq!(
            a.total_weight().to_bits(),
            b.total_weight().to_bits(),
            "{ctx}"
        );
        for v in 0..a.node_count() as NodeId {
            assert_eq!(
                a.self_loop(v).to_bits(),
                b.self_loop(v).to_bits(),
                "{ctx} loop {v}"
            );
            assert_eq!(a.neighbor_ids(v), b.neighbor_ids(v), "{ctx} row {v}");
            let wa: Vec<u64> = a.neighbor_weights(v).iter().map(|w| w.to_bits()).collect();
            let wb: Vec<u64> = b.neighbor_weights(v).iter().map(|w| w.to_bits()).collect();
            assert_eq!(wa, wb, "{ctx} weights {v}");
            assert_eq!(
                a.incident_weight(v).to_bits(),
                b.incident_weight(v).to_bits(),
                "{ctx} incident {v}"
            );
        }
    }

    /// The canonical-chunk parallel build is bit-identical to the serial
    /// counting sort at every thread count — the chunk shape is a pure
    /// function of the data, every float fold runs per-slot in chunk
    /// (= walk) order, and the tree merges are integer-exact.
    #[test]
    fn threaded_aggregation_is_bit_identical_to_serial() {
        for (n, c) in [(60usize, 4usize), (150, 9), (240, 2), (90, 40), (300, 17)] {
            let (g, labels, c) = scrambled(n, c);
            let serial = aggregate_graph(&g, &labels, c);
            for threads in [2usize, 3, 8, 61] {
                for chunks in [2usize, 3, 5, 16] {
                    let mut scratch = AggregateScratch::default();
                    let par = aggregate_impl(&g, &labels, c, &mut scratch, threads, Some(chunks));
                    assert_same_graph(
                        &par,
                        &serial,
                        &format!("n={n} c={c} t={threads} chunks={chunks}"),
                    );
                }
            }
        }
    }

    /// Degenerate shapes fall back to (or reproduce) the serial path:
    /// empty graphs, single community, graphs below the chunk quantum.
    #[test]
    fn threaded_aggregation_degenerate_shapes() {
        let g = AdjacencyGraph::from_edges(0, Vec::<(NodeId, NodeId, f64)>::new());
        let mut scratch = AggregateScratch::default();
        let agg = aggregate_graph_threaded(&g, &[], 0, &mut scratch, 8);
        assert_eq!(agg.node_count(), 0);

        let (g, labels, _) = scrambled(40, 1);
        let serial = aggregate_graph(&g, &labels, 1);
        let par = aggregate_graph_threaded(&g, &labels, 1, &mut scratch, 8);
        assert_same_graph(&par, &serial, "single community");
    }

    /// Agreement with the old edge-list pipeline on duplicate-free inputs
    /// (where the unstable per-row sort had nothing to scramble): the
    /// counting build is a pure drop-in there.
    #[test]
    fn matches_edge_list_build_without_parallel_edges() {
        // Identity partition ⇒ every community pair has at most one edge.
        let (g, _, _) = scrambled(80, 1);
        let n = g.node_count();
        let labels: Vec<u32> = (0..n as u32).collect();
        let agg = aggregate_graph(&g, &labels, n);
        let mut edges: Vec<(NodeId, NodeId, f64)> = Vec::new();
        for v in 0..n as NodeId {
            let loop_w = g.self_loop(v);
            if loop_w > 0.0 {
                edges.push((v, v, loop_w));
            }
            g.for_each_neighbor(v, |u, w| {
                if v < u {
                    edges.push((v, u, w));
                }
            });
        }
        let old = AdjacencyGraph::from_edges(n, edges);
        for v in 0..n as NodeId {
            assert_eq!(agg.neighbor_ids(v), old.neighbor_ids(v));
            assert_eq!(agg.neighbor_weights(v), old.neighbor_weights(v));
            assert_eq!(agg.self_loop(v).to_bits(), old.self_loop(v).to_bits());
            assert_eq!(
                agg.incident_weight(v).to_bits(),
                old.incident_weight(v).to_bits()
            );
        }
    }
}
