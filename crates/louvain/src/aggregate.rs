//! Community aggregation: collapsing a partition into a super-node graph.

use txallo_graph::{AdjacencyGraph, NodeId, WeightedGraph};

/// Builds the condensed graph where each community becomes one node.
///
/// Intra-community weight (including member self-loops) becomes the
/// super-node's self-loop; inter-community weight accumulates on the
/// super-edge. Total weight is preserved exactly, which keeps modularity
/// comparable across levels.
pub fn aggregate_graph(
    graph: &impl WeightedGraph,
    communities: &[u32],
    community_count: usize,
) -> AdjacencyGraph {
    let mut edges = Vec::new();
    aggregate_graph_into(graph, communities, community_count, &mut edges)
}

/// [`aggregate_graph`] with a caller-owned edge buffer, so the level loop
/// of `louvain_csr` reuses one allocation across the whole hierarchy
/// instead of growing a fresh `Vec` per aggregation level (the buffer's
/// high-water mark is set by level 0, the largest graph).
///
/// The buffer is cleared on entry; its contents afterwards are the
/// condensed edge list and may be inspected or reused freely.
pub fn aggregate_graph_into(
    graph: &impl WeightedGraph,
    communities: &[u32],
    community_count: usize,
    edges: &mut Vec<(NodeId, NodeId, f64)>,
) -> AdjacencyGraph {
    assert_eq!(communities.len(), graph.node_count());
    edges.clear();
    for v in 0..graph.node_count() as NodeId {
        let cv = communities[v as usize];
        let loop_w = graph.self_loop(v);
        if loop_w > 0.0 {
            edges.push((cv, cv, loop_w));
        }
        graph.for_each_neighbor(v, |u, w| {
            let cu = communities[u as usize];
            if cu == cv {
                // Count each intra edge once (when v < u).
                if v < u {
                    edges.push((cv, cv, w));
                }
            } else if v < u {
                edges.push((cv.min(cu), cv.max(cu), w));
            }
        });
    }
    AdjacencyGraph::from_edges(community_count, edges.iter().copied())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_total_weight() {
        let g = AdjacencyGraph::from_edges(
            4,
            vec![(0u32, 1, 2.0), (2, 3, 1.0), (1, 2, 0.5), (0, 0, 0.25)],
        );
        let agg = aggregate_graph(&g, &[0, 0, 1, 1], 2);
        assert_eq!(agg.node_count(), 2);
        assert!((agg.total_weight() - g.total_weight()).abs() < 1e-12);
        // Community 0 self-loop: edge (0,1)=2.0 plus node-0 loop 0.25.
        assert!((agg.self_loop(0) - 2.25).abs() < 1e-12);
        assert!((agg.self_loop(1) - 1.0).abs() < 1e-12);
        assert!((agg.weight_between(0, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn identity_partition_keeps_structure() {
        let g = AdjacencyGraph::from_edges(3, vec![(0u32, 1, 1.0), (1, 2, 3.0)]);
        let agg = aggregate_graph(&g, &[0, 1, 2], 3);
        assert_eq!(agg.node_count(), 3);
        assert!((agg.weight_between(0, 1) - 1.0).abs() < 1e-12);
        assert!((agg.weight_between(1, 2) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn collapse_to_single_node() {
        let g = AdjacencyGraph::from_edges(3, vec![(0u32, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]);
        let agg = aggregate_graph(&g, &[0, 0, 0], 1);
        assert_eq!(agg.node_count(), 1);
        assert!((agg.self_loop(0) - 3.0).abs() < 1e-12);
        assert_eq!(agg.edge_count(), 0);
    }
}
