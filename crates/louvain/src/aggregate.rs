//! Community aggregation: collapsing a partition into a super-node graph.
//!
//! ## Counting sort instead of per-row comparison sorts
//!
//! The aggregation used to funnel the condensed edge list through the
//! duplicate-merging edge-list constructor, which comparison-sorts every
//! super-node row per level — `O(E log d)` on the hottest level (level 0,
//! the full graph). Community ids are dense (`0..community_count`), so the
//! whole build is a stable two-pass LSD counting sort keyed by community
//! id: scatter the oriented entries by *target*, then by *source* row —
//! `O(E + C)` per level, rows grouped and ascending by construction, no
//! comparison sort anywhere.
//!
//! ## Determinism contract
//!
//! The build is canonical and **stable**: parallel entries of the same
//! super-edge merge in the input order of the level walk (nodes ascending,
//! neighbors in row order), and both orientations of a super-edge see that
//! same order — so the condensed graph is bitwise *symmetric*
//! (`w(c→d) ≡ w(d→c)` bit-for-bit), which the old per-row unstable sorts
//! did not even guarantee. Self-loop and total-weight folds visit
//! contributions in exactly the old input order. The whole pipeline is
//! pinned byte-identical against a stable-sorted reference merge in the
//! tests below.

use txallo_graph::{fit_u32, AdjacencyGraph, CsrGraph, NodeId, WeightedGraph};

/// Reusable buffers of the counting-sort aggregation — one set per Louvain
/// run, reused across every level (high-water mark set by level 0).
#[derive(Debug, Clone, Default)]
pub struct AggregateScratch {
    /// Condensed cross-community edges, one per unordered pair occurrence
    /// `(c_lo, c_hi, w)`, in level-walk order.
    edges: Vec<(u32, u32, f64)>,
    /// Per-community degree counts / scatter cursors.
    cursor: Vec<u32>,
    /// Pass-A output: entries sorted by target (stable).
    a_row: Vec<u32>,
    a_target: Vec<u32>,
    a_w: Vec<f64>,
    /// Pass-B output: entries grouped by row, ascending target, stable.
    b_target: Vec<u32>,
    b_w: Vec<f64>,
}

/// Builds the condensed graph where each community becomes one node.
///
/// Intra-community weight (including member self-loops) becomes the
/// super-node's self-loop; inter-community weight accumulates on the
/// super-edge. Total weight is preserved exactly, which keeps modularity
/// comparable across levels.
pub fn aggregate_graph(
    graph: &impl WeightedGraph,
    communities: &[u32],
    community_count: usize,
) -> AdjacencyGraph {
    let mut scratch = AggregateScratch::default();
    aggregate_graph_into(graph, communities, community_count, &mut scratch)
}

/// [`aggregate_graph`] with caller-owned scratch, so the level loop of
/// `louvain_csr` reuses every buffer across the whole hierarchy instead of
/// growing fresh ones per aggregation level.
pub fn aggregate_graph_into(
    graph: &impl WeightedGraph,
    communities: &[u32],
    community_count: usize,
    scratch: &mut AggregateScratch,
) -> AdjacencyGraph {
    assert_eq!(communities.len(), graph.node_count());
    let c = community_count;

    // Level walk (nodes ascending, neighbors in row order): fold member
    // self-loops and intra edges straight into the super-node loops, stage
    // each cross edge once, and accumulate the total in exactly this visit
    // order — the same input order the old edge-list build folded.
    let mut self_loops = vec![0.0f64; c];
    let mut total = 0.0f64;
    let edges = &mut scratch.edges;
    edges.clear();
    for v in 0..graph.node_count() as NodeId {
        let cv = communities[v as usize];
        let loop_w = graph.self_loop(v);
        if loop_w > 0.0 {
            total += loop_w;
            self_loops[cv as usize] += loop_w;
        }
        graph.for_each_neighbor(v, |u, w| {
            if v < u {
                let cu = communities[u as usize];
                total += w;
                if cu == cv {
                    self_loops[cv as usize] += w;
                } else {
                    edges.push((cv.min(cu), cv.max(cu), w));
                }
            }
        });
    }

    // Degree counts (each cross occurrence lands in both endpoint rows; a
    // community's count as a scatter *target* equals its count as a row).
    let cursor = &mut scratch.cursor;
    cursor.clear();
    cursor.resize(c, 0);
    for &(a, b, _) in edges.iter() {
        cursor[a as usize] += 1;
        cursor[b as usize] += 1;
    }
    let mut offsets = vec![0u32; c + 1];
    for i in 0..c {
        offsets[i + 1] = offsets[i] + cursor[i];
    }
    let entries = offsets[c] as usize;

    // Pass A — stable counting scatter of the oriented entries by target.
    // Entries are generated edge by edge (both orientations), preserving
    // the staging order within every target bucket.
    scratch.a_row.clear();
    scratch.a_row.resize(entries, 0);
    scratch.a_target.clear();
    scratch.a_target.resize(entries, 0);
    scratch.a_w.clear();
    scratch.a_w.resize(entries, 0.0);
    cursor.copy_from_slice(&offsets[..c]);
    for &(a, b, w) in edges.iter() {
        let slot = cursor[b as usize] as usize;
        cursor[b as usize] += 1;
        scratch.a_row[slot] = a;
        scratch.a_target[slot] = b;
        scratch.a_w[slot] = w;
        let slot = cursor[a as usize] as usize;
        cursor[a as usize] += 1;
        scratch.a_row[slot] = b;
        scratch.a_target[slot] = a;
        scratch.a_w[slot] = w;
    }

    // Pass B — stable counting scatter by row: entries arrive ascending by
    // target, so each row comes out ascending by target with parallel
    // occurrences still in staging order.
    scratch.b_target.clear();
    scratch.b_target.resize(entries, 0);
    scratch.b_w.clear();
    scratch.b_w.resize(entries, 0.0);
    cursor.copy_from_slice(&offsets[..c]);
    for i in 0..entries {
        let row = scratch.a_row[i] as usize;
        let slot = cursor[row] as usize;
        cursor[row] += 1;
        scratch.b_target[slot] = scratch.a_target[i];
        scratch.b_w[slot] = scratch.a_w[i];
    }

    // Merge parallel occurrences (adjacent after the radix; summed in
    // staging order) into the final compact rows.
    let mut final_offsets = vec![0u32; c + 1];
    let mut targets: Vec<NodeId> = Vec::with_capacity(entries);
    let mut weights: Vec<f64> = Vec::with_capacity(entries);
    for row in 0..c {
        let (s, e) = (offsets[row] as usize, offsets[row + 1] as usize);
        let row_start = targets.len();
        for i in s..e {
            let t = scratch.b_target[i];
            let w = scratch.b_w[i];
            match targets.last() {
                Some(&last) if targets.len() > row_start && last == t => {
                    *weights.last_mut().expect("parallel to targets") += w; // txallo-lint: allow(lib-unwrap) — guarded by targets.last() == Some in the match arm, and weights grows in lockstep with targets
                }
                _ => {
                    targets.push(t);
                    weights.push(w);
                }
            }
        }
        final_offsets[row + 1] = fit_u32(targets.len());
    }

    CsrGraph::from_sorted_rows(final_offsets, targets, weights, self_loops, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_total_weight() {
        let g = AdjacencyGraph::from_edges(
            4,
            vec![(0u32, 1, 2.0), (2, 3, 1.0), (1, 2, 0.5), (0, 0, 0.25)],
        );
        let agg = aggregate_graph(&g, &[0, 0, 1, 1], 2);
        assert_eq!(agg.node_count(), 2);
        assert!((agg.total_weight() - g.total_weight()).abs() < 1e-12);
        // Community 0 self-loop: edge (0,1)=2.0 plus node-0 loop 0.25.
        assert!((agg.self_loop(0) - 2.25).abs() < 1e-12);
        assert!((agg.self_loop(1) - 1.0).abs() < 1e-12);
        assert!((agg.weight_between(0, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn identity_partition_keeps_structure() {
        let g = AdjacencyGraph::from_edges(3, vec![(0u32, 1, 1.0), (1, 2, 3.0)]);
        let agg = aggregate_graph(&g, &[0, 1, 2], 3);
        assert_eq!(agg.node_count(), 3);
        assert!((agg.weight_between(0, 1) - 1.0).abs() < 1e-12);
        assert!((agg.weight_between(1, 2) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn collapse_to_single_node() {
        let g = AdjacencyGraph::from_edges(3, vec![(0u32, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]);
        let agg = aggregate_graph(&g, &[0, 0, 0], 1);
        assert_eq!(agg.node_count(), 1);
        assert!((agg.self_loop(0) - 3.0).abs() < 1e-12);
        assert_eq!(agg.edge_count(), 0);
    }

    /// A messy deterministic multi-community graph: hubs, non-dyadic
    /// weights, self-loops, and — crucially — many parallel cross edges
    /// per community pair, so the duplicate-merge order is genuinely
    /// exercised.
    fn scrambled(n: usize, communities: usize) -> (AdjacencyGraph, Vec<u32>, usize) {
        let mut edges = Vec::new();
        let mut x = 0x243f6a8885a308d3u64;
        for a in 0..n as NodeId {
            for hop in [1usize, 3, 11, 17] {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let b = ((a as usize + hop + (x >> 59) as usize) % n) as NodeId;
                if a != b {
                    edges.push((a, b, 1.0 + (x >> 44) as f64 / 7.0));
                }
            }
            if a % 5 == 0 {
                edges.push((a, a, 0.3 + a as f64 / 11.0));
            }
        }
        let labels: Vec<u32> = (0..n as u32)
            .map(|v| (v * 7 + 3) % communities as u32)
            .collect();
        (AdjacencyGraph::from_edges(n, edges), labels, communities)
    }

    /// A merged reference row: `(target, weight bits)` pairs.
    type RefRow = Vec<(u32, u64)>;

    /// The stable reference build: condensed edge list → per-row **stable**
    /// sort + merge in input order — the semantics the counting sort must
    /// reproduce byte-for-byte.
    fn reference_aggregate(
        graph: &impl WeightedGraph,
        communities: &[u32],
        c: usize,
    ) -> (Vec<f64>, f64, Vec<RefRow>) {
        let mut self_loops = vec![0.0f64; c];
        let mut total = 0.0f64;
        let mut rows: Vec<Vec<(u32, f64)>> = vec![Vec::new(); c];
        for v in 0..graph.node_count() as NodeId {
            let cv = communities[v as usize];
            let loop_w = graph.self_loop(v);
            if loop_w > 0.0 {
                total += loop_w;
                self_loops[cv as usize] += loop_w;
            }
            graph.for_each_neighbor(v, |u, w| {
                if v < u {
                    let cu = communities[u as usize];
                    total += w;
                    if cu == cv {
                        self_loops[cv as usize] += w;
                    } else {
                        rows[cv as usize].push((cu, w));
                        rows[cu as usize].push((cv, w));
                    }
                }
            });
        }
        let merged = rows
            .into_iter()
            .map(|mut row| {
                row.sort_by_key(|&(t, _)| t); // stable
                let mut out: Vec<(u32, u64)> = Vec::new();
                let mut acc: Option<(u32, f64)> = None;
                for (t, w) in row {
                    match &mut acc {
                        Some((lt, lw)) if *lt == t => *lw += w,
                        _ => {
                            if let Some((lt, lw)) = acc {
                                out.push((lt, lw.to_bits()));
                            }
                            acc = Some((t, w));
                        }
                    }
                }
                if let Some((lt, lw)) = acc {
                    out.push((lt, lw.to_bits()));
                }
                out
            })
            .collect();
        (self_loops, total, merged)
    }

    /// The counting-sort build is byte-identical to the stable reference:
    /// same self-loops, same total (same fold order), every merged row
    /// bit-for-bit.
    #[test]
    fn counting_sort_matches_stable_reference_bitwise() {
        for (n, c) in [(60usize, 4usize), (150, 9), (240, 2), (90, 40)] {
            let (g, labels, c) = {
                let (g, labels, _) = scrambled(n, c);
                (g, labels, c)
            };
            let agg = aggregate_graph(&g, &labels, c);
            let (ref_loops, ref_total, ref_rows) = reference_aggregate(&g, &labels, c);
            assert_eq!(agg.total_weight().to_bits(), ref_total.to_bits(), "n={n}");
            for q in 0..c as u32 {
                assert_eq!(
                    agg.self_loop(q).to_bits(),
                    ref_loops[q as usize].to_bits(),
                    "loop of {q} (n={n})"
                );
                let got: Vec<(u32, u64)> =
                    agg.neighbors(q).map(|(t, w)| (t, w.to_bits())).collect();
                assert_eq!(got, ref_rows[q as usize], "row {q} (n={n}, c={c})");
            }
        }
    }

    /// The condensed graph is bitwise symmetric: both orientations of a
    /// super-edge carry the identical merged weight (parallel occurrences
    /// summed in the same staging order on both sides).
    #[test]
    fn aggregate_is_bitwise_symmetric() {
        let (g, labels, c) = scrambled(200, 7);
        let agg = aggregate_graph(&g, &labels, c);
        for a in 0..c as u32 {
            for (b, w) in agg.neighbors(a) {
                assert_eq!(
                    w.to_bits(),
                    agg.weight_between(b, a).to_bits(),
                    "super-edge ({a},{b})"
                );
            }
        }
    }

    /// Agreement with the old edge-list pipeline on duplicate-free inputs
    /// (where the unstable per-row sort had nothing to scramble): the
    /// counting build is a pure drop-in there.
    #[test]
    fn matches_edge_list_build_without_parallel_edges() {
        // Identity partition ⇒ every community pair has at most one edge.
        let (g, _, _) = scrambled(80, 1);
        let n = g.node_count();
        let labels: Vec<u32> = (0..n as u32).collect();
        let agg = aggregate_graph(&g, &labels, n);
        let mut edges: Vec<(NodeId, NodeId, f64)> = Vec::new();
        for v in 0..n as NodeId {
            let loop_w = g.self_loop(v);
            if loop_w > 0.0 {
                edges.push((v, v, loop_w));
            }
            g.for_each_neighbor(v, |u, w| {
                if v < u {
                    edges.push((v, u, w));
                }
            });
        }
        let old = AdjacencyGraph::from_edges(n, edges);
        for v in 0..n as NodeId {
            assert_eq!(agg.neighbor_ids(v), old.neighbor_ids(v));
            assert_eq!(agg.neighbor_weights(v), old.neighbor_weights(v));
            assert_eq!(agg.self_loop(v).to_bits(), old.self_loop(v).to_bits());
            assert_eq!(
                agg.incident_weight(v).to_bits(),
                old.incident_weight(v).to_bits()
            );
        }
    }
}
