//! Connectivity refinement of a community partition.
//!
//! Classic Louvain can produce *internally disconnected* communities — a
//! hub node can glue otherwise unrelated node sets together and later
//! migrate away, leaving fragments labelled as one community (the defect
//! the Leiden algorithm was built to fix). On transaction graphs this
//! shows up around exchange-like hub accounts.
//!
//! [`split_disconnected`] post-processes any labelling so every community
//! is a connected subgraph, relabelling fragments as fresh communities.
//! Deterministic: fragments are discovered by BFS from the smallest node
//! id of each community.

use txallo_graph::{NodeId, WeightedGraph};

use crate::{compact_labels, CompactLabels};

/// Splits internally disconnected communities into connected fragments.
///
/// Returns compacted labels (first-seen order) and is a no-op (modulo
/// relabelling) when every community is already connected.
pub fn split_disconnected(graph: &impl WeightedGraph, labels: &[u32]) -> CompactLabels {
    let n = graph.node_count();
    assert_eq!(labels.len(), n, "one label per node");
    let mut fragment: Vec<u32> = vec![u32::MAX; n];
    let mut next_fragment = 0u32;
    let mut queue: Vec<NodeId> = Vec::new();

    for start in 0..n as NodeId {
        if fragment[start as usize] != u32::MAX {
            continue;
        }
        // BFS within the community of `start`.
        let community = labels[start as usize];
        let id = next_fragment;
        next_fragment += 1;
        fragment[start as usize] = id;
        queue.clear();
        queue.push(start);
        while let Some(v) = queue.pop() {
            graph.for_each_neighbor(v, |u, _| {
                if labels[u as usize] == community && fragment[u as usize] == u32::MAX {
                    fragment[u as usize] = id;
                    queue.push(u);
                }
            });
        }
    }
    compact_labels(&fragment)
}

/// Number of communities in `labels` that are internally disconnected.
pub fn count_disconnected(graph: &impl WeightedGraph, labels: &[u32]) -> usize {
    let split = split_disconnected(graph, labels);
    // Each disconnected community contributes ≥ 1 extra fragment; count
    // communities whose fragment count exceeds one.
    let mut community_of_fragment: Vec<Option<u32>> = vec![None; split.count];
    let mut extra_fragments_per_community = std::collections::BTreeMap::<u32, usize>::new();
    for (&label, &frag) in labels.iter().zip(split.labels.iter()) {
        let frag = frag as usize;
        if community_of_fragment[frag].is_none() {
            community_of_fragment[frag] = Some(label);
            *extra_fragments_per_community.entry(label).or_insert(0) += 1;
        }
    }
    extra_fragments_per_community
        .values()
        .filter(|&&c| c > 1)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use txallo_graph::AdjacencyGraph;

    #[test]
    fn connected_partition_is_preserved() {
        // Two triangles, correctly labelled: nothing to split.
        let g = AdjacencyGraph::from_edges(
            6,
            vec![
                (0u32, 1, 1.0),
                (1, 2, 1.0),
                (0, 2, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (3, 5, 1.0),
            ],
        );
        let labels = vec![0, 0, 0, 1, 1, 1];
        let split = split_disconnected(&g, &labels);
        assert_eq!(split.count, 2);
        assert_eq!(count_disconnected(&g, &labels), 0);
        // Same-community relations preserved.
        assert_eq!(split.labels[0], split.labels[1]);
        assert_ne!(split.labels[0], split.labels[3]);
    }

    #[test]
    fn disconnected_community_is_split() {
        // One label covering two disjoint edges → two fragments.
        let g = AdjacencyGraph::from_edges(4, vec![(0u32, 1, 1.0), (2, 3, 1.0)]);
        let labels = vec![0, 0, 0, 0];
        let split = split_disconnected(&g, &labels);
        assert_eq!(split.count, 2, "fragments must separate");
        assert_eq!(split.labels[0], split.labels[1]);
        assert_eq!(split.labels[2], split.labels[3]);
        assert_ne!(split.labels[0], split.labels[2]);
        assert_eq!(count_disconnected(&g, &labels), 1);
    }

    #[test]
    fn hub_departure_fragments_are_detected() {
        // Star 0-{1,2,3} plus pair (4,5). Label the leaves + pair as one
        // community *without* the hub — the classic Louvain artifact.
        let g = AdjacencyGraph::from_edges(
            6,
            vec![(0u32, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0), (4, 5, 1.0)],
        );
        let labels = vec![1, 0, 0, 0, 0, 0]; // hub alone; rest lumped
        let split = split_disconnected(&g, &labels);
        // Leaves 1,2,3 are pairwise unconnected without the hub: they all
        // fragment apart; the (4,5) pair stays together.
        assert_eq!(split.labels[4], split.labels[5]);
        assert_ne!(split.labels[1], split.labels[2]);
        assert_ne!(split.labels[2], split.labels[3]);
        assert_eq!(split.count, 5);
    }

    #[test]
    fn isolated_nodes_become_singletons() {
        let g = AdjacencyGraph::from_edges(3, vec![(0u32, 1, 1.0)]);
        let labels = vec![0, 0, 0];
        let split = split_disconnected(&g, &labels);
        assert_eq!(split.count, 2);
        assert_ne!(split.labels[2], split.labels[0]);
    }

    #[test]
    fn deterministic() {
        let g = AdjacencyGraph::from_edges(
            8,
            vec![(0u32, 1, 1.0), (2, 3, 1.0), (4, 5, 1.0), (6, 7, 1.0)],
        );
        let labels = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let a = split_disconnected(&g, &labels);
        let b = split_disconnected(&g, &labels);
        assert_eq!(a.labels, b.labels);
    }
}
