//! Deterministic Louvain community detection.
//!
//! The paper initializes G-TxAllo with "a classic community detection
//! algorithm, the Louvain method" (§V-B, citing Blondel et al. 2008). This
//! crate implements it from scratch on top of the
//! [`txallo_graph::WeightedGraph`] abstraction:
//!
//! 1. **Local moving** — sweep nodes in a fixed order; each node moves to
//!    the neighboring community with the largest modularity gain.
//! 2. **Aggregation** — collapse communities into super-nodes and repeat on
//!    the condensed graph, until modularity stops improving.
//!
//! Determinism (required by §IV-A): sweeps iterate nodes in ascending id
//! order (callers hand the canonical account-hash order to the node-id
//! assignment), gains tie-break toward the smallest community id, and no
//! randomness is used anywhere.

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]

pub mod aggregate;
pub mod local_move;
pub mod modularity;
pub mod refine;

pub use aggregate::{
    aggregate_graph, aggregate_graph_into, aggregate_graph_threaded, AggregateScratch,
};
pub use local_move::{local_moving_condensed, local_moving_pass, LocalMoveOutcome};
pub use modularity::modularity;
pub use refine::{count_disconnected, split_disconnected};

use txallo_graph::{AdjacencyGraph, NodeId, WeightedGraph};

/// Gain tie-break tolerance shared by every sweep in the workspace.
///
/// **Determinism contract.** All sweep algorithms (Louvain local moving
/// here, the G-/A-TxAllo optimization phases in `txallo-core`) evaluate
/// candidate buckets in ascending id order and treat two gains within
/// `GAIN_EPS` of each other as *tied*. A candidate only displaces the
/// running best when it beats it by more than `GAIN_EPS`; ties resolve to
/// the earliest candidate under the algorithm's stated preference (staying
/// put / the smallest community id for Louvain, the least-loaded community
/// for TxAllo joins). This single constant is what makes results
/// reproducible bit-for-bit across runs and across the hash-map vs.
/// dense-scratch gather implementations: float noise below `GAIN_EPS`
/// cannot flip a comparison, and anything above it is an honest gain.
pub const GAIN_EPS: f64 = 1e-15;

/// Tuning knobs for the Louvain run.
#[derive(Debug, Clone)]
pub struct LouvainConfig {
    /// Maximum number of aggregation levels (safety bound; convergence
    /// normally happens in < 10 levels).
    pub max_levels: usize,
    /// Maximum local-moving sweeps per level.
    pub max_sweeps: usize,
    /// Minimum total modularity gain for a sweep to count as progress.
    pub min_gain: f64,
    /// Resolution parameter γ of generalized modularity (1.0 = classic).
    pub resolution: f64,
    /// Worker threads of the local-moving gather pass (`1` = the exact
    /// serial code path; `0` = one per core). The count never changes the
    /// result — the parallel pass partitions rows by canonical ranges and
    /// is bit-identical to the serial sweep (see
    /// [`local_moving_pass`]) — only how fast it runs. Defaults to the
    /// `TXALLO_THREADS` environment variable
    /// ([`txallo_graph::par::threads_from_env`]), i.e. `1` when unset.
    pub threads: usize,
}

impl Default for LouvainConfig {
    fn default() -> Self {
        Self {
            max_levels: 32,
            max_sweeps: 64,
            min_gain: 1e-9,
            resolution: 1.0,
            threads: txallo_graph::par::threads_from_env(),
        }
    }
}

impl LouvainConfig {
    /// Returns a copy with a different thread count (`1` = serial,
    /// `0` = one per core).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Result of a Louvain run.
#[derive(Debug, Clone)]
pub struct LouvainResult {
    /// Community id per node, compacted to `0..community_count`.
    pub communities: Vec<u32>,
    /// Number of detected communities (`l` in the paper, usually `> k`).
    pub community_count: usize,
    /// Number of aggregation levels performed.
    pub levels: usize,
    /// Modularity of the final partition.
    pub modularity: f64,
}

/// Runs the full Louvain method on `graph`.
///
/// The graph is snapshotted into flat CSR form once; every sweep and every
/// aggregation level then runs on packed rows. Callers that already hold a
/// [`CsrGraph`](txallo_graph::CsrGraph) should use [`louvain_csr`] to skip
/// the copy.
pub fn louvain(graph: &(impl WeightedGraph + Sync), config: &LouvainConfig) -> LouvainResult {
    let csr = AdjacencyGraph::from_graph(graph);
    louvain_csr(&csr, config)
}

/// [`louvain`] over an existing CSR snapshot — no copying at all: level 0
/// sweeps the borrowed graph, later levels own their (much smaller)
/// aggregated graphs.
pub fn louvain_csr(graph: &AdjacencyGraph, config: &LouvainConfig) -> LouvainResult {
    let n = graph.node_count();
    if n == 0 {
        return LouvainResult {
            communities: Vec::new(),
            community_count: 0,
            levels: 0,
            modularity: 0.0,
        };
    }

    // Mapping from original node to current-level super-node.
    let mut membership: Vec<u32> = (0..n as u32).collect();
    let mut owned_level: Option<AdjacencyGraph> = None;
    let mut levels = 0usize;
    // One set of cross-level aggregation buffers (edge staging + counting
    // scatter arrays): reused every level, so the high-water mark (set by
    // level 0) is allocated exactly once.
    let mut agg_scratch = AggregateScratch::default();

    for _ in 0..config.max_levels {
        let level_graph = owned_level.as_ref().unwrap_or(graph);
        // Level 0 sweeps the borrowed graph with the stamp/re-gather pass
        // (serial or multi-core per `config.threads`). The owned deep
        // levels switch to condensed rows: aggregated graphs are dense
        // community-to-community strips whose rows the stamp scheme
        // re-gathers over and over, and the condensed pass relocates
        // buckets instead — bit-identical to the re-gather path (pinned in
        // `local_move::tests`), so the switch is invisible to results at
        // every thread count.
        let outcome = if owned_level.is_some() {
            local_moving_condensed(level_graph, config)
        } else {
            local_moving_pass(level_graph, config)
        };
        levels += 1;
        if !outcome.moved_any {
            break;
        }
        let compact = compact_labels(&outcome.communities);
        // Update the original-node membership through this level's mapping.
        for m in membership.iter_mut() {
            *m = compact.labels[*m as usize];
        }
        if compact.count == level_graph.node_count() {
            break; // No coarsening happened: converged.
        }
        // Aggregation runs the canonical-chunk parallel counting sort
        // (`threads <= 1` is the exact serial build): chunk boundaries
        // are a pure function of the level data and every float fold
        // stays in chunk (= walk) order, so the condensed level is
        // bit-identical at every thread count.
        let next = aggregate_graph_threaded(
            level_graph,
            &compact.labels,
            compact.count,
            &mut agg_scratch,
            config.threads,
        );
        let done = compact.count <= 1;
        owned_level = Some(next);
        if done {
            break;
        }
    }

    let compact = compact_labels(&membership);
    let q = modularity(graph, &compact.labels, config.resolution);
    LouvainResult {
        communities: compact.labels,
        community_count: compact.count,
        levels,
        modularity: q,
    }
}

/// A label vector compacted to dense `0..count` ids, preserving first-seen
/// order (deterministic).
pub struct CompactLabels {
    /// The relabelled vector.
    pub labels: Vec<u32>,
    /// Number of distinct labels.
    pub count: usize,
}

/// Compacts arbitrary community labels to dense ids in first-seen order.
pub fn compact_labels(labels: &[u32]) -> CompactLabels {
    let max_label = labels.iter().map(|&l| l as usize + 1).max().unwrap_or(0);
    let mut remap: Vec<u32> = vec![u32::MAX; max_label];
    let mut next = 0u32;
    let mut out = Vec::with_capacity(labels.len());
    for &l in labels {
        let slot = &mut remap[l as usize];
        if *slot == u32::MAX {
            *slot = next;
            next += 1;
        }
        out.push(*slot);
    }
    CompactLabels {
        labels: out,
        count: next as usize,
    }
}

/// Convenience: run Louvain with default configuration.
pub fn louvain_default(graph: &(impl WeightedGraph + Sync)) -> LouvainResult {
    louvain(graph, &LouvainConfig::default())
}

/// Returns nodes grouped by community (index = community id).
pub fn group_by_community(communities: &[u32], count: usize) -> Vec<Vec<NodeId>> {
    let mut groups: Vec<Vec<NodeId>> = vec![Vec::new(); count];
    for (v, &c) in communities.iter().enumerate() {
        groups[c as usize].push(v as NodeId);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use txallo_graph::AdjacencyGraph;

    /// Two 5-cliques joined by a single weak edge.
    fn two_cliques() -> AdjacencyGraph {
        let mut edges = Vec::new();
        for a in 0..5u32 {
            for b in (a + 1)..5 {
                edges.push((a, b, 1.0));
                edges.push((a + 5, b + 5, 1.0));
            }
        }
        edges.push((0, 5, 0.1));
        AdjacencyGraph::from_edges(10, edges)
    }

    #[test]
    fn splits_two_cliques() {
        let r = louvain_default(&two_cliques());
        assert_eq!(
            r.community_count, 2,
            "two cliques must become two communities"
        );
        for v in 1..5 {
            assert_eq!(r.communities[v], r.communities[0]);
            assert_eq!(r.communities[v + 5], r.communities[5]);
        }
        assert_ne!(r.communities[0], r.communities[5]);
        assert!(
            r.modularity > 0.3,
            "modularity should be high, got {}",
            r.modularity
        );
    }

    #[test]
    fn is_deterministic() {
        let g = two_cliques();
        let a = louvain_default(&g);
        let b = louvain_default(&g);
        assert_eq!(a.communities, b.communities);
        assert_eq!(a.modularity, b.modularity);
    }

    #[test]
    fn singleton_graph() {
        let g = AdjacencyGraph::from_edges(1, vec![(0u32, 0u32, 3.0)]);
        let r = louvain_default(&g);
        assert_eq!(r.community_count, 1);
        assert_eq!(r.communities, vec![0]);
    }

    #[test]
    fn empty_graph() {
        let g = AdjacencyGraph::from_edges(0, Vec::new());
        let r = louvain_default(&g);
        assert_eq!(r.community_count, 0);
        assert!(r.communities.is_empty());
    }

    #[test]
    fn disconnected_components_stay_separate() {
        // Three disjoint triangles.
        let mut edges = Vec::new();
        for t in 0..3u32 {
            let b = t * 3;
            edges.push((b, b + 1, 1.0));
            edges.push((b + 1, b + 2, 1.0));
            edges.push((b, b + 2, 1.0));
        }
        let g = AdjacencyGraph::from_edges(9, edges);
        let r = louvain_default(&g);
        assert_eq!(r.community_count, 3);
    }

    #[test]
    fn compact_labels_first_seen_order() {
        let c = compact_labels(&[7, 7, 2, 7, 2, 5]);
        assert_eq!(c.labels, vec![0, 0, 1, 0, 1, 2]);
        assert_eq!(c.count, 3);
    }

    #[test]
    fn group_by_community_partitions_nodes() {
        let groups = group_by_community(&[0, 1, 0, 2, 1], 3);
        assert_eq!(groups[0], vec![0, 2]);
        assert_eq!(groups[1], vec![1, 4]);
        assert_eq!(groups[2], vec![3]);
    }

    /// Golden thread-invariance test over the *whole* pipeline: local
    /// moving at the configured thread count, label compaction, and the
    /// counting-sort aggregation (parallel over canonical chunks whose
    /// boundaries are a pure function of the level data, float folds
    /// kept in chunk = walk order — so neither first-seen label order
    /// nor any fold order can depend on scheduling) must give
    /// bitwise-equal coarse levels, final labels and modularity at
    /// every thread count.
    #[test]
    fn louvain_csr_is_bit_identical_at_every_thread_count() {
        // Ring of cliques + cross-chords: several aggregation levels.
        let (r, s) = (8u32, 5u32);
        let mut edges = Vec::new();
        for c in 0..r {
            let base = c * s;
            for a in 0..s {
                for b in (a + 1)..s {
                    edges.push((base + a, base + b, 1.0));
                }
            }
            let next_base = ((c + 1) % r) * s;
            edges.push((base, next_base, 0.05));
            edges.push((base + 1, ((c + 3) % r) * s + 2, 0.02));
        }
        let g = AdjacencyGraph::from_edges((r * s) as usize, edges);
        let serial = louvain_csr(&g, &LouvainConfig::default().with_threads(1));
        for threads in [2usize, 3, 8] {
            let par = louvain_csr(&g, &LouvainConfig::default().with_threads(threads));
            assert_eq!(par.communities, serial.communities, "{threads} threads");
            assert_eq!(par.community_count, serial.community_count);
            assert_eq!(par.levels, serial.levels, "{threads} threads");
            assert_eq!(
                par.modularity.to_bits(),
                serial.modularity.to_bits(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn ring_of_cliques_finds_all_cliques() {
        // Classic Louvain benchmark: r cliques of size s in a ring.
        let (r, s) = (6u32, 4u32);
        let mut edges = Vec::new();
        for c in 0..r {
            let base = c * s;
            for a in 0..s {
                for b in (a + 1)..s {
                    edges.push((base + a, base + b, 1.0));
                }
            }
            let next_base = ((c + 1) % r) * s;
            edges.push((base, next_base, 0.05));
        }
        let g = AdjacencyGraph::from_edges((r * s) as usize, edges);
        let res = louvain_default(&g);
        assert_eq!(
            res.community_count, r as usize,
            "each clique is its own community"
        );
        assert!(res.modularity > 0.6);
    }
}
