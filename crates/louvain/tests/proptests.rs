//! Property-based tests of Louvain and modularity.

use proptest::prelude::*;
use txallo_graph::{AdjacencyGraph, NodeId, WeightedGraph};
use txallo_louvain::{
    aggregate_graph, aggregate_graph_threaded, compact_labels, louvain_default, modularity,
    AggregateScratch,
};

fn edges_strategy(n: u32, len: usize) -> impl Strategy<Value = Vec<(u32, u32, f64)>> {
    prop::collection::vec((0..n, 0..n, 0.1f64..5.0), 1..len)
}

proptest! {
    /// Modularity is bounded: Q ∈ [−1, 1] for any labelling.
    #[test]
    fn modularity_is_bounded(
        edges in edges_strategy(20, 60),
        labels in prop::collection::vec(0u32..5, 20),
    ) {
        let g = AdjacencyGraph::from_edges(20, edges);
        let q = modularity(&g, &labels, 1.0);
        prop_assert!((-1.0..=1.0).contains(&q), "Q = {q}");
    }

    /// The trivial one-community partition always has Q = 0 exactly
    /// (intra = m and (Σ_tot/2m)² = 1).
    #[test]
    fn trivial_partition_zero(edges in edges_strategy(15, 40)) {
        let g = AdjacencyGraph::from_edges(15, edges);
        let q = modularity(&g, &[0u32; 15], 1.0);
        prop_assert!(q.abs() < 1e-9, "Q = {q}");
    }

    /// Louvain's result never has *worse* modularity than both the trivial
    /// and the all-singleton partitions, and its labels are a valid dense
    /// partition.
    #[test]
    fn louvain_beats_baselines(edges in edges_strategy(24, 80)) {
        let g = AdjacencyGraph::from_edges(24, edges);
        let result = louvain_default(&g);
        prop_assert_eq!(result.communities.len(), g.node_count());
        prop_assert!(result.communities.iter().all(|&c| (c as usize) < result.community_count));
        let trivial = modularity(&g, &[0u32; 24], 1.0);
        let singletons: Vec<u32> = (0..24u32).collect();
        let single_q = modularity(&g, &singletons, 1.0);
        prop_assert!(result.modularity >= trivial - 1e-9);
        prop_assert!(result.modularity >= single_q - 1e-9);
    }

    /// Aggregating by any partition preserves total weight, and the
    /// partition's modularity is invariant under aggregation (the defining
    /// property that makes multi-level Louvain sound).
    #[test]
    fn aggregation_preserves_modularity(
        edges in edges_strategy(18, 50),
        raw_labels in prop::collection::vec(0u32..6, 18),
    ) {
        let g = AdjacencyGraph::from_edges(18, edges);
        let compact = compact_labels(&raw_labels);
        let agg = aggregate_graph(&g, &compact.labels, compact.count);
        prop_assert!((agg.total_weight() - g.total_weight()).abs() < 1e-9);
        // Q of the partition on g == Q of singletons on the aggregate.
        let q_fine = modularity(&g, &compact.labels, 1.0);
        let singleton: Vec<u32> = (0..compact.count as u32).collect();
        let q_coarse = modularity(&agg, &singleton, 1.0);
        prop_assert!((q_fine - q_coarse).abs() < 1e-9, "{q_fine} vs {q_coarse}");
    }

    /// compact_labels is idempotent and order-preserving.
    #[test]
    fn compact_labels_idempotent(labels in prop::collection::vec(0u32..40, 1..60)) {
        let once = compact_labels(&labels);
        let twice = compact_labels(&once.labels);
        prop_assert_eq!(&once.labels, &twice.labels);
        prop_assert_eq!(once.count, twice.count);
        // Same-label inputs stay same-label; distinct stay distinct.
        for i in 0..labels.len() {
            for j in 0..labels.len() {
                prop_assert_eq!(
                    labels[i] == labels[j],
                    once.labels[i] == once.labels[j]
                );
            }
        }
    }

    /// Louvain is deterministic on arbitrary graphs.
    #[test]
    fn louvain_deterministic(edges in edges_strategy(16, 40)) {
        let g = AdjacencyGraph::from_edges(16, edges);
        let a = louvain_default(&g);
        let b = louvain_default(&g);
        prop_assert_eq!(a.communities, b.communities);
    }
}

/// Non-proptest sanity check: modularity of a known partition on a known
/// graph, computed by hand.
#[test]
fn modularity_hand_computed() {
    // Two disjoint edges, m = 2. Partition = the two pairs:
    // Q = Σ [w_in/m − (Σ_tot/2m)²] = 2·(1/2 − (2/4)²) = 2·(0.5−0.25) = 0.5.
    let g = AdjacencyGraph::from_edges(4, vec![(0u32, 1, 1.0), (2, 3, 1.0)]);
    let q = modularity(&g, &[0, 0, 1, 1], 1.0);
    assert!((q - 0.5).abs() < 1e-12, "Q = {q}");
    let _ = (0..4 as NodeId).count();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Determinism rule D5 on the aggregation kernel: the canonical-chunk
    /// parallel counting sort must reproduce the serial build bit for bit
    /// at every thread count. The random base is tiled far past the chunk
    /// quantum (8192 entries) so the threaded path genuinely splits and
    /// merges through the reduction tree rather than falling back to the
    /// serial build.
    #[test]
    fn aggregation_is_bit_identical_at_every_thread_count(
        base_edges in edges_strategy(40, 120),
        base_labels in prop::collection::vec(0u32..8, 40),
    ) {
        let copies = 80u32;
        let mut edges = Vec::with_capacity(base_edges.len() * copies as usize);
        for c in 0..copies {
            let off = c * 40;
            for &(a, b, w) in &base_edges {
                edges.push((a + off, b + off, w));
            }
        }
        let n = copies as usize * 40;
        let g = AdjacencyGraph::from_edges(n, edges);
        // Communities span copies (modulo) *and* stay copy-local (offset),
        // mixing intra- and cross-chunk community structure.
        let raw: Vec<u32> = (0..n)
            .map(|v| {
                let label = base_labels[v % 40];
                if v % 3 == 0 { label } else { label + (v as u32 / 40) * 8 }
            })
            .collect();
        let compact = compact_labels(&raw);
        let serial = aggregate_graph(&g, &compact.labels, compact.count);
        for threads in [2usize, 3, 8] {
            let mut scratch = AggregateScratch::default();
            let par =
                aggregate_graph_threaded(&g, &compact.labels, compact.count, &mut scratch, threads);
            prop_assert_eq!(par.node_count(), serial.node_count(), "{} threads", threads);
            prop_assert_eq!(
                par.total_weight().to_bits(),
                serial.total_weight().to_bits(),
                "{} threads",
                threads
            );
            for v in 0..par.node_count() as u32 {
                prop_assert_eq!(
                    par.strength(v).to_bits(),
                    serial.strength(v).to_bits(),
                    "{} threads, node {}",
                    threads,
                    v
                );
                let mut row_par = Vec::new();
                par.for_each_neighbor(v, |u, w| row_par.push((u, w.to_bits())));
                let mut row_serial = Vec::new();
                serial.for_each_neighbor(v, |u, w| row_serial.push((u, w.to_bits())));
                prop_assert_eq!(row_par, row_serial, "{} threads, node {}", threads, v);
            }
        }
    }
}
