//! The sorted-run slab store behind [`TxGraph`](crate::TxGraph)'s mutable
//! adjacency.
//!
//! ## Why not a hash map per node
//!
//! The mutable graph used to keep one `FxHashMap<NodeId, f64>` per node.
//! That makes ingestion `O(1)` per repeated pair, but every structure the
//! sweep kernels actually run on — [`CsrGraph`](crate::CsrGraph) and
//! [`DeltaCsr`](crate::DeltaCsr) — wants rows as *ascending-id sorted
//! runs*, so each epoch paid a hash-table iteration plus a per-row sort to
//! re-derive what the adjacency could have maintained all along.
//!
//! ## The layout
//!
//! One shared arena of `(NodeId, f64)` entries (two parallel vectors), with
//! per-node rows carved out of it:
//!
//! ```text
//! ids:  [.. row 3 ..|.. row 0 ..|   dead   |.. row 7 ..| .. ]
//! ws:   [ parallel to ids                                   ]
//! row:  start ──┬─ run (sorted) ─┬─ tail (sorted) ─┬─ slack ─┐
//!               └────────────── cap ───────────────────────┘
//! ```
//!
//! Each row is **two ascending-id sorted runs**: a main run and a small
//! tail. Inserting a brand-new neighbor goes into the tail (a short
//! memmove); once the tail exceeds a bounded fraction of the run
//! (`max(8, run/8)`), the two runs are merged in one linear pass — the
//! classic amortized-merge scheme, `O(1)` amortized per accumulated edge,
//! same ingestion complexity as the hash map. Repeated pairs — the common
//! case for transaction traffic — resolve by binary search and accumulate
//! in place, in chronological order, so per-edge weights are bit-identical
//! to what the hash adjacency accumulated.
//!
//! A row that outgrows its capacity is relocated to the end of the arena
//! with doubled capacity; the abandoned range is dead space, reclaimed by
//! an occasional linear compaction once it exceeds half the arena.
//!
//! ## The invariant the rest of the workspace builds on
//!
//! Iterating a row ([`SortedRunStore::for_each`]) merges the two runs on
//! the fly, so **neighbors always come out in ascending id order** — the
//! mutable graph is CSR-shaped by construction. `DeltaCsr` row assembly and
//! the identity `CsrGraph` snapshot become straight run copies/merges with
//! no sort at all, and every order-dependent float accumulation over the
//! mutable adjacency (community aggregates, incident re-derivation) sees
//! the same ascending order the frozen forms use.

use crate::traits::{fit_u32, NodeId};

/// Tail budget of a row: merges trigger once the tail outgrows this.
#[inline]
fn tail_limit(run_len: usize) -> usize {
    8usize.max(run_len >> 3)
}

/// Arena length (in entries) past which growth switches from amortized
/// doubling to bounded 25% headroom — 2 Mi entries ≈ 24 MB of arena, the
/// point where a doubling spike starts to matter against the
/// peak-resident accounting and the extra realloc copies stop mattering
/// against ingest throughput.
const ARENA_BOUNDED_GROWTH_MIN: usize = 1 << 21;

/// Branch-free lower bound: the first index of `ids` whose value is `>= id`
/// (equivalently `slice::binary_search`'s `Ok(i)` when present and `Err(i)`
/// when absent — the slice never holds duplicates).
///
/// The half-splitting probe advances `base` by an arithmetic select instead
/// of a taken/not-taken branch, so the row lookups on the ingest hot path
/// pay no branch mispredictions (the probe outcome is a coin flip the
/// predictor can't learn). Identical index results as the stdlib search by
/// construction — weight placement, and therefore every accumulated float,
/// is untouched.
#[inline]
fn lower_bound(ids: &[NodeId], id: NodeId) -> usize {
    if ids.is_empty() {
        return 0;
    }
    let mut base = 0usize;
    let mut size = ids.len();
    while size > 1 {
        let half = size / 2;
        base += usize::from(ids[base + half - 1] < id) * half;
        size -= half;
    }
    base + usize::from(ids[base] < id)
}

/// Per-row metadata: the row occupies arena slots
/// `start..start + cap`, with `len` live entries of which the first `run`
/// form the main sorted run and the rest the sorted tail.
#[derive(Debug, Clone, Copy, Default)]
struct RowMeta {
    start: u32,
    cap: u32,
    len: u32,
    run: u32,
}

/// The shared sorted-run arena (see the [module docs](self)).
#[derive(Debug, Clone, Default)]
pub struct SortedRunStore {
    ids: Vec<NodeId>,
    ws: Vec<f64>,
    rows: Vec<RowMeta>,
    /// One membership fingerprint byte per row: bit `id & 7` is set when
    /// an id with that residue was ever inserted. A clear bit proves the
    /// id is absent, letting [`SortedRunStore::add`] skip both membership
    /// binary searches on the brand-new-neighbor path (the common case
    /// early in a trace, when rows are still meeting fresh peers).
    /// Removals leave the byte stale-but-safe: a set bit only ever means
    /// "maybe present", which degrades the shortcut, never correctness —
    /// and the filter never changes a stored weight's bits either way.
    fps: Vec<u8>,
    /// Abandoned entries from row relocations (compaction trigger).
    dead: usize,
    /// Merge scratch: the tail is copied here before the backward merge.
    scratch_ids: Vec<NodeId>,
    scratch_ws: Vec<f64>,
}

impl SortedRunStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Appends an empty row (capacity is allocated lazily on first insert).
    pub fn push_row(&mut self) {
        self.rows.push(RowMeta::default());
        self.fps.push(0);
    }

    /// Grows the entry arena for `extra` more slots. Small arenas keep
    /// `Vec`'s amortized doubling (a realloc's copy work is trivial
    /// there, and doubling minimizes realloc count on the from-scratch
    /// ingest path); past [`ARENA_BOUNDED_GROWTH_MIN`] entries the
    /// overshoot is bounded to 25% headroom past the current length —
    /// the arena is the largest allocation in the process, and the
    /// doubling policy's transient capacity spikes (old length × 2 at
    /// the reallocation moment) dominated the peak-resident accounting
    /// of million-account replays. Amortization stays linear — each
    /// bounded reallocation still buys `len / 4` appends. Entry values
    /// never depend on capacity, so this is footprint-only.
    fn reserve_arena(&mut self, extra: usize) {
        let len = self.ids.len();
        if len + extra > self.ids.capacity() {
            let grow = if len < ARENA_BOUNDED_GROWTH_MIN {
                extra.max(len)
            } else {
                extra.max(len / 4)
            };
            self.ids.reserve_exact(grow);
            self.ws.reserve_exact(grow);
        }
    }

    /// Appends a row pre-filled from an ascending-id sorted `(ids, ws)`
    /// pair — the checkpoint-restore path. The row lands fully merged
    /// (`run == len == cap`), which is exactly the state
    /// [`SortedRunStore::for_each`] and the snapshot copies treat as the
    /// fast path, so a restored store behaves identically to one whose
    /// tail merges all happened to have just fired.
    pub fn push_row_from_sorted(&mut self, ids: &[NodeId], ws: &[f64]) {
        assert_eq!(ids.len(), ws.len(), "parallel row arrays");
        debug_assert!(
            ids.windows(2).all(|p| p[0] < p[1]),
            "restored rows must be strictly ascending"
        );
        let start = self.ids.len();
        let len = ids.len();
        assert!(
            start + len <= u32::MAX as usize,
            "adjacency arena exceeds u32 addressing"
        );
        self.reserve_arena(len);
        self.ids.extend_from_slice(ids);
        self.ws.extend_from_slice(ws);
        let len = fit_u32(len);
        self.rows.push(RowMeta {
            start: start as u32,
            cap: len,
            len,
            run: len,
        });
        // Rebuild the membership fingerprint from scratch — a restored
        // row starts with an exact (no stale bits) filter.
        let mut fp = 0u8;
        for &id in ids {
            fp |= 1 << (id & 7);
        }
        self.fps.push(fp);
    }

    /// Number of live entries in row `r`.
    #[inline]
    pub fn row_len(&self, r: usize) -> usize {
        self.rows[r].len as usize
    }

    /// The row's two sorted runs as `(run_ids, run_ws, tail_ids, tail_ws)`.
    /// Both are ascending by id; their id sets are disjoint.
    #[inline]
    pub fn row_parts(&self, r: usize) -> (&[NodeId], &[f64], &[NodeId], &[f64]) {
        let m = self.rows[r];
        let (s, run, len) = (m.start as usize, m.run as usize, m.len as usize);
        (
            &self.ids[s..s + run],
            &self.ws[s..s + run],
            &self.ids[s + run..s + len],
            &self.ws[s + run..s + len],
        )
    }

    /// Calls `f(id, w)` for every entry of row `r` in ascending id order
    /// (merging the two runs on the fly; a merged row iterates a plain
    /// slice).
    #[inline]
    pub fn for_each(&self, r: usize, mut f: impl FnMut(NodeId, f64)) {
        let (run_ids, run_ws, tail_ids, tail_ws) = self.row_parts(r);
        if tail_ids.is_empty() {
            for (&u, &w) in run_ids.iter().zip(run_ws) {
                f(u, w);
            }
            return;
        }
        let (mut i, mut j) = (0usize, 0usize);
        while i < run_ids.len() && j < tail_ids.len() {
            if run_ids[i] < tail_ids[j] {
                f(run_ids[i], run_ws[i]);
                i += 1;
            } else {
                f(tail_ids[j], tail_ws[j]);
                j += 1;
            }
        }
        for (&u, &w) in run_ids[i..].iter().zip(&run_ws[i..]) {
            f(u, w);
        }
        for (&u, &w) in tail_ids[j..].iter().zip(&tail_ws[j..]) {
            f(u, w);
        }
    }

    /// Appends row `r` merged (ascending ids) to `out_ids`/`out_ws`,
    /// returning the sum of the appended weights folded in that same
    /// ascending order — the straight run copy/merge the snapshot builders
    /// use in place of gather-and-sort.
    pub fn copy_row_into(&self, r: usize, out_ids: &mut Vec<NodeId>, out_ws: &mut Vec<f64>) -> f64 {
        let mut sum = 0.0f64;
        let (run_ids, run_ws, tail_ids, _) = self.row_parts(r);
        if tail_ids.is_empty() {
            out_ids.extend_from_slice(run_ids);
            out_ws.extend_from_slice(run_ws);
            for &w in run_ws {
                sum += w;
            }
            return sum;
        }
        self.for_each(r, |u, w| {
            out_ids.push(u);
            out_ws.push(w);
            sum += w;
        });
        sum
    }

    /// Position of `id` in row `r` as an arena index, if present.
    #[inline]
    fn find(&self, r: usize, id: NodeId) -> Option<usize> {
        if self.fps[r] & (1 << (id & 7)) == 0 {
            return None; // Fingerprint proves absence.
        }
        let m = self.rows[r];
        let (s, run, len) = (m.start as usize, m.run as usize, m.len as usize);
        let i = lower_bound(&self.ids[s..s + run], id);
        if i < run && self.ids[s + i] == id {
            return Some(s + i);
        }
        let j = lower_bound(&self.ids[s + run..s + len], id);
        if run + j < len && self.ids[s + run + j] == id {
            Some(s + run + j)
        } else {
            None
        }
    }

    /// The weight stored for `id` in row `r`, if present.
    #[inline]
    pub fn get(&self, r: usize, id: NodeId) -> Option<f64> {
        self.find(r, id).map(|i| self.ws[i])
    }

    /// Mutable access to the weight stored for `id` in row `r`.
    #[inline]
    pub fn get_mut(&mut self, r: usize, id: NodeId) -> Option<&mut f64> {
        self.find(r, id).map(|i| &mut self.ws[i])
    }

    /// Adds `w` to the entry `(r, id)`, creating it if absent. Returns
    /// `true` when a new entry was created (a brand-new neighbor).
    ///
    /// Repeated ids accumulate in place, in call order — chronological
    /// per-pair accumulation, the same float trajectory a hash-map entry
    /// would produce.
    pub fn add(&mut self, r: usize, id: NodeId, w: f64) -> bool {
        let bit = 1u8 << (id & 7);
        if self.fps[r] & bit != 0 {
            // Fast path for the hottest ingest case: the pair already
            // exists and sits in the main run (where merges put it), or
            // the row's last live entry is the pair itself (immediately
            // repeated traffic). One probe + one binary search instead of
            // two searches. A clear fingerprint bit proves the id absent
            // and skips all of this — straight to the insert below.
            let m = self.rows[r];
            let (s, run, len) = (m.start as usize, m.run as usize, m.len as usize);
            if len > 0 && self.ids[s + len - 1] == id {
                self.ws[s + len - 1] += w;
                return false;
            }
            let i = lower_bound(&self.ids[s..s + run], id);
            if i < run && self.ids[s + i] == id {
                self.ws[s + i] += w;
                return false;
            }
            let j = lower_bound(&self.ids[s + run..s + len], id);
            if run + j < len && self.ids[s + run + j] == id {
                self.ws[s + run + j] += w;
                return false;
            }
        }
        self.fps[r] |= bit;
        let m = self.rows[r];
        if m.len == m.cap {
            self.grow_row(r);
        }
        let m = self.rows[r];
        let (s, run, len) = (m.start as usize, m.run as usize, m.len as usize);
        // Insert into the sorted tail (short memmove — the tail is small by
        // the merge policy). The id is absent (checked above), so the lower
        // bound is its insertion slot.
        let pos = s + run + lower_bound(&self.ids[s + run..s + len], id);
        self.ids.copy_within(pos..s + len, pos + 1);
        self.ws.copy_within(pos..s + len, pos + 1);
        self.ids[pos] = id;
        self.ws[pos] = w;
        self.rows[r].len += 1;
        let tail_len = len + 1 - run;
        if tail_len > tail_limit(run) {
            self.merge_row(r);
        }
        true
    }

    /// Removes the entry `(r, id)`, returning its weight.
    pub fn remove(&mut self, r: usize, id: NodeId) -> Option<f64> {
        let i = self.find(r, id)?;
        let w = self.ws[i];
        let m = self.rows[r];
        let (s, len) = (m.start as usize, m.len as usize);
        self.ids.copy_within(i + 1..s + len, i);
        self.ws.copy_within(i + 1..s + len, i);
        self.rows[r].len -= 1;
        if i < s + m.run as usize {
            self.rows[r].run -= 1;
        }
        Some(w)
    }

    /// Multiplies every stored weight by `factor`.
    ///
    /// Runs over the whole arena — dead ranges included, which is harmless
    /// (they are never read) and keeps the pass one branch-free linear
    /// sweep.
    pub fn scale_all(&mut self, factor: f64) {
        for w in &mut self.ws {
            *w *= factor;
        }
    }

    /// Merges row `r`'s tail into its main run (one backward pass; the
    /// tail is staged in the store-level scratch so the merge is a plain
    /// two-array merge into the row's own storage).
    fn merge_row(&mut self, r: usize) {
        let m = self.rows[r];
        let (s, run, len) = (m.start as usize, m.run as usize, m.len as usize);
        let tail = len - run;
        if tail == 0 {
            return;
        }
        self.scratch_ids.clear();
        self.scratch_ws.clear();
        self.scratch_ids
            .extend_from_slice(&self.ids[s + run..s + len]);
        self.scratch_ws
            .extend_from_slice(&self.ws[s + run..s + len]);
        let (mut i, mut j) = (run as isize - 1, tail as isize - 1);
        let mut dst = len - 1;
        while j >= 0 {
            if i >= 0 && self.ids[s + i as usize] > self.scratch_ids[j as usize] {
                self.ids[s + dst] = self.ids[s + i as usize];
                self.ws[s + dst] = self.ws[s + i as usize];
                i -= 1;
            } else {
                self.ids[s + dst] = self.scratch_ids[j as usize];
                self.ws[s + dst] = self.scratch_ws[j as usize];
                j -= 1;
            }
            dst = dst.wrapping_sub(1);
        }
        self.rows[r].run = fit_u32(len);
    }

    /// Relocates row `r` to the end of the arena with doubled capacity.
    fn grow_row(&mut self, r: usize) {
        let m = self.rows[r];
        let (s, cap, len) = (m.start as usize, m.cap as usize, m.len as usize);
        let new_cap = (cap * 2).max(4);
        let new_start = self.ids.len();
        assert!(
            new_start + new_cap <= u32::MAX as usize,
            "adjacency arena exceeds u32 addressing"
        );
        self.reserve_arena(new_cap);
        self.ids.extend_from_within(s..s + len);
        self.ws.extend_from_within(s..s + len);
        self.ids.resize(new_start + new_cap, 0);
        self.ws.resize(new_start + new_cap, 0.0);
        self.dead += cap;
        self.rows[r].start = new_start as u32;
        self.rows[r].cap = new_cap as u32;
        if self.dead > self.ids.len() / 2 && self.ids.len() > 4096 {
            self.compact();
        }
    }

    /// Rebuilds the arena without dead space (row order by row id; per-row
    /// capacities are preserved, so growth behaviour is unchanged).
    fn compact(&mut self) {
        let live_cap: usize = self.rows.iter().map(|m| m.cap as usize).sum();
        let mut ids = Vec::with_capacity(live_cap);
        let mut ws = Vec::with_capacity(live_cap);
        for m in &mut self.rows {
            let (s, cap, len) = (m.start as usize, m.cap as usize, m.len as usize);
            m.start = fit_u32(ids.len());
            ids.extend_from_slice(&self.ids[s..s + len]);
            ws.extend_from_slice(&self.ws[s..s + len]);
            ids.resize(m.start as usize + cap, 0);
            ws.resize(m.start as usize + cap, 0.0);
        }
        self.ids = ids;
        self.ws = ws;
        self.dead = 0;
    }

    /// Extracts row `r` merged (ascending ids) into `out_ids`/`out_ws` and
    /// releases its arena range — the cold-row eviction hook. The row
    /// becomes empty (`len == cap == 0`) with an exact-empty fingerprint;
    /// its abandoned capacity is dead space until the next compaction,
    /// same as a relocation's. Returns the number of entries extracted.
    ///
    /// Pair with [`SortedRunStore::restore_row`] to bring the row back;
    /// the extracted form is the same merged copy the snapshot builders
    /// read, so the round trip is bitwise-lossless.
    pub fn evict_row(
        &mut self,
        r: usize,
        out_ids: &mut Vec<NodeId>,
        out_ws: &mut Vec<f64>,
    ) -> usize {
        let before = out_ids.len();
        self.copy_row_into(r, out_ids, out_ws);
        self.dead += self.rows[r].cap as usize;
        self.rows[r] = RowMeta::default();
        self.fps[r] = 0;
        if self.dead > self.ids.len() / 2 && self.ids.len() > 4096 {
            self.compact();
        }
        out_ids.len() - before
    }

    /// Re-fills an evicted (empty) row from an ascending-id sorted
    /// `(ids, ws)` pair. The row lands fully merged at the end of the
    /// arena (`run == len == cap`) with an exact fingerprint — the same
    /// landed state [`SortedRunStore::push_row_from_sorted`] produces, so
    /// a rehydrated row is bitwise-indistinguishable from a
    /// checkpoint-restored one and accumulates identically from there on.
    pub fn restore_row(&mut self, r: usize, ids: &[NodeId], ws: &[f64]) {
        assert_eq!(ids.len(), ws.len(), "parallel row arrays");
        assert_eq!(self.rows[r].len, 0, "restore targets an evicted row");
        debug_assert!(
            ids.windows(2).all(|p| p[0] < p[1]),
            "restored rows must be strictly ascending"
        );
        // Release any leftover capacity of the empty row before relocating.
        self.dead += self.rows[r].cap as usize;
        let start = self.ids.len();
        let len = ids.len();
        assert!(
            start + len <= u32::MAX as usize,
            "adjacency arena exceeds u32 addressing"
        );
        self.reserve_arena(len);
        self.ids.extend_from_slice(ids);
        self.ws.extend_from_slice(ws);
        let len = fit_u32(len);
        self.rows[r] = RowMeta {
            start: start as u32,
            cap: len,
            len,
            run: len,
        };
        let mut fp = 0u8;
        for &id in ids {
            fp |= 1 << (id & 7);
        }
        self.fps[r] = fp;
    }

    /// Arena bytes currently allocated (entry storage plus per-row
    /// metadata), by vector capacity — what the process actually holds.
    pub fn arena_bytes(&self) -> usize {
        self.ids.capacity() * std::mem::size_of::<NodeId>()
            + self.ws.capacity() * std::mem::size_of::<f64>()
            + self.rows.capacity() * std::mem::size_of::<RowMeta>()
            + self.fps.capacity()
            + self.scratch_ids.capacity() * std::mem::size_of::<NodeId>()
            + self.scratch_ws.capacity() * std::mem::size_of::<f64>()
    }

    /// Live entries across all rows (12 bytes each: id + weight).
    pub fn live_entries(&self) -> usize {
        self.rows.iter().map(|m| m.len as usize).sum()
    }

    /// Debug check: every row's runs are strictly ascending and disjoint.
    #[cfg(test)]
    fn assert_sorted(&self) {
        for r in 0..self.rows.len() {
            let (run_ids, _, tail_ids, _) = self.row_parts(r);
            assert!(run_ids.windows(2).all(|p| p[0] < p[1]), "run of row {r}");
            assert!(tail_ids.windows(2).all(|p| p[0] < p[1]), "tail of row {r}");
            for t in tail_ids {
                assert!(run_ids.binary_search(t).is_err(), "dup across runs");
            }
            for id in run_ids.iter().chain(tail_ids) {
                assert!(
                    self.fps[r] & (1 << (id & 7)) != 0,
                    "fingerprint of row {r} must cover live id {id}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// Deterministic pseudo-random stream driver.
    fn lcg(x: &mut u64) -> u64 {
        *x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *x
    }

    #[test]
    fn accumulates_like_a_map_bitwise() {
        let mut store = SortedRunStore::new();
        store.push_row();
        let mut reference: BTreeMap<NodeId, f64> = BTreeMap::new();
        let mut x = 7u64;
        for step in 0..5_000 {
            let id = (lcg(&mut x) % 300) as NodeId;
            let w = 0.1 + (lcg(&mut x) % 97) as f64 / 13.0;
            let fresh = store.add(0, id, w);
            assert_eq!(fresh, !reference.contains_key(&id), "freshness at {step}");
            *reference.entry(id).or_insert(0.0) += w;
            if step % 617 == 0 {
                store.assert_sorted();
            }
        }
        store.assert_sorted();
        assert_eq!(store.row_len(0), reference.len());
        // Iteration is ascending and weights are bit-identical to the
        // chronological per-key accumulation the map performed.
        let mut seen: Vec<(NodeId, u64)> = Vec::new();
        store.for_each(0, |u, w| seen.push((u, w.to_bits())));
        let expect: Vec<(NodeId, u64)> =
            reference.iter().map(|(&u, &w)| (u, w.to_bits())).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn add_reports_new_entries_exactly_once() {
        let mut store = SortedRunStore::new();
        store.push_row();
        assert!(store.add(0, 5, 1.0));
        assert!(!store.add(0, 5, 1.0));
        assert!(store.add(0, 3, 1.0));
        assert!(store.add(0, 9, 1.0));
        assert!(!store.add(0, 3, 0.5));
        assert_eq!(store.row_len(0), 3);
        assert_eq!(store.get(0, 3), Some(1.5));
        assert_eq!(store.get(0, 7), None);
    }

    #[test]
    fn remove_keeps_runs_sorted() {
        let mut store = SortedRunStore::new();
        store.push_row();
        for id in [4u32, 1, 9, 2, 7, 3, 8] {
            store.add(0, id, id as f64);
        }
        assert_eq!(store.remove(0, 9), Some(9.0));
        assert_eq!(store.remove(0, 1), Some(1.0));
        assert_eq!(store.remove(0, 1), None);
        store.assert_sorted();
        let mut ids = Vec::new();
        store.for_each(0, |u, _| ids.push(u));
        assert_eq!(ids, vec![2, 3, 4, 7, 8]);
    }

    #[test]
    fn many_rows_with_relocation_and_compaction() {
        let mut store = SortedRunStore::new();
        let rows = 50usize;
        for _ in 0..rows {
            store.push_row();
        }
        let mut x = 99u64;
        let mut reference: Vec<BTreeMap<NodeId, f64>> = vec![BTreeMap::new(); rows];
        for _ in 0..30_000 {
            let r = (lcg(&mut x) as usize) % rows;
            let id = (lcg(&mut x) % 2_000) as NodeId;
            let w = 1.0 + (lcg(&mut x) % 5) as f64;
            store.add(r, id, w);
            *reference[r].entry(id).or_insert(0.0) += w;
        }
        store.assert_sorted();
        for (r, map) in reference.iter().enumerate() {
            assert_eq!(store.row_len(r), map.len(), "row {r} length");
            let mut seen = Vec::new();
            store.for_each(r, |u, w| seen.push((u, w.to_bits())));
            let expect: Vec<(NodeId, u64)> = map.iter().map(|(&u, &w)| (u, w.to_bits())).collect();
            assert_eq!(seen, expect, "row {r} contents");
        }
    }

    #[test]
    fn copy_row_into_matches_iteration() {
        let mut store = SortedRunStore::new();
        store.push_row();
        for id in [40u32, 10, 30, 20, 50, 5, 45] {
            store.add(0, id, 1.0 / (id as f64 + 1.0));
        }
        let (mut ids, mut ws) = (Vec::new(), Vec::new());
        let sum = store.copy_row_into(0, &mut ids, &mut ws);
        let mut it_ids = Vec::new();
        let mut it_sum = 0.0;
        store.for_each(0, |u, w| {
            it_ids.push(u);
            it_sum += w;
        });
        assert_eq!(ids, it_ids);
        assert_eq!(sum.to_bits(), it_sum.to_bits());
        assert!(ids.windows(2).all(|p| p[0] < p[1]));
    }

    #[test]
    fn restored_rows_behave_like_grown_ones() {
        // Round-trip: a row rebuilt from its merged copy must iterate
        // bit-identically and keep accepting inserts afterwards.
        let mut store = SortedRunStore::new();
        store.push_row();
        for id in [40u32, 10, 30, 20, 50, 5, 45] {
            store.add(0, id, 1.0 / (id as f64 + 1.0));
        }
        let (mut ids, mut ws) = (Vec::new(), Vec::new());
        store.copy_row_into(0, &mut ids, &mut ws);

        let mut restored = SortedRunStore::new();
        restored.push_row_from_sorted(&ids, &ws);
        restored.assert_sorted();
        let collect = |s: &SortedRunStore| {
            let mut out = Vec::new();
            s.for_each(0, |u, w| out.push((u, w.to_bits())));
            out
        };
        assert_eq!(collect(&store), collect(&restored));

        // Both continue to accumulate identically (restored row is at
        // capacity, so the next brand-new neighbor exercises grow_row).
        store.add(0, 25, 2.5);
        restored.add(0, 25, 2.5);
        store.add(0, 10, 0.5);
        restored.add(0, 10, 0.5);
        assert_eq!(collect(&store), collect(&restored));
    }

    #[test]
    fn fingerprint_filter_is_bitwise_transparent() {
        // Interleaved adds and removes against a reference map: the
        // membership fingerprint (including stale bits left by removes)
        // must never change what is stored — same freshness verdicts,
        // same bit-exact weights, same ascending iteration.
        let mut store = SortedRunStore::new();
        store.push_row();
        let mut reference: BTreeMap<NodeId, f64> = BTreeMap::new();
        let mut x = 31u64;
        for step in 0..8_000 {
            let id = (lcg(&mut x) % 64) as NodeId; // dense residue reuse
            match lcg(&mut x) % 5 {
                0 => {
                    // Remove leaves the fingerprint bit stale on purpose.
                    assert_eq!(
                        store.remove(0, id),
                        reference.remove(&id),
                        "remove at {step}"
                    );
                }
                _ => {
                    let w = 0.25 + (lcg(&mut x) % 41) as f64 / 7.0;
                    let fresh = store.add(0, id, w);
                    assert_eq!(fresh, !reference.contains_key(&id), "freshness at {step}");
                    *reference.entry(id).or_insert(0.0) += w;
                }
            }
            if step % 911 == 0 {
                store.assert_sorted();
            }
        }
        store.assert_sorted();
        let mut seen: Vec<(NodeId, u64)> = Vec::new();
        store.for_each(0, |u, w| seen.push((u, w.to_bits())));
        let expect: Vec<(NodeId, u64)> =
            reference.iter().map(|(&u, &w)| (u, w.to_bits())).collect();
        assert_eq!(seen, expect);
        // Absent ids answer through the filter exactly like before.
        for id in 0..64u32 {
            assert_eq!(store.get(0, id), reference.get(&id).copied(), "get {id}");
        }
        assert_eq!(store.get(0, 1_000), None, "never-seen residue class");
    }

    #[test]
    fn lower_bound_matches_stdlib_binary_search() {
        // The branch-free search must land on the exact same indices as
        // `slice::binary_search` (Ok and Err alike) on arbitrary sorted
        // duplicate-free arrays — the pin that keeps weight placement, and
        // therefore every accumulated float, bitwise unchanged.
        let mut x = 1234u64;
        for trial in 0..200 {
            let n = (lcg(&mut x) % 40) as usize;
            let mut ids: Vec<NodeId> = (0..n).map(|_| (lcg(&mut x) % 97) as NodeId).collect();
            ids.sort_unstable();
            ids.dedup();
            for probe in 0..100u32 {
                let expect = match ids.binary_search(&probe) {
                    Ok(i) | Err(i) => i,
                };
                assert_eq!(
                    lower_bound(&ids, probe),
                    expect,
                    "trial {trial}, probe {probe}, ids {ids:?}"
                );
            }
        }
        assert_eq!(lower_bound(&[], 5), 0);
    }

    #[test]
    fn evict_then_restore_is_bitwise_lossless() {
        let mut store = SortedRunStore::new();
        let mut twin = SortedRunStore::new();
        store.push_row();
        store.push_row();
        twin.push_row();
        twin.push_row();
        let mut x = 55u64;
        fn feed(x: &mut u64, s: &mut SortedRunStore, t: &mut SortedRunStore, steps: usize) {
            for _ in 0..steps {
                let r = (lcg(x) % 2) as usize;
                let id = (lcg(x) % 500) as NodeId;
                let w = 0.5 + (lcg(x) % 31) as f64 / 9.0;
                s.add(r, id, w);
                t.add(r, id, w);
            }
        }
        feed(&mut x, &mut store, &mut twin, 2_000);

        // Evict row 0, keep feeding row 1 in both stores, then restore.
        let (mut ids, mut ws) = (Vec::new(), Vec::new());
        let n = store.evict_row(0, &mut ids, &mut ws);
        assert_eq!(n, ids.len());
        assert_eq!(store.row_len(0), 0);
        assert_eq!(store.get(0, ids[0]), None, "evicted rows read empty");
        for _ in 0..500 {
            let id = (lcg(&mut x) % 500) as NodeId;
            let w = (lcg(&mut x) % 7) as f64;
            store.add(1, id, w);
            twin.add(1, id, w);
        }
        store.restore_row(0, &ids, &ws);
        store.assert_sorted();

        // Both rows bitwise-match the never-evicted twin, and future adds
        // keep matching.
        feed(&mut x, &mut store, &mut twin, 2_000);
        store.assert_sorted();
        for r in 0..2 {
            let collect = |s: &SortedRunStore| {
                let mut out = Vec::new();
                s.for_each(r, |u, w| out.push((u, w.to_bits())));
                out
            };
            assert_eq!(collect(&store), collect(&twin), "row {r}");
        }
    }

    #[test]
    fn footprint_accessors_track_the_arena() {
        let mut store = SortedRunStore::new();
        store.push_row();
        assert_eq!(store.live_entries(), 0);
        for id in 0..100u32 {
            store.add(0, id, 1.0);
        }
        assert_eq!(store.live_entries(), 100);
        assert!(store.arena_bytes() >= 100 * 12);
        let (mut ids, mut ws) = (Vec::new(), Vec::new());
        store.evict_row(0, &mut ids, &mut ws);
        assert_eq!(store.live_entries(), 0);
    }

    #[test]
    fn scale_all_rescales_live_entries() {
        let mut store = SortedRunStore::new();
        store.push_row();
        store.push_row();
        store.add(0, 1, 2.0);
        store.add(1, 0, 4.0);
        store.scale_all(0.5);
        assert_eq!(store.get(0, 1), Some(1.0));
        assert_eq!(store.get(1, 0), Some(2.0));
    }
}
