//! The transaction graph of TxAllo (§III-C, Definition 2).
//!
//! Accounts are nodes; every transaction distributes a total weight of `1`
//! over the clique expansion of its (deduplicated) account set, so edge
//! weights directly measure "number of transactions between these accounts".
//! Self-transfers become self-loop weight (§V-B handles these explicitly in
//! the gain formulas).
//!
//! The graph supports **incremental ingestion**: [`TxGraph::ingest_block`]
//! updates adjacency in `O(edges added)` and reports the set of touched
//! nodes `V̂`, which is exactly the input A-TxAllo (Alg. 2) needs.
//!
//! ## Three graph forms: mutable sorted-run slab, flat CSR, delta CSR
//!
//! The crate deliberately ships the graph in three shapes, one per access
//! pattern:
//!
//! * [`TxGraph`] — *ingestion form*. Per-node rows live in a shared
//!   sorted-run slab arena ([`slab::SortedRunStore`]): ascending-id sorted
//!   runs with a small amortized-merge tail, so a repeated account pair
//!   accumulates weight in place (binary search, `O(1)` amortized per
//!   edge) **and** the mutable graph is CSR-shaped by construction —
//!   neighbor iteration is always ascending. This is what the block stream
//!   mutates. Implements the shared [`WeightedGraph`] interface.
//! * [`CsrGraph`] — *full-sweep form*. Offsets + packed neighbor/weight
//!   arrays (compressed sparse row), rows sorted and duplicate-merged at
//!   build time. Every repeated-sweep consumer — Louvain levels, the
//!   G-TxAllo optimization phase, METIS coarsening/refinement — snapshots
//!   into this form once ([`CsrGraph::from_graph`]) and then iterates flat
//!   memory. Also implements [`WeightedGraph`]; [`AdjacencyGraph`] is a
//!   compatibility alias of this type.
//! * [`DeltaCsr`] — *epoch-update form*. A compact CSR over just the
//!   epoch's touched node set `V̂` and its incident edges, rows in the
//!   canonical sweep order, built either incrementally by straight run
//!   copies out of the slab adjacency or by extraction from a full
//!   [`CsrGraph`] (see [`delta`] for the byte-identical-routes contract).
//!   This is what A-TxAllo's epoch sweep runs on.
//!
//! The split matters because the sweeps dominate running time (§VI-B6 of
//! the paper: Louvain initialization alone is 67.6 s of G-TxAllo's
//! 122.3 s). CSR rows cost one contiguous read per node instead of a
//! pointer chase per neighbor list, and their ascending-id order is what
//! lets the sweep kernels enumerate candidate communities deterministically
//! from a [`scratch::DenseAccumulator`] without per-node hashing, allocation
//! or full candidate sorts.

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]

pub mod adjacency;
pub mod csr;
pub mod decay;
pub mod delta;
pub mod interner;
pub mod par;
pub mod residency;
pub mod scratch;
pub mod slab;
pub mod stats;
pub mod traits;
pub mod txgraph;
pub mod window;

pub use adjacency::AdjacencyGraph;
pub use csr::CsrGraph;
pub use decay::DecayingGraph;
pub use delta::DeltaCsr;
pub use interner::{AccountInterner, IdSpaceExhausted};
pub use residency::{MemoryFootprint, ResidencyConfig, SpillTarget};
pub use scratch::{DenseAccumulator, DenseIndexMap};
pub use slab::SortedRunStore;
pub use stats::GraphStats;
pub use traits::{fit_u32, NodeId, RowView, WeightedGraph};
pub use txgraph::{BlockNodes, TxGraph};
pub use window::SlidingWindowGraph;
