//! The transaction graph of TxAllo (§III-C, Definition 2).
//!
//! Accounts are nodes; every transaction distributes a total weight of `1`
//! over the clique expansion of its (deduplicated) account set, so edge
//! weights directly measure "number of transactions between these accounts".
//! Self-transfers become self-loop weight (§V-B handles these explicitly in
//! the gain formulas).
//!
//! The graph supports **incremental ingestion**: [`TxGraph::ingest_block`]
//! updates adjacency in `O(edges added)` and reports the set of touched
//! nodes `V̂`, which is exactly the input A-TxAllo (Alg. 2) needs.

pub mod adjacency;
pub mod decay;
pub mod interner;
pub mod stats;
pub mod traits;
pub mod txgraph;
pub mod window;

pub use adjacency::AdjacencyGraph;
pub use interner::AccountInterner;
pub use stats::GraphStats;
pub use traits::{NodeId, WeightedGraph};
pub use txgraph::TxGraph;
pub use decay::DecayingGraph;
pub use window::SlidingWindowGraph;
