//! Cold-row eviction: bounded-memory graph residency for out-of-core
//! streaming replay.
//!
//! A long replay interns every account it ever sees, but an epoch only
//! *writes* the rows of accounts that transacted recently — the decay
//! window already encodes that recency. This module retires the adjacency
//! rows of accounts untouched for more than `window` completed epochs to
//! an append-only spill (in memory or on disk) and rehydrates them
//! **bitwise-transparently** when traffic returns, keeping resident slab
//! bytes `O(active set)` instead of `O(all accounts ever seen)`.
//!
//! ## The determinism story
//!
//! Eviction serializes the row's *merged* copy — the exact form the
//! snapshot builders read and [`checkpoint restore`] rebuilds from — and
//! records how many decay factors had been applied at eviction time.
//! Rehydration replays the missed factors **stepwise, in application
//! order** (one multiply per factor per entry, never a combined product:
//! `w·f₁·f₂ ≠ w·(f₁·f₂)` in floats), then lands the row fully merged via
//! [`SortedRunStore::restore_row`]. Both sides of a symmetric edge
//! therefore hold bit-identical weights whether one of them spent epochs
//! cold or not, and every future accumulation proceeds from identical
//! bits — the `with-eviction == without-eviction` proptests pin this.
//!
//! ## The residency read invariant
//!
//! Reads take `&self` and cannot rehydrate, so a cold row reads as
//! *empty* (`neighbor_count == 0`, no entries). Correctness rests on one
//! invariant: **a cold row is never read**. The write paths uphold it
//! internally — every ingestion touch rehydrates through
//! [`TxGraph::ensure_node`], and edge removal rehydrates both endpoints —
//! but whole-graph readers (a global G-TxAllo re-solve, a session
//! rebuild, a consistency audit, a checkpoint, dust pruning) must call
//! [`TxGraph::ensure_all_resident`] first. The simulator driver does so at
//! exactly those boundaries; per-node scalars (self-loops, incident
//! weight, `total_weight`) always stay resident, so epoch parameter
//! rescaling and metrics need no rehydration at all.
//!
//! [`checkpoint restore`]: crate::TxGraph::from_checkpoint_parts
//! [`SortedRunStore::restore_row`]: crate::SortedRunStore::restore_row
//! [`TxGraph::ensure_node`]: crate::TxGraph
//! [`TxGraph::ensure_all_resident`]: crate::TxGraph::ensure_all_resident

use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

use crate::slab::SortedRunStore;
use crate::traits::{fit_u32, NodeId};

/// Where evicted rows spill.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpillTarget {
    /// An in-memory byte log — bounds the *slab* (the structure whose
    /// per-entry overhead and compaction passes scale with residency)
    /// while keeping everything in RAM; the right choice for tests and
    /// mid-size runs.
    Memory,
    /// An append-only file — true out-of-core operation for replays whose
    /// cold history exceeds RAM. Created (truncated) on enable.
    File(PathBuf),
}

/// Configuration of the residency layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResidencyConfig {
    /// Evict a row once its account has gone more than this many completed
    /// epochs without a write. Must be ≥ 1 (an account's row always
    /// survives the epoch it transacted in plus `window` full epochs).
    pub window: u32,
    /// Where evicted rows go.
    pub spill: SpillTarget,
}

impl ResidencyConfig {
    /// In-memory spill with the given eviction window.
    pub fn in_memory(window: u32) -> Self {
        Self {
            window,
            spill: SpillTarget::Memory,
        }
    }

    /// File-backed spill with the given eviction window.
    pub fn file(window: u32, path: impl Into<PathBuf>) -> Self {
        Self {
            window,
            spill: SpillTarget::File(path.into()),
        }
    }
}

/// The append-only spill log. Records are self-describing: an 8-byte
/// header (`len: u32` entry count, `scale_mark: u32` decay-tape position
/// at eviction time) followed by `len × 4` id bytes and `len × 8` weight
/// bytes, all little-endian. Keeping the per-row metadata in the record
/// means the in-RAM cold directory stores one `u64` offset per cold row
/// and nothing else — the header rides the rehydration read the row pays
/// anyway. Re-evicting a row appends a fresh record; superseded ranges
/// are dead log space, acceptable for a replay log (the log grows with
/// eviction *traffic*, not with live state).
#[derive(Debug)]
enum Spill {
    Memory(Vec<u8>),
    File { file: fs::File, len: u64 },
}

impl Spill {
    fn open(target: &SpillTarget) -> Self {
        match target {
            SpillTarget::Memory => Spill::Memory(Vec::new()),
            SpillTarget::File(path) => {
                let file = fs::OpenOptions::new()
                    .read(true)
                    .write(true)
                    .create(true)
                    .truncate(true)
                    .open(path)
                    .expect("open residency spill file"); // txallo-lint: allow(lib-unwrap) — spill I/O failure leaves no consistent half-spilled state to roll back; aborting is the residency contract
                Spill::File { file, len: 0 }
            }
        }
    }

    /// Appends `bytes`, returning their offset.
    fn append(&mut self, bytes: &[u8]) -> u64 {
        match self {
            Spill::Memory(buf) => {
                let off = buf.len() as u64;
                buf.extend_from_slice(bytes);
                off
            }
            Spill::File { file, len } => {
                let off = *len;
                file.seek(SeekFrom::Start(off)).expect("seek spill"); // txallo-lint: allow(lib-unwrap) — spill I/O failure leaves no consistent half-spilled state to roll back; aborting is the residency contract
                file.write_all(bytes).expect("write spill"); // txallo-lint: allow(lib-unwrap) — spill I/O failure leaves no consistent half-spilled state to roll back; aborting is the residency contract
                *len += bytes.len() as u64;
                off
            }
        }
    }

    fn read_at(&mut self, offset: u64, out: &mut [u8]) {
        match self {
            Spill::Memory(buf) => {
                let s = offset as usize;
                out.copy_from_slice(&buf[s..s + out.len()]);
            }
            Spill::File { file, .. } => {
                file.seek(SeekFrom::Start(offset)).expect("seek spill"); // txallo-lint: allow(lib-unwrap) — spill I/O failure leaves no consistent half-spilled state to roll back; aborting is the residency contract
                file.read_exact(out).expect("read spill"); // txallo-lint: allow(lib-unwrap) — spill I/O failure leaves no consistent half-spilled state to roll back; aborting is the residency contract
            }
        }
    }

    fn bytes(&self) -> u64 {
        match self {
            Spill::Memory(buf) => buf.len() as u64,
            Spill::File { len, .. } => *len,
        }
    }
}

impl Clone for Spill {
    /// Cloning a file-backed spill materializes it in memory: the log is
    /// self-contained, and sharing one append-only file between two
    /// diverging graphs would corrupt both. Clones of residency-enabled
    /// graphs are a test/checkpoint convenience, not a hot path.
    fn clone(&self) -> Self {
        match self {
            Spill::Memory(buf) => Spill::Memory(buf.clone()),
            Spill::File { file, len } => {
                let mut buf = vec![0u8; *len as usize];
                let mut f = file;
                f.seek(SeekFrom::Start(0)).expect("seek spill"); // txallo-lint: allow(lib-unwrap) — spill I/O failure leaves no consistent half-spilled state to roll back; aborting is the residency contract
                f.read_exact(&mut buf).expect("read spill"); // txallo-lint: allow(lib-unwrap) — spill I/O failure leaves no consistent half-spilled state to roll back; aborting is the residency contract
                Spill::Memory(buf)
            }
        }
    }
}

/// Per-graph residency state (owned by `TxGraph` when enabled).
///
/// The index is keyed on **cold rows only**: always-resident accounts cost
/// one touch stamp (4 B) plus one residency bit. A cold row costs 12 B
/// (its id plus a `u64` spill offset — entry count and decay-tape mark
/// live in the spill record's header, read back with the row). The cold
/// directory (`cold_ids`/`cold_offsets`, ascending by node id) is
/// consulted only after the bit test says a row is cold, so the hot
/// resident path never searches it; rehydration just clears the bit and
/// leaves a dead directory entry behind, and the next epoch boundary
/// merges dead entries out together with the freshly evicted rows.
#[derive(Debug, Clone)]
pub(crate) struct Residency {
    window: u32,
    /// Completed epochs since residency was enabled.
    epoch: u32,
    /// Last epoch stamp each node's row was written.
    last_touch: Vec<u32>,
    /// One bit per node, set while the row is cold (O(1) residency test).
    cold_bits: Vec<u64>,
    /// Node ids of the cold directory, ascending. Entries whose bit has
    /// been cleared since the last merge are dead (superseded).
    cold_ids: Vec<NodeId>,
    /// Spill record offsets parallel to `cold_ids`.
    cold_offsets: Vec<u64>,
    /// Dead entries in the directory since the last epoch merge.
    dead: usize,
    /// Every decay factor applied since enable, in order — the replay
    /// tape for cold rows (8 bytes per decay epoch).
    scale_log: Vec<f64>,
    spill: Spill,
    cold_rows: usize,
    evicted_total: u64,
    restored_total: u64,
    // Serialization scratch, reused across evictions/rehydrations.
    buf: Vec<u8>,
    ids_scratch: Vec<NodeId>,
    ws_scratch: Vec<f64>,
    // Directory-merge scratch: this epoch's staged evictions, freed after
    // each merge so its capacity never lingers in the footprint.
    merge_ids: Vec<NodeId>,
    merge_offsets: Vec<u64>,
}

impl Residency {
    pub(crate) fn new(config: &ResidencyConfig, nodes: usize) -> Self {
        assert!(config.window >= 1, "eviction window must be ≥ 1 epoch");
        Self {
            window: config.window,
            epoch: 0,
            last_touch: vec![0; nodes],
            cold_bits: vec![0; nodes.div_ceil(64)],
            cold_ids: Vec::new(),
            cold_offsets: Vec::new(),
            dead: 0,
            scale_log: Vec::new(),
            spill: Spill::open(&config.spill),
            cold_rows: 0,
            evicted_total: 0,
            restored_total: 0,
            buf: Vec::new(),
            ids_scratch: Vec::new(),
            ws_scratch: Vec::new(),
            merge_ids: Vec::new(),
            merge_offsets: Vec::new(),
        }
    }

    /// Registers a brand-new node (resident, touched now).
    pub(crate) fn push_node(&mut self) {
        self.last_touch.push(self.epoch);
        if self.last_touch.len() > self.cold_bits.len() * 64 {
            self.cold_bits.push(0);
        }
    }

    /// Stamps a write touch on `v`'s row.
    #[inline]
    pub(crate) fn touch(&mut self, v: NodeId) {
        self.last_touch[v as usize] = self.epoch;
    }

    #[inline]
    pub(crate) fn is_cold(&self, v: NodeId) -> bool {
        (self.cold_bits[v as usize / 64] >> (v as usize % 64)) & 1 == 1
    }

    pub(crate) fn cold_rows(&self) -> usize {
        self.cold_rows
    }

    pub(crate) fn evicted_total(&self) -> u64 {
        self.evicted_total
    }

    pub(crate) fn restored_total(&self) -> u64 {
        self.restored_total
    }

    pub(crate) fn spill_bytes(&self) -> u64 {
        self.spill.bytes()
    }

    /// Records a decay factor every cold row still owes.
    pub(crate) fn on_scale(&mut self, factor: f64) {
        self.scale_log.push(factor);
    }

    /// Brings `v`'s row back into the slab, bitwise-transparently. No-op
    /// when already resident.
    pub(crate) fn rehydrate(&mut self, adjacency: &mut SortedRunStore, v: NodeId) {
        if !self.is_cold(v) {
            return;
        }
        let at = self
            .cold_ids
            .binary_search(&v)
            .expect("cold bit set but row missing from the cold directory"); // txallo-lint: allow(lib-unwrap) — the bit and the directory are updated together (evict sets both, rehydrate clears the bit and leaves the entry for the next merge), so a set bit always has its entry
        let offset = self.cold_offsets[at];
        let mut header = [0u8; 8];
        self.spill.read_at(offset, &mut header);
        let n = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize; // txallo-lint: allow(lib-unwrap) — a 4-byte slice of an 8-byte array converts infallibly
        let scale_mark = u32::from_le_bytes(header[4..].try_into().unwrap()) as usize; // txallo-lint: allow(lib-unwrap) — a 4-byte slice of an 8-byte array converts infallibly
        self.buf.resize(n * 12, 0);
        self.spill.read_at(offset + 8, &mut self.buf);
        self.ids_scratch.clear();
        self.ws_scratch.clear();
        for c in self.buf[..n * 4].chunks_exact(4) {
            self.ids_scratch
                .push(NodeId::from_le_bytes(c.try_into().unwrap())); // txallo-lint: allow(lib-unwrap) — chunks_exact(4) yields exactly 4 bytes per chunk, so the array conversion is infallible
        }
        for c in self.buf[n * 4..].chunks_exact(8) {
            self.ws_scratch
                .push(f64::from_le_bytes(c.try_into().unwrap())); // txallo-lint: allow(lib-unwrap) — chunks_exact(8) yields exactly 8 bytes per chunk, so the array conversion is infallible
        }
        // Replay the decay factors the row missed while cold — stepwise,
        // in application order, matching the in-place multiplies its
        // resident twin received (a combined product would not be
        // bit-identical).
        for &f in &self.scale_log[scale_mark..] {
            for w in &mut self.ws_scratch {
                *w *= f;
            }
        }
        adjacency.restore_row(v as usize, &self.ids_scratch, &self.ws_scratch);
        self.cold_bits[v as usize / 64] &= !(1u64 << (v as usize % 64));
        self.dead += 1;
        self.cold_rows -= 1;
        self.restored_total += 1;
    }

    /// Marks an epoch boundary: evicts every resident, non-empty row whose
    /// account has gone more than `window` completed epochs without a
    /// write, then compacts the cold directory (freshly evicted rows merge
    /// in, entries rehydrated since the last boundary merge out). Returns
    /// the number of rows evicted.
    pub(crate) fn advance_epoch(&mut self, adjacency: &mut SortedRunStore) -> usize {
        self.epoch += 1;
        // Stage this epoch's evictions in the merge scratch: the loop runs
        // ascending, so the staged ids arrive sorted.
        self.merge_ids.clear();
        self.merge_offsets.clear();
        for v in 0..self.last_touch.len() {
            if self.is_cold(v as NodeId)
                || self.epoch - self.last_touch[v] <= self.window
                || adjacency.row_len(v) == 0
            {
                continue;
            }
            self.ids_scratch.clear();
            self.ws_scratch.clear();
            let n = adjacency.evict_row(v, &mut self.ids_scratch, &mut self.ws_scratch);
            self.buf.clear();
            self.buf.extend_from_slice(&fit_u32(n).to_le_bytes());
            self.buf
                .extend_from_slice(&fit_u32(self.scale_log.len()).to_le_bytes());
            for id in &self.ids_scratch {
                self.buf.extend_from_slice(&id.to_le_bytes());
            }
            for w in &self.ws_scratch {
                self.buf.extend_from_slice(&w.to_le_bytes());
            }
            let offset = self.spill.append(&self.buf);
            self.merge_ids.push(v as NodeId);
            self.merge_offsets.push(offset);
            self.cold_bits[v / 64] |= 1u64 << (v % 64);
            self.cold_rows += 1;
            self.evicted_total += 1;
        }
        let evicted = self.merge_ids.len();
        if evicted > 0 || self.dead > 0 {
            self.merge_directory();
        }
        evicted
    }

    /// Merges the staged evictions (in `merge_*`) with the surviving old
    /// directory entries, dropping dead ones, then ping-pongs the merged
    /// directory back into `cold_*`. A staged entry supersedes an old
    /// entry with the same id (the old one is necessarily dead: the row
    /// was rehydrated before it could be evicted again).
    fn merge_directory(&mut self) {
        let mut merged_ids = Vec::with_capacity(self.cold_ids.len() + self.merge_ids.len());
        let mut merged_offsets = Vec::with_capacity(merged_ids.capacity());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.cold_ids.len() || j < self.merge_ids.len() {
            let take_old = match (self.cold_ids.get(i), self.merge_ids.get(j)) {
                (Some(&o), Some(&s)) => {
                    if o == s {
                        i += 1; // superseded: the staged entry wins
                        false
                    } else {
                        o < s
                    }
                }
                (Some(_), None) => true,
                _ => false,
            };
            if take_old {
                let v = self.cold_ids[i];
                if self.is_cold(v) {
                    merged_ids.push(v);
                    merged_offsets.push(self.cold_offsets[i]);
                }
                i += 1;
            } else {
                merged_ids.push(self.merge_ids[j]);
                merged_offsets.push(self.merge_offsets[j]);
                j += 1;
            }
        }
        // The with_capacity above is an upper bound (dead and superseded
        // entries never land); shrink so the footprint tracks the live
        // directory, and free the staging scratch outright — both are
        // rebuilt from scratch next boundary, one realloc per epoch.
        merged_ids.shrink_to_fit();
        merged_offsets.shrink_to_fit();
        self.cold_ids = merged_ids;
        self.cold_offsets = merged_offsets;
        self.merge_ids = Vec::new();
        self.merge_offsets = Vec::new();
        self.dead = 0;
    }

    pub(crate) fn node_count(&self) -> usize {
        self.last_touch.len()
    }

    /// Resident bytes of the residency index itself (stamps, the cold
    /// bitmap, the cold-row directory, the decay tape and scratch) —
    /// reported so the accounting surface can't hide its own overhead.
    pub(crate) fn index_bytes(&self) -> usize {
        self.last_touch.capacity() * 4
            + self.cold_bits.capacity() * 8
            + self.cold_ids.capacity() * 4
            + self.cold_offsets.capacity() * 8
            + self.merge_ids.capacity() * 4
            + self.merge_offsets.capacity() * 8
            + self.scale_log.capacity() * 8
            + self.buf.capacity()
            + self.ids_scratch.capacity() * 4
            + self.ws_scratch.capacity() * 8
    }
}

/// A point-in-time memory accounting of a [`TxGraph`](crate::TxGraph) —
/// the surface every BENCH snapshot reports, and what the streaming-replay
/// smoke test asserts its resident-bytes ceiling against.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemoryFootprint {
    /// Allocated slab arena bytes (entry storage + row metadata +
    /// fingerprints + merge scratch, by vector capacity).
    pub slab_arena_bytes: usize,
    /// Live `(id, weight)` entries across resident rows.
    pub slab_live_entries: usize,
    /// Per-node scalar vectors (self-loops, incident weights).
    pub node_scalar_bytes: usize,
    /// Account interner (id vector + hash map estimate).
    pub interner_bytes: usize,
    /// Residency bookkeeping (touch stamps, cold slots, decay tape), zero
    /// when residency is disabled.
    pub residency_index_bytes: usize,
    /// Bytes in the spill log (not resident when file-backed).
    pub spill_bytes: u64,
    /// Rows currently resident in the slab.
    pub resident_rows: usize,
    /// Rows currently evicted to the spill.
    pub cold_rows: usize,
    /// Cumulative rows evicted since residency was enabled.
    pub evicted_rows: u64,
    /// Cumulative rows rehydrated since residency was enabled.
    pub restored_rows: u64,
}

impl MemoryFootprint {
    /// Live slab entry bytes — the `O(active set)` quantity the eviction
    /// layer bounds (12 bytes per entry: u32 id + f64 weight).
    pub fn slab_live_bytes(&self) -> usize {
        self.slab_live_entries * 12
    }

    /// Total resident bytes of the graph: slab arena, scalars, interner
    /// and residency index (the spill is excluded — it is the part that
    /// left residency).
    pub fn resident_bytes(&self) -> usize {
        self.slab_arena_bytes
            + self.node_scalar_bytes
            + self.interner_bytes
            + self.residency_index_bytes
    }
}
