//! Account → dense node-id interning.

use std::fmt;

use txallo_model::{AccountId, FxHashMap};

use crate::traits::NodeId;

/// The dense node-id space is exhausted: interning one more account would
/// need an id past [`AccountInterner::MAX_ACCOUNTS`]. Node ids are `u32`
/// with `u32::MAX` reserved as the unassigned sentinel (the sweep kernels'
/// `UNASSIGNED`), so the id space ends one short of `u32::MAX`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdSpaceExhausted;

impl fmt::Display for IdSpaceExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "node-id space exhausted: at most {} accounts fit a u32 id \
             (u32::MAX is the unassigned sentinel)",
            AccountInterner::MAX_ACCOUNTS
        )
    }
}

impl std::error::Error for IdSpaceExhausted {}

/// Bidirectional mapping between sparse [`AccountId`]s and dense [`NodeId`]s.
///
/// Node ids are assigned in first-seen order, which is deterministic for a
/// given transaction stream — the property the paper's determinism argument
/// (§IV-A) relies on.
#[derive(Debug, Clone, Default)]
pub struct AccountInterner {
    to_node: FxHashMap<AccountId, NodeId>,
    to_account: Vec<AccountId>,
}

impl AccountInterner {
    /// Most accounts an interner can hold: every id must fit a `u32` and
    /// `u32::MAX` stays free as the unassigned sentinel.
    pub const MAX_ACCOUNTS: usize = NodeId::MAX as usize;

    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// The id a `len`-account interner would assign next, or
    /// [`IdSpaceExhausted`] at the boundary. Factored out so the boundary
    /// is unit-testable without allocating 2³² entries.
    fn next_id_for_len(len: usize) -> Result<NodeId, IdSpaceExhausted> {
        if len >= Self::MAX_ACCOUNTS {
            Err(IdSpaceExhausted)
        } else {
            Ok(len as NodeId)
        }
    }

    /// Interns `account`, returning its node id (allocating one on first
    /// sight), or [`IdSpaceExhausted`] once the u32 id space is full —
    /// instead of silently wrapping past [`NodeId::MAX`].
    pub fn try_intern(&mut self, account: AccountId) -> Result<NodeId, IdSpaceExhausted> {
        if let Some(&n) = self.to_node.get(&account) {
            return Ok(n);
        }
        let n = Self::next_id_for_len(self.to_account.len())?;
        self.to_node.insert(account, n);
        self.to_account.push(account);
        Ok(n)
    }

    /// Interns `account`, returning its node id (allocating one on first
    /// sight).
    ///
    /// # Panics
    /// Panics if the u32 node-id space is exhausted; use
    /// [`AccountInterner::try_intern`] to handle that case.
    pub fn intern(&mut self, account: AccountId) -> NodeId {
        self.try_intern(account)
            .expect("node-id space exhausted (u32 ids)") // txallo-lint: allow(lib-unwrap) — intern() is the documented panicking convenience over try_intern for callers that accept the 4-billion-account cap
    }

    /// Looks up the node id of an already-interned account.
    pub fn get(&self, account: AccountId) -> Option<NodeId> {
        self.to_node.get(&account).copied()
    }

    /// The account behind a node id.
    ///
    /// # Panics
    /// Panics if `node` was never allocated.
    pub fn account(&self, node: NodeId) -> AccountId {
        self.to_account[node as usize]
    }

    /// Number of interned accounts.
    pub fn len(&self) -> usize {
        self.to_account.len()
    }

    /// Whether no account has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.to_account.is_empty()
    }

    /// All accounts in node-id order.
    pub fn accounts(&self) -> &[AccountId] {
        &self.to_account
    }

    /// Approximate resident bytes: the id vector plus a capacity-based
    /// estimate of the hash map (key + value + control byte per slot).
    pub fn approx_bytes(&self) -> usize {
        let vec_bytes = self.to_account.capacity() * std::mem::size_of::<AccountId>();
        let entry = std::mem::size_of::<AccountId>() + std::mem::size_of::<NodeId>() + 1;
        vec_bytes + self.to_node.capacity() * entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut it = AccountInterner::new();
        let a = it.intern(AccountId(100));
        let b = it.intern(AccountId(200));
        assert_ne!(a, b);
        assert_eq!(it.intern(AccountId(100)), a);
        assert_eq!(it.get(AccountId(200)), Some(b));
        assert_eq!(it.get(AccountId(300)), None);
        assert_eq!(it.account(a), AccountId(100));
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn ids_are_dense_and_first_seen_ordered() {
        let mut it = AccountInterner::new();
        for v in [5u64, 3, 9, 3, 5, 1] {
            it.intern(AccountId(v));
        }
        assert_eq!(it.len(), 4);
        assert_eq!(
            it.accounts(),
            &[AccountId(5), AccountId(3), AccountId(9), AccountId(1)]
        );
        for (i, &acct) in it.accounts().iter().enumerate() {
            assert_eq!(it.get(acct), Some(i as NodeId));
        }
    }

    #[test]
    fn id_space_boundary_errors_instead_of_wrapping() {
        // The last assignable id is MAX_ACCOUNTS - 1; at MAX_ACCOUNTS the
        // next id would collide with the u32::MAX sentinel.
        assert_eq!(
            AccountInterner::next_id_for_len(AccountInterner::MAX_ACCOUNTS - 1),
            Ok(NodeId::MAX - 1)
        );
        assert_eq!(
            AccountInterner::next_id_for_len(AccountInterner::MAX_ACCOUNTS),
            Err(IdSpaceExhausted)
        );
        assert_eq!(
            AccountInterner::next_id_for_len(usize::MAX),
            Err(IdSpaceExhausted)
        );
        // Known ids keep resolving even at the boundary (lookup never
        // allocates).
        let mut it = AccountInterner::new();
        assert_eq!(it.try_intern(AccountId(7)), Ok(0));
        assert_eq!(it.try_intern(AccountId(7)), Ok(0));
        assert!(!IdSpaceExhausted.to_string().is_empty());
    }
}
