//! Account → dense node-id interning.

use txallo_model::{AccountId, FxHashMap};

use crate::traits::NodeId;

/// Bidirectional mapping between sparse [`AccountId`]s and dense [`NodeId`]s.
///
/// Node ids are assigned in first-seen order, which is deterministic for a
/// given transaction stream — the property the paper's determinism argument
/// (§IV-A) relies on.
#[derive(Debug, Clone, Default)]
pub struct AccountInterner {
    to_node: FxHashMap<AccountId, NodeId>,
    to_account: Vec<AccountId>,
}

impl AccountInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `account`, returning its node id (allocating one on first
    /// sight).
    pub fn intern(&mut self, account: AccountId) -> NodeId {
        if let Some(&n) = self.to_node.get(&account) {
            return n;
        }
        let n = self.to_account.len() as NodeId;
        self.to_node.insert(account, n);
        self.to_account.push(account);
        n
    }

    /// Looks up the node id of an already-interned account.
    pub fn get(&self, account: AccountId) -> Option<NodeId> {
        self.to_node.get(&account).copied()
    }

    /// The account behind a node id.
    ///
    /// # Panics
    /// Panics if `node` was never allocated.
    pub fn account(&self, node: NodeId) -> AccountId {
        self.to_account[node as usize]
    }

    /// Number of interned accounts.
    pub fn len(&self) -> usize {
        self.to_account.len()
    }

    /// Whether no account has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.to_account.is_empty()
    }

    /// All accounts in node-id order.
    pub fn accounts(&self) -> &[AccountId] {
        &self.to_account
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut it = AccountInterner::new();
        let a = it.intern(AccountId(100));
        let b = it.intern(AccountId(200));
        assert_ne!(a, b);
        assert_eq!(it.intern(AccountId(100)), a);
        assert_eq!(it.get(AccountId(200)), Some(b));
        assert_eq!(it.get(AccountId(300)), None);
        assert_eq!(it.account(a), AccountId(100));
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn ids_are_dense_and_first_seen_ordered() {
        let mut it = AccountInterner::new();
        for v in [5u64, 3, 9, 3, 5, 1] {
            it.intern(AccountId(v));
        }
        assert_eq!(it.len(), 4);
        assert_eq!(
            it.accounts(),
            &[AccountId(5), AccountId(3), AccountId(9), AccountId(1)]
        );
        for (i, &acct) in it.accounts().iter().enumerate() {
            assert_eq!(it.get(acct), Some(i as NodeId));
        }
    }
}
