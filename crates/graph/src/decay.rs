//! Exponential time-decay of edge weights.
//!
//! §VI-A recommends initializing from recent history "to prevent noise
//! from out-of-date transactions", and the paper's future work is
//! predicting future transaction patterns. Exponential decay is the
//! standard middle ground between those: old interactions fade smoothly
//! instead of falling off a cliff at a window boundary, so the graph is a
//! recency-weighted estimate of the *next* epoch's pattern.
//!
//! Usage: call [`TxGraph::apply_decay`] once per epoch before ingesting
//! the epoch's blocks; occasionally [`TxGraph::prune_dust`] to drop edges
//! that have decayed to noise (bounding memory over long horizons).

use crate::traits::NodeId;
use crate::txgraph::TxGraph;

impl TxGraph {
    /// Multiplies every edge, self-loop and derived weight by `factor`
    /// (`0 < factor ≤ 1`), in `O(V + E)`.
    ///
    /// `transaction_count` still counts raw ingested transactions;
    /// `total_weight` becomes the decayed effective weight (callers using
    /// `λ = total_weight / k` automatically adapt).
    pub fn apply_decay(&mut self, factor: f64) {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "decay factor must be in (0, 1], got {factor}"
        );
        if factor == 1.0 {
            return;
        }
        self.scale_all_weights(factor);
    }

    /// Removes edges whose decayed weight fell below `threshold`,
    /// returning how many were dropped. Self-loops below the threshold are
    /// zeroed as well. Node ids remain stable.
    pub fn prune_dust(&mut self, threshold: f64) -> usize {
        assert!(threshold >= 0.0);
        self.drop_edges_below(threshold)
    }
}

/// A convenience wrapper driving decay per block batch: `push_blocks`
/// first decays the existing weights, then ingests the new blocks, so the
/// graph always holds `Σ decay^age · weight(block)`.
#[derive(Debug, Clone)]
pub struct DecayingGraph {
    graph: TxGraph,
    decay_per_epoch: f64,
    prune_threshold: f64,
    epochs: u64,
}

impl DecayingGraph {
    /// Creates the wrapper. `decay_per_epoch ∈ (0, 1]`; `prune_threshold`
    /// of 0 disables pruning.
    pub fn new(decay_per_epoch: f64, prune_threshold: f64) -> Self {
        assert!(decay_per_epoch > 0.0 && decay_per_epoch <= 1.0);
        Self {
            graph: TxGraph::new(),
            decay_per_epoch,
            prune_threshold,
            epochs: 0,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &TxGraph {
        &self.graph
    }

    /// Epochs ingested so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Decays, then ingests one epoch of blocks; returns touched nodes.
    pub fn push_epoch(&mut self, blocks: &[txallo_model::Block]) -> Vec<NodeId> {
        self.graph.apply_decay(self.decay_per_epoch);
        if self.prune_threshold > 0.0 {
            self.graph.prune_dust(self.prune_threshold);
        }
        let mut touched = Vec::new();
        for b in blocks {
            touched.extend(self.graph.ingest_block(b));
        }
        touched.sort_unstable();
        touched.dedup();
        self.epochs += 1;
        touched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::WeightedGraph;
    use txallo_model::{AccountId, Block, Transaction};

    fn tx(a: u64, b: u64) -> Transaction {
        Transaction::transfer(AccountId(a), AccountId(b))
    }

    #[test]
    fn decay_scales_everything_consistently() {
        let mut g = TxGraph::new();
        g.ingest_transaction(&tx(1, 2));
        g.ingest_transaction(&tx(2, 3));
        g.ingest_transaction(&tx(4, 4));
        g.apply_decay(0.5);
        assert!((g.total_weight() - 1.5).abs() < 1e-12);
        let n2 = g.node_of(AccountId(2)).unwrap();
        assert!((g.incident_weight(n2) - 1.0).abs() < 1e-12);
        let n4 = g.node_of(AccountId(4)).unwrap();
        assert!((g.self_loop(n4) - 0.5).abs() < 1e-12);
        // Invariant: incident = Σ neighbors + loop, for every node.
        for v in 0..g.node_count() as NodeId {
            let mut s = g.self_loop(v);
            g.for_each_neighbor(v, |_, w| s += w);
            assert!((s - g.incident_weight(v)).abs() < 1e-12);
        }
    }

    #[test]
    fn decay_of_one_is_identity() {
        let mut g = TxGraph::new();
        g.ingest_transaction(&tx(1, 2));
        g.apply_decay(1.0);
        assert!((g.total_weight() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "decay factor")]
    fn zero_decay_panics() {
        TxGraph::new().apply_decay(0.0);
    }

    #[test]
    fn prune_drops_faded_edges() {
        let mut g = TxGraph::new();
        g.ingest_transaction(&tx(1, 2));
        g.ingest_transaction(&tx(3, 4));
        g.apply_decay(0.01); // both edges at 0.01
        g.ingest_transaction(&tx(1, 2)); // edge (1,2) back to 1.01
        let dropped = g.prune_dust(0.1);
        assert_eq!(dropped, 1, "only the faded (3,4) edge goes");
        let (n1, n2) = (
            g.node_of(AccountId(1)).unwrap(),
            g.node_of(AccountId(2)).unwrap(),
        );
        assert!(g.weight_between(n1, n2) > 1.0);
        let (n3, n4) = (
            g.node_of(AccountId(3)).unwrap(),
            g.node_of(AccountId(4)).unwrap(),
        );
        assert_eq!(g.weight_between(n3, n4), 0.0);
        assert!(g.incident_weight(n3).abs() < 1e-12);
    }

    #[test]
    fn decaying_graph_prefers_recent_patterns() {
        // Epoch 1: account 1 trades heavily with 2. Epoch 2: with 3.
        // After strong decay, edge (1,3) must dominate (1,2).
        let mut dg = DecayingGraph::new(0.2, 0.0);
        let old: Vec<Transaction> = (0..10).map(|_| tx(1, 2)).collect();
        dg.push_epoch(&[Block::new(0, old)]);
        let new: Vec<Transaction> = (0..4).map(|_| tx(1, 3)).collect();
        dg.push_epoch(&[Block::new(1, new)]);
        let g = dg.graph();
        let n1 = g.node_of(AccountId(1)).unwrap();
        let n2 = g.node_of(AccountId(2)).unwrap();
        let n3 = g.node_of(AccountId(3)).unwrap();
        let w_old = g.weight_between(n1, n2); // 10 · 0.2 = 2
        let w_new = g.weight_between(n1, n3); // 4
        assert!(
            w_new > w_old,
            "recent pattern must dominate: old {w_old} vs new {w_new}"
        );
        assert_eq!(dg.epochs(), 2);
    }

    #[test]
    fn decayed_allocation_follows_the_drift() {
        // A raw graph still sees the stale heavy edge as dominant; the
        // decayed graph re-weights toward the new partner. This is the
        // behavioural difference that matters for allocation.
        let mut raw = TxGraph::new();
        let mut dg = DecayingGraph::new(0.1, 0.0);
        let old: Vec<Transaction> = (0..20).map(|_| tx(1, 2)).collect();
        let old_block = Block::new(0, old);
        raw.ingest_block(&old_block);
        dg.push_epoch(&[old_block]);
        let new: Vec<Transaction> = (0..5).map(|_| tx(1, 3)).collect();
        let new_block = Block::new(1, new);
        raw.ingest_block(&new_block);
        dg.push_epoch(&[new_block]);

        let stronger = |g: &TxGraph| {
            let n1 = g.node_of(AccountId(1)).unwrap();
            let n2 = g.node_of(AccountId(2)).unwrap();
            let n3 = g.node_of(AccountId(3)).unwrap();
            g.weight_between(n1, n3) > g.weight_between(n1, n2)
        };
        assert!(
            !stronger(&raw),
            "raw history is dominated by the stale edge"
        );
        assert!(stronger(dg.graph()), "decayed history follows the drift");
    }
}
