//! Sliding-window transaction graphs.
//!
//! §VI-A: *"We expect miners to initialize the G-TxAllo using only recent
//! history rather than the full history, as also recommended in Shard
//! Scheduler. This prevents noise from out-of-date transactions."* This
//! module maintains a transaction graph over the most recent `W` blocks:
//! ingesting a new block evicts the oldest one by subtracting its edge
//! weights, so the window slides in `O(edges changed)` without rebuilding.

use std::collections::VecDeque;

use txallo_model::{Block, FxHashSet, Transaction};

use crate::traits::NodeId;
use crate::txgraph::TxGraph;

/// A transaction graph restricted to the last `window` blocks.
///
/// Node ids are stable across evictions (the interner only grows); evicted
/// accounts simply end up with zero incident weight, which the allocators
/// treat as isolated nodes.
#[derive(Debug, Clone)]
pub struct SlidingWindowGraph {
    graph: TxGraph,
    window: usize,
    blocks: VecDeque<Block>,
}

impl SlidingWindowGraph {
    /// Creates an empty window of `window` blocks.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must hold at least one block");
        Self {
            graph: TxGraph::new(),
            window,
            blocks: VecDeque::new(),
        }
    }

    /// The current graph (over exactly the retained blocks).
    pub fn graph(&self) -> &TxGraph {
        &self.graph
    }

    /// The window length in blocks.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Blocks currently inside the window, oldest first.
    pub fn blocks(&self) -> impl Iterator<Item = &Block> {
        self.blocks.iter()
    }

    /// Number of retained blocks (≤ window).
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Ingests `block`, evicting the oldest block if the window is full.
    /// Returns the touched node set of the *new* block (the `V̂` input for
    /// A-TxAllo), like [`TxGraph::ingest_block`].
    pub fn push_block(&mut self, block: Block) -> Vec<NodeId> {
        if self.blocks.len() == self.window {
            let evicted = self.blocks.pop_front().expect("len == window > 0"); // txallo-lint: allow(lib-unwrap) — guarded by len == window and the constructor asserts window > 0
            for tx in evicted.transactions() {
                self.graph.remove_transaction(tx);
            }
        }
        let touched = self.graph.ingest_block(&block);
        self.blocks.push_back(block);
        touched
    }

    /// Accounts that still carry weight in the window (non-isolated).
    pub fn active_nodes(&self) -> Vec<NodeId> {
        use crate::traits::WeightedGraph;
        let mut active: FxHashSet<NodeId> = FxHashSet::default();
        for block in &self.blocks {
            for tx in block.transactions() {
                for account in tx.account_set() {
                    if let Some(node) = self.graph.node_of(account) {
                        active.insert(node);
                    }
                }
            }
        }
        // txallo-lint: allow(D1-hash-iteration) — collect-and-sort: the next line sorts ascending, so hash order never reaches a consumer
        let mut v: Vec<NodeId> = active.into_iter().collect();
        v.sort_unstable();
        debug_assert!(v.iter().all(|&n| self.graph.incident_weight(n) > 0.0));
        v
    }
}

/// Removal support lives here (as an extension impl) to keep the hot
/// ingestion path in `txgraph.rs` focused.
impl TxGraph {
    /// Removes a previously ingested transaction, subtracting its clique
    /// weights. Edges whose weight reaches zero are dropped from the
    /// adjacency; nodes are never removed (ids must stay stable).
    ///
    /// # Panics
    /// Debug builds panic if the transaction's accounts were never interned
    /// (i.e. it was never ingested).
    pub fn remove_transaction(&mut self, tx: &Transaction) {
        self.note_transaction_removed();
        let set = tx.account_set();
        if set.len() == 1 {
            let n = self
                .node_of(set[0])
                .expect("removing a transaction that was ingested"); // txallo-lint: allow(lib-unwrap) — retire only replays transactions this window ingested, so their accounts are interned
            self.subtract_self_loop(n, 1.0);
            return;
        }
        let w = 1.0 / (set.len() * (set.len() - 1) / 2) as f64;
        let nodes: Vec<crate::traits::NodeId> = set
            .iter()
            .map(|&acct| self.node_of(acct).expect("account was interned")) // txallo-lint: allow(lib-unwrap) — retire only replays transactions this window ingested, so their accounts are interned
            .collect();
        for i in 0..nodes.len() {
            for j in (i + 1)..nodes.len() {
                self.subtract_edge(nodes[i], nodes[j], w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::WeightedGraph;
    use txallo_model::AccountId;

    fn tx(a: u64, b: u64) -> Transaction {
        Transaction::transfer(AccountId(a), AccountId(b))
    }

    fn block(height: u64, txs: Vec<Transaction>) -> Block {
        Block::new(height, txs)
    }

    #[test]
    fn window_matches_fresh_build() {
        let mut win = SlidingWindowGraph::new(2);
        let blocks = vec![
            block(0, vec![tx(1, 2), tx(2, 3)]),
            block(1, vec![tx(3, 4), tx(1, 2)]),
            block(2, vec![tx(5, 6), tx(2, 3)]),
            block(3, vec![tx(1, 6)]),
        ];
        for b in &blocks {
            win.push_block(b.clone());
        }
        // Fresh graph over the last two blocks.
        let mut fresh = TxGraph::new();
        for b in &blocks[2..] {
            fresh.ingest_block(b);
        }
        assert!((win.graph().total_weight() - fresh.total_weight()).abs() < 1e-9);
        // Edge weights of surviving pairs agree.
        for (a, b) in [(5u64, 6u64), (2, 3), (1, 6)] {
            let wa = win.graph().node_of(AccountId(a)).unwrap();
            let wb = win.graph().node_of(AccountId(b)).unwrap();
            let fa = fresh.node_of(AccountId(a)).unwrap();
            let fb = fresh.node_of(AccountId(b)).unwrap();
            assert!(
                (win.graph().weight_between(wa, wb) - fresh.weight_between(fa, fb)).abs() < 1e-9,
                "pair ({a},{b}) weight mismatch"
            );
        }
        // Evicted traffic (1,2)/(3,4) carries no weight any more.
        let w1 = win.graph().node_of(AccountId(1)).unwrap();
        let w2 = win.graph().node_of(AccountId(2)).unwrap();
        assert_eq!(win.graph().weight_between(w1, w2), 0.0);
    }

    #[test]
    fn eviction_only_starts_when_full() {
        let mut win = SlidingWindowGraph::new(3);
        for h in 0..3u64 {
            win.push_block(block(h, vec![tx(h * 2, h * 2 + 1)]));
        }
        assert_eq!(win.len(), 3);
        assert!((win.graph().total_weight() - 3.0).abs() < 1e-12);
        win.push_block(block(3, vec![tx(100, 101)]));
        assert_eq!(win.len(), 3, "window stays at capacity");
        assert!((win.graph().total_weight() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn self_loop_eviction() {
        let mut win = SlidingWindowGraph::new(1);
        win.push_block(block(0, vec![tx(7, 7)]));
        let n = win.graph().node_of(AccountId(7)).unwrap();
        assert!((win.graph().self_loop(n) - 1.0).abs() < 1e-12);
        win.push_block(block(1, vec![tx(8, 9)]));
        assert_eq!(win.graph().self_loop(n), 0.0);
        assert_eq!(win.graph().incident_weight(n), 0.0);
    }

    #[test]
    fn active_nodes_excludes_evicted() {
        let mut win = SlidingWindowGraph::new(1);
        win.push_block(block(0, vec![tx(1, 2)]));
        win.push_block(block(1, vec![tx(3, 4)]));
        let active = win.active_nodes();
        let accounts: Vec<u64> = active.iter().map(|&n| win.graph().account(n).0).collect();
        assert_eq!(accounts, vec![3, 4]);
    }

    #[test]
    fn multi_io_removal_restores_weights() {
        let mut g = TxGraph::new();
        let multi = Transaction::new(vec![AccountId(1), AccountId(2)], vec![AccountId(3)]).unwrap();
        g.ingest_transaction(&tx(1, 2));
        g.ingest_transaction(&multi);
        g.remove_transaction(&multi);
        assert!((g.total_weight() - 1.0).abs() < 1e-9);
        let (n1, n2) = (
            g.node_of(AccountId(1)).unwrap(),
            g.node_of(AccountId(2)).unwrap(),
        );
        assert!((g.weight_between(n1, n2) - 1.0).abs() < 1e-9);
        let n3 = g.node_of(AccountId(3)).unwrap();
        assert!(g.incident_weight(n3).abs() < 1e-9);
    }
}
