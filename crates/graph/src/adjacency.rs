//! A compact immutable weighted graph used for Louvain's aggregation levels
//! and for the METIS-style coarsening hierarchy.

use crate::traits::{NodeId, WeightedGraph};

/// Sorted-adjacency-list weighted graph.
///
/// Unlike [`crate::TxGraph`] this structure is built once and never mutated,
/// so neighbors live in a flat sorted `Vec` per node (better cache behaviour
/// for the repeated sweeps community detection performs).
#[derive(Debug, Clone, Default)]
pub struct AdjacencyGraph {
    neighbors: Vec<Vec<(NodeId, f64)>>,
    self_loops: Vec<f64>,
    incident: Vec<f64>,
    total_weight: f64,
}

impl AdjacencyGraph {
    /// Builds from an edge list. `edges` may contain duplicates and both
    /// orientations; weights accumulate. `(v, v, w)` entries accumulate into
    /// the self-loop of `v`.
    pub fn from_edges(node_count: usize, edges: impl IntoIterator<Item = (NodeId, NodeId, f64)>) -> Self {
        let mut builder: Vec<Vec<(NodeId, f64)>> = vec![Vec::new(); node_count];
        let mut self_loops = vec![0.0; node_count];
        let mut total = 0.0;
        for (a, b, w) in edges {
            debug_assert!((a as usize) < node_count && (b as usize) < node_count);
            total += w;
            if a == b {
                self_loops[a as usize] += w;
            } else {
                builder[a as usize].push((b, w));
                builder[b as usize].push((a, w));
            }
        }
        let mut neighbors = Vec::with_capacity(node_count);
        let mut incident = vec![0.0; node_count];
        for (v, mut list) in builder.into_iter().enumerate() {
            list.sort_unstable_by_key(|&(u, _)| u);
            // Merge duplicate neighbor entries.
            let mut merged: Vec<(NodeId, f64)> = Vec::with_capacity(list.len());
            for (u, w) in list {
                match merged.last_mut() {
                    Some(last) if last.0 == u => last.1 += w,
                    _ => merged.push((u, w)),
                }
            }
            incident[v] = self_loops[v] + merged.iter().map(|&(_, w)| w).sum::<f64>();
            neighbors.push(merged);
        }
        Self { neighbors, self_loops, incident, total_weight: total }
    }

    /// Builds a copy of any [`WeightedGraph`] (used to snapshot a `TxGraph`
    /// into the immutable form before repeated sweeps).
    pub fn from_graph(g: &impl WeightedGraph) -> Self {
        let n = g.node_count();
        let mut edges: Vec<(NodeId, NodeId, f64)> = Vec::new();
        for v in 0..n as NodeId {
            let loop_w = g.self_loop(v);
            if loop_w > 0.0 {
                edges.push((v, v, loop_w));
            }
            g.for_each_neighbor(v, |u, w| {
                if v < u {
                    edges.push((v, u, w));
                }
            });
        }
        Self::from_edges(n, edges)
    }

    /// Number of distinct unordered non-loop edges.
    pub fn edge_count(&self) -> usize {
        self.neighbors.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// The sorted neighbor slice of `v`.
    pub fn neighbors(&self, v: NodeId) -> &[(NodeId, f64)] {
        &self.neighbors[v as usize]
    }

    /// Edge weight between `a` and `b` (self-loop when equal), 0 if absent.
    pub fn weight_between(&self, a: NodeId, b: NodeId) -> f64 {
        if a == b {
            return self.self_loops[a as usize];
        }
        match self.neighbors[a as usize].binary_search_by_key(&b, |&(u, _)| u) {
            Ok(i) => self.neighbors[a as usize][i].1,
            Err(_) => 0.0,
        }
    }
}

impl WeightedGraph for AdjacencyGraph {
    fn node_count(&self) -> usize {
        self.neighbors.len()
    }

    fn total_weight(&self) -> f64 {
        self.total_weight
    }

    fn self_loop(&self, v: NodeId) -> f64 {
        self.self_loops[v as usize]
    }

    fn incident_weight(&self, v: NodeId) -> f64 {
        self.incident[v as usize]
    }

    fn for_each_neighbor(&self, v: NodeId, mut f: impl FnMut(NodeId, f64)) {
        for &(u, w) in &self.neighbors[v as usize] {
            f(u, w);
        }
    }

    fn neighbor_count(&self, v: NodeId) -> usize {
        self.neighbors[v as usize].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_merges_duplicates() {
        let g = AdjacencyGraph::from_edges(3, vec![(0, 1, 1.0), (1, 0, 2.0), (1, 2, 0.5), (0, 0, 0.25)]);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!((g.weight_between(0, 1) - 3.0).abs() < 1e-12);
        assert!((g.weight_between(1, 0) - 3.0).abs() < 1e-12);
        assert!((g.self_loop(0) - 0.25).abs() < 1e-12);
        assert!((g.total_weight() - 3.75).abs() < 1e-12);
        assert!((g.incident_weight(0) - 3.25).abs() < 1e-12);
        assert!((g.incident_weight(1) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = AdjacencyGraph::from_edges(4, vec![(0, 3, 1.0), (0, 1, 1.0), (0, 2, 1.0)]);
        let ns: Vec<NodeId> = g.neighbors(0).iter().map(|&(u, _)| u).collect();
        assert_eq!(ns, vec![1, 2, 3]);
    }

    #[test]
    fn from_graph_roundtrip() {
        use txallo_model::{AccountId, Transaction};
        let mut tg = crate::TxGraph::new();
        tg.ingest_transaction(&Transaction::transfer(AccountId(1), AccountId(2)));
        tg.ingest_transaction(&Transaction::transfer(AccountId(2), AccountId(3)));
        tg.ingest_transaction(&Transaction::transfer(AccountId(4), AccountId(4)));
        let ag = AdjacencyGraph::from_graph(&tg);
        assert_eq!(ag.node_count(), tg.node_count());
        assert!((ag.total_weight() - tg.total_weight()).abs() < 1e-12);
        for v in 0..tg.node_count() as NodeId {
            assert!((ag.self_loop(v) - tg.self_loop(v)).abs() < 1e-12);
            assert!((ag.incident_weight(v) - tg.incident_weight(v)).abs() < 1e-12);
        }
    }

    #[test]
    fn missing_edges_are_zero() {
        let g = AdjacencyGraph::from_edges(3, vec![(0, 1, 1.0)]);
        assert_eq!(g.weight_between(0, 2), 0.0);
        assert_eq!(g.self_loop(2), 0.0);
        assert_eq!(g.neighbor_count(2), 0);
    }
}
