//! The immutable sweep graph used for Louvain's aggregation levels and the
//! METIS-style coarsening hierarchy.
//!
//! Historically this was a nested `Vec<Vec<(NodeId, f64)>>` adjacency list;
//! it is now an alias of the flat [`CsrGraph`] (see [`crate::csr`] for the
//! layout rationale). The alias keeps the long-standing name at every call
//! site while all construction funnels through the CSR builder.

pub use crate::csr::CsrGraph;

/// Sorted-adjacency weighted graph, CSR-backed.
///
/// Built once and never mutated; neighbors of each node live in one flat
/// packed row (better cache behaviour for the repeated sweeps community
/// detection performs).
pub type AdjacencyGraph = CsrGraph;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{NodeId, WeightedGraph};

    #[test]
    fn from_edges_merges_duplicates() {
        let g = AdjacencyGraph::from_edges(
            3,
            vec![(0, 1, 1.0), (1, 0, 2.0), (1, 2, 0.5), (0, 0, 0.25)],
        );
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!((g.weight_between(0, 1) - 3.0).abs() < 1e-12);
        assert!((g.weight_between(1, 0) - 3.0).abs() < 1e-12);
        assert!((g.self_loop(0) - 0.25).abs() < 1e-12);
        assert!((g.total_weight() - 3.75).abs() < 1e-12);
        assert!((g.incident_weight(0) - 3.25).abs() < 1e-12);
        assert!((g.incident_weight(1) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = AdjacencyGraph::from_edges(4, vec![(0, 3, 1.0), (0, 1, 1.0), (0, 2, 1.0)]);
        let ns: Vec<NodeId> = g.neighbors(0).map(|(u, _)| u).collect();
        assert_eq!(ns, vec![1, 2, 3]);
    }

    #[test]
    fn from_graph_roundtrip() {
        use txallo_model::{AccountId, Transaction};
        let mut tg = crate::TxGraph::new();
        tg.ingest_transaction(&Transaction::transfer(AccountId(1), AccountId(2)));
        tg.ingest_transaction(&Transaction::transfer(AccountId(2), AccountId(3)));
        tg.ingest_transaction(&Transaction::transfer(AccountId(4), AccountId(4)));
        let ag = AdjacencyGraph::from_graph(&tg);
        assert_eq!(ag.node_count(), tg.node_count());
        assert!((ag.total_weight() - tg.total_weight()).abs() < 1e-12);
        for v in 0..tg.node_count() as NodeId {
            assert!((ag.self_loop(v) - tg.self_loop(v)).abs() < 1e-12);
            assert!((ag.incident_weight(v) - tg.incident_weight(v)).abs() < 1e-12);
        }
    }

    #[test]
    fn missing_edges_are_zero() {
        let g = AdjacencyGraph::from_edges(3, vec![(0, 1, 1.0)]);
        assert_eq!(g.weight_between(0, 2), 0.0);
        assert_eq!(g.self_loop(2), 0.0);
        assert_eq!(g.neighbor_count(2), 0);
    }
}
