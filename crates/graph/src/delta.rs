//! Delta-CSR: a compact snapshot of the touched-set neighborhood for
//! incremental (A-TxAllo) epoch updates.
//!
//! ## The problem
//!
//! Each epoch, A-TxAllo re-optimizes only the touched node set `V̂`
//! reported by [`TxGraph::ingest_block`] — typically a small fraction of
//! the accumulated graph. The epoch-update sweep visits every node of `V̂`
//! several times, and before this snapshot existed each visit walked the
//! node's *mutable hash-map adjacency*: one hash-table iteration per node
//! per sweep, on the hottest loop of the epoch path.
//!
//! ## The snapshot
//!
//! [`DeltaCsr`] freezes exactly the rows the sweep needs — one CSR row per
//! touched node, nothing for the rest of the graph:
//!
//! ```text
//! node:     [g₀, g₁, …]      (touched nodes, canonical sweep order)
//! offsets:  [0, 3, 7, …]     (row i = offsets[i]..offsets[i+1])
//! targets:  [u, u, u, …]     (global neighbor ids, ascending per row)
//! weights:  [w, w, w, …]     (parallel to targets)
//! ```
//!
//! Neighbors keep their *global* ids — community labels live in global
//! node space — and [`DeltaCsr::local_of`] answers "is this neighbor also
//! in `V̂`, and at which row?" in `O(log |V̂|)`. Only touched nodes can
//! change community during the sweep, so that query defines the exact edge
//! set along which "your cached link weights are stale" invalidations
//! propagate; the stamp-based skipping of the epoch sweep pays it only
//! when a node actually moves.
//!
//! ## Determinism contract
//!
//! The *row sequence* follows the canonical account-hash sweep order of
//! §V-B (`(address_hash, account id)` — the same total order behind
//! `GTxAlloPlan`'s canonical renumbering), so the epoch sweep visits `V̂`
//! exactly as the paper prescribes. *Within* a row, neighbors sort
//! ascending by global node id — [`CsrGraph`]'s native row order — and the
//! per-node `incident` scalar is re-derived as `self_loop + Σ row` in that
//! order. Consequently the two constructors are interchangeable
//! bit-for-bit: [`DeltaCsr::snapshot_touched`] copies rows straight out of
//! the mutable graph's sorted-run adjacency (cost
//! `O(|V̂| log |V̂| + Σ_{v∈V̂} deg v)` — a run copy/merge per row, no
//! per-row sort — independent of graph size), while
//! [`DeltaCsr::snapshot_full`] freezes
//! the whole graph through [`CsrGraph::from_graph`] and extracts the
//! touched rows (cost `O(n + m)`, the better deal once `V̂` is a large
//! fraction of the graph). The golden tests in `txallo-core` hold the two
//! routes to byte-identical allocations.

use crate::csr::CsrGraph;
use crate::traits::{fit_u32, NodeId, WeightedGraph};
use crate::txgraph::TxGraph;

/// Compact CSR over an epoch's touched node set (see the module docs).
///
/// ```
/// use txallo_graph::{DeltaCsr, TxGraph};
/// use txallo_model::{AccountId, Transaction};
///
/// let mut g = TxGraph::new();
/// g.ingest_transaction(&Transaction::transfer(AccountId(1), AccountId(2)));
/// g.ingest_transaction(&Transaction::transfer(AccountId(2), AccountId(3)));
///
/// // Epoch touches accounts 2 and 3 only.
/// let n2 = g.node_of(AccountId(2)).unwrap();
/// let n3 = g.node_of(AccountId(3)).unwrap();
/// let snap = DeltaCsr::snapshot_touched(&g, &[n2, n3]);
/// assert_eq!(snap.len(), 2);
///
/// // Node 2's row sees both neighbors; node 1 is outside the snapshot.
/// let row_of_2 = snap.local_of(n2).unwrap() as usize;
/// let (targets, weights) = snap.row(row_of_2);
/// assert_eq!(targets.len(), 2);
/// assert!(weights.iter().all(|&w| w == 1.0));
/// let outside = targets.iter().filter(|&&u| snap.local_of(u).is_none()).count();
/// assert_eq!(outside, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DeltaCsr {
    /// Touched nodes in canonical sweep order (`node[local] = global id`).
    node: Vec<NodeId>,
    /// Row boundaries; row `i` = `offsets[i]..offsets[i + 1]`.
    offsets: Vec<u32>,
    /// Global neighbor ids, ascending within each row.
    targets: Vec<NodeId>,
    /// Edge weights, parallel to `targets`.
    weights: Vec<f64>,
    /// Self-loop weight per touched node.
    self_loops: Vec<f64>,
    /// Incident weight per touched node (`self_loop + Σ row`, row order).
    incident: Vec<f64>,
    /// Touched global ids, ascending — lookup keys for [`DeltaCsr::local_of`].
    id_keys: Vec<NodeId>,
    /// Local row of `id_keys[i]`, parallel to `id_keys`.
    id_vals: Vec<u32>,
    /// Refill-time sort scratch (canonical-key and per-row buffers), kept
    /// so a warm snapshot's rebuild allocates nothing at all.
    scratch: RefillScratch,
}

/// The transient buffers of a snapshot refill (never part of the
/// snapshot's observable state — two snapshots compare equal through the
/// public API regardless of scratch contents).
#[derive(Debug, Clone, Default)]
struct RefillScratch {
    /// `(canonical key, node)` sort buffer of `fill_canonical_nodes`.
    keyed: Vec<((u64, u64), NodeId)>,
    /// `(node, local row)` sort buffer for the `local_of` lookup arrays.
    pairs: Vec<(NodeId, u32)>,
}

/// The canonical sweep key of §V-B: nodes sort by account address hash,
/// ties by raw account id.
#[inline]
fn canonical_key(graph: &TxGraph, v: NodeId) -> (u64, u64) {
    let a = graph.account(v);
    (a.address_hash(), a.0)
}

/// Fills the snapshot's node-order arrays: touched nodes in canonical
/// sweep order (`node`), plus the ascending-id lookup arrays for
/// [`DeltaCsr::local_of`] — shared by both snapshot routes so their
/// orderings agree exactly. The canonical keys are materialized once into
/// the sort buffer instead of re-deriving `(hash, id)` through the
/// interner on every comparison.
fn fill_canonical_nodes(snap: &mut DeltaCsr, graph: &TxGraph, touched: &[NodeId]) {
    let keyed = &mut snap.scratch.keyed;
    keyed.clear();
    keyed.extend(touched.iter().map(|&v| (canonical_key(graph, v), v)));
    keyed.sort_unstable();
    snap.node.clear();
    snap.node.extend(keyed.iter().map(|&(_, v)| v));
    let pairs = &mut snap.scratch.pairs;
    pairs.clear();
    pairs.extend(snap.node.iter().enumerate().map(|(i, &v)| (v, i as u32)));
    pairs.sort_unstable_by_key(|&(v, _)| v);
    snap.id_keys.clear();
    snap.id_keys.extend(pairs.iter().map(|&(v, _)| v));
    snap.id_vals.clear();
    snap.id_vals.extend(pairs.iter().map(|&(_, i)| i));
}

impl DeltaCsr {
    /// Builds the snapshot directly from the mutable graph's sorted-run
    /// adjacency, touching only `touched` and its incident edges — the
    /// incremental path.
    ///
    /// `touched` may arrive in any order and must not contain duplicates
    /// (the contract of [`TxGraph::ingest_block`]).
    pub fn snapshot_touched(graph: &TxGraph, touched: &[NodeId]) -> Self {
        let mut snap = Self::default();
        snap.refill_touched(graph, touched);
        snap
    }

    /// [`DeltaCsr::snapshot_touched`] into `self`, reusing every buffer's
    /// capacity — the serving path builds one snapshot per epoch, and
    /// carrying the buffers across epochs (see `AtxAlloSession`) drops the
    /// per-epoch allocations to zero once capacities have warmed up.
    pub fn refill_touched(&mut self, graph: &TxGraph, touched: &[NodeId]) {
        fill_canonical_nodes(self, graph, touched);
        let t = self.node.len();
        let entry_count: usize = self.node.iter().map(|&v| graph.neighbor_count(v)).sum();
        self.offsets.clear();
        self.offsets.reserve(t + 1);
        self.offsets.push(0u32);
        self.targets.clear();
        self.targets.reserve(entry_count);
        self.weights.clear();
        self.weights.reserve(entry_count);
        self.self_loops.clear();
        self.self_loops.reserve(t);
        self.incident.clear();
        self.incident.reserve(t);
        for i in 0..t {
            let v = self.node[i];
            let self_w = graph.self_loop(v);
            // The mutable graph's rows are sorted runs, so assembling a
            // snapshot row is a straight run copy/merge — no gather, no
            // per-row sort keys. The returned sum is the row folded from 0
            // in ascending order, *then* added to the self-loop: exactly
            // the incident fold shape `CsrGraph` uses for the same rows
            // (seeding the accumulator with `self_w` instead would round
            // differently and break the bit-identical `snapshot_full`
            // equivalence).
            let row_sum = graph.copy_row_into(v, &mut self.targets, &mut self.weights);
            self.offsets.push(fit_u32(self.targets.len()));
            self.self_loops.push(self_w);
            self.incident.push(self_w + row_sum);
        }
    }

    /// Builds the same snapshot through the full-graph route: the whole
    /// graph is frozen into a [`CsrGraph`] (the same machinery G-TxAllo's
    /// plan uses to leave the mutable hash adjacency behind) and the
    /// touched rows are extracted — the fallback when `V̂` is a large
    /// fraction of the graph and the per-row assembly of
    /// [`DeltaCsr::snapshot_touched`] stops paying for itself.
    ///
    /// Byte-identical to the incremental route by construction: the row
    /// sequence follows the same canonical sweep order, rows share
    /// [`CsrGraph`]'s ascending-id internal order with the same weights,
    /// and the incident weights are the same left-to-right row sums.
    pub fn snapshot_full(graph: &TxGraph, touched: &[NodeId]) -> Self {
        let mut snap = Self::default();
        snap.refill_full(graph, touched);
        snap
    }

    /// [`DeltaCsr::snapshot_full`] into `self`, reusing the row buffers
    /// (the intermediate [`CsrGraph`] freeze is still paid — it is the
    /// point of this route).
    pub fn refill_full(&mut self, graph: &TxGraph, touched: &[NodeId]) {
        let csr = CsrGraph::from_graph(graph);
        fill_canonical_nodes(self, graph, touched);
        let t = self.node.len();
        let entry_count: usize = self.node.iter().map(|&v| csr.neighbor_count(v)).sum();
        self.offsets.clear();
        self.offsets.reserve(t + 1);
        self.offsets.push(0u32);
        self.targets.clear();
        self.targets.reserve(entry_count);
        self.weights.clear();
        self.weights.reserve(entry_count);
        self.self_loops.clear();
        self.self_loops.reserve(t);
        self.incident.clear();
        self.incident.reserve(t);
        for i in 0..t {
            let v = self.node[i];
            self.targets.extend_from_slice(csr.neighbor_ids(v));
            self.weights.extend_from_slice(csr.neighbor_weights(v));
            self.offsets.push(fit_u32(self.targets.len()));
            self.self_loops.push(csr.self_loop(v));
            self.incident.push(csr.incident_weight(v));
        }
    }

    /// Number of snapshot rows (= touched nodes).
    #[inline]
    pub fn len(&self) -> usize {
        self.node.len()
    }

    /// Whether the snapshot is empty (no touched nodes).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.node.is_empty()
    }

    /// The touched nodes in canonical sweep order (global ids).
    #[inline]
    pub fn nodes(&self) -> &[NodeId] {
        &self.node
    }

    /// Global id of snapshot row `local`.
    #[inline]
    pub fn global_id(&self, local: usize) -> NodeId {
        self.node[local]
    }

    /// Local row of global node `u`, or `None` when `u` is outside the
    /// snapshot (untouched this epoch, label frozen). `O(log |V̂|)`.
    #[inline]
    pub fn local_of(&self, u: NodeId) -> Option<u32> {
        match self.id_keys.binary_search(&u) {
            Ok(i) => Some(self.id_vals[i]),
            Err(_) => None,
        }
    }

    /// Self-loop weight of row `local`.
    #[inline]
    pub fn self_loop(&self, local: usize) -> f64 {
        self.self_loops[local]
    }

    /// Incident weight of row `local` (self-loop counted once).
    #[inline]
    pub fn incident_weight(&self, local: usize) -> f64 {
        self.incident[local]
    }

    /// The row-boundary array (`len() + 1` entries; row `i` covers
    /// `offsets[i]..offsets[i + 1]` of the entry arrays) — the input the
    /// deterministic partitioner
    /// ([`par::entry_balanced_split`](crate::par::entry_balanced_split))
    /// needs to split the sweep by canonical row ranges.
    #[inline]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Row `local` as `(global targets, weights)`, parallel, neighbors
    /// ascending by global id.
    #[inline]
    pub fn row(&self, local: usize) -> (&[NodeId], &[f64]) {
        let (s, e) = (
            self.offsets[local] as usize,
            self.offsets[local + 1] as usize,
        );
        (&self.targets[s..e], &self.weights[s..e])
    }

    /// Approximate resident bytes of the snapshot: every buffer's
    /// *capacity* (the warm-session high-water mark), including the refill
    /// scratch that survives between epochs.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        self.node.capacity() * size_of::<NodeId>()
            + self.offsets.capacity() * size_of::<u32>()
            + self.targets.capacity() * size_of::<NodeId>()
            + self.weights.capacity() * size_of::<f64>()
            + self.self_loops.capacity() * size_of::<f64>()
            + self.incident.capacity() * size_of::<f64>()
            + self.id_keys.capacity() * size_of::<NodeId>()
            + self.id_vals.capacity() * size_of::<u32>()
            + self.scratch.keyed.capacity() * size_of::<((u64, u64), NodeId)>()
            + self.scratch.pairs.capacity() * size_of::<(NodeId, u32)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txallo_model::{AccountId, Transaction};

    fn graph() -> TxGraph {
        let mut g = TxGraph::new();
        for (a, b) in [(1u64, 2), (2, 3), (3, 4), (4, 1), (2, 2)] {
            g.ingest_transaction(&Transaction::transfer(AccountId(a), AccountId(b)));
        }
        // Multi-account transactions make the clique-edge weights
        // non-dyadic (1/3, 1/6), so the bit-identity assertions below
        // really exercise the summation shape (pure 1.0-weight graphs sum
        // exactly and would mask a wrong fold). Account 7 specifically —
        // self-loop 1.0 plus three 1/6 edges — is a witness where seeding
        // the incident fold with the self-loop rounds differently from
        // `self_loop + Σ row`.
        g.ingest_transaction(
            &Transaction::new(vec![AccountId(2)], vec![AccountId(4), AccountId(5)]).unwrap(),
        );
        g.ingest_transaction(
            &Transaction::new(
                vec![AccountId(7)],
                vec![AccountId(8), AccountId(9), AccountId(10)],
            )
            .unwrap(),
        );
        g.ingest_transaction(&Transaction::transfer(AccountId(7), AccountId(7)));
        g
    }

    #[test]
    fn touched_and_full_routes_agree() {
        let g = graph();
        // Both a strict subset and the whole node set: the full set covers
        // account 7's fold-order witness row (see `graph()`).
        let subset: Vec<NodeId> = vec![
            g.node_of(AccountId(2)).unwrap(),
            g.node_of(AccountId(3)).unwrap(),
        ];
        let everyone: Vec<NodeId> = (0..g.node_count() as NodeId).collect();
        for touched in [subset, everyone] {
            let a = DeltaCsr::snapshot_touched(&g, &touched);
            let b = DeltaCsr::snapshot_full(&g, &touched);
            assert_eq!(a.node, b.node);
            assert_eq!(a.offsets, b.offsets);
            assert_eq!(a.targets, b.targets);
            assert_eq!(a.weights, b.weights, "weights must match bit-for-bit");
            assert_eq!(a.self_loops, b.self_loops);
            assert_eq!(a.incident, b.incident, "incident must match bit-for-bit");
            assert_eq!(a.id_keys, b.id_keys);
            assert_eq!(a.id_vals, b.id_vals);
        }
    }

    #[test]
    fn nodes_canonical_rows_ascending() {
        let g = graph();
        let all: Vec<NodeId> = (0..g.node_count() as NodeId).collect();
        let snap = DeltaCsr::snapshot_touched(&g, &all);
        assert_eq!(snap.nodes(), g.nodes_in_canonical_order().as_slice());
        for i in 0..snap.len() {
            let (targets, _) = snap.row(i);
            let mut sorted = targets.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(targets, sorted.as_slice(), "row {i} ascending, no dups");
        }
    }

    #[test]
    fn local_of_marks_membership() {
        let g = graph();
        let touched: Vec<NodeId> = vec![
            g.node_of(AccountId(1)).unwrap(),
            g.node_of(AccountId(2)).unwrap(),
        ];
        let snap = DeltaCsr::snapshot_touched(&g, &touched);
        for i in 0..snap.len() {
            let v = snap.global_id(i);
            assert_eq!(snap.local_of(v), Some(i as u32), "self-lookup");
            let (targets, _) = snap.row(i);
            for &u in targets {
                match snap.local_of(u) {
                    Some(l) => assert_eq!(snap.global_id(l as usize), u),
                    None => assert!(!touched.contains(&u)),
                }
            }
        }
    }

    #[test]
    fn scalars_match_the_graph() {
        let g = graph();
        let all: Vec<NodeId> = (0..g.node_count() as NodeId).collect();
        let snap = DeltaCsr::snapshot_touched(&g, &all);
        for i in 0..snap.len() {
            let v = snap.global_id(i);
            assert_eq!(snap.self_loop(i), g.self_loop(v));
            assert!((snap.incident_weight(i) - g.incident_weight(v)).abs() < 1e-12);
        }
    }

    /// `V̂` containing isolated accounts — degree-0 nodes whose only weight
    /// is a self-loop (a transfer-to-self is how such accounts enter the
    /// graph) — must produce empty rows with the self-loop carried in the
    /// scalars, identically on both routes.
    #[test]
    fn isolated_new_accounts_have_empty_rows_on_both_routes() {
        let mut g = graph();
        // Two isolated newcomers: pure self-loop, no neighbors.
        g.ingest_transaction(&Transaction::transfer(AccountId(50), AccountId(50)));
        g.ingest_transaction(&Transaction::transfer(AccountId(51), AccountId(51)));
        let i50 = g.node_of(AccountId(50)).unwrap();
        let i51 = g.node_of(AccountId(51)).unwrap();
        assert_eq!(g.neighbor_count(i50), 0, "fixture: degree 0");
        let touched: Vec<NodeId> = vec![i50, g.node_of(AccountId(2)).unwrap(), i51];
        let a = DeltaCsr::snapshot_touched(&g, &touched);
        let b = DeltaCsr::snapshot_full(&g, &touched);
        assert_eq!(a.offsets, b.offsets);
        assert_eq!(a.targets, b.targets);
        assert_eq!(a.incident, b.incident, "bit-for-bit incident");
        for &iso in &[i50, i51] {
            let local = a.local_of(iso).expect("isolated node is a row") as usize;
            let (targets, weights) = a.row(local);
            assert!(targets.is_empty() && weights.is_empty(), "empty row");
            assert_eq!(a.self_loop(local), 1.0);
            assert_eq!(a.incident_weight(local), 1.0, "incident = self-loop");
        }
        // An isolated-only touched set degenerates gracefully too.
        let only_iso = DeltaCsr::snapshot_touched(&g, &[i50, i51]);
        assert_eq!(only_iso.len(), 2);
        assert!(only_iso.targets.is_empty());
    }

    /// Refilling a warm snapshot must be indistinguishable from building a
    /// fresh one — for both routes, across differently-shaped epochs
    /// (shrinking and growing touched sets).
    #[test]
    fn refill_reuses_buffers_without_changing_results() {
        let g = graph();
        let everyone: Vec<NodeId> = (0..g.node_count() as NodeId).collect();
        let small: Vec<NodeId> = vec![
            g.node_of(AccountId(2)).unwrap(),
            g.node_of(AccountId(7)).unwrap(),
        ];
        let mut warm = DeltaCsr::default();
        for touched in [&everyone, &small, &everyone] {
            warm.refill_touched(&g, touched);
            let fresh = DeltaCsr::snapshot_touched(&g, touched);
            assert_eq!(warm.node, fresh.node);
            assert_eq!(warm.offsets, fresh.offsets);
            assert_eq!(warm.targets, fresh.targets);
            assert_eq!(warm.weights, fresh.weights);
            assert_eq!(warm.self_loops, fresh.self_loops);
            assert_eq!(warm.incident, fresh.incident);
            assert_eq!(warm.id_keys, fresh.id_keys);
            assert_eq!(warm.id_vals, fresh.id_vals);

            warm.refill_full(&g, touched);
            let full = DeltaCsr::snapshot_full(&g, touched);
            assert_eq!(warm.targets, full.targets);
            assert_eq!(warm.weights, full.weights);
            assert_eq!(warm.incident, full.incident);
        }
    }

    #[test]
    fn empty_touched_set() {
        let g = graph();
        let snap = DeltaCsr::snapshot_touched(&g, &[]);
        assert!(snap.is_empty());
        assert_eq!(snap.len(), 0);
        assert_eq!(snap.local_of(0), None);
        let full = DeltaCsr::snapshot_full(&g, &[]);
        assert!(full.is_empty());
    }
}
